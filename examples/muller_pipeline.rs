//! Synthesising Muller pipelines: the workload of the paper's Figure 6.
//!
//! Demonstrates why the unfolding segment scales where the state graph does
//! not: the segment grows polynomially with the stage count while the SG
//! grows exponentially, yet both flows produce the same C-element logic.
//!
//! Run with: `cargo run --release --example muller_pipeline -- [stages]`

use si_synth::stategraph::StateGraph;
use si_synth::stg::generators::muller_pipeline;
use si_synth::synthesis::{synthesize_from_unfolding, verify_against_sg, SynthesisOptions};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let stages: usize = std::env::args()
        .nth(1)
        .map(|s| s.parse())
        .transpose()?
        .unwrap_or(4);
    let spec = muller_pipeline(stages);
    println!("specification: {spec}");

    let result = synthesize_from_unfolding(&spec, &SynthesisOptions::default())?;
    println!(
        "unfolding segment: {} events / {} conditions",
        result.events, result.conditions
    );
    match StateGraph::build(&spec, 5_000_000) {
        Ok(sg) => println!("state graph:       {} states (for comparison)", sg.len()),
        Err(e) => println!("state graph:       not buildable ({e})"),
    }

    println!("\ngate equations (each stage is a C-element):");
    for gate in &result.gates {
        println!(
            "  {}   [{} literals]",
            gate.equation(&spec),
            gate.literal_count()
        );
    }
    println!("total literals: {}", result.literal_count());
    println!(
        "timing: unfold {:?}, derive {:?}, minimise {:?}",
        result.timing.unfold, result.timing.derive, result.timing.minimize
    );

    if stages <= 8 {
        verify_against_sg(&spec, &result, 5_000_000)?;
        println!("verified against the state-graph oracle");
    } else {
        println!("(skipping SG verification — state space too large, which is the point)");
    }
    Ok(())
}
