//! Working with the `.g` interchange format: parse a hand-written
//! specification, validate it, synthesise it, and round-trip it back to
//! text.
//!
//! Run with: `cargo run --example interchange`

use si_synth::stg::{parse_g, write_g};
use si_synth::synthesis::{synthesize_from_unfolding, SynthesisOptions};
use si_synth::unfolding::{check_segment_persistency, StgUnfolding, UnfoldingOptions};

/// A small data-transfer controller written directly in the `.g` dialect
/// understood by [`parse_g`] (SIS/Petrify compatible, plus the `.initial`
/// extension).
const CONTROLLER: &str = "
.model fetch-ctl
.inputs req done
.outputs go ack
.graph
req+ go+
go+ done+
done+ ack+
ack+ go-
go- done-
done- req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.initial { req=0 done=0 go=0 ack=0 }
.end
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = parse_g(CONTROLLER)?;
    println!("parsed: {spec}");

    // Build the unfolding segment; construction doubles as verification of
    // boundedness + consistency, and semi-modularity is checked on top.
    let unf = StgUnfolding::build(&spec, &UnfoldingOptions::default())?;
    println!(
        "segment: {} events, {} conditions, v0 = {}",
        unf.event_count(),
        unf.condition_count(),
        unf.initial_code()
    );
    assert!(check_segment_persistency(&spec, &unf).is_empty());

    let netlist = synthesize_from_unfolding(&spec, &SynthesisOptions::default())?;
    for gate in &netlist.gates {
        println!("  {}", gate.equation(&spec));
    }

    // Round-trip: the writer emits the same dialect the parser accepts.
    let text = write_g(&spec);
    let reparsed = parse_g(&text)?;
    assert_eq!(reparsed.signal_count(), spec.signal_count());
    assert_eq!(
        reparsed.net().transition_count(),
        spec.net().transition_count()
    );
    println!("\nround-tripped .g:\n{text}");
    Ok(())
}
