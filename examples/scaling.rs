//! A miniature of the paper's Figure 6: unfolding-based synthesis vs the
//! SG-based baseline on growing Muller pipelines.
//!
//! Run with: `cargo run --release --example scaling`

use std::time::{Duration, Instant};

use si_synth::stategraph::{synthesize_from_sg, SgSynthesisOptions};
use si_synth::stg::generators::muller_pipeline;
use si_synth::synthesis::{synthesize_from_unfolding, SynthesisOptions};

/// Once one baseline point exceeds this, larger ones are skipped. The SG
/// state count quadruples per +2 stages; with the implicit on/off covers
/// the synthesis time follows the state count (~40 ms at 12 stages,
/// ~0.2 s at 14 — the explicit-minterm path took ~2 min there), so every
/// listed point fits comfortably under the cutoff and the guard only
/// matters on much slower machines.
const BASELINE_CUTOFF: Duration = Duration::from_secs(30);

fn main() {
    println!(
        "{:>7} {:>8} {:>14} {:>14}",
        "stages", "signals", "PUNT-style", "SG baseline"
    );
    let mut baseline_enabled = true;
    for stages in [2, 4, 6, 8, 10, 12, 14] {
        let spec = muller_pipeline(stages);

        let start = Instant::now();
        let unf = synthesize_from_unfolding(&spec, &SynthesisOptions::default());
        let unf_time = start.elapsed();
        let unf_cell = match unf {
            Ok(r) => format!("{:>9.2?} ({})", unf_time, r.literal_count()),
            Err(e) => format!("error: {e}"),
        };

        let sg_cell = if baseline_enabled {
            let start = Instant::now();
            let sg = synthesize_from_sg(
                &spec,
                &SgSynthesisOptions {
                    state_budget: 300_000,
                    ..SgSynthesisOptions::default()
                },
            );
            let sg_time = start.elapsed();
            if sg_time > BASELINE_CUTOFF {
                baseline_enabled = false;
            }
            match sg {
                Ok(r) => format!("{:>9.2?} ({})", sg_time, r.literal_count()),
                Err(_) => "state blow-up".to_owned(),
            }
        } else {
            // Distinct from "state blow-up" above: this run was never
            // attempted because a smaller one already passed the cutoff.
            "skipped (cutoff)".to_owned()
        };

        println!(
            "{:>7} {:>8} {:>14} {:>14}",
            stages,
            spec.signal_count(),
            unf_cell,
            sg_cell
        );
    }
    println!(
        "\n(literal counts in parentheses; the SG baseline's state count still \
         blows up exponentially — ~4× states per +2 stages — but with the \
         implicit on/off covers its time tracks the state count, so every \
         listed point now finishes well inside the {:?} cutoff; larger \
         instances run into the 300k-state budget, not the minimiser)",
        BASELINE_CUTOFF
    );
}
