//! A miniature of the paper's Figure 6: unfolding-based synthesis vs the
//! SG-based baseline on growing Muller pipelines.
//!
//! Run with: `cargo run --release --example scaling`

use std::time::{Duration, Instant};

use si_synth::stategraph::{synthesize_from_sg, SgSynthesisOptions};
use si_synth::stg::generators::muller_pipeline;
use si_synth::synthesis::{synthesize_from_unfolding, SynthesisOptions};

/// Once one baseline point exceeds this, larger ones are skipped. The SG
/// state count quadruples per +2 stages and minimisation follows suit
/// (~0.3 s at 10 stages, ~5 s at 12, ~2 min at 14 on the reference
/// machine), so the cutoff keeps the example interactive while still
/// letting every listed point run.
const BASELINE_CUTOFF: Duration = Duration::from_secs(30);

fn main() {
    println!(
        "{:>7} {:>8} {:>14} {:>14}",
        "stages", "signals", "PUNT-style", "SG baseline"
    );
    let mut baseline_enabled = true;
    for stages in [2, 4, 6, 8, 10, 12] {
        let spec = muller_pipeline(stages);

        let start = Instant::now();
        let unf = synthesize_from_unfolding(&spec, &SynthesisOptions::default());
        let unf_time = start.elapsed();
        let unf_cell = match unf {
            Ok(r) => format!("{:>9.2?} ({})", unf_time, r.literal_count()),
            Err(e) => format!("error: {e}"),
        };

        let sg_cell = if baseline_enabled {
            let start = Instant::now();
            let sg = synthesize_from_sg(
                &spec,
                &SgSynthesisOptions {
                    state_budget: 300_000,
                    ..SgSynthesisOptions::default()
                },
            );
            let sg_time = start.elapsed();
            if sg_time > BASELINE_CUTOFF {
                baseline_enabled = false;
            }
            match sg {
                Ok(r) => format!("{:>9.2?} ({})", sg_time, r.literal_count()),
                Err(_) => "state blow-up".to_owned(),
            }
        } else {
            // Distinct from "state blow-up" above: this run was never
            // attempted because a smaller one already passed the cutoff.
            "skipped (cutoff)".to_owned()
        };

        println!(
            "{:>7} {:>8} {:>14} {:>14}",
            stages,
            spec.signal_count(),
            unf_cell,
            sg_cell
        );
    }
    println!(
        "\n(literal counts in parentheses; the SG baseline's state count and \
         two-level minimisation blow up exponentially — ~4× states per +2 \
         stages — so points past the {:?} cutoff are skipped)",
        BASELINE_CUTOFF
    );
}
