//! A miniature of the paper's Figure 6: unfolding-based synthesis vs the
//! SG-based baseline on growing Muller pipelines.
//!
//! Run with: `cargo run --release --example scaling`

use std::time::Instant;

use si_synth::stategraph::{synthesize_from_sg, SgSynthesisOptions};
use si_synth::stg::generators::muller_pipeline;
use si_synth::synthesis::{synthesize_from_unfolding, SynthesisOptions};

fn main() {
    println!("{:>7} {:>8} {:>14} {:>14}", "stages", "signals", "PUNT-style", "SG baseline");
    for stages in [2, 4, 6, 8, 10, 12] {
        let spec = muller_pipeline(stages);

        let start = Instant::now();
        let unf = synthesize_from_unfolding(&spec, &SynthesisOptions::default());
        let unf_time = start.elapsed();
        let unf_cell = match unf {
            Ok(r) => format!("{:>9.2?} ({})", unf_time, r.literal_count()),
            Err(e) => format!("error: {e}"),
        };

        let start = Instant::now();
        let sg = synthesize_from_sg(
            &spec,
            &SgSynthesisOptions {
                state_budget: 300_000,
                ..SgSynthesisOptions::default()
            },
        );
        let sg_time = start.elapsed();
        let sg_cell = match sg {
            Ok(r) => format!("{:>9.2?} ({})", sg_time, r.literal_count()),
            Err(_) => "state blow-up".to_owned(),
        };

        println!(
            "{:>7} {:>8} {:>14} {:>14}",
            stages,
            spec.signal_count(),
            unf_cell,
            sg_cell
        );
    }
    println!("\n(literal counts in parentheses; the SG baseline hits its state budget first)");
}
