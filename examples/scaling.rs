//! A miniature of the paper's Figure 6: unfolding-based synthesis vs the
//! SG-based baseline on growing Muller pipelines — with the SG baseline run
//! on both of its engines: explicit enumeration (which blows its state
//! budget) and the BDD-based symbolic engine (which carries the identical
//! synthesis through every listed point).
//!
//! Run with: `cargo run --release --example scaling`

use std::time::{Duration, Instant};

use si_synth::stategraph::{synthesize_from_sg, SgEngine, SgSynthesisOptions};
use si_synth::stg::generators::muller_pipeline;
use si_synth::synthesis::{synthesize_from_unfolding, SynthesisOptions};

/// Once one explicit-baseline point exceeds this, larger ones are skipped.
/// The SG state count quadruples per +2 stages; with the implicit on/off
/// covers the synthesis time follows the state count (~40 ms at 12 stages,
/// ~0.2 s at 14), so every listed explicit point either finishes well
/// inside the cutoff or dies on the state budget — never by timeout.
const BASELINE_CUTOFF: Duration = Duration::from_secs(30);
/// Explicit state budget: 18 stages ≈ 1 M states blows it, which is the
/// symbolic engine's cue.
const STATE_BUDGET: usize = 300_000;

fn main() {
    println!(
        "{:>7} {:>8} {:>14} {:>16} {:>16}",
        "stages", "signals", "PUNT-style", "SG explicit", "SG symbolic"
    );
    let mut explicit_enabled = true;
    for stages in [2, 4, 6, 8, 10, 12, 14, 16, 18] {
        let spec = muller_pipeline(stages);

        let start = Instant::now();
        let unf = synthesize_from_unfolding(&spec, &SynthesisOptions::default());
        let unf_time = start.elapsed();
        let unf_cell = match unf {
            Ok(r) => format!("{:>9.2?} ({})", unf_time, r.literal_count()),
            Err(e) => format!("error: {e}"),
        };

        let explicit_cell = if explicit_enabled {
            let start = Instant::now();
            let sg = synthesize_from_sg(
                &spec,
                &SgSynthesisOptions {
                    state_budget: STATE_BUDGET,
                    ..SgSynthesisOptions::default()
                },
            );
            let sg_time = start.elapsed();
            if sg_time > BASELINE_CUTOFF {
                explicit_enabled = false;
            }
            match sg {
                Ok(r) => format!("{:>9.2?} ({})", sg_time, r.literal_count()),
                Err(_) => "state blow-up".to_owned(),
            }
        } else {
            // Distinct from "state blow-up" above: this run was never
            // attempted because a smaller one already passed the cutoff.
            "skipped (cutoff)".to_owned()
        };

        // The symbolic engine completes every listed point: its cost tracks
        // the diagram size (near-linear here), not the state count.
        let start = Instant::now();
        let sym = synthesize_from_sg(
            &spec,
            &SgSynthesisOptions {
                engine: SgEngine::Symbolic,
                ..SgSynthesisOptions::default()
            },
        );
        let sym_time = start.elapsed();
        let symbolic_cell = match sym {
            Ok(r) => format!("{:>9.2?} ({})", sym_time, r.literal_count()),
            Err(e) => format!("error: {e}"),
        };

        println!(
            "{:>7} {:>8} {:>14} {:>16} {:>16}",
            stages,
            spec.signal_count(),
            unf_cell,
            explicit_cell,
            symbolic_cell
        );
    }
    println!(
        "\n(literal counts in parentheses; the explicit SG baseline's state count \
         blows up exponentially — ~4× states per +2 stages — and dies on its \
         {STATE_BUDGET}-state budget at 18 stages, while the symbolic engine \
         synthesises the identical gate equations from the reachable-set BDD at \
         every listed point, well inside the {BASELINE_CUTOFF:?} cutoff)"
    );
}
