//! Regenerates the checked-in `benchmarks/dining_phil_*.g` samples.
//!
//! ```text
//! cargo run --release --example gen_dining_phil -- 4 > benchmarks/dining_phil_4.g
//! ```
//!
//! The philosopher count is the single positional argument (default 4).
//! Unlike the rest of the benchmark series these specs are deliberately
//! deadlock-prone — they exist to exercise the liveness diagnostics
//! (`SI-W011`) and are excluded from the lint-clean benchmark sweep.

use si_synth::stg::generators::dining_philosophers;
use si_synth::stg::write_g;

fn main() {
    let n = std::env::args()
        .nth(1)
        .map(|s| {
            s.parse::<usize>()
                .expect("philosopher count must be a number")
        })
        .unwrap_or(4);
    print!("{}", write_g(&dining_philosophers(n)));
}
