//! Regenerates the checked-in `benchmarks/wide_arbiter_*.g` samples.
//!
//! ```text
//! cargo run --release --example gen_wide_arbiter -- 16 > benchmarks/wide_arbiter_16.g
//! ```
//!
//! The stage count is the single positional argument (default 16). Kept as
//! an example (not a bench bin) so the benchmark series can be re-emitted
//! or extended without touching library code.

use si_synth::stg::generators::wide_arbiter;
use si_synth::stg::write_g;

fn main() {
    let n = std::env::args()
        .nth(1)
        .map(|s| s.parse::<usize>().expect("stage count must be a number"))
        .unwrap_or(16);
    print!("{}", write_g(&wide_arbiter(n)));
}
