//! Regenerates the checked-in `benchmarks/token_ring_*.g` samples.
//!
//! ```text
//! cargo run --release --example gen_token_ring -- 12 > benchmarks/token_ring_12.g
//! ```
//!
//! The station count is the single positional argument (default 12). Kept
//! as an example (not a bench bin) so the benchmark series can be
//! re-emitted or extended without touching library code.

use si_synth::stg::generators::token_ring;
use si_synth::stg::write_g;

fn main() {
    let n = std::env::args()
        .nth(1)
        .map(|s| s.parse::<usize>().expect("station count must be a number"))
        .unwrap_or(12);
    print!("{}", write_g(&token_ring(n)));
}
