//! The VME bus controller: CSC conflict detection and the resolved design,
//! synthesised into all three architectures.
//!
//! Run with: `cargo run --example vme_bus`

use si_synth::stg::suite::{vme_read_csc, vme_read_no_csc};
use si_synth::stg::write_g;
use si_synth::synthesis::{
    synthesize_excitation_functions, synthesize_from_unfolding, MemoryElement, SynthesisError,
    SynthesisOptions,
};
use si_synth::unfolding::UnfoldingOptions;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. The raw controller has the classic CSC conflict — synthesis
    //    detects it from the unfolding segment and refuses.
    let broken = vme_read_no_csc();
    println!("specification: {broken}");
    match synthesize_from_unfolding(&broken, &SynthesisOptions::default()) {
        Err(SynthesisError::CscViolation { signal, witness }) => {
            println!("CSC conflict detected on `{signal}` (shared code region {witness})");
        }
        other => println!("unexpected result: {other:?}"),
    }

    // 2. The resolved specification inserts the internal signal csc0.
    let fixed = vme_read_csc();
    println!("\nresolved specification: {fixed}");
    let acg = synthesize_from_unfolding(&fixed, &SynthesisOptions::default())?;
    println!("atomic complex gate per signal:");
    for gate in &acg.gates {
        println!("  {}", gate.equation(&fixed));
    }
    println!("  total literals: {}", acg.literal_count());

    // 3. The same circuit with memory elements: standard C and RS latch.
    for element in [MemoryElement::MullerC, MemoryElement::RsLatch] {
        let impls = synthesize_excitation_functions(
            &fixed,
            element,
            &UnfoldingOptions::default(),
            1_000_000,
        )?;
        println!("\n{element:?} architecture:");
        for imp in &impls {
            let (set, reset) = imp.equations(&fixed);
            println!("  {set}");
            println!("  {reset}");
        }
        println!(
            "  total literals: {}",
            impls.iter().map(|i| i.literal_count()).sum::<usize>()
        );
    }

    // 4. Export the resolved controller in the .g interchange format and
    //    the implementation as structural Verilog / an SIS-style .eqn list.
    println!("\n--- .g interchange ---\n{}", write_g(&fixed));
    println!(
        "--- Verilog ---\n{}",
        si_synth::synthesis::to_verilog(&fixed, &acg)
    );
    println!(
        "--- .eqn ---\n{}",
        si_synth::synthesis::to_eqn(&fixed, &acg)
    );
    Ok(())
}
