//! Quickstart: synthesise the paper's running example (Figure 1).
//!
//! Run with: `cargo run --example quickstart`

use si_synth::stg::stg_to_dot;
use si_synth::stg::suite::paper_fig1;
use si_synth::synthesis::{
    synthesize_from_unfolding, verify_against_sg, CoverMode, SynthesisOptions,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let spec = paper_fig1();
    println!("specification: {spec}");

    // Synthesise with the paper's approximate flow (the default) …
    let approx = synthesize_from_unfolding(&spec, &SynthesisOptions::default())?;
    println!(
        "segment: {} events, {} conditions",
        approx.events, approx.conditions
    );
    for gate in &approx.gates {
        println!(
            "approximate: {}  ({} literals)",
            gate.equation(&spec),
            gate.literal_count()
        );
        if let Some(report) = &gate.refinement {
            println!(
                "  refinement: {} steps, {} exact fallbacks",
                report.steps, report.exact_fallbacks
            );
        }
    }

    // … and with exact cut enumeration, for comparison.
    let exact = synthesize_from_unfolding(
        &spec,
        &SynthesisOptions {
            mode: CoverMode::Exact,
            ..SynthesisOptions::default()
        },
    )?;
    for gate in &exact.gates {
        println!("exact:       {}", gate.equation(&spec));
    }

    // Both implementations are independently checked against the explicit
    // state graph.
    verify_against_sg(&spec, &approx, 10_000)?;
    verify_against_sg(&spec, &exact, 10_000)?;
    println!("verified against the state-graph oracle");

    // The STG can be inspected with Graphviz:
    println!("\n--- DOT (pipe into `dot -Tpng`) ---");
    println!("{}", stg_to_dot(&spec));
    Ok(())
}
