//! Property-based pinning of the BDD-native ISOP extraction
//! (Minato–Morreale): random BDD programs are built from random op
//! sequences and hit with arbitrary level-swap / sift / gc schedules.
//! At every point the explicit ISOP cover must equal its function exactly
//! and be irredundant (dropping any cube loses a point), and the implicit
//! extraction must land on the same canonical point set as the disjoint-cube
//! translation path — the invariant that makes the two synthesis front ends
//! byte-identical. The suite-level corollary is pinned here too: on every
//! synthesisable STG, `CoverExtraction::Isop` and `CoverExtraction::Translate`
//! produce byte-identical gate equations.

use proptest::collection::vec;
use proptest::prelude::*;
use si_synth::bdd::{Bdd, BddManager};
use si_synth::cubes::implicit::ImplicitPool;
use si_synth::cubes::Cube;
use si_synth::stategraph::{synthesize_from_sg, CoverExtraction, SgEngine, SgSynthesisOptions};
use si_synth::stg::suite::synthesisable;

/// One step of a random function-building program. Operand indices address
/// the result stack modulo its length.
#[derive(Debug, Clone)]
enum Op {
    Var(u8),
    NVar(u8),
    And(u8, u8),
    Or(u8, u8),
    Xor(u8, u8),
    Diff(u8, u8),
    Not(u8),
    Ite(u8, u8, u8),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::Var),
        any::<u8>().prop_map(Op::NVar),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::And(a, b)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Or(a, b)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Xor(a, b)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Diff(a, b)),
        any::<u8>().prop_map(Op::Not),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(a, b, c)| Op::Ite(a, b, c)),
    ]
}

/// One pool mutation between extractions: an adjacent level swap, a full
/// sift, or a collection — each clears or purges the ISOP memo differently.
#[derive(Debug, Clone)]
enum Mutation {
    Swap(u8),
    Sift,
    Gc,
}

fn mutation() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        any::<u8>().prop_map(Mutation::Swap),
        Just(Mutation::Sift),
        Just(Mutation::Gc),
    ]
}

/// Runs the program over a fresh manager, returning the result stack.
fn run_program(mgr: &mut BddManager, ops: &[Op]) -> Vec<Bdd> {
    let w = mgr.num_vars();
    let mut stack = vec![mgr.zero(), mgr.one()];
    let pick = |stack: &[Bdd], i: u8| stack[i as usize % stack.len()];
    for op in ops {
        let r = match op {
            Op::Var(v) => mgr.var(*v as usize % w),
            Op::NVar(v) => mgr.nvar(*v as usize % w),
            Op::And(a, b) => {
                let (x, y) = (pick(&stack, *a), pick(&stack, *b));
                mgr.and(x, y)
            }
            Op::Or(a, b) => {
                let (x, y) = (pick(&stack, *a), pick(&stack, *b));
                mgr.or(x, y)
            }
            Op::Xor(a, b) => {
                let (x, y) = (pick(&stack, *a), pick(&stack, *b));
                mgr.xor(x, y)
            }
            Op::Diff(a, b) => {
                let (x, y) = (pick(&stack, *a), pick(&stack, *b));
                mgr.diff(x, y)
            }
            Op::Not(a) => {
                let x = pick(&stack, *a);
                mgr.not(x)
            }
            Op::Ite(a, b, c) => {
                let (x, y, z) = (pick(&stack, *a), pick(&stack, *b), pick(&stack, *c));
                mgr.ite(x, y, z)
            }
        };
        stack.push(r);
    }
    stack
}

/// All assignments over `width` variables, variable-index order.
fn assignments(width: usize) -> impl Iterator<Item = Vec<bool>> {
    (0..(1u32 << width)).map(move |x| (0..width).map(|i| (x >> i) & 1 == 1).collect())
}

/// The two ISOP contracts, pointwise: the cover equals `f` exactly, and
/// dropping any one cube loses at least one point of `f`.
fn check_isop_exact_and_irredundant(
    mgr: &BddManager,
    f: Bdd,
    cubes: &[Cube],
) -> Result<(), TestCaseError> {
    let width = mgr.num_vars();
    for bits in assignments(width) {
        let covered = cubes.iter().any(|c| c.covers_bits(&bits));
        prop_assert_eq!(covered, mgr.eval(f, &bits), "cover ≠ f at {:?}", bits);
    }
    for drop in 0..cubes.len() {
        let lost = assignments(width).any(|bits| {
            mgr.eval(f, &bits)
                && !cubes
                    .iter()
                    .enumerate()
                    .any(|(i, c)| i != drop && c.covers_bits(&bits))
        });
        prop_assert!(lost, "cube {} ({}) is redundant", drop, &cubes[drop]);
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn isop_is_exact_irredundant_and_translation_equal_under_mutations(
        w in 3usize..7,
        ops in vec(op(), 1..20),
        mutations in vec(mutation(), 0..6),
    ) {
        let mut mgr = BddManager::new(w);
        let stack = run_program(&mut mgr, &ops);
        for &f in &stack {
            mgr.protect(f);
        }
        let map: Vec<Option<usize>> = (0..w).map(Some).collect();
        let back_map: Vec<usize> = (0..w).collect();

        // Baseline canonical point sets from the translation path.
        let mut pool = ImplicitPool::new(w);
        let sets: Vec<_> = stack
            .iter()
            .map(|&f| mgr.to_implicit(f, &mut pool, &map).expect("identity map"))
            .collect();

        // Extract before any mutation, then again after each one: swaps and
        // sifts retire the ISOP memo wholesale, collections purge it — every
        // schedule must leave extraction exact, irredundant, and on the same
        // canonical point set as translation.
        for step in 0..=mutations.len() {
            if step > 0 {
                match &mutations[step - 1] {
                    Mutation::Swap(l) => {
                        mgr.swap_levels(*l as usize % (w - 1));
                    }
                    Mutation::Sift => {
                        mgr.reorder_sift(BddManager::DEFAULT_MAX_GROWTH);
                    }
                    Mutation::Gc => {
                        mgr.gc();
                    }
                }
            }
            for (i, &f) in stack.iter().enumerate() {
                let cover = mgr.isop(f);
                check_isop_exact_and_irredundant(&mgr, f, cover.cubes())?;
                let via_isop = mgr
                    .isop_implicit(f, &mut pool, &map)
                    .expect("identity map");
                prop_assert_eq!(
                    via_isop, sets[i],
                    "ISOP and translation disagree after {} mutation(s)", step
                );
                // Round-trip: the implicit set loads back as the same function.
                let back = mgr.from_implicit(&pool, via_isop, &back_map);
                prop_assert_eq!(back, f, "round-trip landed on a different function");
            }
        }
        for &f in &stack {
            mgr.unprotect(f);
        }
    }
}

#[test]
fn extraction_front_ends_agree_byte_for_byte_on_the_suite() {
    // The whole-suite corollary of the property above: swapping the cover
    // extraction front end must not move a single byte of any gate equation,
    // because both front ends collapse to the same canonical point sets
    // before the minimiser runs.
    for stg in synthesisable() {
        let isop = synthesize_from_sg(
            &stg,
            &SgSynthesisOptions {
                engine: SgEngine::Symbolic,
                extraction: CoverExtraction::Isop,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("{} failed with isop: {e}", stg.name()));
        let translate = synthesize_from_sg(
            &stg,
            &SgSynthesisOptions {
                engine: SgEngine::Symbolic,
                extraction: CoverExtraction::Translate,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("{} failed with translate: {e}", stg.name()));
        assert_eq!(isop.gates.len(), translate.gates.len(), "{}", stg.name());
        for (a, b) in isop.gates.iter().zip(&translate.gates) {
            assert_eq!(a.equation(&stg), b.equation(&stg), "{}", stg.name());
            assert_eq!(a.inverted, b.inverted, "{}", stg.name());
        }
    }
}
