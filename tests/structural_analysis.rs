//! Pinning of the structural-analysis engine integrations: certificate
//! soundness against explicit reachability, and byte-identical gate
//! equations when the symbolic engine runs with invariant-seeded variable
//! orders and certificate-skipped safety checks.

use si_synth::petri::structural::{certify_one_safe, structural_state_bound};
use si_synth::petri::ReachabilityGraph;
use si_synth::stategraph::{
    synthesize_from_sg, synthesize_from_symbolic_sg, OrderSeed, SgEngine, SgSynthesisOptions,
    SymbolicSg, SymbolicTuning,
};
use si_synth::stg::analysis::analyze;
use si_synth::stg::suite::synthesisable;

/// Every unary-invariant certificate must be truthful: certified places
/// hold at most one token in every explicitly reachable marking (they do by
/// construction of 1-safe exploration, but the *cover* itself must also
/// conserve tokens), and the structural state bound must dominate the real
/// state count.
#[test]
fn certificates_are_sound_on_the_whole_suite() {
    for stg in synthesisable() {
        let net = stg.net();
        let cert = certify_one_safe(net);
        assert_eq!(
            cert.certified,
            cert.covered.iter().all(|&c| c),
            "{}: certified flag must mean full cover",
            stg.name()
        );
        for inv in &cert.invariants {
            let tokens: usize = inv
                .iter()
                .filter(|&&p| net.initial_marking().contains(p))
                .count();
            assert!(
                tokens <= 1,
                "{}: unary invariant with {tokens} initial tokens",
                stg.name()
            );
        }
        let rg = ReachabilityGraph::explore(net, 5_000_000).expect("suite nets are safe");
        if let Some(bound) = structural_state_bound(net, &cert) {
            assert!(
                bound >= rg.len() as u128,
                "{}: structural bound {bound} below real state count {}",
                stg.name(),
                rg.len()
            );
        }
        // The typed analysis agrees with the direct net-level call.
        let analysis = analyze(&stg);
        assert_eq!(analysis.safety.certified, cert.certified, "{}", stg.name());
    }
}

/// The tentpole equivalence pin: invariant-seeded orders and
/// certificate-skipped safety checks must leave every gate equation of the
/// suite untouched, byte for byte, in all four combinations.
#[test]
fn order_seeds_and_certificate_skips_keep_equations_byte_identical() {
    for stg in synthesisable() {
        let explicit = synthesize_from_sg(&stg, &SgSynthesisOptions::default())
            .unwrap_or_else(|e| panic!("{} failed explicitly: {e}", stg.name()));
        for order_seed in [OrderSeed::SignalAdjacency, OrderSeed::PlaceInvariants] {
            for safety_certificates in [false, true] {
                let tuning = SymbolicTuning {
                    order_seed,
                    safety_certificates,
                    ..SymbolicTuning::default()
                };
                let mut sym = SymbolicSg::build(&stg, &tuning)
                    .unwrap_or_else(|e| panic!("{} failed under {order_seed:?}: {e}", stg.name()));
                let symbolic = synthesize_from_symbolic_sg(
                    &stg,
                    &mut sym,
                    &SgSynthesisOptions {
                        engine: SgEngine::Symbolic,
                        ..Default::default()
                    },
                )
                .unwrap_or_else(|e| panic!("{} failed symbolically: {e}", stg.name()));
                assert_eq!(
                    explicit.gates.len(),
                    symbolic.gates.len(),
                    "{} under {order_seed:?}/certs={safety_certificates}",
                    stg.name()
                );
                for (a, b) in symbolic.gates.iter().zip(&explicit.gates) {
                    assert_eq!(
                        a.equation(&stg),
                        b.equation(&stg),
                        "{} under {order_seed:?}/certs={safety_certificates}",
                        stg.name()
                    );
                    assert_eq!(a.inverted, b.inverted, "{}", stg.name());
                }
            }
        }
    }
}

/// The option plumbing reaches the engine: `symbolic_order_seed` on
/// [`SgSynthesisOptions`] selects the seed end to end through
/// `synthesize_from_sg`.
#[test]
fn synthesis_options_carry_the_order_seed() {
    for stg in synthesisable().into_iter().take(4) {
        let adjacency = synthesize_from_sg(
            &stg,
            &SgSynthesisOptions {
                engine: SgEngine::Symbolic,
                symbolic_order_seed: OrderSeed::SignalAdjacency,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
        let invariants = synthesize_from_sg(
            &stg,
            &SgSynthesisOptions {
                engine: SgEngine::Symbolic,
                symbolic_order_seed: OrderSeed::PlaceInvariants,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
        for (a, b) in adjacency.gates.iter().zip(&invariants.gates) {
            assert_eq!(a.equation(&stg), b.equation(&stg), "{}", stg.name());
        }
    }
}
