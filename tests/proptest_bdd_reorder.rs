//! Property-based pinning of the `si-bdd` reordering and collection
//! machinery: random BDDs are built from random cube/op sequences, then hit
//! with arbitrary level-swap / sift / gc sequences. After every mutation
//! each tracked function must be *identical* — same `sat_count`, same value
//! on random assignments, same canonical `ImplicitCover` — and the unique
//! table must satisfy its structural invariants (no duplicate
//! `(level, lo, hi)` triples, `lo != hi`, live strictly-deeper children),
//! checked by `BddManager::assert_invariants`.

use proptest::collection::vec;
use proptest::prelude::*;
use si_synth::bdd::{Bdd, BddManager};
use si_synth::cubes::implicit::{ImplicitCover, ImplicitPool};

/// One step of a random function-building program. Operand indices address
/// the result stack modulo its length.
#[derive(Debug, Clone)]
enum Op {
    Var(u8),
    NVar(u8),
    Cube(Vec<(u8, bool)>),
    And(u8, u8),
    Or(u8, u8),
    Xor(u8, u8),
    Diff(u8, u8),
    Not(u8),
    Ite(u8, u8, u8),
    Exists(u8, u8),
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        any::<u8>().prop_map(Op::Var),
        any::<u8>().prop_map(Op::NVar),
        vec((any::<u8>(), any::<bool>()), 1..5).prop_map(Op::Cube),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::And(a, b)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Or(a, b)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Xor(a, b)),
        (any::<u8>(), any::<u8>()).prop_map(|(a, b)| Op::Diff(a, b)),
        any::<u8>().prop_map(Op::Not),
        (any::<u8>(), any::<u8>(), any::<u8>()).prop_map(|(a, b, c)| Op::Ite(a, b, c)),
        (any::<u8>(), any::<u8>()).prop_map(|(f, mask)| Op::Exists(f, mask)),
    ]
}

/// One pool mutation: an adjacent level swap, a full sift, or a collection.
#[derive(Debug, Clone)]
enum Mutation {
    Swap(u8),
    Sift,
    Gc,
}

fn mutation() -> impl Strategy<Value = Mutation> {
    prop_oneof![
        any::<u8>().prop_map(Mutation::Swap),
        Just(Mutation::Sift),
        Just(Mutation::Gc),
    ]
}

/// Runs the program over a fresh manager, returning the result stack.
fn run_program(mgr: &mut BddManager, ops: &[Op]) -> Vec<Bdd> {
    let w = mgr.num_vars();
    let mut stack = vec![mgr.zero(), mgr.one()];
    let pick = |stack: &[Bdd], i: u8| stack[i as usize % stack.len()];
    for op in ops {
        let r = match op {
            Op::Var(v) => mgr.var(*v as usize % w),
            Op::NVar(v) => mgr.nvar(*v as usize % w),
            Op::Cube(lits) => {
                // First occurrence of each variable wins; later conflicting
                // literals are dropped (`cube` rejects conflicts).
                let mut chosen: Vec<(usize, bool)> = Vec::new();
                for &(v, b) in lits {
                    let v = v as usize % w;
                    if !chosen.iter().any(|&(u, _)| u == v) {
                        chosen.push((v, b));
                    }
                }
                mgr.cube(&chosen)
            }
            Op::And(a, b) => {
                let (x, y) = (pick(&stack, *a), pick(&stack, *b));
                mgr.and(x, y)
            }
            Op::Or(a, b) => {
                let (x, y) = (pick(&stack, *a), pick(&stack, *b));
                mgr.or(x, y)
            }
            Op::Xor(a, b) => {
                let (x, y) = (pick(&stack, *a), pick(&stack, *b));
                mgr.xor(x, y)
            }
            Op::Diff(a, b) => {
                let (x, y) = (pick(&stack, *a), pick(&stack, *b));
                mgr.diff(x, y)
            }
            Op::Not(a) => {
                let x = pick(&stack, *a);
                mgr.not(x)
            }
            Op::Ite(a, b, c) => {
                let (x, y, z) = (pick(&stack, *a), pick(&stack, *b), pick(&stack, *c));
                mgr.ite(x, y, z)
            }
            Op::Exists(f, mask) => {
                let x = pick(&stack, *f);
                let vars: Vec<usize> = (0..w).filter(|&v| (mask >> (v % 8)) & 1 == 1).collect();
                let q = mgr.cube_vars(&vars);
                mgr.exists(x, q)
            }
        };
        stack.push(r);
    }
    stack
}

/// Deterministic pseudo-random assignment `j` over `w` variables.
fn assignment(seed: u64, j: u64, w: usize) -> Vec<bool> {
    let x = seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add(j.wrapping_mul(0xbf58_476d_1ce4_e5b9));
    (0..w).map(|i| (x >> (i as u64 % 64)) & 1 == 1).collect()
}

/// The canonical implicit point set of `f`, in `pool` (identity map).
fn implicit_of(mgr: &BddManager, f: Bdd, pool: &mut ImplicitPool) -> ImplicitCover {
    let map: Vec<Option<usize>> = (0..mgr.num_vars()).map(Some).collect();
    mgr.to_implicit(f, pool, &map)
        .expect("identity map covers the support")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reordering_and_gc_preserve_every_function(
        w in 3usize..8,
        ops in vec(op(), 1..24),
        mutations in vec(mutation(), 1..10),
        seed in any::<u64>(),
    ) {
        let mut mgr = BddManager::new(w);
        let stack = run_program(&mut mgr, &ops);
        // Everything on the stack must survive the mutations below.
        for &f in &stack {
            mgr.protect(f);
        }
        mgr.assert_invariants();

        // Baselines: model count, point evaluations, canonical point set.
        let mut pool = ImplicitPool::new(w);
        let counts: Vec<u128> = stack.iter().map(|&f| mgr.sat_count(f)).collect();
        let evals: Vec<Vec<bool>> = stack
            .iter()
            .map(|&f| (0..16).map(|j| mgr.eval(f, &assignment(seed, j, w))).collect())
            .collect();
        let sets: Vec<ImplicitCover> = stack
            .iter()
            .map(|&f| implicit_of(&mgr, f, &mut pool))
            .collect();

        for m in &mutations {
            match m {
                Mutation::Swap(l) => mgr.swap_levels(*l as usize % (w - 1)),
                Mutation::Sift => {
                    mgr.reorder_sift(BddManager::DEFAULT_MAX_GROWTH);
                }
                Mutation::Gc => {
                    mgr.gc();
                }
            }
            mgr.assert_invariants();
            for (i, &f) in stack.iter().enumerate() {
                prop_assert!(mgr.is_live(f), "{m:?} collected a protected handle");
                prop_assert_eq!(mgr.sat_count(f), counts[i], "sat_count drifted after {:?}", m);
                for j in 0..16u64 {
                    prop_assert_eq!(
                        mgr.eval(f, &assignment(seed, j, w)),
                        evals[i][j as usize],
                        "eval drifted after {:?}", m
                    );
                }
            }
        }

        // The canonical point sets — and hence the implicit round-trip —
        // are untouched by any mutation sequence.
        for (i, &f) in stack.iter().enumerate() {
            let set = implicit_of(&mgr, f, &mut pool);
            prop_assert_eq!(set, sets[i], "implicit cover drifted");
            let map: Vec<usize> = (0..w).collect();
            let back = mgr.from_implicit(&pool, set, &map);
            prop_assert_eq!(back, f, "round-trip landed on a different function");
        }
        for &f in &stack {
            mgr.unprotect(f);
        }
    }

    #[test]
    fn kernel_thread_count_preserves_every_function(
        w in 3usize..8,
        ops in vec(op(), 1..24),
        mutations in vec(mutation(), 1..6),
        seed in any::<u64>(),
    ) {
        // The work-stealing apply is a pure wall-clock knob: the same
        // random program, run under multi-threaded managers with the
        // parallel dispatch floor forced to 0 (so even tiny diagrams take
        // the parallel path), must land on semantically identical functions
        // — same model counts, same point evaluations, same canonical
        // implicit covers — and survive the same mutation sequences. Node
        // *indices* are allocation-order-dependent and deliberately not
        // compared.
        let mut serial = BddManager::new(w);
        let stack = run_program(&mut serial, &ops);
        let mut pool = ImplicitPool::new(w);
        let counts: Vec<u128> = stack.iter().map(|&f| serial.sat_count(f)).collect();
        let evals: Vec<Vec<bool>> = stack
            .iter()
            .map(|&f| (0..16).map(|j| serial.eval(f, &assignment(seed, j, w))).collect())
            .collect();
        let sets: Vec<ImplicitCover> = stack
            .iter()
            .map(|&f| implicit_of(&serial, f, &mut pool))
            .collect();

        for threads in [2usize, 4] {
            let mut mgr = BddManager::new(w);
            mgr.set_threads(threads);
            mgr.set_parallel_floor(0);
            let threaded = run_program(&mut mgr, &ops);
            for &f in &threaded {
                mgr.protect(f);
            }
            mgr.assert_invariants();
            for (i, &f) in threaded.iter().enumerate() {
                prop_assert_eq!(
                    mgr.sat_count(f), counts[i],
                    "sat_count differs at {} threads", threads
                );
                for j in 0..16u64 {
                    prop_assert_eq!(
                        mgr.eval(f, &assignment(seed, j, w)),
                        evals[i][j as usize],
                        "eval differs at {} threads", threads
                    );
                }
                prop_assert_eq!(
                    implicit_of(&mgr, f, &mut pool), sets[i].clone(),
                    "canonical cover differs at {} threads", threads
                );
            }
            // The mutation machinery (swaps, sifting, collection) must be
            // just as function-preserving in a multi-threaded manager.
            for m in &mutations {
                match m {
                    Mutation::Swap(l) => mgr.swap_levels(*l as usize % (w - 1)),
                    Mutation::Sift => {
                        mgr.reorder_sift(BddManager::DEFAULT_MAX_GROWTH);
                    }
                    Mutation::Gc => {
                        mgr.gc();
                    }
                }
                mgr.assert_invariants();
            }
            for (i, &f) in threaded.iter().enumerate() {
                prop_assert!(mgr.is_live(f), "mutations collected a protected handle");
                prop_assert_eq!(
                    mgr.sat_count(f), counts[i],
                    "sat_count drifted after mutations at {} threads", threads
                );
                prop_assert_eq!(
                    implicit_of(&mgr, f, &mut pool), sets[i].clone(),
                    "canonical cover drifted after mutations at {} threads", threads
                );
            }
            for &f in &threaded {
                mgr.unprotect(f);
            }
        }
    }

    #[test]
    fn rebuilding_after_mutations_is_canonical(
        w in 3usize..8,
        ops in vec(op(), 1..16),
        mutations in vec(mutation(), 1..6),
    ) {
        // Hash-consing must stay canonical after swaps/sifts/collections:
        // replaying the same program in the mutated manager lands on the
        // exact same handles.
        let mut mgr = BddManager::new(w);
        let stack = run_program(&mut mgr, &ops);
        for &f in &stack {
            mgr.protect(f);
        }
        for m in &mutations {
            match m {
                Mutation::Swap(l) => mgr.swap_levels(*l as usize % (w - 1)),
                Mutation::Sift => {
                    mgr.reorder_sift(BddManager::DEFAULT_MAX_GROWTH);
                }
                Mutation::Gc => {
                    mgr.gc();
                }
            }
        }
        let replayed = run_program(&mut mgr, &ops);
        prop_assert_eq!(&stack, &replayed, "replay diverged from the original handles");
        mgr.assert_invariants();
        for &f in &stack {
            mgr.unprotect(f);
        }
    }
}
