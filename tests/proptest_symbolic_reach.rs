//! Property-based equivalence of the symbolic reachability engine against
//! explicit enumeration, over randomly sized instances of the safe
//! generator families (`muller_pipeline`, `counterflow_pipeline`,
//! `parallelizer`): the symbolic reachable-state count must equal the
//! explicit [`ReachabilityGraph`]'s, the reachable *code set* must be the
//! same point set, and SG synthesis must produce byte-identical gate
//! equations on either engine.

use proptest::prelude::*;
use si_synth::cubes::implicit::MintermList;
use si_synth::petri::ReachabilityGraph;
use si_synth::stategraph::{
    synthesize_from_sg, synthesize_from_symbolic_sg, OrderSeed, ReorderPolicy, SgEngine,
    SgSynthesisOptions, StateGraph, SymbolicSg, SymbolicTuning,
};
use si_synth::stg::generators::{
    counterflow_pipeline, muller_pipeline, parallelizer, wide_arbiter,
};
use si_synth::stg::{SignalId, Stg};

/// One random instance drawn from the four scalable families.
#[derive(Debug, Clone)]
enum Family {
    Muller(usize),
    Counterflow(usize),
    Parallelizer(usize),
    WideArbiter(usize),
}

fn family() -> impl Strategy<Value = Family> {
    prop_oneof![
        (1usize..9).prop_map(Family::Muller),
        (1usize..6).prop_map(Family::Counterflow),
        (1usize..5).prop_map(Family::Parallelizer),
        (1usize..8).prop_map(Family::WideArbiter),
    ]
}

fn build(family: &Family) -> Stg {
    match *family {
        Family::Muller(n) => muller_pipeline(n),
        Family::Counterflow(k) => counterflow_pipeline(k),
        Family::Parallelizer(n) => parallelizer(n),
        Family::WideArbiter(n) => wide_arbiter(n),
    }
}

/// A random pool tuning: every combination must leave the results alone.
/// `bdd_threads` rides along (with the parallel dispatch floor forced to 0
/// so small instances actually take the work-stealing path): the kernel
/// thread count is a pure wall-clock knob and must be invisible here too.
fn tuning() -> impl Strategy<Value = SymbolicTuning> {
    (
        0usize..3,
        0usize..3,
        1usize..3,
        0usize..2,
        0usize..2,
        0usize..3,
    )
        .prop_map(|(reorder, gc, sift, seed, certs, threads)| SymbolicTuning {
            node_budget: NODE_BUDGET,
            reorder: [ReorderPolicy::Off, ReorderPolicy::Sift, ReorderPolicy::Auto][reorder],
            gc_threshold: [0, 64, 1 << 20][gc],
            reorder_threshold: [1, 256][sift - 1],
            order_seed: [OrderSeed::SignalAdjacency, OrderSeed::PlaceInvariants][seed],
            safety_certificates: certs == 1,
            bdd_threads: [None, Some(2), Some(4)][threads],
            bdd_parallel_floor: Some(0),
        })
}

const STATE_BUDGET: usize = 2_000_000;
const NODE_BUDGET: usize = 16_000_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn symbolic_state_count_and_code_set_match_explicit(f in family()) {
        let stg = build(&f);
        let rg = ReachabilityGraph::explore(stg.net(), STATE_BUDGET).expect("safe family");
        let sg = StateGraph::build(&stg, STATE_BUDGET).expect("explicit builds");
        let sym = SymbolicSg::build(&stg, &SymbolicTuning::with_budget(NODE_BUDGET))
            .expect("symbolic builds");
        prop_assert_eq!(sym.state_count(), rg.len() as u128, "{:?}", f);

        // The reachable code set: every state is classified into exactly
        // one of On(s)/Off(s) for any signal s, so their union is the full
        // code set — compare it against the explicitly enumerated codes
        // inside one canonical pool.
        let mut sets = sym.on_off_sets(SignalId(0));
        let (on, off) = (sets.on(), sets.off());
        let pool = sets.pool_mut();
        let symbolic_codes = pool.union(on, off);
        let mut list = MintermList::new(stg.signal_count());
        for s in 0..sg.len() {
            list.push(sg.code(s).iter().map(|(_, v)| v));
        }
        let explicit_codes = pool.from_minterms(&mut list);
        prop_assert_eq!(symbolic_codes, explicit_codes, "{:?}: code sets differ", f);
    }

    #[test]
    fn engines_produce_identical_gates(f in family()) {
        let stg = build(&f);
        let explicit = synthesize_from_sg(
            &stg,
            &SgSynthesisOptions {
                state_budget: STATE_BUDGET,
                ..Default::default()
            },
        )
        .expect("explicit synthesis");
        let symbolic = synthesize_from_sg(
            &stg,
            &SgSynthesisOptions {
                engine: SgEngine::Symbolic,
                symbolic_node_budget: NODE_BUDGET,
                ..Default::default()
            },
        )
        .expect("symbolic synthesis");
        prop_assert_eq!(explicit.gates.len(), symbolic.gates.len());
        for (a, b) in symbolic.gates.iter().zip(&explicit.gates) {
            prop_assert_eq!(
                a.equation(&stg),
                b.equation(&stg),
                "{:?}: gate equations differ",
                f
            );
            prop_assert_eq!(a.inverted, b.inverted);
        }
    }

    #[test]
    fn random_pool_tunings_leave_gates_and_state_counts_alone(
        f in family(),
        t in tuning(),
    ) {
        let stg = build(&f);
        let explicit = synthesize_from_sg(
            &stg,
            &SgSynthesisOptions {
                state_budget: STATE_BUDGET,
                ..Default::default()
            },
        )
        .expect("explicit synthesis");
        let sg = StateGraph::build(&stg, STATE_BUDGET).expect("explicit builds");
        let mut sym = SymbolicSg::build(&stg, &t).expect("symbolic builds");
        prop_assert_eq!(sym.state_count(), sg.len() as u128, "{:?} under {:?}", f, t);
        let symbolic = synthesize_from_symbolic_sg(&stg, &mut sym, &SgSynthesisOptions::default())
            .expect("symbolic synthesis");
        prop_assert_eq!(explicit.gates.len(), symbolic.gates.len());
        for (a, b) in symbolic.gates.iter().zip(&explicit.gates) {
            prop_assert_eq!(
                a.equation(&stg),
                b.equation(&stg),
                "{:?} under {:?}: gate equations differ",
                f,
                t
            );
        }
    }
}
