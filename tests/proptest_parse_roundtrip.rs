//! Property-based round-trip and robustness suite for the `.g` front door:
//! `parse_g(write_g(stg))` must reproduce the STG structurally, and *no*
//! input text — however malformed — may make `parse_g` panic (every failure
//! is a structured [`StgError`]).
//!
//! Structural equality is up to place identity: the writer collapses
//! one-producer/one-consumer places into the `t1 t2` shorthand and renames
//! places with non-token names, so places are compared by their (sorted)
//! preset/postset label sets and marking, not by id or name. The generated
//! STGs keep one transition instance per (signal, polarity), which makes
//! label tokens canonical.

use proptest::prelude::*;
use si_synth::stg::{parse_g, write_g, Polarity, SignalKind, Stg, StgBuilder, StgError};

/// Blueprint for one random specification (same ring-composition family as
/// the flow proptests, plus explicit-place and initial-code variation).
#[derive(Debug, Clone)]
struct Blueprint {
    rings: Vec<usize>,
    couple: Vec<bool>,
    kind_offset: usize,
    with_initial: bool,
    merge_place: bool,
}

fn blueprint() -> impl Strategy<Value = Blueprint> {
    (
        proptest::collection::vec(1usize..4, 1..4),
        proptest::collection::vec(any::<bool>(), 3),
        0usize..3,
        any::<bool>(),
        any::<bool>(),
    )
        .prop_map(
            |(rings, couple, kind_offset, with_initial, merge_place)| Blueprint {
                rings,
                couple,
                kind_offset,
                with_initial,
                merge_place,
            },
        )
}

fn build(bp: &Blueprint) -> Stg {
    let mut b = StgBuilder::new();
    b.set_name("roundtrip");
    let mut ring_transitions = Vec::new();
    for (r, &len) in bp.rings.iter().enumerate() {
        let mut rises = Vec::new();
        let mut falls = Vec::new();
        for i in 0..len {
            let kind = match (r + i + bp.kind_offset) % 3 {
                0 => SignalKind::Input,
                1 => SignalKind::Output,
                _ => SignalKind::Internal,
            };
            let s = b.signal(format!("r{r}s{i}"), kind);
            rises.push(b.transition(s, Polarity::Rise));
            falls.push(b.transition(s, Polarity::Fall));
        }
        let mut order = rises.clone();
        order.extend(falls.iter().copied());
        for w in order.windows(2) {
            b.arc_tt(w[0], w[1]);
        }
        let back = b.arc_tt(order[order.len() - 1], order[0]);
        b.mark(back);
        ring_transitions.push((rises, falls));
    }
    for r in 0..bp.rings.len().saturating_sub(1) {
        if !bp.couple.get(r).copied().unwrap_or(false) {
            continue;
        }
        let (x_rises, x_falls) = &ring_transitions[r];
        let (y_rises, y_falls) = &ring_transitions[r + 1];
        b.arc_tt(x_rises[0], y_rises[0]);
        b.arc_tt(y_rises[0], x_falls[0]);
        b.arc_tt(x_falls[0], y_falls[0]);
        let idle = b.arc_tt(y_falls[0], x_rises[0]);
        b.mark(idle);
    }
    if bp.merge_place {
        // A multi-producer explicit place, so the writer's explicit-place
        // path is exercised (1-in/1-out places become implicit arcs).
        let merge = b.place("merge0");
        for (rises, falls) in &ring_transitions {
            b.arc_tp(falls[0], merge);
            let _ = rises;
        }
        b.arc_pt(merge, ring_transitions[0].0[0]);
    }
    if bp.with_initial {
        b.initial_all_zero();
    }
    b.build()
        .expect("blueprint yields a structurally valid STG")
}

/// Canonical structural summary: signals with kinds and initial values
/// (compared *by name*: the `.g` format groups declarations by kind, so an
/// STG with interleaved kinds legitimately reparses with permuted signal
/// ids), one entry per place (sorted preset/postset label tokens +
/// marking). Place names and ids are intentionally excluded (see module
/// docs).
type SignalSummary = (String, String, Option<bool>);

fn summary(stg: &Stg) -> (Vec<SignalSummary>, Vec<String>, String) {
    let mut signals: Vec<SignalSummary> = stg
        .signals()
        .map(|s| {
            (
                stg.signal_name(s).to_owned(),
                format!("{:?}", stg.signal_kind(s)),
                stg.initial_code().map(|c| c.get(s)),
            )
        })
        .collect();
    signals.sort();
    let net = stg.net();
    let mut places: Vec<String> = net
        .places()
        .map(|p| {
            let mut pre: Vec<String> = net
                .place_preset(p)
                .iter()
                .map(|&t| stg.transition_label_string(t))
                .collect();
            let mut post: Vec<String> = net
                .place_postset(p)
                .iter()
                .map(|&t| stg.transition_label_string(t))
                .collect();
            pre.sort();
            post.sort();
            format!(
                "pre={pre:?} post={post:?} marked={}",
                net.initial_marking().contains(p)
            )
        })
        .collect();
    places.sort();
    (signals, places, stg.name().to_owned())
}

/// A mutation to apply to valid `.g` text.
#[derive(Debug, Clone)]
enum Mutation {
    DeleteByte(usize),
    InsertChar(usize, char),
    Truncate(usize),
    DuplicateLine(usize),
}

fn mutation() -> impl Strategy<Value = Mutation> {
    let special = prop_oneof![
        Just('+'),
        Just('-'),
        Just('/'),
        Just('<'),
        Just('>'),
        Just('{'),
        Just('}'),
        Just('.'),
        Just('='),
        Just(','),
        Just(' '),
        Just('\n'),
        Just('a'),
        Just('0'),
    ];
    prop_oneof![
        (any::<u16>()).prop_map(|i| Mutation::DeleteByte(i as usize)),
        (any::<u16>(), special).prop_map(|(i, c)| Mutation::InsertChar(i as usize, c)),
        (any::<u16>()).prop_map(|i| Mutation::Truncate(i as usize)),
        (any::<u8>()).prop_map(|i| Mutation::DuplicateLine(i as usize)),
    ]
}

fn apply_mutation(text: &str, m: &Mutation) -> String {
    let mut s = text.to_owned();
    match m {
        Mutation::DeleteByte(i) => {
            if !s.is_empty() {
                let i = i % s.len();
                if s.is_char_boundary(i) {
                    s.remove(i);
                }
            }
        }
        Mutation::InsertChar(i, c) => {
            let i = i % (s.len() + 1);
            if s.is_char_boundary(i) {
                s.insert(i, *c);
            }
        }
        Mutation::Truncate(i) => {
            let i = i % (s.len() + 1);
            if s.is_char_boundary(i) {
                s.truncate(i);
            }
        }
        Mutation::DuplicateLine(i) => {
            let lines: Vec<&str> = s.lines().collect();
            if !lines.is_empty() {
                let line = lines[i % lines.len()].to_owned();
                s.push('\n');
                s.push_str(&line);
                s.push('\n');
            }
        }
    }
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn write_parse_roundtrip_preserves_structure(bp in blueprint()) {
        let stg = build(&bp);
        let text = write_g(&stg);
        let reparsed = parse_g(&text)
            .unwrap_or_else(|e| panic!("own output rejected: {e}\n{text}"));
        prop_assert_eq!(summary(&stg), summary(&reparsed), "round trip changed the STG");
        // And the round trip is a fixpoint: writing the reparsed STG and
        // parsing again changes nothing further.
        let again = parse_g(&write_g(&reparsed)).expect("second round trip");
        prop_assert_eq!(summary(&reparsed), summary(&again));
    }

    #[test]
    fn mutated_inputs_never_panic(bp in blueprint(), muts in proptest::collection::vec(mutation(), 1..5)) {
        let mut text = write_g(&build(&bp));
        for m in &muts {
            text = apply_mutation(&text, m);
            // Ok or structured Err — a panic fails the test.
            let _ = parse_g(&text);
        }
    }

    #[test]
    fn arbitrary_token_soup_never_panics(
        tokens in proptest::collection::vec(
            prop_oneof![
                Just(".model"), Just(".inputs"), Just(".outputs"), Just(".internal"),
                Just(".dummy"), Just(".graph"), Just(".marking"), Just(".initial"),
                Just(".end"), Just("a"), Just("b"), Just("a+"), Just("b-"), Just("a+/2"),
                Just("a+/"), Just("p0"), Just("{"), Just("}"), Just("<a+,b->"), Just("<"),
                Just(">"), Just("="), Just("a=1"), Just("a=2"), Just("#"), Just("\n"),
            ],
            0..40,
        )
    ) {
        let text = tokens.join(" ");
        let _ = parse_g(&text);
    }
}

/// The hardened parser must reject every malformed fixture with a
/// structured error — and the error kinds must be stable.
#[test]
fn malformed_fixture_catalogue() {
    type ErrorCheck = fn(&StgError) -> bool;
    let cases: &[(&str, ErrorCheck)] = &[
        ("", |e| matches!(e, StgError::Parse { .. })), // missing .marking
        (".inputs a a\n.marking { }\n", |e| {
            matches!(e, StgError::DuplicateSignal { .. })
        }),
        (".inputs a\n.graph\na+ z-\n.marking { }\n", |e| {
            matches!(e, StgError::UnknownSignal { .. })
        }),
        (".inputs a\n.graph\na+ a-/x\n.marking { }\n", |e| {
            matches!(e, StgError::Parse { .. })
        }),
        (".inputs a\n.graph\np0 p1\n.marking { p0 }\n", |e| {
            matches!(e, StgError::Parse { .. })
        }),
        (".inputs a\n.graph\na+ a-\n.marking { <a+ }\n", |e| {
            matches!(e, StgError::Parse { .. })
        }),
        (".inputs a\n.graph\na+ a-\n.marking { <a+a-> }\n", |e| {
            matches!(e, StgError::Parse { .. })
        }),
        (
            ".inputs a\n.graph\na+ a-\na- a+\n.marking { <a-,a+> }\n.initial { b=1 }\n",
            |e| matches!(e, StgError::UnknownSignal { .. }),
        ),
    ];
    for (text, check) in cases {
        match parse_g(text) {
            Err(e) => assert!(check(&e), "unexpected error kind for {text:?}: {e}"),
            Ok(_) => panic!("malformed input accepted: {text:?}"),
        }
    }
}
