//! The linter never panics: any byte soup either parses leniently and
//! yields a report, or fails with a structured `StgError` — never a panic.
//! Inputs are random mutations of real specs plus raw token soup, the same
//! adversarial-input idiom as the parser round-trip suite.

use proptest::prelude::*;
use si_synth::stg::analysis::lint_text;
use si_synth::stg::{generators::muller_pipeline, suite::vme_read_csc, write_g};

/// Mutations applied to a valid `.g` text: deletions, duplications and
/// splices move structure around without caring about syntax.
fn mutate(text: &str, ops: &[(usize, u8)]) -> String {
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    for &(pos, op) in ops {
        if lines.is_empty() {
            break;
        }
        let i = pos % lines.len();
        match op % 4 {
            0 => {
                lines.remove(i);
            }
            1 => lines.insert(i, lines[i].clone()),
            2 => {
                let j = (pos / 7) % lines.len();
                lines.swap(i, j);
            }
            _ => {
                let line = lines[i].clone();
                let cut = (pos / 3) % (line.len() + 1);
                lines[i] = line[..cut].to_owned();
            }
        }
    }
    lines.join("\n")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn mutated_specs_never_panic_the_linter(
        base in 0usize..2,
        ops in proptest::collection::vec((0usize..1000, 0u8..8), 0..12),
    ) {
        let text = match base {
            0 => write_g(&vme_read_csc()),
            _ => write_g(&muller_pipeline(4)),
        };
        let mutated = mutate(&text, &ops);
        // Either outcome is fine; reaching it without a panic is the test.
        let _ = lint_text(&mutated);
    }

    #[test]
    fn token_soup_never_panics_the_linter(
        chars in proptest::collection::vec(0usize..ALPHABET.len(), 0..300),
    ) {
        let s: String = chars.iter().map(|&i| ALPHABET[i]).collect();
        let _ = lint_text(&s);
    }
}

/// Characters that occur in (and around) the `.g` grammar — enough to make
/// random soup hit every parser branch.
const ALPHABET: &[char] = &[
    ' ', '.', 'a', 'b', 'g', 'm', 'r', 'k', 'i', 'n', 'p', 'u', 't', 's', 'd', 'e', '+', '-', '/',
    '0', '1', '9', '{', '}', '<', '>', ',', '=', '\n', '#',
];
