//! The linter never panics: any byte soup either parses leniently and
//! yields a report, or fails with a structured `StgError` — never a panic.
//! Inputs are random mutations of real specs plus raw token soup, the same
//! adversarial-input idiom as the parser round-trip suite.

use proptest::prelude::*;
use si_synth::stg::analysis::lint_text;
use si_synth::stg::{generators::muller_pipeline, suite::vme_read_csc, write_g};

/// Mutations applied to a valid `.g` text: deletions, duplications and
/// splices move structure around without caring about syntax.
fn mutate(text: &str, ops: &[(usize, u8)]) -> String {
    let mut lines: Vec<String> = text.lines().map(str::to_owned).collect();
    for &(pos, op) in ops {
        if lines.is_empty() {
            break;
        }
        let i = pos % lines.len();
        match op % 4 {
            0 => {
                lines.remove(i);
            }
            1 => lines.insert(i, lines[i].clone()),
            2 => {
                let j = (pos / 7) % lines.len();
                lines.swap(i, j);
            }
            _ => {
                let line = lines[i].clone();
                let cut = (pos / 3) % (line.len() + 1);
                lines[i] = line[..cut].to_owned();
            }
        }
    }
    lines.join("\n")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn mutated_specs_never_panic_the_linter(
        base in 0usize..2,
        ops in proptest::collection::vec((0usize..1000, 0u8..8), 0..12),
    ) {
        let text = match base {
            0 => write_g(&vme_read_csc()),
            _ => write_g(&muller_pipeline(4)),
        };
        let mutated = mutate(&text, &ops);
        // Either outcome is fine; reaching it without a panic is the test.
        let _ = lint_text(&mutated);
    }

    #[test]
    fn token_soup_never_panics_the_linter(
        chars in proptest::collection::vec(0usize..ALPHABET.len(), 0..300),
    ) {
        let s: String = chars.iter().map(|&i| ALPHABET[i]).collect();
        let _ = lint_text(&s);
    }

    #[test]
    fn trap_and_siphon_enumeration_never_panics(
        places in 1usize..7,
        transitions in 1usize..7,
        arcs in proptest::collection::vec((0usize..64, 0usize..64, any::<bool>()), 0..20),
        within in proptest::collection::vec(0usize..64, 0..6),
        budget in 0usize..64,
    ) {
        use si_synth::petri::structural::{max_trap_within, minimal_siphons};
        use si_synth::petri::{PetriNet, PlaceId, TransitionId};
        let mut net = PetriNet::new();
        let ps: Vec<PlaceId> = (0..places).map(|i| net.add_place(format!("p{i}"))).collect();
        let ts: Vec<TransitionId> = (0..transitions)
            .map(|i| net.add_transition(format!("t{i}")))
            .collect();
        let mut seen = std::collections::HashSet::new();
        for &(p, t, pt) in &arcs {
            let (p, t) = (p % places, t % transitions);
            if seen.insert((p, t, pt)) {
                if pt {
                    net.add_arc_pt(ps[p], ts[t]);
                } else {
                    net.add_arc_tp(ts[t], ps[p]);
                }
            }
        }
        // Arbitrary nets, arbitrary (even zero) budgets, arbitrary trap
        // scopes: enumeration may give up (`None`) but must never panic.
        let _ = minimal_siphons(&net, budget);
        let mut scope: Vec<PlaceId> = within.iter().map(|&i| ps[i % places]).collect();
        scope.sort();
        scope.dedup();
        let _ = max_trap_within(&net, &scope);
    }
}

/// Characters that occur in (and around) the `.g` grammar — enough to make
/// random soup hit every parser branch.
const ALPHABET: &[char] = &[
    ' ', '.', 'a', 'b', 'g', 'm', 'r', 'k', 'i', 'n', 'p', 'u', 't', 's', 'd', 'e', '+', '-', '/',
    '0', '1', '9', '{', '}', '<', '>', ',', '=', '\n', '#',
];
