//! Property-based tests for the cube/cover algebra and the Espresso-style
//! minimiser: the algebra must agree with brute-force truth-table
//! evaluation on every operation, and minimisation must preserve the
//! on/off contract while never increasing cost.

use proptest::prelude::*;
use si_synth::cubes::{minimize, Cover, Cube, Literal};

/// Strategy: a random cube over `width` variables as a `{0,1,-}` string.
fn cube_strategy(width: usize) -> impl Strategy<Value = Cube> {
    proptest::collection::vec(prop_oneof![Just('0'), Just('1'), Just('-')], width)
        .prop_map(|chars| Cube::from_str_cube(&chars.into_iter().collect::<String>()))
}

/// Strategy: a random cover of up to `max_cubes` cubes.
fn cover_strategy(width: usize, max_cubes: usize) -> impl Strategy<Value = Cover> {
    proptest::collection::vec(cube_strategy(width), 0..=max_cubes)
        .prop_map(|cubes| cubes.into_iter().collect())
}

/// All assignments over `width ≤ 12` variables.
fn assignments(width: usize) -> impl Iterator<Item = Vec<bool>> {
    (0..(1u32 << width)).map(move |x| (0..width).map(|i| (x >> i) & 1 == 1).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn cube_intersection_agrees_with_pointwise_and(a in cube_strategy(6), b in cube_strategy(6)) {
        let i = a.intersect(&b);
        for bits in assignments(6) {
            let expected = a.covers_bits(&bits) && b.covers_bits(&bits);
            let got = i.as_ref().map(|c| c.covers_bits(&bits)).unwrap_or(false);
            prop_assert_eq!(expected, got, "at {:?}", bits);
        }
    }

    #[test]
    fn cube_containment_agrees_with_pointwise_subset(a in cube_strategy(6), b in cube_strategy(6)) {
        let contains = a.contains(&b);
        let pointwise = assignments(6).all(|bits| !b.covers_bits(&bits) || a.covers_bits(&bits));
        prop_assert_eq!(contains, pointwise);
    }

    #[test]
    fn supercube_is_smallest_common_superset(a in cube_strategy(6), b in cube_strategy(6)) {
        let s = a.supercube(&b);
        prop_assert!(s.contains(&a));
        prop_assert!(s.contains(&b));
        // Minimality: fixing any free variable of `s` to either value must
        // exclude a point of `a` or `b`.
        for v in 0..6 {
            if s.get(v) == Literal::DontCare {
                for lit in [Literal::Zero, Literal::One] {
                    let mut tight = s.clone();
                    tight.set(v, lit);
                    if tight.contains(&a) && tight.contains(&b) {
                        // Only allowed when the other polarity also works
                        // (i.e. the variable genuinely doesn't matter) —
                        // which cannot happen for a supercube of two cubes
                        // unless both are empty of that variable, in which
                        // case tightening both ways works; rule that out:
                        let mut other = s.clone();
                        other.set(v, if lit == Literal::Zero { Literal::One } else { Literal::Zero });
                        prop_assert!(
                            !(other.contains(&a) && other.contains(&b)),
                            "supercube not minimal in var {v}"
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn cover_tautology_agrees_with_exhaustive(f in cover_strategy(5, 6)) {
        let tautology = f.is_tautology();
        let exhaustive = assignments(5).all(|bits| f.covers_bits(&bits));
        prop_assert_eq!(tautology, exhaustive);
    }

    #[test]
    fn covers_cube_agrees_with_exhaustive(f in cover_strategy(5, 5), c in cube_strategy(5)) {
        let covered = f.covers_cube(&c);
        let exhaustive = assignments(5).all(|bits| !c.covers_bits(&bits) || f.covers_bits(&bits));
        prop_assert_eq!(covered, exhaustive);
    }

    #[test]
    fn cover_intersect_agrees_with_pointwise(f in cover_strategy(5, 4), g in cover_strategy(5, 4)) {
        let x = f.intersect(&g);
        for bits in assignments(5) {
            prop_assert_eq!(
                x.covers_bits(&bits),
                f.covers_bits(&bits) && g.covers_bits(&bits)
            );
        }
        prop_assert_eq!(f.intersects(&g), !x.is_empty());
    }

    #[test]
    fn minimize_contract_on_random_partitions(seed in any::<u64>()) {
        // Deterministically split the 6-variable space into on/off/dc
        // minterms from the seed.
        let width = 6usize;
        let mut on = Cover::empty(width);
        let mut off = Cover::empty(width);
        for (i, bits) in assignments(width).enumerate() {
            match (seed >> (i % 60)) & 0b11 {
                0 => on.push(Cube::minterm(bits)),
                1 => off.push(Cube::minterm(bits)),
                _ => {} // don't care
            }
        }
        let min = minimize(&on, &off);
        for bits in assignments(width) {
            if on.covers_bits(&bits) {
                prop_assert!(min.covers_bits(&bits), "lost on-point {:?}", bits);
            }
            if off.covers_bits(&bits) {
                prop_assert!(!min.covers_bits(&bits), "hit off-point {:?}", bits);
            }
        }
        prop_assert!(min.len() <= on.len().max(1));
        prop_assert!(min.literal_count() <= on.literal_count().max(1));
    }

    #[test]
    fn minimize_is_idempotent(seed in any::<u64>()) {
        let width = 5usize;
        let mut on = Cover::empty(width);
        let mut off = Cover::empty(width);
        for (i, bits) in assignments(width).enumerate() {
            match (seed >> (i % 60)) & 0b11 {
                0 => on.push(Cube::minterm(bits)),
                1 => off.push(Cube::minterm(bits)),
                _ => {}
            }
        }
        let once = minimize(&on, &off);
        if once.is_empty() {
            return Ok(());
        }
        let twice = minimize(&once, &off);
        prop_assert!(twice.len() <= once.len());
        prop_assert!(twice.literal_count() <= once.literal_count());
    }
}
