//! End-to-end integration tests across the workspace: the unfolding-based
//! flow must agree with the SG-based baseline on every benchmark — same
//! implementability verdict, functionally identical gates.

use si_synth::stategraph::{
    check_csc, check_persistency, synthesize_from_sg, SgError, SgSynthesisOptions, StateGraph,
};
use si_synth::stg::suite::{synthesisable, vme_read_no_csc};
use si_synth::stg::{generators, Stg};
use si_synth::synthesis::{
    synthesize_from_unfolding, verify_against_sg, CoverMode, SynthesisError, SynthesisOptions,
};
use si_synth::unfolding::{StgUnfolding, UnfoldingOptions};

const SG_BUDGET: usize = 2_000_000;

fn exact() -> SynthesisOptions {
    SynthesisOptions {
        mode: CoverMode::Exact,
        ..SynthesisOptions::default()
    }
}

#[test]
fn every_suite_entry_passes_all_general_correctness_criteria() {
    for stg in synthesisable() {
        let unf = StgUnfolding::build(&stg, &UnfoldingOptions::default())
            .unwrap_or_else(|e| panic!("{}: unfolding failed: {e}", stg.name()));
        let sg = StateGraph::build(&stg, SG_BUDGET)
            .unwrap_or_else(|e| panic!("{}: SG failed: {e}", stg.name()));
        assert!(
            check_persistency(&stg, &sg).is_empty(),
            "{}: not semi-modular",
            stg.name()
        );
        assert!(
            check_csc(&stg, &sg).is_empty(),
            "{}: CSC conflicts",
            stg.name()
        );
        // Cross-check: the segment's initial code matches the SG's.
        assert_eq!(
            unf.initial_code().to_string(),
            sg.initial_code().to_string(),
            "{}: initial codes disagree",
            stg.name()
        );
    }
}

#[test]
fn unfolding_codes_match_state_graph_codes() {
    // Every event's local-configuration code must equal the code the SG
    // assigns to the event's final marking — the segment is an implicit,
    // code-correct representation of the SG.
    for stg in synthesisable() {
        let unf = StgUnfolding::build(&stg, &UnfoldingOptions::default())
            .unwrap_or_else(|e| panic!("{}: unfolding failed: {e}", stg.name()));
        let sg = StateGraph::build(&stg, SG_BUDGET)
            .unwrap_or_else(|e| panic!("{}: SG failed: {e}", stg.name()));
        for e in unf.events() {
            let marking = unf.final_marking(e);
            let state = sg
                .reachability()
                .state_of(marking)
                .unwrap_or_else(|| panic!("{}: unreachable final marking", stg.name()));
            assert_eq!(
                unf.code(e).to_string(),
                sg.code(state).to_string(),
                "{}: code mismatch at {}",
                stg.name(),
                e
            );
        }
    }
}

#[test]
fn three_flows_implement_the_same_functions() {
    for stg in synthesisable() {
        let approx = synthesize_from_unfolding(&stg, &SynthesisOptions::default())
            .unwrap_or_else(|e| panic!("{}: approx failed: {e}", stg.name()));
        let exact_result = synthesize_from_unfolding(&stg, &exact())
            .unwrap_or_else(|e| panic!("{}: exact failed: {e}", stg.name()));
        let baseline = synthesize_from_sg(&stg, &SgSynthesisOptions::default())
            .unwrap_or_else(|e| panic!("{}: baseline failed: {e}", stg.name()));

        // All three must compute the implied-value function on every
        // reachable state; compare them pointwise through the SG.
        let sg = StateGraph::build(&stg, SG_BUDGET).expect("oracle");
        verify_against_sg(&stg, &approx, SG_BUDGET)
            .unwrap_or_else(|e| panic!("{}: approx wrong: {e}", stg.name()));
        verify_against_sg(&stg, &exact_result, SG_BUDGET)
            .unwrap_or_else(|e| panic!("{}: exact wrong: {e}", stg.name()));
        for s in 0..sg.len() {
            let bits: Vec<bool> = sg.code(s).iter().map(|(_, v)| v).collect();
            for (g_unf, g_sg) in approx.gates.iter().zip(&baseline.gates) {
                assert_eq!(g_unf.signal, g_sg.signal);
                assert_eq!(
                    g_unf.gate.covers_bits(&bits),
                    g_sg.cover.covers_bits(&bits),
                    "{}: flows disagree at {}",
                    stg.name(),
                    sg.code(s)
                );
            }
        }
    }
}

#[test]
fn implicit_covers_are_byte_identical_to_explicit_minterms_across_the_suite() {
    // The tentpole acceptance criterion: the implicit-cover SG baseline
    // must produce gate equations byte-identical to the explicit-minterm
    // path on the full suite plus the scalable generators.
    let mut specs = synthesisable();
    specs.push(generators::muller_pipeline(8));
    specs.push(generators::counterflow_pipeline(3));
    specs.push(generators::parallelizer(3));
    specs.push(generators::independent_cycles(8));
    specs.push(generators::sequencer(9));
    for stg in specs {
        let implicit = synthesize_from_sg(&stg, &SgSynthesisOptions::default())
            .unwrap_or_else(|e| panic!("{}: implicit failed: {e}", stg.name()));
        let explicit = synthesize_from_sg(
            &stg,
            &SgSynthesisOptions {
                implicit_covers: false,
                ..SgSynthesisOptions::default()
            },
        )
        .unwrap_or_else(|e| panic!("{}: explicit failed: {e}", stg.name()));
        assert_eq!(implicit.gates.len(), explicit.gates.len());
        for (a, b) in implicit.gates.iter().zip(&explicit.gates) {
            assert_eq!(
                a.equation(&stg),
                b.equation(&stg),
                "{}: implicit and explicit covers disagree",
                stg.name()
            );
        }
    }
}

#[test]
fn csc_verdicts_agree_between_flows() {
    let stg = vme_read_no_csc();
    let unf_err = synthesize_from_unfolding(&stg, &SynthesisOptions::default()).unwrap_err();
    assert!(matches!(unf_err, SynthesisError::CscViolation { .. }));
    let sg_err = synthesize_from_sg(&stg, &SgSynthesisOptions::default()).unwrap_err();
    assert!(matches!(sg_err, SgError::CscViolation { .. }));
    // Both name the same (first) offending signal class; at minimum both
    // must blame an output of the controller.
    let unf_sig = match unf_err {
        SynthesisError::CscViolation { signal, .. } => signal,
        _ => unreachable!(),
    };
    let outputs = ["lds", "d", "dtack"];
    assert!(outputs.contains(&unf_sig.as_str()));
}

#[test]
fn literal_counts_of_unfolding_flow_match_baseline_on_suite() {
    // The paper's Table 1 shape: the unfolding flow's literal counts are
    // equal to the SG-exact baseline on most benchmarks and bounded-worse
    // on the rest (the stronger correctness condition partitions the
    // DC-set — §5 of the paper; the counterflow pipelines concentrate
    // that cost because their off-set approximations block Espresso
    // expansion into unreachable codes).
    let mut exact_matches = 0usize;
    let mut rows = 0usize;
    for stg in synthesisable() {
        let approx = synthesize_from_unfolding(&stg, &SynthesisOptions::default())
            .unwrap_or_else(|e| panic!("{}: approx failed: {e}", stg.name()));
        let baseline =
            synthesize_from_sg(&stg, &SgSynthesisOptions::default()).expect("baseline ok");
        rows += 1;
        if approx.literal_count() == baseline.literal_count() {
            exact_matches += 1;
        }
        assert!(
            approx.literal_count() <= 4 * baseline.literal_count(),
            "{}: approximation cost out of bounds: {} vs {}",
            stg.name(),
            approx.literal_count(),
            baseline.literal_count()
        );
        // The baseline never loses to the approximate flow (it sees the
        // full DC-set).
        assert!(baseline.literal_count() <= approx.literal_count());
    }
    assert!(
        exact_matches * 10 >= rows * 8,
        "too few exact literal matches: {exact_matches}/{rows}"
    );
}

#[test]
fn exact_mode_recovers_literal_parity_on_counterflow() {
    // Where the approximation pays literals (counterflow), the paper's
    // exact mode restores parity with the SG baseline.
    let stg = generators::counterflow_pipeline(2);
    let exact_result = synthesize_from_unfolding(&stg, &exact()).expect("exact ok");
    let baseline = synthesize_from_sg(&stg, &SgSynthesisOptions::default()).expect("baseline ok");
    assert_eq!(exact_result.literal_count(), baseline.literal_count());
}

#[test]
fn segment_stays_small_where_sg_explodes() {
    // independent_cycles(16): 65536 states, but the segment is linear.
    let stg = generators::independent_cycles(16);
    let unf = StgUnfolding::build(&stg, &UnfoldingOptions::default()).expect("unfolds");
    assert!(unf.event_count() <= 33);
    // And the approximate flow synthesises it without enumerating states.
    let result =
        synthesize_from_unfolding(&stg, &SynthesisOptions::default()).expect("synthesises");
    // Each loop is a self-oscillator: q = q' (an inverter), 1 literal each.
    assert_eq!(result.literal_count(), 16);
}

#[test]
fn pipelines_of_growing_depth_synthesise_and_verify() {
    for n in [1, 2, 5, 7] {
        let stg = generators::muller_pipeline(n);
        let result = synthesize_from_unfolding(&stg, &SynthesisOptions::default())
            .unwrap_or_else(|e| panic!("pipeline {n} failed: {e}"));
        verify_against_sg(&stg, &result, SG_BUDGET)
            .unwrap_or_else(|e| panic!("pipeline {n} wrong: {e}"));
        // C-element per stage: next(c) = r c2' + c (r + c2') — 5-ish
        // literals after minimisation, never more than 8 per stage.
        for gate in &result.gates {
            assert!(
                gate.literal_count() <= 8,
                "pipeline {n}: oversized gate {}",
                gate.equation(&stg)
            );
        }
    }
}

#[test]
fn counterflow_pipeline_synthesises_and_verifies_small() {
    for k in [1, 2, 3] {
        let stg = generators::counterflow_pipeline(k);
        let result = synthesize_from_unfolding(&stg, &SynthesisOptions::default())
            .unwrap_or_else(|e| panic!("counterflow {k} failed: {e}"));
        verify_against_sg(&stg, &result, SG_BUDGET)
            .unwrap_or_else(|e| panic!("counterflow {k} wrong: {e}"));
    }
}

#[test]
fn exact_mode_matches_paper_worked_example_end_to_end() {
    let stg = si_synth::stg::suite::paper_fig1();
    let result = synthesize_from_unfolding(&stg, &exact()).expect("ok");
    let gate = &result.gates[0];
    assert_eq!(gate.equation(&stg), "b = a + c");
    // The off-set cover is a̅c̅ (two codes 000 and 010).
    let names: Vec<&str> = stg.signals().map(|s| stg.signal_name(s)).collect();
    let off = si_synth::cubes::minimize(&gate.off_cover, &gate.on_cover);
    assert_eq!(off.to_expression_string(&names), "a' c'");
}

/// Regression: a spec whose slice is truncated by a cutoff must not leak
/// the re-enabled opposite instance's states into the wrong set.
#[test]
fn cutoff_truncated_slices_classify_states_correctly() {
    let stg = si_synth::stg::suite::paper_fig4ab();
    for options in [SynthesisOptions::default(), exact()] {
        let result = synthesize_from_unfolding(&stg, &options).expect("ok");
        verify_against_sg(&stg, &result, SG_BUDGET).expect("verified");
    }
    let _unused: Option<Stg> = None;
}
