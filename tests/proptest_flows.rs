//! Property-based tests over *randomly generated* STG families: for every
//! generated specification, the unfolding segment must agree with the state
//! graph, and whenever synthesis succeeds the result must verify against
//! the SG oracle.
//!
//! The generator composes independent sequencer rings (each trivially
//! consistent and 1-safe) and optionally couples adjacent rings with the
//! four-phase Muller-pair pattern — producing a rich variety of concurrency
//! and synchronisation structures that are consistent and safe by
//! construction.

use proptest::prelude::*;
use si_synth::stategraph::StateGraph;
use si_synth::stg::{Polarity, SignalKind, Stg, StgBuilder};
use si_synth::synthesis::{
    synthesize_from_unfolding, verify_against_sg, CoverMode, SynthesisError, SynthesisOptions,
};
use si_synth::unfolding::{StgUnfolding, UnfoldingOptions};

/// Blueprint for one random specification.
#[derive(Debug, Clone)]
struct Blueprint {
    /// Signals per ring (each ≥ 1); number of rings = `rings.len()`.
    rings: Vec<usize>,
    /// Couple ring `i` with ring `i+1` via a Muller-pair cycle on their
    /// first signals.
    couple: Vec<bool>,
    /// Alternate input/output kinds with this offset.
    kind_offset: usize,
}

fn blueprint() -> impl Strategy<Value = Blueprint> {
    (
        proptest::collection::vec(1usize..4, 1..4),
        proptest::collection::vec(any::<bool>(), 3),
        0usize..2,
    )
        .prop_map(|(rings, couple, kind_offset)| Blueprint {
            rings,
            couple,
            kind_offset,
        })
}

/// Materialises a blueprint into an STG.
fn build(bp: &Blueprint) -> Stg {
    let mut b = StgBuilder::new();
    b.set_name("random-rings");
    let mut ring_transitions = Vec::new();
    for (r, &len) in bp.rings.iter().enumerate() {
        let mut rises = Vec::new();
        let mut falls = Vec::new();
        for i in 0..len {
            let kind = if (r + i + bp.kind_offset).is_multiple_of(2) {
                SignalKind::Input
            } else {
                SignalKind::Output
            };
            let s = b.signal(format!("r{r}s{i}"), kind);
            rises.push(b.transition(s, Polarity::Rise));
            falls.push(b.transition(s, Polarity::Fall));
        }
        // The ring: s0+ … s(n-1)+ s0- … s(n-1)- repeated.
        let mut order = rises.clone();
        order.extend(falls.iter().copied());
        for w in order.windows(2) {
            b.arc_tt(w[0], w[1]);
        }
        let back = b.arc_tt(order[order.len() - 1], order[0]);
        b.mark(back);
        ring_transitions.push((rises, falls));
    }
    // Optional Muller-pair couplings between adjacent rings' first signals:
    // x+ → y+ → x- → y- → x+ (last place marked).
    for r in 0..bp.rings.len().saturating_sub(1) {
        if !bp.couple.get(r).copied().unwrap_or(false) {
            continue;
        }
        let (x_rises, x_falls) = &ring_transitions[r];
        let (y_rises, y_falls) = &ring_transitions[r + 1];
        b.arc_tt(x_rises[0], y_rises[0]);
        b.arc_tt(y_rises[0], x_falls[0]);
        b.arc_tt(x_falls[0], y_falls[0]);
        let idle = b.arc_tt(y_falls[0], x_rises[0]);
        b.mark(idle);
    }
    b.initial_all_zero();
    b.build()
        .expect("blueprint yields a structurally valid STG")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn segment_agrees_with_state_graph(bp in blueprint()) {
        let stg = build(&bp);
        let unf = StgUnfolding::build(&stg, &UnfoldingOptions::default())
            .expect("by-construction consistent and safe");
        let sg = StateGraph::build(&stg, 1_000_000).expect("small enough");
        // Initial codes agree.
        prop_assert_eq!(unf.initial_code().to_string(), sg.initial_code().to_string());
        // Every event's final marking is reachable with the same code.
        for e in unf.events() {
            let state = sg.reachability().state_of(unf.final_marking(e));
            prop_assert!(state.is_some(), "unreachable final marking of {}", e);
            prop_assert_eq!(
                unf.code(e).to_string(),
                sg.code(state.expect("checked")).to_string()
            );
        }
        // The segment never has more events than twice the number of
        // transitions times the ring count bound (a loose linearity check
        // that guards against runaway unfolding on these loop compositions).
        prop_assert!(unf.event_count() <= 4 * stg.net().transition_count() + 1);
    }

    #[test]
    fn synthesis_verifies_or_reports_csc(bp in blueprint()) {
        let stg = build(&bp);
        for mode in [CoverMode::Approximate, CoverMode::Exact] {
            let options = SynthesisOptions { mode, ..SynthesisOptions::default() };
            match synthesize_from_unfolding(&stg, &options) {
                Ok(result) => {
                    verify_against_sg(&stg, &result, 1_000_000)
                        .expect("synthesised circuits must verify");
                }
                Err(SynthesisError::CscViolation { .. }) => {
                    // Acceptable outcome: the random composition produced a
                    // coding conflict. The SG-based flow must agree.
                    let sg_flow = si_synth::stategraph::synthesize_from_sg(
                        &stg,
                        &si_synth::stategraph::SgSynthesisOptions::default(),
                    );
                    prop_assert!(
                        matches!(sg_flow, Err(si_synth::stategraph::SgError::CscViolation { .. })),
                        "unfolding flow reported CSC but the SG flow disagrees"
                    );
                }
                Err(other) => {
                    return Err(TestCaseError::fail(format!("unexpected error: {other}")));
                }
            }
        }
    }

    #[test]
    fn representation_and_workers_never_change_the_output(bp in blueprint()) {
        // The cover representation (implicit diagrams vs explicit cube
        // lists) and the worker count are pure performance knobs: every
        // combination must produce byte-identical equations — or the same
        // structured error — as the sequential explicit baseline.
        let stg = build(&bp);
        for mode in [CoverMode::Approximate, CoverMode::Exact] {
            let baseline = synthesize_from_unfolding(&stg, &SynthesisOptions {
                mode,
                workers: Some(1),
                implicit_covers: false,
                ..SynthesisOptions::default()
            });
            for implicit_covers in [false, true] {
                for workers in [Some(1), Some(4)] {
                    let other = synthesize_from_unfolding(&stg, &SynthesisOptions {
                        mode,
                        workers,
                        implicit_covers,
                        ..SynthesisOptions::default()
                    });
                    match (&baseline, &other) {
                        (Ok(a), Ok(b)) => {
                            let eq = |r: &si_synth::synthesis::UnfoldingSynthesis| -> Vec<String> {
                                r.gates.iter().map(|g| g.equation(&stg)).collect()
                            };
                            prop_assert_eq!(
                                eq(a), eq(b),
                                "implicit={} workers={:?} changed the equations",
                                implicit_covers, workers
                            );
                        }
                        (Err(a), Err(b)) => prop_assert_eq!(
                            std::mem::discriminant(a), std::mem::discriminant(b),
                            "implicit={} workers={:?} changed the error: {a} vs {b}",
                            implicit_covers, workers
                        ),
                        (a, b) => {
                            return Err(TestCaseError::fail(format!(
                                "implicit={implicit_covers} workers={workers:?}: \
                                 baseline={:?} other={:?}",
                                a.as_ref().map(|r| r.literal_count()),
                                b.as_ref().map(|r| r.literal_count())
                            )));
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn cutoff_pruning_never_changes_the_segment(
        bp in blueprint(),
        workers_idx in 0usize..3,
    ) {
        // The T-invariant cutoff-lookup pruning must be invisible: the
        // segment with pruning on — at any worker count — is byte-identical
        // to the unpruned sequential build on every random composition.
        let stg = build(&bp);
        let workers = [Some(1), Some(2), None][workers_idx];
        let unpruned = StgUnfolding::build(&stg, &UnfoldingOptions {
            prune_non_repeatable: false,
            workers: Some(1),
            ..UnfoldingOptions::default()
        })
        .expect("by-construction consistent and safe");
        let pruned = StgUnfolding::build(&stg, &UnfoldingOptions {
            prune_non_repeatable: true,
            workers,
            ..UnfoldingOptions::default()
        })
        .expect("by-construction consistent and safe");
        prop_assert_eq!(unpruned.event_count(), pruned.event_count());
        for (a, b) in unpruned.events().zip(pruned.events()) {
            prop_assert_eq!(unpruned.transition(a), pruned.transition(b));
            prop_assert_eq!(unpruned.preset(a), pruned.preset(b));
            prop_assert_eq!(unpruned.is_cutoff(a), pruned.is_cutoff(b));
            prop_assert_eq!(unpruned.code(a), pruned.code(b));
        }
    }

    #[test]
    fn both_flows_verify_through_the_unified_surface(bp in blueprint()) {
        // The FlowEngine trait erases the flow; whatever either flow
        // produces on a random net must pass the shared oracle, and a CSC
        // conflict must be reported by both flows or neither.
        use si_synth::synthesis::{FlowEngine, FlowError, SgFlow, UnfoldingFlow};
        let stg = build(&bp);
        let flows: [Box<dyn FlowEngine>; 2] =
            [Box::new(SgFlow::default()), Box::new(UnfoldingFlow::default())];
        let mut csc = [false, false];
        for (i, flow) in flows.iter().enumerate() {
            match flow.synthesize(&stg) {
                Ok(result) => {
                    flow.verify(&stg, &result, 1_000_000, si_synth::stategraph::SgEngine::Explicit)
                        .expect("synthesised circuits must verify");
                }
                Err(FlowError::Sg(si_synth::stategraph::SgError::CscViolation { .. }))
                | Err(FlowError::Unfolding(SynthesisError::CscViolation { .. })) => csc[i] = true,
                Err(other) => {
                    return Err(TestCaseError::fail(format!("unexpected error: {other}")));
                }
            }
        }
        prop_assert_eq!(csc[0], csc[1], "flows disagree on the CSC verdict");
    }

    #[test]
    fn exact_and_approximate_modes_agree_pointwise(bp in blueprint()) {
        let stg = build(&bp);
        let approx = synthesize_from_unfolding(&stg, &SynthesisOptions::default());
        let exact = synthesize_from_unfolding(
            &stg,
            &SynthesisOptions { mode: CoverMode::Exact, ..SynthesisOptions::default() },
        );
        match (approx, exact) {
            (Ok(a), Ok(e)) => {
                let sg = StateGraph::build(&stg, 1_000_000).expect("oracle");
                for s in 0..sg.len() {
                    let bits: Vec<bool> = sg.code(s).iter().map(|(_, v)| v).collect();
                    for (ga, ge) in a.gates.iter().zip(&e.gates) {
                        prop_assert_eq!(ga.gate.covers_bits(&bits), ge.gate.covers_bits(&bits));
                    }
                }
            }
            (Err(SynthesisError::CscViolation { .. }), Err(SynthesisError::CscViolation { .. })) => {}
            (a, e) => {
                return Err(TestCaseError::fail(format!(
                    "modes disagree: approx={:?} exact={:?}",
                    a.map(|r| r.literal_count()),
                    e.map(|r| r.literal_count())
                )));
            }
        }
    }
}
