//! Differential check of the structural deadlock certificates against
//! explicit reachability, over random small nets: whatever
//! [`certify_deadlock`] claims must agree with what
//! [`ReachabilityGraph`] actually finds. A `DeadlockFree` certificate with
//! a reachable dead marking — or a `CertifiedDeadlock` on a net whose
//! exploration finds none — would be a soundness bug, not a precision gap.
//! The witness-only verdicts (`SiphonWithoutMarkedTrap`, `Unknown`) claim
//! nothing and are only required not to panic.

use proptest::prelude::*;
use si_synth::petri::structural::{certify_deadlock, certify_one_safe, DeadlockCertificate};
use si_synth::petri::{PetriNet, PlaceId, ReachabilityGraph, TransitionId};

/// A raw net description: indices are taken modulo the node counts, so any
/// random vector is a valid spec.
#[derive(Debug, Clone)]
struct NetSpec {
    places: usize,
    transitions: usize,
    /// `(place, transition, place→transition?)`, modulo the counts.
    arcs: Vec<(usize, usize, bool)>,
    marked: Vec<usize>,
}

fn net_spec() -> impl Strategy<Value = NetSpec> {
    (
        1usize..6,
        1usize..6,
        proptest::collection::vec((0usize..64, 0usize..64, any::<bool>()), 0..16),
        proptest::collection::vec(0usize..64, 0..4),
    )
        .prop_map(|(places, transitions, arcs, marked)| NetSpec {
            places,
            transitions,
            arcs,
            marked,
        })
}

fn build(spec: &NetSpec) -> PetriNet {
    let mut net = PetriNet::new();
    let ps: Vec<PlaceId> = (0..spec.places)
        .map(|i| net.add_place(format!("p{i}")))
        .collect();
    let ts: Vec<TransitionId> = (0..spec.transitions)
        .map(|i| net.add_transition(format!("t{i}")))
        .collect();
    let mut seen = std::collections::HashSet::new();
    for &(p, t, pt) in &spec.arcs {
        let (p, t) = (p % spec.places, t % spec.transitions);
        if seen.insert((p, t, pt)) {
            if pt {
                net.add_arc_pt(ps[p], ts[t]);
            } else {
                net.add_arc_tp(ts[t], ps[p]);
            }
        }
    }
    let mut marked = std::collections::HashSet::new();
    for &m in &spec.marked {
        if marked.insert(m % spec.places) {
            net.mark_initially(ps[m % spec.places]);
        }
    }
    net
}

const STATE_BUDGET: usize = 50_000;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn certificates_never_contradict_reachability(spec in net_spec()) {
        let net = build(&spec);
        let safety = certify_one_safe(&net);
        // Certification must never panic, whatever the net looks like.
        let verdict = certify_deadlock(&net, &safety);
        // The certificate's behavioural claims only apply to nets explicit
        // exploration can actually decide: unsafe nets error out of
        // `explore` (and can never carry a 1-safety certificate anyway).
        let Ok(rg) = ReachabilityGraph::explore(&net, STATE_BUDGET) else {
            return Ok(());
        };
        let dead = rg.deadlocks();
        match &verdict {
            // The marked-graph fast path makes the same behavioural claim
            // as the siphon–trap certificate, via Commoner's condition on
            // cycles — random nets that happen to be marked graphs check
            // its soundness here.
            DeadlockCertificate::DeadlockFree { .. }
            | DeadlockCertificate::DeadlockFreeMarkedGraph => prop_assert!(
                dead.is_empty(),
                "certified deadlock-free, but exploration found {} dead marking(s)",
                dead.len()
            ),
            DeadlockCertificate::CertifiedDeadlock { siphon } => prop_assert!(
                !dead.is_empty(),
                "certified a reachable deadlock (siphon {siphon:?}), \
                 but exploration found none"
            ),
            DeadlockCertificate::SiphonWithoutMarkedTrap { .. }
            | DeadlockCertificate::Unknown => {}
        }
    }

    #[test]
    fn certified_deadlock_implies_every_run_terminates(spec in net_spec()) {
        // Stronger than "some dead marking exists": the certificate's
        // argument is that *every* maximal run is finite, so no reachable
        // marking may sit on a cycle of the reachability graph. A
        // self-successor or any strongly connected behaviour would refute
        // the T-invariant half of the certificate.
        let net = build(&spec);
        let safety = certify_one_safe(&net);
        if !matches!(
            certify_deadlock(&net, &safety),
            DeadlockCertificate::CertifiedDeadlock { .. }
        ) {
            return Ok(());
        }
        let Ok(rg) = ReachabilityGraph::explore(&net, STATE_BUDGET) else {
            return Ok(());
        };
        // Kahn-style peeling on the finite state graph: if some states can
        // never be peeled, the graph has a cycle and some run is infinite.
        let n = rg.len();
        let mut out_degree = vec![0usize; n];
        let mut preds: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (s, degree) in out_degree.iter_mut().enumerate() {
            for &(_, succ) in rg.successors(s) {
                *degree += 1;
                preds[succ].push(s);
            }
        }
        let mut stack: Vec<usize> = (0..n).filter(|&s| out_degree[s] == 0).collect();
        let mut peeled = 0usize;
        while let Some(s) = stack.pop() {
            peeled += 1;
            for &p in &preds[s] {
                out_degree[p] -= 1;
                if out_degree[p] == 0 {
                    stack.push(p);
                }
            }
        }
        prop_assert_eq!(
            peeled,
            n,
            "certified every run finite, but the reachability graph has a cycle"
        );
    }
}
