//! Suite-wide pinning of the symbolic SG engine: on every STG in
//! `si_stg::suite` the symbolic path must produce byte-identical gate
//! equations to the explicit path — under the default pool tuning *and*
//! under adversarial garbage-collection/reordering stress — and it must
//! keep synthesising where the explicit engine's state budget ends.

use si_synth::stategraph::{
    synthesize_from_sg, synthesize_from_symbolic_sg, ReorderPolicy, SgEngine, SgSynthesisOptions,
    StateGraph, SymbolicSg, SymbolicTuning,
};
use si_synth::stg::generators::{muller_pipeline, wide_arbiter};
use si_synth::stg::suite::{synthesisable, vme_read_no_csc};

#[test]
fn whole_suite_engines_agree_byte_for_byte() {
    for stg in synthesisable() {
        let explicit = synthesize_from_sg(&stg, &SgSynthesisOptions::default())
            .unwrap_or_else(|e| panic!("{} failed explicitly: {e}", stg.name()));
        let symbolic = synthesize_from_sg(
            &stg,
            &SgSynthesisOptions {
                engine: SgEngine::Symbolic,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("{} failed symbolically: {e}", stg.name()));
        assert_eq!(explicit.gates.len(), symbolic.gates.len(), "{}", stg.name());
        for (a, b) in symbolic.gates.iter().zip(&explicit.gates) {
            assert_eq!(a.equation(&stg), b.equation(&stg), "{}", stg.name());
            assert_eq!(a.inverted, b.inverted, "{}", stg.name());
        }
    }
}

/// The adversarial pool tunings the stress suite runs under: collection
/// every fixpoint iteration, and (for the reordering policies) sifting at
/// every opportunity.
fn stress_tunings() -> Vec<SymbolicTuning> {
    [ReorderPolicy::Off, ReorderPolicy::Sift, ReorderPolicy::Auto]
        .into_iter()
        .map(|reorder| SymbolicTuning {
            reorder,
            gc_threshold: 0,
            reorder_threshold: 1,
            ..SymbolicTuning::default()
        })
        .collect()
}

#[test]
fn gc_and_reorder_stress_keeps_the_whole_suite_byte_identical() {
    // Collection firing between every fixpoint iteration and sifting at
    // every opportunity exercise every GC/swap path; the gate equations
    // must not move by a byte relative to the explicit engine.
    for stg in synthesisable() {
        let explicit = synthesize_from_sg(&stg, &SgSynthesisOptions::default())
            .unwrap_or_else(|e| panic!("{} failed explicitly: {e}", stg.name()));
        for tuning in stress_tunings() {
            let mut sym = SymbolicSg::build(&stg, &tuning)
                .unwrap_or_else(|e| panic!("{} failed under {tuning:?}: {e}", stg.name()));
            let symbolic =
                synthesize_from_symbolic_sg(&stg, &mut sym, &SgSynthesisOptions::default())
                    .unwrap_or_else(|e| panic!("{} failed under {tuning:?}: {e}", stg.name()));
            assert_eq!(explicit.gates.len(), symbolic.gates.len(), "{}", stg.name());
            for (a, b) in symbolic.gates.iter().zip(&explicit.gates) {
                assert_eq!(
                    a.equation(&stg),
                    b.equation(&stg),
                    "{} under {tuning:?}",
                    stg.name()
                );
                assert_eq!(a.inverted, b.inverted, "{}", stg.name());
            }
        }
    }
}

#[test]
fn gc_stress_csc_witness_identical_to_explicit() {
    let stg = vme_read_no_csc();
    let explicit = synthesize_from_sg(&stg, &SgSynthesisOptions::default()).unwrap_err();
    for tuning in stress_tunings() {
        let mut sym = SymbolicSg::build(&stg, &tuning).expect("reachability itself succeeds");
        let err = synthesize_from_symbolic_sg(&stg, &mut sym, &SgSynthesisOptions::default())
            .expect_err("CSC violation must surface");
        assert_eq!(err, explicit, "witness drifted under {tuning:?}");
    }
}

#[test]
fn gc_options_plumb_through_synthesize_from_sg() {
    // The public options path must reach the engine: an aggressive
    // gc/reorder configuration produces the same gates as the default.
    let stg = muller_pipeline(8);
    let baseline = synthesize_from_sg(&stg, &SgSynthesisOptions::default()).expect("ok");
    let stressed = synthesize_from_sg(
        &stg,
        &SgSynthesisOptions {
            engine: SgEngine::Symbolic,
            symbolic_gc_threshold: 0,
            symbolic_reorder: ReorderPolicy::Auto,
            ..Default::default()
        },
    )
    .expect("stressed symbolic ok");
    assert_eq!(baseline.gates.len(), stressed.gates.len());
    for (a, b) in stressed.gates.iter().zip(&baseline.gates) {
        assert_eq!(a.equation(&stg), b.equation(&stg));
    }
}

#[test]
fn wide_arbiter_small_instances_agree_with_the_explicit_engine() {
    // The acceptance check of the wide-choice benchmark family: on
    // instances the explicit engine can still enumerate, both engines (and
    // every reordering policy) must produce byte-identical equations.
    for n in [3, 6] {
        let stg = wide_arbiter(n);
        let explicit = synthesize_from_sg(&stg, &SgSynthesisOptions::default())
            .unwrap_or_else(|e| panic!("wide_arbiter({n}) failed explicitly: {e}"));
        assert_eq!(explicit.gates.len(), n, "one C-element per stage");
        for tuning in stress_tunings() {
            let mut sym = SymbolicSg::build(&stg, &tuning)
                .unwrap_or_else(|e| panic!("wide_arbiter({n}) under {tuning:?}: {e}"));
            let symbolic =
                synthesize_from_symbolic_sg(&stg, &mut sym, &SgSynthesisOptions::default())
                    .expect("symbolic synthesis");
            for (a, b) in symbolic.gates.iter().zip(&explicit.gates) {
                assert_eq!(a.equation(&stg), b.equation(&stg), "wide_arbiter({n})");
            }
        }
    }
}

#[test]
fn wide_arbiter_needs_reordering_under_a_tight_budget() {
    // The wall this PR removes, in miniature: under a budget the sifted
    // diagram fits comfortably, the riffled static order must die with the
    // structured budget error while `Auto` completes.
    // Measured live peaks at n = 12: ~13 k nodes under the riffled static
    // order, ~4.8 k once sifted — 8 k sits between the two (both runs are
    // deterministic, so the margins only need to absorb code drift).
    let stg = wide_arbiter(12);
    let budget = 8_000;
    let off = SymbolicTuning {
        node_budget: budget,
        reorder: ReorderPolicy::Off,
        ..SymbolicTuning::default()
    };
    let err = SymbolicSg::build(&stg, &off)
        .err()
        .expect("static order must exhaust the budget");
    assert!(
        matches!(
            err,
            si_synth::stategraph::SgError::Net(
                si_synth::petri::NetError::NodeBudgetExceeded { budget: b },
            ) if b == budget
        ),
        "unexpected error: {err}"
    );
    let auto = SymbolicTuning {
        node_budget: budget,
        reorder: ReorderPolicy::Auto,
        ..SymbolicTuning::default()
    };
    let sym = SymbolicSg::build(&stg, &auto).expect("auto reordering survives");
    assert_eq!(sym.state_count(), 1u128 << 14);
    assert!(
        sym.reach().stats().reorder_runs > 0,
        "completion must be reordering's doing"
    );
}

#[test]
fn symbolic_engine_crosses_the_explicit_budget_wall() {
    // 14 stages ≈ 65 k states: an explicit budget of 10 k states dies, the
    // symbolic engine synthesises the pipeline's C-element equations
    // unbothered.
    let stg = muller_pipeline(14);
    assert!(StateGraph::build(&stg, 10_000).is_err());
    let symbolic = synthesize_from_sg(
        &stg,
        &SgSynthesisOptions {
            engine: SgEngine::Symbolic,
            state_budget: 10_000, // ignored by the symbolic engine
            ..Default::default()
        },
    )
    .expect("symbolic engine is not bounded by states");
    assert_eq!(symbolic.gates.len(), 14);
    // Every stage is a C-element: c_i = c_{i-1} c_i + c_{i-1} c_{i+1}' +
    // c_i c_{i+1}' (3 cubes, 6 literals).
    assert_eq!(symbolic.literal_count(), 14 * 6);
}
