//! Suite-wide pinning of the symbolic SG engine: on every STG in
//! `si_stg::suite` the symbolic path must produce byte-identical gate
//! equations to the explicit path, and it must keep synthesising where the
//! explicit engine's state budget ends.

use si_synth::stategraph::{synthesize_from_sg, SgEngine, SgSynthesisOptions, StateGraph};
use si_synth::stg::generators::muller_pipeline;
use si_synth::stg::suite::synthesisable;

#[test]
fn whole_suite_engines_agree_byte_for_byte() {
    for stg in synthesisable() {
        let explicit = synthesize_from_sg(&stg, &SgSynthesisOptions::default())
            .unwrap_or_else(|e| panic!("{} failed explicitly: {e}", stg.name()));
        let symbolic = synthesize_from_sg(
            &stg,
            &SgSynthesisOptions {
                engine: SgEngine::Symbolic,
                ..Default::default()
            },
        )
        .unwrap_or_else(|e| panic!("{} failed symbolically: {e}", stg.name()));
        assert_eq!(explicit.gates.len(), symbolic.gates.len(), "{}", stg.name());
        for (a, b) in symbolic.gates.iter().zip(&explicit.gates) {
            assert_eq!(a.equation(&stg), b.equation(&stg), "{}", stg.name());
            assert_eq!(a.inverted, b.inverted, "{}", stg.name());
        }
    }
}

#[test]
fn symbolic_engine_crosses_the_explicit_budget_wall() {
    // 14 stages ≈ 65 k states: an explicit budget of 10 k states dies, the
    // symbolic engine synthesises the pipeline's C-element equations
    // unbothered.
    let stg = muller_pipeline(14);
    assert!(StateGraph::build(&stg, 10_000).is_err());
    let symbolic = synthesize_from_sg(
        &stg,
        &SgSynthesisOptions {
            engine: SgEngine::Symbolic,
            state_budget: 10_000, // ignored by the symbolic engine
            ..Default::default()
        },
    )
    .expect("symbolic engine is not bounded by states");
    assert_eq!(symbolic.gates.len(), 14);
    // Every stage is a C-element: c_i = c_{i-1} c_i + c_{i-1} c_{i+1}' +
    // c_i c_{i+1}' (3 cubes, 6 literals).
    assert_eq!(symbolic.literal_count(), 14 * 6);
}
