//! The `.g` interchange format must round-trip every specification the
//! workspace can produce: suite entries, generators, and the synthesis
//! results must be identical before and after a parse/write cycle.

use si_synth::stategraph::StateGraph;
use si_synth::stg::{generators, parse_g, suite, write_g, Stg};
use si_synth::synthesis::{synthesize_from_unfolding, SynthesisOptions};

fn roundtrip(stg: &Stg) -> Stg {
    let text = write_g(stg);
    parse_g(&text).unwrap_or_else(|e| panic!("{}: reparse failed: {e}\n{text}", stg.name()))
}

#[test]
fn suite_round_trips_structurally() {
    for stg in suite::synthesisable() {
        let re = roundtrip(&stg);
        assert_eq!(re.name(), stg.name());
        assert_eq!(re.signal_count(), stg.signal_count());
        assert_eq!(re.net().transition_count(), stg.net().transition_count());
        assert_eq!(re.net().place_count(), stg.net().place_count());
        assert_eq!(
            re.net().initial_marking().len(),
            stg.net().initial_marking().len()
        );
        assert_eq!(
            re.initial_code().map(ToString::to_string),
            stg.initial_code().map(ToString::to_string)
        );
    }
}

#[test]
fn round_trip_preserves_behaviour() {
    // Stronger than structure: the reachable state count and the
    // synthesised logic must be unchanged.
    for stg in [
        suite::paper_fig1(),
        suite::vme_read_csc(),
        suite::toggle(),
        generators::muller_pipeline(3),
        generators::counterflow_pipeline(2),
        generators::sequencer(5),
    ] {
        let re = roundtrip(&stg);
        let sg_a = StateGraph::build(&stg, 1_000_000).expect("original builds");
        let sg_b = StateGraph::build(&re, 1_000_000).expect("round-tripped builds");
        assert_eq!(
            sg_a.len(),
            sg_b.len(),
            "{}: state count changed",
            stg.name()
        );

        let options = SynthesisOptions::default();
        let a = synthesize_from_unfolding(&stg, &options).expect("original synthesises");
        let b = synthesize_from_unfolding(&re, &options).expect("round-tripped synthesises");
        assert_eq!(
            a.literal_count(),
            b.literal_count(),
            "{}: literal count changed",
            stg.name()
        );
        // The writer groups signals by kind, so signal *ids* (and therefore
        // the textual variable order) may change — but the synthesised
        // behaviour must not: verify the reparsed netlist independently.
        si_synth::synthesis::verify_against_sg(&re, &b, 1_000_000)
            .unwrap_or_else(|e| panic!("{}: round-tripped netlist wrong: {e}", stg.name()));
    }
}

#[test]
fn double_round_trip_is_stable_as_a_line_set() {
    // Transition ids (and hence line order) may permute across parses, but
    // the *set* of emitted lines must reach a fixed point immediately.
    for stg in [suite::paper_fig4ab(), generators::muller_pipeline(2)] {
        let mut once: Vec<String> = write_g(&roundtrip(&stg))
            .lines()
            .map(str::to_owned)
            .collect();
        let reparsed = parse_g(&once.join("\n")).expect("parses");
        let mut twice: Vec<String> = write_g(&roundtrip(&reparsed))
            .lines()
            .map(str::to_owned)
            .collect();
        once.sort();
        twice.sort();
        assert_eq!(once, twice, "{}: writer not stable", stg.name());
    }
}
