//! The lint corpus contract: every diagnostic code has a defective `.g`
//! spec under `benchmarks/lint/` where it fires **exactly once**, the clean
//! reference spec and every real benchmark lint clean, and the built-in
//! suite is warning-free except for the deliberately disconnected
//! `independent-cycles` generators.

use si_synth::stg::analysis::{lint, lint_text, DiagCode, Severity};
use si_synth::stg::suite::synthesisable;

fn corpus_path(file: &str) -> String {
    format!("{}/benchmarks/lint/{file}", env!("CARGO_MANIFEST_DIR"))
}

fn lint_file(file: &str) -> si_synth::stg::analysis::LintReport {
    let path = corpus_path(file);
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {path}: {e}"));
    lint_text(&text).unwrap_or_else(|e| panic!("{file} must parse leniently: {e}"))
}

/// Which corpus file is responsible for which code. The two info codes ride
/// on the clean spec: they fire on every report, so the clean file pins
/// them without extra fixtures.
const TARGETS: &[(DiagCode, &str)] = &[
    (DiagCode::E001, "e001_source_transition.g"),
    (DiagCode::E002, "e002_empty_marking.g"),
    (DiagCode::E003, "e003_dummy.g"),
    (DiagCode::E004, "e004_certified_deadlock.g"),
    (DiagCode::W001, "w001_dead_signal.g"),
    (DiagCode::W002, "w002_not_one_safe.g"),
    (DiagCode::W003, "w003_unmarked_siphon.g"),
    (DiagCode::W004, "w004_sink_transition.g"),
    (DiagCode::W005, "w005_disconnected.g"),
    (DiagCode::W006, "w006_duplicate_place.g"),
    (DiagCode::W007, "w007_alternation.g"),
    (DiagCode::W008, "w008_single_polarity.g"),
    (DiagCode::W009, "w009_accumulator.g"),
    (DiagCode::W010, "w010_non_repeatable.g"),
    (DiagCode::W011, "w011_siphon_no_trap.g"),
    (DiagCode::W012, "w012_rank_violation.g"),
    (DiagCode::I001, "clean_handshake.g"),
    (DiagCode::I002, "clean_handshake.g"),
    (DiagCode::I003, "clean_handshake.g"),
];

#[test]
fn every_code_fires_exactly_once_in_its_fixture() {
    for &(code, file) in TARGETS {
        let report = lint_file(file);
        let hits = report.diagnostics.iter().filter(|d| d.code == code).count();
        assert_eq!(
            hits,
            1,
            "{file}: expected {} exactly once, got {hits}:\n{}",
            code.as_str(),
            report.render()
        );
    }
}

#[test]
fn target_table_covers_every_code() {
    for code in DiagCode::all() {
        assert!(
            TARGETS.iter().any(|&(c, _)| c == *code),
            "no corpus fixture designated for {}",
            code.as_str()
        );
    }
}

#[test]
fn error_fixtures_set_the_error_exit_path() {
    for &(code, file) in TARGETS {
        let report = lint_file(file);
        assert_eq!(
            report.has_errors(),
            code.severity() == Severity::Error,
            "{file}: has_errors() must match its target severity"
        );
    }
}

#[test]
fn clean_fixture_is_clean() {
    let report = lint_file("clean_handshake.g");
    assert_eq!(report.error_count(), 0, "{}", report.render());
    assert_eq!(report.warning_count(), 0, "{}", report.render());
}

#[test]
fn every_fixture_has_lines_on_spanned_diagnostics() {
    // Summary diagnostics may be line-less; per-element ones carry a line
    // resolved through the lenient parser's span table.
    for &(code, file) in TARGETS {
        if matches!(
            code,
            DiagCode::E002
                | DiagCode::W005
                | DiagCode::W012
                | DiagCode::I001
                | DiagCode::I002
                | DiagCode::I003
        ) {
            continue;
        }
        let report = lint_file(file);
        let diag = report
            .diagnostics
            .iter()
            .find(|d| d.code == code)
            .unwrap_or_else(|| panic!("{file} lost its target diagnostic"));
        assert!(
            diag.line.is_some(),
            "{file}: {} should carry a source line",
            code.as_str()
        );
    }
}

#[test]
fn shipped_benchmarks_lint_clean() {
    let dir = format!("{}/benchmarks", env!("CARGO_MANIFEST_DIR"));
    let mut checked = 0;
    for entry in std::fs::read_dir(&dir).expect("benchmarks dir") {
        let path = entry.expect("dir entry").path();
        if path.extension().is_none_or(|e| e != "g") {
            continue;
        }
        let text = std::fs::read_to_string(&path).expect("readable benchmark");
        let report = lint_text(&text).expect("benchmark parses");
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if name.starts_with("dining_phil") {
            // The dining-philosopher specs are deliberately deadlock-prone:
            // they must trip the siphon–trap warning and nothing worse.
            assert_eq!(report.error_count(), 0, "{}", report.render());
            assert!(
                report.diagnostics.iter().any(|d| d.code == DiagCode::W011),
                "{}: expected SI-W011 on a dining-philosophers spec:\n{}",
                path.display(),
                report.render()
            );
        } else {
            assert!(
                report.is_clean(),
                "{}: shipped benchmarks must lint clean:\n{}",
                path.display(),
                report.render()
            );
        }
        checked += 1;
    }
    assert!(
        checked >= 6,
        "expected the shipped benchmarks, found {checked}"
    );
}

#[test]
fn liveness_verdicts_match_reachability_on_the_corpus() {
    use si_synth::petri::ReachabilityGraph;
    use si_synth::stg::parse_g_lenient;
    // The structural verdicts are claims about behaviour: the
    // certified-deadlock fixture must actually reach a dead marking and the
    // certificate-carrying clean fixture must not.
    let explore = |file: &str| {
        let text = std::fs::read_to_string(corpus_path(file)).expect("read fixture");
        let (stg, _) = parse_g_lenient(&text).expect("parses");
        ReachabilityGraph::explore(stg.net(), 100_000).expect("1-safe fixture")
    };
    assert!(
        !explore("e004_certified_deadlock.g").deadlocks().is_empty(),
        "the SI-E004 fixture must reach a dead marking"
    );
    assert!(
        explore("clean_handshake.g").deadlocks().is_empty(),
        "the SI-I003 fixture must be deadlock-free"
    );
}

#[test]
fn builtin_suite_lints_clean_modulo_disconnected_generators() {
    for stg in synthesisable() {
        let report = lint(&stg, None);
        let offending: Vec<_> = report
            .diagnostics
            .iter()
            .filter(|d| d.code.severity() != Severity::Info)
            // The independent-cycles generator is disconnected by design —
            // it exists to stress engines with product state spaces.
            .filter(|d| !(stg.name().starts_with("independent-cycles") && d.code == DiagCode::W005))
            .collect();
        assert!(
            offending.is_empty(),
            "{}: suite spec should lint clean, got:\n{}",
            stg.name(),
            report.render()
        );
    }
}
