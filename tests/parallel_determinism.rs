//! Parallel synthesis must be a pure speed-up: with any worker count, both
//! flows must produce byte-identical gates, in the same order, as the
//! sequential (`workers = Some(1)`) path — and repeated runs must agree
//! with each other (no hash-iteration order may leak into the output).

use si_synth::stategraph::{synthesize_from_sg, ReorderPolicy, SgEngine, SgSynthesisOptions};
use si_synth::stg::generators::{muller_pipeline, sequencer, wide_arbiter};
use si_synth::stg::suite::{paper_fig4ab, request_mux, vme_read_csc};
use si_synth::stg::Stg;
use si_synth::synthesis::{synthesize_from_unfolding, SynthesisOptions};

fn sg_fingerprint(stg: &Stg, options: &SgSynthesisOptions) -> String {
    let result = synthesize_from_sg(stg, options).expect("synthesis succeeds");
    result
        .gates
        .iter()
        .map(|g| format!("{}|{}|{:?}\n", g.equation(stg), g.inverted, g.cover))
        .collect()
}

fn unfolding_fingerprint(stg: &Stg, options: &SynthesisOptions) -> String {
    let result = synthesize_from_unfolding(stg, options).expect("synthesis succeeds");
    result
        .gates
        .iter()
        .map(|g| {
            format!(
                "{}|{:?}|{:?}|{:?}\n",
                g.equation(stg),
                g.gate,
                g.on_cover,
                g.off_cover
            )
        })
        .collect()
}

#[test]
fn sg_parallel_output_is_byte_identical_to_sequential() {
    for stg in [
        muller_pipeline(4),
        sequencer(5),
        vme_read_csc(),
        request_mux(),
    ] {
        let sequential = sg_fingerprint(
            &stg,
            &SgSynthesisOptions {
                workers: Some(1),
                ..Default::default()
            },
        );
        for workers in [None, Some(2), Some(4), Some(8)] {
            let parallel = sg_fingerprint(
                &stg,
                &SgSynthesisOptions {
                    workers,
                    ..Default::default()
                },
            );
            assert_eq!(
                sequential,
                parallel,
                "{}: workers={workers:?} diverged from sequential",
                stg.name()
            );
        }
    }
}

#[test]
fn unfolding_parallel_output_is_byte_identical_to_sequential() {
    // In the default (approximate) mode the cover representation is a pure
    // performance knob too: implicit diagrams and explicit cube lists must
    // agree not just on the gates but on the full fingerprint (refined
    // on/off covers included), at every worker count.
    for stg in [muller_pipeline(4), paper_fig4ab(), vme_read_csc()] {
        let sequential = unfolding_fingerprint(
            &stg,
            &SynthesisOptions {
                workers: Some(1),
                ..Default::default()
            },
        );
        for implicit_covers in [true, false] {
            for workers in [None, Some(2), Some(4)] {
                let parallel = unfolding_fingerprint(
                    &stg,
                    &SynthesisOptions {
                        workers,
                        implicit_covers,
                        ..Default::default()
                    },
                );
                assert_eq!(
                    sequential,
                    parallel,
                    "{}: workers={workers:?} implicit={implicit_covers} diverged from sequential",
                    stg.name()
                );
            }
        }
    }
}

#[test]
fn exact_mode_gates_are_identical_across_representations_and_workers() {
    // Exact mode stores its pre-minimisation covers in representation
    // native form (disjoint diagram paths vs canonical minterms), so only
    // the minimised gates — the actual output — are compared here.
    use si_synth::synthesis::CoverMode;
    let gates = |stg: &Stg, implicit_covers: bool, workers| -> String {
        let options = SynthesisOptions {
            mode: CoverMode::Exact,
            implicit_covers,
            workers,
            ..Default::default()
        };
        let result = synthesize_from_unfolding(stg, &options).expect("synthesis succeeds");
        result
            .gates
            .iter()
            .map(|g| format!("{}|{:?}\n", g.equation(stg), g.gate))
            .collect()
    };
    for stg in [muller_pipeline(4), paper_fig4ab(), vme_read_csc()] {
        let sequential = gates(&stg, false, Some(1));
        for implicit_covers in [true, false] {
            for workers in [None, Some(2), Some(4)] {
                assert_eq!(
                    sequential,
                    gates(&stg, implicit_covers, workers),
                    "{}: workers={workers:?} implicit={implicit_covers} diverged",
                    stg.name()
                );
            }
        }
    }
}

#[test]
fn cutoff_pruning_is_byte_identical_across_workers() {
    // The T-invariant cutoff-lookup pruning is a pure skip of guaranteed
    // hash misses: with it on or off, at any worker count, the unfolding
    // flow must produce the same full fingerprint (covers included).
    use si_synth::unfolding::UnfoldingOptions;
    for stg in [muller_pipeline(4), paper_fig4ab(), vme_read_csc()] {
        let unpruned = unfolding_fingerprint(
            &stg,
            &SynthesisOptions {
                workers: Some(1),
                unfolding: UnfoldingOptions {
                    prune_non_repeatable: false,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        for workers in [None, Some(2), Some(4)] {
            let pruned = unfolding_fingerprint(
                &stg,
                &SynthesisOptions {
                    workers,
                    unfolding: UnfoldingOptions {
                        prune_non_repeatable: true,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            );
            assert_eq!(
                unpruned,
                pruned,
                "{}: workers={workers:?} pruning changed the output",
                stg.name()
            );
        }
    }
}

#[test]
fn sg_synthesis_is_deterministic_across_runs() {
    // The exact on/off-sets are deduplicated through a HashSet; the covers
    // must nevertheless come out in canonical order every run, or gate
    // content could differ between two invocations in the same process.
    let stg = muller_pipeline(3);
    let options = SgSynthesisOptions::default();
    let first = sg_fingerprint(&stg, &options);
    for _ in 0..5 {
        assert_eq!(first, sg_fingerprint(&stg, &options));
    }
}

#[test]
fn symbolic_gc_stress_is_deterministic_across_workers_and_runs() {
    // The symbolic engine under adversarial pool maintenance — collection
    // between every fixpoint iteration plus proactive sifting — must stay
    // a pure layout decision: any worker count, and repeated runs, produce
    // byte-identical gates (BDD node ids and HashMap iteration order must
    // not leak into the output).
    for stg in [muller_pipeline(5), wide_arbiter(5), vme_read_csc()] {
        let options = |workers| SgSynthesisOptions {
            engine: SgEngine::Symbolic,
            symbolic_gc_threshold: 0,
            symbolic_reorder: ReorderPolicy::Auto,
            workers,
            ..Default::default()
        };
        let sequential = sg_fingerprint(&stg, &options(Some(1)));
        for workers in [None, Some(2), Some(4)] {
            assert_eq!(
                sequential,
                sg_fingerprint(&stg, &options(workers)),
                "{}: workers={workers:?} diverged under gc stress",
                stg.name()
            );
        }
        for _ in 0..3 {
            assert_eq!(sequential, sg_fingerprint(&stg, &options(Some(1))));
        }
        // And the stressed output equals the unstressed explicit baseline.
        assert_eq!(
            sequential,
            sg_fingerprint(&stg, &SgSynthesisOptions::default()),
            "{}: gc/reorder stress changed the gates",
            stg.name()
        );
    }
}

#[test]
fn inversion_and_exact_paths_are_deterministic_in_parallel() {
    let stg = sequencer(4);
    let options = |workers| SgSynthesisOptions {
        allow_inversion: true,
        exact_minimization: true,
        workers,
        ..Default::default()
    };
    let sequential = sg_fingerprint(&stg, &options(Some(1)));
    assert_eq!(sequential, sg_fingerprint(&stg, &options(Some(4))));
}
