//! Parallel synthesis must be a pure speed-up: with any worker count, both
//! flows must produce byte-identical gates, in the same order, as the
//! sequential (`workers = Some(1)`) path — and repeated runs must agree
//! with each other (no hash-iteration order may leak into the output).

use si_synth::stategraph::{
    synthesize_from_sg, synthesize_from_symbolic_sg, ReorderPolicy, SgEngine, SgSynthesisOptions,
    SymbolicSg,
};
use si_synth::stg::generators::{muller_pipeline, sequencer, wide_arbiter};
use si_synth::stg::suite::{paper_fig4ab, request_mux, vme_read_csc, vme_read_no_csc};
use si_synth::stg::Stg;
use si_synth::synthesis::{synthesize_from_unfolding, SynthesisOptions};

fn sg_fingerprint(stg: &Stg, options: &SgSynthesisOptions) -> String {
    let result = synthesize_from_sg(stg, options).expect("synthesis succeeds");
    result
        .gates
        .iter()
        .map(|g| format!("{}|{}|{:?}\n", g.equation(stg), g.inverted, g.cover))
        .collect()
}

fn unfolding_fingerprint(stg: &Stg, options: &SynthesisOptions) -> String {
    let result = synthesize_from_unfolding(stg, options).expect("synthesis succeeds");
    result
        .gates
        .iter()
        .map(|g| {
            format!(
                "{}|{:?}|{:?}|{:?}\n",
                g.equation(stg),
                g.gate,
                g.on_cover,
                g.off_cover
            )
        })
        .collect()
}

#[test]
fn sg_parallel_output_is_byte_identical_to_sequential() {
    for stg in [
        muller_pipeline(4),
        sequencer(5),
        vme_read_csc(),
        request_mux(),
    ] {
        let sequential = sg_fingerprint(
            &stg,
            &SgSynthesisOptions {
                workers: Some(1),
                ..Default::default()
            },
        );
        for workers in [None, Some(2), Some(4), Some(8)] {
            let parallel = sg_fingerprint(
                &stg,
                &SgSynthesisOptions {
                    workers,
                    ..Default::default()
                },
            );
            assert_eq!(
                sequential,
                parallel,
                "{}: workers={workers:?} diverged from sequential",
                stg.name()
            );
        }
    }
}

#[test]
fn unfolding_parallel_output_is_byte_identical_to_sequential() {
    // In the default (approximate) mode the cover representation is a pure
    // performance knob too: implicit diagrams and explicit cube lists must
    // agree not just on the gates but on the full fingerprint (refined
    // on/off covers included), at every worker count.
    for stg in [muller_pipeline(4), paper_fig4ab(), vme_read_csc()] {
        let sequential = unfolding_fingerprint(
            &stg,
            &SynthesisOptions {
                workers: Some(1),
                ..Default::default()
            },
        );
        for implicit_covers in [true, false] {
            for workers in [None, Some(2), Some(4)] {
                let parallel = unfolding_fingerprint(
                    &stg,
                    &SynthesisOptions {
                        workers,
                        implicit_covers,
                        ..Default::default()
                    },
                );
                assert_eq!(
                    sequential,
                    parallel,
                    "{}: workers={workers:?} implicit={implicit_covers} diverged from sequential",
                    stg.name()
                );
            }
        }
    }
}

#[test]
fn exact_mode_gates_are_identical_across_representations_and_workers() {
    // Exact mode stores its pre-minimisation covers in representation
    // native form (disjoint diagram paths vs canonical minterms), so only
    // the minimised gates — the actual output — are compared here.
    use si_synth::synthesis::CoverMode;
    let gates = |stg: &Stg, implicit_covers: bool, workers| -> String {
        let options = SynthesisOptions {
            mode: CoverMode::Exact,
            implicit_covers,
            workers,
            ..Default::default()
        };
        let result = synthesize_from_unfolding(stg, &options).expect("synthesis succeeds");
        result
            .gates
            .iter()
            .map(|g| format!("{}|{:?}\n", g.equation(stg), g.gate))
            .collect()
    };
    for stg in [muller_pipeline(4), paper_fig4ab(), vme_read_csc()] {
        let sequential = gates(&stg, false, Some(1));
        for implicit_covers in [true, false] {
            for workers in [None, Some(2), Some(4)] {
                assert_eq!(
                    sequential,
                    gates(&stg, implicit_covers, workers),
                    "{}: workers={workers:?} implicit={implicit_covers} diverged",
                    stg.name()
                );
            }
        }
    }
}

#[test]
fn cutoff_pruning_is_byte_identical_across_workers() {
    // The T-invariant cutoff-lookup pruning is a pure skip of guaranteed
    // hash misses: with it on or off, at any worker count, the unfolding
    // flow must produce the same full fingerprint (covers included).
    use si_synth::unfolding::UnfoldingOptions;
    for stg in [muller_pipeline(4), paper_fig4ab(), vme_read_csc()] {
        let unpruned = unfolding_fingerprint(
            &stg,
            &SynthesisOptions {
                workers: Some(1),
                unfolding: UnfoldingOptions {
                    prune_non_repeatable: false,
                    ..Default::default()
                },
                ..Default::default()
            },
        );
        for workers in [None, Some(2), Some(4)] {
            let pruned = unfolding_fingerprint(
                &stg,
                &SynthesisOptions {
                    workers,
                    unfolding: UnfoldingOptions {
                        prune_non_repeatable: true,
                        ..Default::default()
                    },
                    ..Default::default()
                },
            );
            assert_eq!(
                unpruned,
                pruned,
                "{}: workers={workers:?} pruning changed the output",
                stg.name()
            );
        }
    }
}

#[test]
fn sg_synthesis_is_deterministic_across_runs() {
    // The exact on/off-sets are deduplicated through a HashSet; the covers
    // must nevertheless come out in canonical order every run, or gate
    // content could differ between two invocations in the same process.
    let stg = muller_pipeline(3);
    let options = SgSynthesisOptions::default();
    let first = sg_fingerprint(&stg, &options);
    for _ in 0..5 {
        assert_eq!(first, sg_fingerprint(&stg, &options));
    }
}

#[test]
fn symbolic_gc_stress_is_deterministic_across_workers_and_runs() {
    // The symbolic engine under adversarial pool maintenance — collection
    // between every fixpoint iteration plus proactive sifting — must stay
    // a pure layout decision: any worker count, and repeated runs, produce
    // byte-identical gates (BDD node ids and HashMap iteration order must
    // not leak into the output).
    for stg in [muller_pipeline(5), wide_arbiter(5), vme_read_csc()] {
        let options = |workers| SgSynthesisOptions {
            engine: SgEngine::Symbolic,
            symbolic_gc_threshold: 0,
            symbolic_reorder: ReorderPolicy::Auto,
            workers,
            ..Default::default()
        };
        let sequential = sg_fingerprint(&stg, &options(Some(1)));
        for workers in [None, Some(2), Some(4)] {
            assert_eq!(
                sequential,
                sg_fingerprint(&stg, &options(workers)),
                "{}: workers={workers:?} diverged under gc stress",
                stg.name()
            );
        }
        for _ in 0..3 {
            assert_eq!(sequential, sg_fingerprint(&stg, &options(Some(1))));
        }
        // And the stressed output equals the unstressed explicit baseline.
        assert_eq!(
            sequential,
            sg_fingerprint(&stg, &SgSynthesisOptions::default()),
            "{}: gc/reorder stress changed the gates",
            stg.name()
        );
    }
}

/// Fingerprint of a symbolic run at the given kernel thread count and pool
/// policy: gates (byte-for-byte), state count, per-signal on/off-set sat
/// counts, and the deterministic kernel operation counters. The parallel
/// dispatch floor is forced to 0 so these small specifications actually
/// exercise the work-stealing apply, not just the serial fallback.
fn symbolic_fingerprint(
    stg: &si_synth::stg::Stg,
    bdd_threads: usize,
    reorder: ReorderPolicy,
    gc_threshold: usize,
) -> String {
    let options = SgSynthesisOptions {
        engine: SgEngine::Symbolic,
        symbolic_reorder: reorder,
        symbolic_gc_threshold: gc_threshold,
        bdd_threads: Some(bdd_threads),
        ..Default::default()
    };
    let mut tuning = options.symbolic_tuning();
    tuning.bdd_parallel_floor = Some(0);
    let mut sym = SymbolicSg::build(stg, &tuning).expect("symbolic reachability succeeds");
    let stats = sym.reach().stats().clone();
    let result = synthesize_from_symbolic_sg(stg, &mut sym, &options).expect("synthesis succeeds");
    let gates: String = result
        .gates
        .iter()
        .map(|g| format!("{}|{}|{:?}\n", g.equation(stg), g.inverted, g.cover))
        .collect();
    format!(
        "{gates}states={} ops={:?} peak_live={}\n",
        sym.state_count(),
        stats.ops,
        stats.peak_live_nodes
    )
}

#[test]
fn bdd_thread_count_is_invisible_across_gc_and_sift_policies() {
    // The tentpole determinism claim, end to end at the facade level: for
    // every combination of reorder policy and GC pressure, the kernel
    // thread count changes nothing — not the gates, not the state count,
    // not the on/off sets, not even the operation counters or the live
    // peak at the fixpoint checkpoints.
    let default_gc = SgSynthesisOptions::default().symbolic_gc_threshold;
    for stg in [muller_pipeline(5), wide_arbiter(5), vme_read_csc()] {
        for reorder in [ReorderPolicy::Off, ReorderPolicy::Sift, ReorderPolicy::Auto] {
            for gc_threshold in [0, default_gc] {
                let reference = symbolic_fingerprint(&stg, 1, reorder, gc_threshold);
                for threads in [2, 4] {
                    assert_eq!(
                        reference,
                        symbolic_fingerprint(&stg, threads, reorder, gc_threshold),
                        "{}: bdd_threads={threads} reorder={reorder:?} gc={gc_threshold} \
                         diverged from single-threaded",
                        stg.name()
                    );
                }
            }
        }
    }
}

#[test]
fn csc_witness_is_identical_at_every_bdd_thread_count() {
    // A CSC failure must report the same witness code at any thread count:
    // the conflict-set pick must come from canonical diagram traversal, not
    // from whichever worker found a conflict first.
    let stg = vme_read_no_csc();
    let witness = |threads| {
        synthesize_from_sg(
            &stg,
            &SgSynthesisOptions {
                engine: SgEngine::Symbolic,
                bdd_threads: Some(threads),
                ..Default::default()
            },
        )
        .expect_err("vme_read_no_csc violates CSC")
    };
    let reference = witness(1);
    for threads in [2, 4] {
        assert_eq!(
            reference,
            witness(threads),
            "CSC witness differs at bdd_threads={threads}"
        );
    }
}

#[test]
fn inversion_and_exact_paths_are_deterministic_in_parallel() {
    let stg = sequencer(4);
    let options = |workers| SgSynthesisOptions {
        allow_inversion: true,
        exact_minimization: true,
        workers,
        ..Default::default()
    };
    let sequential = sg_fingerprint(&stg, &options(Some(1)));
    assert_eq!(sequential, sg_fingerprint(&stg, &options(Some(4))));
}
