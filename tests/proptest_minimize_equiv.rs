//! Equivalence suite for the rewritten minimiser hot paths.
//!
//! The EXPAND / IRREDUNDANT / REDUCE / canonical-order phases were
//! reimplemented against a blocking structure, the unate-recursive
//! containment machinery, and packed block-word comparisons. This suite
//! pins each phase against the seed's reference implementation (kept here,
//! written against the public cube/cover API) on random on/off cover
//! pairs:
//!
//! * IRREDUNDANT, REDUCE and canonical order must be **byte-identical** to
//!   the reference — they are behaviour-preserving rewrites;
//! * EXPAND intentionally deviates (it skips cubes already covered by an
//!   expanded prime), so it is pinned on the phase contract instead: the
//!   result covers the input, avoids the off-set, and every cube is prime
//!   (no literal can be raised without hitting the off-set);
//! * the containment predicate (`contains_cube`) and the boolean
//!   intersection must agree with brute-force evaluation on both the
//!   single-block fast path and the multi-block generic path.

use proptest::prelude::*;
use si_synth::cubes::implicit::ImplicitPool;
use si_synth::cubes::internals::{canonical_order, expand, irredundant, reduce};
use si_synth::cubes::{
    minimize, minimize_exact, minimize_exact_implicit, minimize_implicit, Cover, Cube, Literal,
    QmBudget,
};

/// Strategy: a random cube over `width` variables as a `{0,1,-}` string.
fn cube_strategy(width: usize) -> impl Strategy<Value = Cube> {
    proptest::collection::vec(prop_oneof![Just('0'), Just('1'), Just('-')], width)
        .prop_map(|chars| Cube::from_str_cube(&chars.into_iter().collect::<String>()))
}

/// Strategy: a random cover of up to `max_cubes` cubes.
fn cover_strategy(width: usize, max_cubes: usize) -> impl Strategy<Value = Cover> {
    proptest::collection::vec(cube_strategy(width), 0..=max_cubes)
        .prop_map(|cubes| cubes.into_iter().collect())
}

/// Deterministically splits the `width`-variable space into an on/off
/// minterm partition from a seed (the remaining minterms are don't-care).
fn partition_from_seed(seed: u64, width: usize) -> (Cover, Cover) {
    let mut on = Cover::empty(width);
    let mut off = Cover::empty(width);
    for x in 0..(1u32 << width) {
        let bits: Vec<bool> = (0..width).map(|i| (x >> i) & 1 == 1).collect();
        match (seed >> (x as usize % 60)) & 0b11 {
            0 => on.push(Cube::minterm(bits)),
            1 => off.push(Cube::minterm(bits)),
            _ => {}
        }
    }
    (on, off)
}

/// All assignments over `width` variables.
fn assignments(width: usize) -> impl Iterator<Item = Vec<bool>> {
    (0..(1u32 << width)).map(move |x| (0..width).map(|i| (x >> i) & 1 == 1).collect())
}

fn covers_equal(a: &Cover, b: &Cover) -> bool {
    a.cubes() == b.cubes()
}

// ---------------------------------------------------------------------------
// Reference implementations: the seed's minimiser phases, verbatim in
// behaviour, written against the public API.
// ---------------------------------------------------------------------------

/// Reference EXPAND: probe every (cube, variable) raise against every
/// off-cube via allocating intersection.
fn expand_ref(f: &mut Cover, off: &Cover) {
    let width = f.width();
    let mut cubes: Vec<Cube> = f.cubes().to_vec();
    cubes.sort_by_key(|c| c.literal_count());
    let mut result: Vec<Cube> = Vec::with_capacity(cubes.len());
    for mut cube in cubes {
        for v in 0..width {
            if cube.get(v) == Literal::DontCare {
                continue;
            }
            let saved = cube.get(v);
            cube.set(v, Literal::DontCare);
            if off.cubes().iter().any(|o| o.intersect(&cube).is_some()) {
                cube.set(v, saved);
            }
        }
        if !result.iter().any(|r| r.contains(&cube)) {
            result.retain(|r| !cube.contains(r));
            result.push(cube);
        }
    }
    *f = result.into_iter().collect();
}

/// Reference IRREDUNDANT: rebuilds a candidate cover per removal attempt.
fn irredundant_ref(f: &mut Cover, on: &Cover) {
    let mut order: Vec<usize> = (0..f.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(f.cubes()[i].literal_count()));
    let mut removed = vec![false; f.len()];
    for &i in &order {
        removed[i] = true;
        let candidate: Cover = f
            .cubes()
            .iter()
            .enumerate()
            .filter(|(j, _)| !removed[*j])
            .map(|(_, c)| c.clone())
            .collect();
        let still_covered = on
            .cubes()
            .iter()
            .filter(|o| o.intersect(&f.cubes()[i]).is_some())
            .all(|o| !candidate.is_empty() && candidate.covers_cube(o));
        if !still_covered {
            removed[i] = false;
        }
    }
    *f = f
        .cubes()
        .iter()
        .enumerate()
        .filter(|(j, _)| !removed[*j])
        .map(|(_, c)| c.clone())
        .collect();
}

/// Reference REDUCE: greedy var-by-var shrink with a candidate cover per
/// probe.
fn reduce_ref(f: &mut Cover, on: &Cover) {
    let width = f.width();
    for i in 0..f.len() {
        let mut cube = f.cubes()[i].clone();
        for v in 0..width {
            if cube.get(v) != Literal::DontCare {
                continue;
            }
            for lit in [Literal::One, Literal::Zero] {
                let mut candidate_cube = cube.clone();
                candidate_cube.set(v, lit);
                let candidate: Cover = f
                    .cubes()
                    .iter()
                    .enumerate()
                    .map(|(j, c)| {
                        if j == i {
                            candidate_cube.clone()
                        } else {
                            c.clone()
                        }
                    })
                    .collect();
                let ok = on
                    .cubes()
                    .iter()
                    .filter(|o| o.intersect(&f.cubes()[i]).is_some())
                    .all(|o| candidate.covers_cube(o));
                if ok {
                    cube = candidate_cube;
                    break;
                }
            }
        }
        let cubes: Vec<Cube> = f
            .cubes()
            .iter()
            .enumerate()
            .map(|(j, c)| if j == i { cube.clone() } else { c.clone() })
            .collect();
        *f = cubes.into_iter().collect();
    }
}

/// Reference canonical order: sort by the remapped `{0,1,~}` string key.
fn canonical_order_ref(f: &mut Cover) {
    let mut cubes: Vec<Cube> = f.cubes().to_vec();
    cubes.sort_by_key(|c| {
        c.to_string()
            .chars()
            .map(|ch| if ch == '-' { '~' } else { ch })
            .collect::<String>()
    });
    *f = cubes.into_iter().collect();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn irredundant_matches_reference(seed in any::<u64>(), extra in cover_strategy(6, 4)) {
        // Start from an expanded cover plus some redundant random cubes so
        // the removal loop has real work to do.
        let (on, off) = partition_from_seed(seed, 6);
        if on.is_empty() {
            return Ok(());
        }
        let mut f = on.clone();
        expand(&mut f, &off);
        for c in extra.cubes() {
            if off.cubes().iter().all(|o| o.intersect(c).is_none()) {
                f.push(c.clone());
            }
        }
        let mut reference = f.clone();
        irredundant(&mut f, &on);
        irredundant_ref(&mut reference, &on);
        prop_assert!(covers_equal(&f, &reference), "{f} vs {reference}");
    }

    #[test]
    fn reduce_matches_reference(seed in any::<u64>()) {
        let (on, off) = partition_from_seed(seed, 6);
        if on.is_empty() {
            return Ok(());
        }
        let mut f = on.clone();
        expand(&mut f, &off);
        irredundant(&mut f, &on);
        let mut reference = f.clone();
        reduce(&mut f, &on);
        reduce_ref(&mut reference, &on);
        prop_assert!(covers_equal(&f, &reference), "{f} vs {reference}");
    }

    #[test]
    fn canonical_order_matches_reference(f in cover_strategy(7, 10)) {
        let mut a = f.clone();
        let mut b = f.clone();
        canonical_order(&mut a);
        canonical_order_ref(&mut b);
        prop_assert!(covers_equal(&a, &b), "{a} vs {b}");
    }

    #[test]
    fn expand_contract_and_primality(seed in any::<u64>()) {
        let (on, off) = partition_from_seed(seed, 6);
        if on.is_empty() {
            return Ok(());
        }
        let mut f = on.clone();
        expand(&mut f, &off);
        let mut reference = on.clone();
        expand_ref(&mut reference, &off);
        // Contract: still covers the input, still avoids the off-set —
        // exactly like the reference.
        prop_assert!(f.covers_cover(&on), "expand lost on-points: {f} vs {on}");
        prop_assert!(!f.intersects(&off), "expand hit the off-set: {f} vs {off}");
        prop_assert!(reference.covers_cover(&on));
        prop_assert!(!reference.intersects(&off));
        // Primality: no literal of any result cube can be raised further.
        for c in f.cubes() {
            for v in 0..6 {
                if c.get(v) == Literal::DontCare {
                    continue;
                }
                let mut raised = c.clone();
                raised.set(v, Literal::DontCare);
                prop_assert!(
                    off.cubes().iter().any(|o| o.intersect(&raised).is_some()),
                    "cube {c} of {f} is not prime at variable {v}"
                );
            }
        }
    }

    #[test]
    fn minimize_implicit_matches_explicit_on_partitions(seed in any::<u64>()) {
        // The implicit-cover minimiser must be byte-identical to the
        // explicit minimiser on the canonically ordered minterm covers of
        // the same point sets — the contract the implicit SG baseline
        // rests on.
        let width = 6;
        let (mut on, mut off) = partition_from_seed(seed, width);
        canonical_order(&mut on);
        canonical_order(&mut off);
        let mut pool = ImplicitPool::new(width);
        let on_set = pool.cover_set(&on);
        let off_set = pool.cover_set(&off);
        let implicit = minimize_implicit(&mut pool, on_set, off_set);
        let explicit = if on.is_empty() { on.clone() } else { minimize(&on, &off) };
        prop_assert!(
            covers_equal(&implicit, &explicit),
            "{implicit} vs {explicit}"
        );
    }

    #[test]
    fn minimize_exact_implicit_matches_explicit(seed in any::<u64>()) {
        let width = 5;
        let (mut on, mut off) = partition_from_seed(seed, width);
        canonical_order(&mut on);
        canonical_order(&mut off);
        let mut pool = ImplicitPool::new(width);
        let on_set = pool.cover_set(&on);
        let off_set = pool.cover_set(&off);
        let budget = QmBudget::default();
        let implicit = minimize_exact_implicit(&mut pool, on_set, off_set, &budget);
        let explicit = if on.is_empty() {
            Some(Cover::empty(width))
        } else {
            minimize_exact(&on, &off, &budget)
        };
        match (implicit, explicit) {
            (Some(a), Some(b)) => prop_assert!(covers_equal(&a, &b), "{a} vs {b}"),
            (None, None) => {}
            (a, b) => prop_assert!(false, "give-up verdicts differ: {a:?} vs {b:?}"),
        }
    }

    #[test]
    fn implicit_set_roundtrips_through_minterms(f in cover_strategy(6, 6)) {
        // cover → implicit set → materialised minterms must preserve the
        // point set exactly, and the minterm cover must come back sorted.
        let mut pool = ImplicitPool::new(6);
        let set = pool.cover_set(&f);
        let minterms = pool.minterms_cover(set);
        for bits in assignments(6) {
            prop_assert_eq!(minterms.covers_bits(&bits), f.covers_bits(&bits));
        }
        let mut sorted = minterms.clone();
        canonical_order(&mut sorted);
        prop_assert!(covers_equal(&minterms, &sorted));
        prop_assert_eq!(pool.count(set), minterms.len() as u128);
    }

    #[test]
    fn contains_cube_agrees_with_exhaustive(f in cover_strategy(5, 5), c in cube_strategy(5)) {
        let contains = f.contains_cube(&c);
        let exhaustive = assignments(5).all(|bits| !c.covers_bits(&bits) || f.covers_bits(&bits));
        prop_assert_eq!(contains, exhaustive);
        prop_assert_eq!(f.covers_cube(&c), contains);
    }

    #[test]
    fn cube_intersects_agrees_with_intersect(a in cube_strategy(6), b in cube_strategy(6)) {
        prop_assert_eq!(a.intersects(&b), a.intersect(&b).is_some());
        prop_assert_eq!(a.disjoint(&b), a.intersect(&b).is_none());
    }
}

/// The multi-block (> 64 variable) containment path must agree with the
/// single-block fast path: embed a 6-variable problem in a 70-variable
/// space (the high variables stay free, so the function only depends on the
/// low ones).
#[test]
fn wide_contains_cube_agrees_with_narrow() {
    let widen = |s: &str| -> Cube {
        let mut wide = String::from(s);
        wide.push_str(&"-".repeat(64));
        Cube::from_str_cube(&wide)
    };
    let narrow = ["1---0-", "-01---", "--11--", "0----1", "------"];
    let targets = ["10--0-", "-011--", "111111", "0-----", "------"];
    for k in 1..=narrow.len() {
        let f_narrow: Cover = narrow[..k].iter().map(|s| Cube::from_str_cube(s)).collect();
        let f_wide: Cover = narrow[..k].iter().map(|s| widen(s)).collect();
        for t in targets {
            assert_eq!(
                f_wide.contains_cube(&widen(t)),
                f_narrow.contains_cube(&Cube::from_str_cube(t)),
                "cover {f_narrow} target {t}"
            );
        }
    }
}
