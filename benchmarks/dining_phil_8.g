.model dining-philosophers-8
.outputs l0 l1 l2 l3 l4 l5 l6 l7 r0 r1 r2 r3 r4 r5 r6 r7
.graph
l0+ r0+
r0+ l0-
l0- r0- f0
r0- l0+ f1
l1+ r1+
r1+ l1-
l1- r1- f1
r1- l1+ f2
l2+ r2+
r2+ l2-
l2- r2- f2
r2- l2+ f3
l3+ r3+
r3+ l3-
l3- r3- f3
r3- l3+ f4
l4+ r4+
r4+ l4-
l4- r4- f4
r4- l4+ f5
l5+ r5+
r5+ l5-
l5- r5- f5
r5- l5+ f6
l6+ r6+
r6+ l6-
l6- r6- f6
r6- l6+ f7
l7+ r7+
r7+ l7-
l7- r7- f7
r7- l7+ f0
f0 l0+ r7+
f1 r0+ l1+
f2 r1+ l2+
f3 r2+ l3+
f4 r3+ l4+
f5 r4+ l5+
f6 r5+ l6+
f7 r6+ l7+
.marking { f0 f1 f2 f3 f4 f5 f6 f7 <r0-,l0+> <r1-,l1+> <r2-,l2+> <r3-,l3+> <r4-,l4+> <r5-,l5+> <r6-,l6+> <r7-,l7+> }
.initial { l0=0 l1=0 l2=0 l3=0 l4=0 l5=0 l6=0 l7=0 r0=0 r1=0 r2=0 r3=0 r4=0 r5=0 r6=0 r7=0 }
.end
