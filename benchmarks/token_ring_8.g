.model token-ring-8
.outputs g0 g1 g2 g3 g4 g5 g6 g7
.graph
g0+ g1+ g7-
g1+ g0- g2+
g2+ g1- g3+
g3+ g2- g4+
g4+ g3- g5+
g5+ g4- g6+
g6+ g5- g7+
g7+ g6- g0+
g0- g1- g7+
g1- g0+ g2-
g2- g1+ g3-
g3- g2+ g4-
g4- g3+ g5-
g5- g4+ g6-
g6- g5+ g7-
g7- g6+ g0-
.marking { <g0+,g1+> <g2-,g1+> <g2-,g3-> <g3+,g4+> <g5-,g4+> <g6-,g5+> <g7-,g6+> <g7-,g0-> }
.initial { g0=1 g1=0 g2=0 g3=1 g4=0 g5=0 g6=0 g7=0 }
.end
