.model wide-arbiter-16
.inputs x0 x17
.outputs x1 x2 x3 x4 x5 x6 x7 x8 x9 x10 x11 x12 x13 x14 x15 x16
.graph
x0+ x9+ bus
x1+ x9- x10+ bus
x2+ x10- x11+ bus
x3+ x11- x12+ bus
x4+ x12- x13+ bus
x5+ x13- x14+ bus
x6+ x14- x15+ bus
x7+ x15- x16+ bus
x8+ x16- x17+ bus
x9+ x0- x1+ bus
x10+ x1- x2+ bus
x11+ x2- x3+ bus
x12+ x3- x4+ bus
x13+ x4- x5+ bus
x14+ x5- x6+ bus
x15+ x6- x7+ bus
x16+ x7- x8+ bus
x17+ x8- bus
x0- x9-
x1- x9+ x10-
x2- x10+ x11-
x3- x11+ x12-
x4- x12+ x13-
x5- x13+ x14-
x6- x14+ x15-
x7- x15+ x16-
x8- x16+ x17-
x9- x0+ x1-
x10- x1+ x2-
x11- x2+ x3-
x12- x3+ x4-
x13- x4+ x5-
x14- x5+ x6-
x15- x6+ x7-
x16- x7+ x8-
x17- x8+
bus x0+ x1+ x2+ x3+ x4+ x5+ x6+ x7+ x8+ x9+ x10+ x11+ x12+ x13+ x14+ x15+ x16+ x17+
.marking { <x9-,x0+> <x1-,x9+> <x10-,x1+> <x2-,x10+> <x11-,x2+> <x3-,x11+> <x12-,x3+> <x4-,x12+> <x13-,x4+> <x5-,x13+> <x14-,x5+> <x6-,x14+> <x15-,x6+> <x7-,x15+> <x16-,x7+> <x8-,x16+> <x17-,x8+> bus }
.initial { x0=0 x1=0 x2=0 x3=0 x4=0 x5=0 x6=0 x7=0 x8=0 x9=0 x10=0 x11=0 x12=0 x13=0 x14=0 x15=0 x16=0 x17=0 }
.end
