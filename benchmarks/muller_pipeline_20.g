.model muller-pipeline-20
.inputs r a
.outputs c1 c2 c3 c4 c5 c6 c7 c8 c9 c10 c11 c12 c13 c14 c15 c16 c17 c18 c19 c20
.graph
r+ c1+
c1+ r- c2+
c2+ c1- c3+
c3+ c2- c4+
c4+ c3- c5+
c5+ c4- c6+
c6+ c5- c7+
c7+ c6- c8+
c8+ c7- c9+
c9+ c8- c10+
c10+ c9- c11+
c11+ c10- c12+
c12+ c11- c13+
c13+ c12- c14+
c14+ c13- c15+
c15+ c14- c16+
c16+ c15- c17+
c17+ c16- c18+
c18+ c17- c19+
c19+ c18- c20+
c20+ c19- a+
a+ c20-
r- c1-
c1- r+ c2-
c2- c1+ c3-
c3- c2+ c4-
c4- c3+ c5-
c5- c4+ c6-
c6- c5+ c7-
c7- c6+ c8-
c8- c7+ c9-
c9- c8+ c10-
c10- c9+ c11-
c11- c10+ c12-
c12- c11+ c13-
c13- c12+ c14-
c14- c13+ c15-
c15- c14+ c16-
c16- c15+ c17-
c17- c16+ c18-
c18- c17+ c19-
c19- c18+ c20-
c20- c19+ a-
a- c20+
.marking { <c1-,r+> <c2-,c1+> <c3-,c2+> <c4-,c3+> <c5-,c4+> <c6-,c5+> <c7-,c6+> <c8-,c7+> <c9-,c8+> <c10-,c9+> <c11-,c10+> <c12-,c11+> <c13-,c12+> <c14-,c13+> <c15-,c14+> <c16-,c15+> <c17-,c16+> <c18-,c17+> <c19-,c18+> <c20-,c19+> <a-,c20+> }
.initial { r=0 c1=0 c2=0 c3=0 c4=0 c5=0 c6=0 c7=0 c8=0 c9=0 c10=0 c11=0 c12=0 c13=0 c14=0 c15=0 c16=0 c17=0 c18=0 c19=0 c20=0 a=0 }
.end
