.model wide-arbiter-20
.inputs x0 x21
.outputs x1 x2 x3 x4 x5 x6 x7 x8 x9 x10 x11 x12 x13 x14 x15 x16 x17 x18 x19 x20
.graph
x0+ x11+ bus
x1+ x11- x12+ bus
x2+ x12- x13+ bus
x3+ x13- x14+ bus
x4+ x14- x15+ bus
x5+ x15- x16+ bus
x6+ x16- x17+ bus
x7+ x17- x18+ bus
x8+ x18- x19+ bus
x9+ x19- x20+ bus
x10+ x20- x21+ bus
x11+ x0- x1+ bus
x12+ x1- x2+ bus
x13+ x2- x3+ bus
x14+ x3- x4+ bus
x15+ x4- x5+ bus
x16+ x5- x6+ bus
x17+ x6- x7+ bus
x18+ x7- x8+ bus
x19+ x8- x9+ bus
x20+ x9- x10+ bus
x21+ x10- bus
x0- x11-
x1- x11+ x12-
x2- x12+ x13-
x3- x13+ x14-
x4- x14+ x15-
x5- x15+ x16-
x6- x16+ x17-
x7- x17+ x18-
x8- x18+ x19-
x9- x19+ x20-
x10- x20+ x21-
x11- x0+ x1-
x12- x1+ x2-
x13- x2+ x3-
x14- x3+ x4-
x15- x4+ x5-
x16- x5+ x6-
x17- x6+ x7-
x18- x7+ x8-
x19- x8+ x9-
x20- x9+ x10-
x21- x10+
bus x0+ x1+ x2+ x3+ x4+ x5+ x6+ x7+ x8+ x9+ x10+ x11+ x12+ x13+ x14+ x15+ x16+ x17+ x18+ x19+ x20+ x21+
.marking { <x11-,x0+> <x1-,x11+> <x12-,x1+> <x2-,x12+> <x13-,x2+> <x3-,x13+> <x14-,x3+> <x4-,x14+> <x15-,x4+> <x5-,x15+> <x16-,x5+> <x6-,x16+> <x17-,x6+> <x7-,x17+> <x18-,x7+> <x8-,x18+> <x19-,x8+> <x9-,x19+> <x20-,x9+> <x10-,x20+> <x21-,x10+> bus }
.initial { x0=0 x1=0 x2=0 x3=0 x4=0 x5=0 x6=0 x7=0 x8=0 x9=0 x10=0 x11=0 x12=0 x13=0 x14=0 x15=0 x16=0 x17=0 x18=0 x19=0 x20=0 x21=0 }
.end
