# SI-W008: `b` only ever rises — no consistent binary encoding can cycle
# it.
.model w008-single-polarity
.inputs a b
.graph
a+ b+
b+ a-
a- a+
.marking { <a-,a+> }
.end
