# SI-W007: the place between `a+` and `a+/1` chains two rises of `a`
# without a fall in between.
.model w007-alternation
.inputs a
.graph
a+ a+/1
a+/1 a-
a- a+
.marking { <a-,a+> }
.end
