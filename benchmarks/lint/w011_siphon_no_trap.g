# SI-W011: the minimal siphon `{start}` contains no initially marked trap
# (its only consumer `x+` produces nothing back), so the Commoner-style
# deadlock-freedom certificate cannot be issued.
.model w011-siphon-no-trap
.outputs x
.graph
start x+
x+ x-
x- done
.marking { start }
.initial { x=0 }
.end
