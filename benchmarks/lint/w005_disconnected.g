# SI-W005: the `a` and `b` cycles share no place or transition — two
# weakly connected components.
.model w005-disconnected
.inputs a b
.graph
a+ a-
a- a+
b+ b-
b- b+
.marking { <a-,a+> <b-,b+> }
.end
