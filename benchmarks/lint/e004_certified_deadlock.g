# SI-E004: the `y` cycle is an unmarked siphon and the surviving chain
# `x+ → x-` admits no T-invariant, so every run of this 1-safety-certified
# net provably ends in a reachable dead marking.
.model e004-certified-deadlock
.outputs x y
.graph
start x+
x+ x-
x- done
y+ y-
y- y+
.marking { start }
.initial { x=0 y=0 }
.end
