# SI-W001: `unused` is declared but has no transitions at all.
.model w001-dead-signal
.inputs a
.outputs unused
.graph
a+ a-
a- a+
.marking { <a-,a+> }
.end
