# SI-W004: `b+` has no output place — every firing drains a token from the
# net.
.model w004-sink-transition
.inputs a b
.graph
a+ a-
a- a+
a+ b+
.marking { <a-,a+> }
.end
