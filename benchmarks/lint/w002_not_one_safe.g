# SI-W002: two tokens on one cycle — the unary-invariant cover cannot
# certify 1-safety (and indeed the net is unsafe).
.model w002-not-one-safe
.inputs a
.graph
a+ a-
a- a+
.marking { <a+,a-> <a-,a+> }
.end
