# SI-W010: the net has no T-invariant, so `a+` and `a-` can fire at most
# finitely often on any run.
.model w010-non-repeatable
.inputs a
.graph
p0 a+
a+ a-
a- p1
.marking { p0 }
.end
