# SI-E001: `a+` has no input place, so it would be enabled forever.
.model e001-source-transition
.inputs a b
.graph
a+ b+
b+ b-
b- b+
.marking { <b-,b+> }
.end
