# SI-W009: `p_acc` has a producer but no consumer — tokens pile up there.
.model w009-accumulator
.inputs a
.graph
a+ a-
a- a+
a+ p_acc
.marking { <a-,a+> }
.end
