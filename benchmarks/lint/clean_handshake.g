# Clean reference spec: no errors, no warnings — only the two info
# diagnostics (SI-I001 net class, SI-I002 invariant summary).
.model clean-handshake
.inputs req
.outputs ack
.graph
req+ ack+
ack+ req-
req- ack-
ack- req+
.marking { <ack-,req+> }
.initial { req=0 ack=0 }
.end
