# SI-E003: `eps` is a dummy (unlabelled) transition — both synthesis flows
# reject it.
.model e003-dummy
.inputs a
.dummy eps
.graph
a+ eps
eps a-
a- a+
.marking { <a-,a+> }
.end
