# SI-W006: `p0` and `p1` have identical presets, postsets and initial
# marking — one of them is redundant.
.model w006-duplicate-place
.inputs a
.graph
a+ p0
a+ p1
p0 a-
p1 a-
a- a+
.marking { <a-,a+> }
.end
