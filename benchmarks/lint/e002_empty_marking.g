# SI-E002: transitions exist but no place carries an initial token, so
# nothing can ever fire.
.model e002-empty-marking
.inputs a
.graph
a+ a-
a- a+
.marking { }
.end
