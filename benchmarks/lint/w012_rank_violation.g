# SI-W012: the kill transition `b+` consumes the cycle token without
# returning it, pushing rank(C) to 2 while the net has only 2 clusters —
# the free-choice rank condition rank = clusters − 1 fails, so no marking
# makes this net both live and safe.
.model w012-rank-violation
.outputs a b
.graph
p0 a+ b+
a+ p1
p1 a-
a- p0
.marking { p0 }
.initial { a=0 b=0 }
.end
