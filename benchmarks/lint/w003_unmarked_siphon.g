# SI-W003: the `b` cycle forms an unmarked siphon — `b+`/`b-` are
# structurally dead.
.model w003-unmarked-siphon
.inputs a b
.graph
a+ a-
a- a+
a+ b+
b+ b-
b- b+
.marking { <a-,a+> }
.end
