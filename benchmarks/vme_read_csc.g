.model vme-read-csc
.inputs dsr ldtack
.outputs lds d dtack
.internal csc0
.graph
dsr+ csc0+
lds+ ldtack+
ldtack+ d+
csc0+ lds+
d+ dtack+
dtack+ dsr-
dsr- csc0-
d- dtack- lds-
dtack- dsr+
lds- ldtack-
ldtack- csc0+
csc0- d-
.marking { <ldtack-,csc0+> <dtack-,dsr+> }
.initial { dsr=0 ldtack=0 lds=0 d=0 dtack=0 csc0=0 }
.end
