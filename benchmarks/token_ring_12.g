.model token-ring-12
.outputs g0 g1 g2 g3 g4 g5 g6 g7 g8 g9 g10 g11
.graph
g0+ g1+ g11-
g1+ g0- g2+
g2+ g1- g3+
g3+ g2- g4+
g4+ g3- g5+
g5+ g4- g6+
g6+ g5- g7+
g7+ g6- g8+
g8+ g7- g9+
g9+ g8- g10+
g10+ g9- g11+
g11+ g10- g0+
g0- g1- g11+
g1- g0+ g2-
g2- g1+ g3-
g3- g2+ g4-
g4- g3+ g5-
g5- g4+ g6-
g6- g5+ g7-
g7- g6+ g8-
g8- g7+ g9-
g9- g8+ g10-
g10- g9+ g11-
g11- g10+ g0-
.marking { <g0+,g1+> <g2-,g1+> <g2-,g3-> <g3+,g4+> <g5-,g4+> <g5-,g6-> <g6+,g7+> <g8-,g7+> <g8-,g9-> <g9+,g10+> <g11-,g10+> <g11-,g0-> }
.initial { g0=1 g1=0 g2=0 g3=1 g4=0 g5=0 g6=1 g7=0 g8=0 g9=1 g10=0 g11=0 }
.end
