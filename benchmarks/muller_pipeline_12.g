.model muller-pipeline-12
.inputs r a
.outputs c1 c2 c3 c4 c5 c6 c7 c8 c9 c10 c11 c12
.graph
r+ c1+
c1+ r- c2+
c2+ c1- c3+
c3+ c2- c4+
c4+ c3- c5+
c5+ c4- c6+
c6+ c5- c7+
c7+ c6- c8+
c8+ c7- c9+
c9+ c8- c10+
c10+ c9- c11+
c11+ c10- c12+
c12+ c11- a+
a+ c12-
r- c1-
c1- r+ c2-
c2- c1+ c3-
c3- c2+ c4-
c4- c3+ c5-
c5- c4+ c6-
c6- c5+ c7-
c7- c6+ c8-
c8- c7+ c9-
c9- c8+ c10-
c10- c9+ c11-
c11- c10+ c12-
c12- c11+ a-
a- c12+
.marking { <c1-,r+> <c2-,c1+> <c3-,c2+> <c4-,c3+> <c5-,c4+> <c6-,c5+> <c7-,c6+> <c8-,c7+> <c9-,c8+> <c10-,c9+> <c11-,c10+> <c12-,c11+> <a-,c12+> }
.initial { r=0 c1=0 c2=0 c3=0 c4=0 c5=0 c6=0 c7=0 c8=0 c9=0 c10=0 c11=0 c12=0 a=0 }
.end
