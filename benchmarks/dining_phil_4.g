.model dining-philosophers-4
.outputs l0 l1 l2 l3 r0 r1 r2 r3
.graph
l0+ r0+
r0+ l0-
l0- r0- f0
r0- l0+ f1
l1+ r1+
r1+ l1-
l1- r1- f1
r1- l1+ f2
l2+ r2+
r2+ l2-
l2- r2- f2
r2- l2+ f3
l3+ r3+
r3+ l3-
l3- r3- f3
r3- l3+ f0
f0 l0+ r3+
f1 r0+ l1+
f2 r1+ l2+
f3 r2+ l3+
.marking { f0 f1 f2 f3 <r0-,l0+> <r1-,l1+> <r2-,l2+> <r3-,l3+> }
.initial { l0=0 l1=0 l2=0 l3=0 r0=0 r1=0 r2=0 r3=0 }
.end
