//! Semi-modularity (output persistency) checking on the segment.
//!
//! The paper (§3.1): "The last general correctness criterion,
//! semi-modularity, can be checked on the STG-unfolding segment in linear
//! time." An excited non-input signal must not be disabled by any other
//! transition firing; on the occurrence net this shows up as two events in
//! *direct conflict* (sharing a preset condition) that can be co-enabled,
//! where the disabled one drives a non-input signal.

use si_stg::{SignalTransition, Stg};

use crate::build::StgUnfolding;
use crate::ids::{ConditionId, EventId};

/// A semi-modularity violation found on the segment.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SegmentPersistencyViolation {
    /// The condition both events compete for.
    pub condition: ConditionId,
    /// The event whose (non-input) signal change can be disabled.
    pub disabled: EventId,
    /// Its label.
    pub disabled_label: SignalTransition,
    /// The competing event whose firing disables it.
    pub by: EventId,
}

/// Checks semi-modularity on the segment.
///
/// Two consumers of one condition are reported when they can actually be
/// co-enabled (their remaining preset conditions are pairwise concurrent)
/// and the disabled event drives an output or internal signal.
///
/// # Examples
///
/// ```
/// use si_stg::suite::paper_fig1;
/// use si_unfolding::{check_segment_persistency, StgUnfolding, UnfoldingOptions};
///
/// # fn main() -> Result<(), si_unfolding::UnfoldError> {
/// let stg = paper_fig1();
/// let unf = StgUnfolding::build(&stg, &UnfoldingOptions::default())?;
/// assert!(check_segment_persistency(&stg, &unf).is_empty());
/// # Ok(())
/// # }
/// ```
pub fn check_segment_persistency(
    stg: &Stg,
    unf: &StgUnfolding,
) -> Vec<SegmentPersistencyViolation> {
    let mut violations = Vec::new();
    for b in unf.conditions() {
        let consumers = unf.consumers(b);
        if consumers.len() < 2 {
            continue;
        }
        for (i, &e1) in consumers.iter().enumerate() {
            let Some(l1) = unf.label(e1) else { continue };
            if !stg.signal_kind(l1.signal).is_implementable() {
                continue;
            }
            for (j, &e2) in consumers.iter().enumerate() {
                if i == j {
                    continue;
                }
                if co_enabled(unf, e1, e2, b) {
                    violations.push(SegmentPersistencyViolation {
                        condition: b,
                        disabled: e1,
                        disabled_label: l1,
                        by: e2,
                    });
                }
            }
        }
    }
    violations
}

/// Both events can be enabled at once: besides the shared condition, their
/// presets are pairwise concurrent (or shared).
fn co_enabled(unf: &StgUnfolding, e1: EventId, e2: EventId, shared: ConditionId) -> bool {
    for &b1 in unf.preset(e1) {
        for &b2 in unf.preset(e2) {
            if b1 == b2 || b1 == shared || b2 == shared {
                continue;
            }
            if !unf.conditions_co(b1, b2) {
                return false;
            }
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::{StgUnfolding, UnfoldingOptions};
    use si_stg::generators::muller_pipeline;
    use si_stg::suite::{paper_fig4ab, request_mux, vme_read_csc};
    use si_stg::{SignalKind, StgBuilder};

    fn build(stg: &Stg) -> StgUnfolding {
        StgUnfolding::build(stg, &UnfoldingOptions::default()).expect("builds")
    }

    #[test]
    fn clean_specs_have_no_violations() {
        for stg in [
            paper_fig4ab(),
            vme_read_csc(),
            request_mux(),
            muller_pipeline(3),
        ] {
            let unf = build(&stg);
            assert!(
                check_segment_persistency(&stg, &unf).is_empty(),
                "{} flagged",
                stg.name()
            );
        }
    }

    #[test]
    fn output_choice_flagged() {
        let mut b = StgBuilder::new();
        let x = b.signal("x", SignalKind::Output);
        let y = b.signal("y", SignalKind::Output);
        let px = b.place("choice");
        let x_p = b.rise(x);
        let y_p = b.rise(y);
        let x_m = b.fall(x);
        let y_m = b.fall(y);
        b.arc_pt(px, x_p);
        b.arc_pt(px, y_p);
        b.arc_tt(x_p, x_m);
        b.arc_tt(y_p, y_m);
        b.arc_tp(x_m, px);
        b.arc_tp(y_m, px);
        b.mark(px);
        b.initial_all_zero();
        let stg = b.build().expect("builds");
        let unf = build(&stg);
        let v = check_segment_persistency(&stg, &unf);
        assert!(!v.is_empty());
        // Both orderings are reported (x disabled by y and vice versa).
        assert!(v.len() >= 2);
    }

    #[test]
    fn input_choice_not_flagged() {
        let mut b = StgBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let px = b.place("choice");
        let x_p = b.rise(x);
        let y_p = b.rise(y);
        let x_m = b.fall(x);
        let y_m = b.fall(y);
        b.arc_pt(px, x_p);
        b.arc_pt(px, y_p);
        b.arc_tt(x_p, x_m);
        b.arc_tt(y_p, y_m);
        b.arc_tp(x_m, px);
        b.arc_tp(y_m, px);
        b.mark(px);
        b.initial_all_zero();
        let stg = b.build().expect("builds");
        let unf = build(&stg);
        assert!(check_segment_persistency(&stg, &unf).is_empty());
    }
}
