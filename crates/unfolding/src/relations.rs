//! Queries over a built segment: structure access, the causality /
//! concurrency relations, cuts, and the `next` / `first` instance sets the
//! synthesis algorithms are defined on.

use si_petri::{BitSet, Marking, PlaceId, TransitionId};
use si_stg::{BinaryCode, SignalId, SignalTransition, Stg};

use crate::build::StgUnfolding;
use crate::ids::{ConditionId, EventId};

impl StgUnfolding {
    /// Number of events, including the initial transition `⊥`.
    pub fn event_count(&self) -> usize {
        self.events.len()
    }

    /// Number of conditions.
    pub fn condition_count(&self) -> usize {
        self.conditions.len()
    }

    /// Iterates over all events (`⊥` first).
    pub fn events(&self) -> impl Iterator<Item = EventId> + '_ {
        (0..self.events.len() as u32).map(EventId)
    }

    /// Iterates over all conditions.
    pub fn conditions(&self) -> impl Iterator<Item = ConditionId> + '_ {
        (0..self.conditions.len() as u32).map(ConditionId)
    }

    /// The STG transition instantiated by `e` (`None` for `⊥`).
    pub fn transition(&self, e: EventId) -> Option<TransitionId> {
        self.events[e.index()].transition
    }

    /// The signal change labelling `e` (`None` for `⊥`).
    pub fn label(&self, e: EventId) -> Option<SignalTransition> {
        self.events[e.index()].label
    }

    /// Returns `true` if `e` is a cutoff event.
    pub fn is_cutoff(&self, e: EventId) -> bool {
        self.events[e.index()].cutoff
    }

    /// The preset conditions `•e`.
    pub fn preset(&self, e: EventId) -> &[ConditionId] {
        &self.events[e.index()].preset
    }

    /// The postset conditions `e•`.
    pub fn postset(&self, e: EventId) -> &[ConditionId] {
        &self.events[e.index()].postset
    }

    /// `⌈e⌉` as a bit set of event indices (includes `e`, excludes `⊥`).
    pub fn causes(&self, e: EventId) -> &BitSet {
        &self.events[e.index()].causes
    }

    /// `|⌈e⌉|`.
    pub fn local_size(&self, e: EventId) -> usize {
        self.events[e.index()].size
    }

    /// The binary code `λ(⌈e⌉)` reached by firing the local configuration.
    pub fn code(&self, e: EventId) -> &BinaryCode {
        &self.codes[e.index()]
    }

    /// The initial binary code `v₀` (declared or inferred from `first`).
    pub fn initial_code(&self) -> &BinaryCode {
        &self.initial_code
    }

    /// Number of signals of the originating STG.
    pub fn signal_count(&self) -> usize {
        self.signal_count
    }

    /// The minimal stable cut `c_min_s(e) = Cut(⌈e⌉)`: the state reached by
    /// firing `e` with its minimal set of causes.
    pub fn min_stable_cut(&self, e: EventId) -> &[ConditionId] {
        &self.events[e.index()].cut
    }

    /// The minimal excitation cut `c_min_e(e) = Cut(⌈e⌉ \ {e})`: the first
    /// state at which `e` becomes enabled.
    pub fn min_excitation_cut(&self, e: EventId) -> Vec<ConditionId> {
        let ev = &self.events[e.index()];
        let mut cut: Vec<ConditionId> = ev
            .cut
            .iter()
            .copied()
            .filter(|b| !ev.postset.contains(b))
            .collect();
        cut.extend(ev.preset.iter().copied());
        cut.sort();
        cut
    }

    /// `Mark(⌈e⌉)`: the final state of the local configuration, as a marking
    /// of the original STG.
    pub fn final_marking(&self, e: EventId) -> &Marking {
        &self.events[e.index()].marking
    }

    /// The original place instantiated by condition `b`.
    pub fn place(&self, b: ConditionId) -> PlaceId {
        self.conditions[b.index()].place
    }

    /// The event that produced `b` (`⊥` for initial conditions).
    pub fn producer(&self, b: ConditionId) -> EventId {
        self.conditions[b.index()].producer
    }

    /// The events consuming `b`.
    pub fn consumers(&self, b: ConditionId) -> &[EventId] {
        &self.conditions[b.index()].consumers
    }

    /// Returns `true` if `b` was produced by a cutoff event (the segment is
    /// not extended past it).
    pub fn is_frozen(&self, b: ConditionId) -> bool {
        self.conditions[b.index()].frozen
    }

    /// Returns `true` if the two conditions are concurrent.
    pub fn conditions_co(&self, a: ConditionId, b: ConditionId) -> bool {
        self.co.get(a.index(), b.index())
    }

    /// Iterates the conditions concurrent with `b`, in index order.
    pub fn co_conditions(&self, b: ConditionId) -> impl Iterator<Item = ConditionId> + '_ {
        crate::comat::iter_bits(self.co.row(b.index())).map(|i| ConditionId(i as u32))
    }

    /// Causal order on events: `a ≤ b` iff `a ∈ ⌈b⌉` (with `⊥ ≤` everything).
    pub fn precedes_or_equal(&self, a: EventId, b: EventId) -> bool {
        a.is_root() || self.events[b.index()].causes.contains(a.index())
    }

    /// True concurrency on events: neither ordered nor in conflict.
    pub fn events_co(&self, a: EventId, b: EventId) -> bool {
        if a == b || a.is_root() || b.is_root() {
            return false;
        }
        if self.precedes_or_equal(a, b) || self.precedes_or_equal(b, a) {
            return false;
        }
        // Unordered events are concurrent iff their postsets can coexist.
        self.events[a.index()].postset.iter().any(|&ba| {
            self.events[b.index()]
                .postset
                .iter()
                .any(|&bb| self.conditions_co(ba, bb))
        })
    }

    /// Returns `true` if event `e` can fire while condition `b` is marked:
    /// `b` is concurrent with every preset condition of `e`.
    pub fn event_co_condition(&self, e: EventId, b: ConditionId) -> bool {
        if e.is_root() {
            return false;
        }
        let preset = &self.events[e.index()].preset;
        if preset.contains(&b) {
            return false;
        }
        preset.iter().all(|&p| self.co.get(b.index(), p.index()))
    }

    /// Causal order between a condition and an event: `b < e` iff some
    /// consumer of `b` belongs to `⌈e⌉` (i.e. `e` can only fire after `b`
    /// was marked and consumed) or `b ∈ •e`.
    pub fn condition_precedes_event(&self, b: ConditionId, e: EventId) -> bool {
        if self.events[e.index()].preset.contains(&b) {
            return true;
        }
        self.conditions[b.index()]
            .consumers
            .iter()
            .any(|&c| self.events[e.index()].causes.contains(c.index()))
    }

    /// Causal order between an event and a condition: `e ≤ b` iff the
    /// producer of `b` is `e` or causally after `e`.
    pub fn event_precedes_condition(&self, e: EventId, b: ConditionId) -> bool {
        let prod = self.conditions[b.index()].producer;
        if prod.is_root() {
            return e.is_root();
        }
        self.precedes_or_equal(e, prod)
    }

    /// `first(a)`: the instances of signal `signal` first reached from the
    /// beginning of the segment (no other instance of the signal in their
    /// local configuration).
    pub fn first_instances(&self, signal: SignalId) -> Vec<EventId> {
        self.events()
            .filter(|&e| {
                let Some(l) = self.label(e) else { return false };
                if l.signal != signal {
                    return false;
                }
                // No earlier instance of the same signal in ⌈e⌉ \ {e}.
                self.events[e.index()]
                    .causes
                    .iter()
                    .filter(|&c| c != e.index())
                    .all(|c| self.events[c].label.map(|l2| l2.signal) != Some(signal))
            })
            .collect()
    }

    /// `next(e)`: the instances of `e`'s signal causally reachable from `e`
    /// without an intermediate instance of the same signal.
    ///
    /// # Panics
    ///
    /// Panics if `e` is the initial transition `⊥` (it has no signal); use
    /// [`first_instances`](Self::first_instances) for the slice entered at
    /// the initial state.
    pub fn next_instances(&self, e: EventId) -> Vec<EventId> {
        let label = self.label(e).map(|l| l.signal);
        assert!(
            label.is_some(),
            "next_instances of the unlabelled initial event ⊥"
        );
        let Some(signal) = label else {
            return Vec::new();
        };
        let mut out = Vec::new();
        let mut seen_events = BitSet::new();
        let mut stack: Vec<EventId> = vec![e];
        while let Some(cur) = stack.pop() {
            for &b in &self.events[cur.index()].postset {
                for &consumer in &self.conditions[b.index()].consumers {
                    if !seen_events.insert(consumer.index()) {
                        continue;
                    }
                    // Non-root events always carry a label (dummy-free
                    // prefixes are enforced at unfold time), and ⊥ consumes
                    // nothing, so every consumer here is labelled.
                    let Some(l) = self.events[consumer.index()].label else {
                        unreachable!("unlabelled event consuming a condition");
                    };
                    if l.signal == signal {
                        out.push(consumer);
                    } else {
                        stack.push(consumer);
                    }
                }
            }
        }
        out.sort();
        out.dedup();
        out
    }

    /// All instances of `signal` in the segment.
    pub fn instances_of(&self, signal: SignalId) -> Vec<EventId> {
        self.events()
            .filter(|&e| self.label(e).map(|l| l.signal) == Some(signal))
            .collect()
    }

    /// Renders a human-readable name for `e`, e.g. `e3:c+`.
    pub fn event_name(&self, stg: &Stg, e: EventId) -> String {
        match self.transition(e) {
            Some(t) => format!("{e}:{}", stg.transition_label_string(t)),
            None => "⊥".to_owned(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::UnfoldingOptions;
    use si_stg::suite::{paper_fig1, paper_fig4ab};
    use si_stg::Polarity;

    fn fig1() -> (si_stg::Stg, StgUnfolding) {
        let stg = paper_fig1();
        let unf = StgUnfolding::build(&stg, &UnfoldingOptions::default()).expect("builds");
        (stg, unf)
    }

    fn event_by_name(stg: &si_stg::Stg, unf: &StgUnfolding, name: &str) -> EventId {
        unf.events()
            .find(|&e| {
                unf.transition(e)
                    .map(|t| stg.transition_label_string(t) == name)
                    .unwrap_or(false)
            })
            .unwrap_or_else(|| panic!("no event labelled {name}"))
    }

    #[test]
    fn codes_match_paper_fig2() {
        let (stg, unf) = fig1();
        // λ(⌈+a⌉) = 100, λ(⌈-a⌉) = 011 (after a,b,c up then a down), etc.
        let a_plus = event_by_name(&stg, &unf, "a+");
        assert_eq!(unf.code(a_plus).to_string(), "100");
        let a_minus = event_by_name(&stg, &unf, "a-");
        assert_eq!(unf.code(a_minus).to_string(), "011");
        assert_eq!(unf.initial_code().to_string(), "000");
        assert_eq!(unf.code(EventId::ROOT).to_string(), "000");
    }

    #[test]
    fn min_cuts_of_fig1() {
        let (stg, unf) = fig1();
        let a_plus = event_by_name(&stg, &unf, "a+");
        // c_min_s(+a) = {p2, p3}; c_min_e(+a) = {p1}.
        let stable: Vec<String> = unf
            .min_stable_cut(a_plus)
            .iter()
            .map(|&b| stg.net().place_name(unf.place(b)).to_owned())
            .collect();
        assert_eq!(stable, vec!["p2", "p3"]);
        let excitation: Vec<String> = unf
            .min_excitation_cut(a_plus)
            .iter()
            .map(|&b| stg.net().place_name(unf.place(b)).to_owned())
            .collect();
        assert_eq!(excitation, vec!["p1"]);
    }

    #[test]
    fn concurrency_between_b_and_c_instances() {
        let (stg, unf) = fig1();
        // +b (the p2→p5 instance) and +c (the p3→{p6,p8} instance) are
        // concurrent; find them by their codes/structure.
        let b_instances = unf.instances_of(stg.signal_by_name("b").expect("b"));
        let c_instances = unf.instances_of(stg.signal_by_name("c").expect("c"));
        let concurrent_pairs: Vec<(EventId, EventId)> = b_instances
            .iter()
            .flat_map(|&be| c_instances.iter().map(move |&ce| (be, ce)))
            .filter(|&(be, ce)| unf.events_co(be, ce))
            .collect();
        assert_eq!(concurrent_pairs.len(), 1, "exactly +b'' co +c''");
    }

    #[test]
    fn next_instances_in_fig1() {
        let (stg, unf) = fig1();
        let a_plus = event_by_name(&stg, &unf, "a+");
        let next = unf.next_instances(a_plus);
        assert_eq!(next.len(), 1);
        assert_eq!(unf.label(next[0]).map(|l| l.polarity), Some(Polarity::Fall));
        // next of +b'' should be -b (through +c, -a, -c).
        let sb = stg.signal_by_name("b").expect("b");
        for &e in &unf.instances_of(sb) {
            if unf.label(e).map(|l| l.polarity) == Some(Polarity::Rise) {
                let next = unf.next_instances(e);
                assert!(next.iter().all(|&x| {
                    unf.label(x).map(|l| (l.signal, l.polarity)) == Some((sb, Polarity::Fall))
                }));
            }
        }
    }

    #[test]
    fn first_instances_in_fig1() {
        let (stg, unf) = fig1();
        let sb = stg.signal_by_name("b").expect("b");
        let firsts = unf.first_instances(sb);
        // Both +b instances are first (they are in conflicting branches).
        assert_eq!(firsts.len(), 2);
        let sc = stg.signal_by_name("c").expect("c");
        assert_eq!(unf.first_instances(sc).len(), 2);
    }

    #[test]
    fn event_condition_concurrency_fig4() {
        let stg = paper_fig4ab();
        let unf = StgUnfolding::build(&stg, &UnfoldingOptions::default()).expect("builds");
        let d_plus = event_by_name(&stg, &unf, "d+");
        // p2 (input of +b) is concurrent with +d.
        let p2 = unf
            .conditions()
            .find(|&b| stg.net().place_name(unf.place(b)) == "p2")
            .expect("p2 instance");
        assert!(unf.event_co_condition(d_plus, p2));
        // p4 (the very input of +d) is not.
        let p4 = unf
            .conditions()
            .find(|&b| stg.net().place_name(unf.place(b)) == "p4")
            .expect("p4 instance");
        assert!(!unf.event_co_condition(d_plus, p4));
    }

    #[test]
    fn causal_orders() {
        let (stg, unf) = fig1();
        let a_plus = event_by_name(&stg, &unf, "a+");
        let a_minus = event_by_name(&stg, &unf, "a-");
        assert!(unf.precedes_or_equal(a_plus, a_minus));
        assert!(!unf.precedes_or_equal(a_minus, a_plus));
        assert!(unf.precedes_or_equal(EventId::ROOT, a_plus));
        // Condition/event order: p1 precedes a+.
        let p1 = unf
            .conditions()
            .find(|&b| stg.net().place_name(unf.place(b)) == "p1" && unf.producer(b).is_root())
            .expect("initial p1");
        assert!(unf.condition_precedes_event(p1, a_plus));
        assert!(!unf.event_precedes_condition(a_plus, p1));
    }
}
