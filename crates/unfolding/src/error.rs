//! Error types for unfolding construction.

use std::error::Error;
use std::fmt;

/// Errors raised while constructing an STG-unfolding segment.
///
/// The paper (§3.1) notes that a segment "can only be constructed for an STG
/// specification satisfying boundedness and consistent state assignment
/// criteria" — violations of either are detected during construction and
/// reported here.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum UnfoldError {
    /// The STG violates consistent state assignment.
    Inconsistent {
        /// The offending signal's name.
        signal: String,
        /// The offending transition instance's label (e.g. `a+/2`).
        transition: String,
        /// Human-readable explanation.
        detail: String,
    },
    /// The underlying net is not 1-safe (two concurrent instances of the
    /// same place).
    Unsafe {
        /// The offending place's name.
        place: String,
    },
    /// Storing one more event would exceed the event budget (the STG may
    /// be unbounded, or simply too large for the configured limit).
    BudgetExceeded {
        /// The event budget that was exceeded.
        budget: usize,
        /// Events stored when construction gave up (`⊥` included).
        events: usize,
        /// Label of the transition whose next instance did not fit.
        next_transition: String,
    },
    /// The STG contains dummy (unlabelled) transitions, which the synthesis
    /// algorithms do not support.
    DummyTransitions,
    /// A transition has two arcs from the same place (non-unit arc weight),
    /// which 1-safe STGs cannot fire.
    DuplicatePresetPlace {
        /// The offending transition's label.
        transition: String,
    },
}

impl fmt::Display for UnfoldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnfoldError::Inconsistent {
                signal,
                transition,
                detail,
            } => {
                write!(
                    f,
                    "inconsistent state assignment on `{signal}` at instance \
                     `{transition}`: {detail}"
                )
            }
            UnfoldError::Unsafe { place } => {
                write!(f, "net is not 1-safe: place `{place}` can hold two tokens")
            }
            UnfoldError::BudgetExceeded {
                budget,
                events,
                next_transition,
            } => {
                write!(
                    f,
                    "unfolding exceeded the budget of {budget} events \
                     ({events} stored, next instance of `{next_transition}` \
                     does not fit)"
                )
            }
            UnfoldError::DummyTransitions => {
                f.write_str("STG contains dummy transitions; label every transition")
            }
            UnfoldError::DuplicatePresetPlace { transition } => {
                write!(
                    f,
                    "transition `{transition}` has a duplicated preset place (arc weight > 1)"
                )
            }
        }
    }
}

impl Error for UnfoldError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let inconsistent = UnfoldError::Inconsistent {
            signal: "a".into(),
            transition: "a+/2".into(),
            detail: "x".into(),
        };
        assert!(inconsistent.to_string().contains("`a`"));
        assert!(inconsistent.to_string().contains("`a+/2`"));
        assert!(UnfoldError::Unsafe { place: "p".into() }
            .to_string()
            .contains("1-safe"));
        let budget = UnfoldError::BudgetExceeded {
            budget: 5,
            events: 5,
            next_transition: "req+".into(),
        };
        assert!(budget.to_string().contains('5'));
        assert!(budget.to_string().contains("`req+`"));
        assert!(UnfoldError::DummyTransitions.to_string().contains("dummy"));
    }
}
