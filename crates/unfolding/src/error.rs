//! Error types for unfolding construction.

use std::error::Error;
use std::fmt;

/// Errors raised while constructing an STG-unfolding segment.
///
/// The paper (§3.1) notes that a segment "can only be constructed for an STG
/// specification satisfying boundedness and consistent state assignment
/// criteria" — violations of either are detected during construction and
/// reported here.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum UnfoldError {
    /// The STG violates consistent state assignment.
    Inconsistent {
        /// The offending signal's name.
        signal: String,
        /// Human-readable explanation.
        detail: String,
    },
    /// The underlying net is not 1-safe (two concurrent instances of the
    /// same place).
    Unsafe {
        /// The offending place's name.
        place: String,
    },
    /// The segment exceeded the event budget (the STG may be unbounded, or
    /// simply too large for the configured limit).
    BudgetExceeded {
        /// The event budget that was exceeded.
        budget: usize,
    },
    /// The STG contains dummy (unlabelled) transitions, which the synthesis
    /// algorithms do not support.
    DummyTransitions,
    /// A transition has two arcs from the same place (non-unit arc weight),
    /// which 1-safe STGs cannot fire.
    DuplicatePresetPlace {
        /// The offending transition's label.
        transition: String,
    },
}

impl fmt::Display for UnfoldError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            UnfoldError::Inconsistent { signal, detail } => {
                write!(f, "inconsistent state assignment on `{signal}`: {detail}")
            }
            UnfoldError::Unsafe { place } => {
                write!(f, "net is not 1-safe: place `{place}` can hold two tokens")
            }
            UnfoldError::BudgetExceeded { budget } => {
                write!(f, "unfolding exceeded the budget of {budget} events")
            }
            UnfoldError::DummyTransitions => {
                f.write_str("STG contains dummy transitions; label every transition")
            }
            UnfoldError::DuplicatePresetPlace { transition } => {
                write!(
                    f,
                    "transition `{transition}` has a duplicated preset place (arc weight > 1)"
                )
            }
        }
    }
}

impl Error for UnfoldError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(UnfoldError::Inconsistent {
            signal: "a".into(),
            detail: "x".into()
        }
        .to_string()
        .contains("`a`"));
        assert!(UnfoldError::Unsafe { place: "p".into() }
            .to_string()
            .contains("1-safe"));
        assert!(UnfoldError::BudgetExceeded { budget: 5 }
            .to_string()
            .contains('5'));
        assert!(UnfoldError::DummyTransitions.to_string().contains("dummy"));
    }
}
