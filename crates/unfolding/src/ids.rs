//! Node identifiers for the occurrence net.

use std::fmt;

/// Index of an event (transition instance) in a
/// [`StgUnfolding`](crate::StgUnfolding).
///
/// Event 0 is always the virtual *initial transition* `⊥` whose postset maps
/// onto the initial marking (the paper, §3.1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(pub u32);

/// Index of a condition (place instance) in a
/// [`StgUnfolding`](crate::StgUnfolding).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConditionId(pub u32);

impl EventId {
    /// The virtual initial transition `⊥`.
    pub const ROOT: EventId = EventId(0);

    /// The id as a `usize`, for indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Returns `true` for the initial transition `⊥`.
    pub fn is_root(self) -> bool {
        self.0 == 0
    }
}

impl ConditionId {
    /// The id as a `usize`, for indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_root() {
            f.write_str("⊥")
        } else {
            write!(f, "e{}", self.0)
        }
    }
}

impl fmt::Display for ConditionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "b{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn root_display() {
        assert_eq!(EventId::ROOT.to_string(), "⊥");
        assert_eq!(EventId(3).to_string(), "e3");
        assert_eq!(ConditionId(7).to_string(), "b7");
        assert!(EventId::ROOT.is_root());
        assert!(!EventId(1).is_root());
    }
}
