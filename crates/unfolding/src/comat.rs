//! Packed concurrency-relation matrix over conditions.
//!
//! The unfolding algorithm consults the condition concurrency relation `co`
//! on every extension probe — `O(|preset|)` membership tests per candidate
//! partner — so its representation is the hottest data structure in segment
//! construction. Earlier revisions kept one sparse
//! [`BitSet`](si_petri::BitSet) per condition; this module packs the whole
//! symmetric relation into a single stride-aligned `Vec<u64>` so a row is a
//! contiguous word slice, row intersection (the `co(e) = ⋂ co(•e)` step) is
//! a word-wise AND, and growth re-strides geometrically instead of
//! reallocating per condition.

/// Symmetric bit matrix over condition indices, one stride-aligned row of
/// `u64` words per condition.
#[derive(Debug, Clone, Default)]
pub(crate) struct CoMatrix {
    words: Vec<u64>,
    /// Words per row; doubled (geometric re-stride) when the condition
    /// count outgrows `stride * 64`.
    stride: usize,
    rows: usize,
}

impl CoMatrix {
    pub fn new() -> Self {
        CoMatrix {
            words: Vec::new(),
            stride: 1,
            rows: 0,
        }
    }

    /// Appends an all-zero row, re-striding first if the new index would
    /// not fit in the current row width.
    pub fn push_row(&mut self) -> usize {
        let id = self.rows;
        if id >= self.stride * 64 {
            self.restride(self.stride * 2);
        }
        self.rows += 1;
        self.words.resize(self.rows * self.stride, 0);
        id
    }

    fn restride(&mut self, new_stride: usize) {
        debug_assert!(new_stride > self.stride);
        let mut words = vec![0u64; self.rows * new_stride];
        for r in 0..self.rows {
            words[r * new_stride..r * new_stride + self.stride]
                .copy_from_slice(&self.words[r * self.stride..(r + 1) * self.stride]);
        }
        self.words = words;
        self.stride = new_stride;
    }

    /// Marks `a co b` (symmetrically). Both rows must exist.
    pub fn set_pair(&mut self, a: usize, b: usize) {
        debug_assert!(a < self.rows && b < self.rows);
        self.words[a * self.stride + b / 64] |= 1u64 << (b % 64);
        self.words[b * self.stride + a / 64] |= 1u64 << (a % 64);
    }

    /// Returns `true` if `a co b`.
    pub fn get(&self, a: usize, b: usize) -> bool {
        debug_assert!(a < self.rows && b < self.rows);
        self.words[a * self.stride + b / 64] & (1u64 << (b % 64)) != 0
    }

    /// The packed row of `a`.
    pub fn row(&self, a: usize) -> &[u64] {
        &self.words[a * self.stride..(a + 1) * self.stride]
    }

    /// Word-wise AND of the given rows, as the sorted indices of the
    /// surviving bits. An empty row list yields the empty set.
    pub fn intersect_rows(&self, rows: &[usize]) -> Vec<usize> {
        let Some((&first, rest)) = rows.split_first() else {
            return Vec::new();
        };
        let mut acc: Vec<u64> = self.row(first).to_vec();
        for &r in rest {
            for (w, &other) in acc.iter_mut().zip(self.row(r)) {
                *w &= other;
            }
        }
        iter_bits(&acc).collect()
    }
}

/// Iterates the indices of the set bits in a packed word slice.
pub(crate) fn iter_bits(words: &[u64]) -> impl Iterator<Item = usize> + '_ {
    words.iter().enumerate().flat_map(|(wi, &w)| {
        let mut bits = w;
        std::iter::from_fn(move || {
            if bits == 0 {
                return None;
            }
            let tz = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            Some(wi * 64 + tz)
        })
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pairs_survive_restride() {
        let mut m = CoMatrix::new();
        let mut last = 0;
        for _ in 0..300 {
            last = m.push_row();
        }
        assert_eq!(last, 299);
        m.set_pair(0, 63);
        m.set_pair(0, 64);
        m.set_pair(2, 299);
        for _ in 0..200 {
            m.push_row(); // forces another re-stride past 512 columns
        }
        m.set_pair(3, 450);
        assert!(m.get(0, 63) && m.get(63, 0));
        assert!(m.get(0, 64) && m.get(64, 0));
        assert!(m.get(2, 299) && m.get(299, 2));
        assert!(m.get(3, 450) && m.get(450, 3));
        assert!(!m.get(1, 2));
    }

    #[test]
    fn row_intersection_matches_pairwise_membership() {
        let mut m = CoMatrix::new();
        for _ in 0..130 {
            m.push_row();
        }
        for b in [3usize, 70, 129] {
            m.set_pair(0, b);
            m.set_pair(1, b);
        }
        m.set_pair(0, 5); // only in row 0
        assert_eq!(m.intersect_rows(&[0, 1]), vec![3, 70, 129]);
        assert_eq!(m.intersect_rows(&[]), Vec::<usize>::new());
        assert_eq!(m.intersect_rows(&[0]), vec![3, 5, 70, 129]);
    }

    #[test]
    fn iter_bits_walks_word_boundaries() {
        let words = [1u64 << 63 | 1, 1u64 << 1];
        assert_eq!(iter_bits(&words).collect::<Vec<_>>(), vec![0, 63, 65]);
    }
}
