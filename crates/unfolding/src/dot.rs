//! Graphviz DOT export of a segment, for debugging and documentation.

use std::fmt::Write as _;

use si_stg::Stg;

use crate::build::StgUnfolding;

/// Renders the segment in Graphviz DOT syntax. Events are boxes labelled
/// with the instantiated signal change and their binary code; cutoff events
/// are double-bordered; conditions carry their original place names.
///
/// # Examples
///
/// ```
/// use si_stg::suite::paper_fig1;
/// use si_unfolding::{unfolding_to_dot, StgUnfolding, UnfoldingOptions};
///
/// # fn main() -> Result<(), si_unfolding::UnfoldError> {
/// let stg = paper_fig1();
/// let unf = StgUnfolding::build(&stg, &UnfoldingOptions::default())?;
/// let dot = unfolding_to_dot(&stg, &unf);
/// assert!(dot.contains("digraph unfolding"));
/// # Ok(())
/// # }
/// ```
pub fn unfolding_to_dot(stg: &Stg, unf: &StgUnfolding) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph unfolding {{");
    let _ = writeln!(out, "  rankdir=TB;");
    for e in unf.events() {
        let label = match unf.transition(e) {
            Some(t) => format!("{} [{}]", stg.transition_label_string(t), unf.code(e)),
            None => format!("⊥ [{}]", unf.code(e)),
        };
        let peripheries = if unf.is_cutoff(e) { 2 } else { 1 };
        let _ = writeln!(
            out,
            "  E{} [label=\"{}\", shape=box, peripheries={}];",
            e.0, label, peripheries
        );
    }
    for b in unf.conditions() {
        let _ = writeln!(
            out,
            "  B{} [label=\"{}\", shape=circle];",
            b.0,
            stg.net().place_name(unf.place(b))
        );
    }
    for e in unf.events() {
        for &b in unf.preset(e) {
            let _ = writeln!(out, "  B{} -> E{};", b.0, e.0);
        }
        for &b in unf.postset(e) {
            let _ = writeln!(out, "  E{} -> B{};", e.0, b.0);
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::build::UnfoldingOptions;
    use si_stg::suite::paper_fig1;

    #[test]
    fn dot_shows_cutoffs_and_codes() {
        let stg = paper_fig1();
        let unf = StgUnfolding::build(&stg, &UnfoldingOptions::default()).expect("builds");
        let dot = unfolding_to_dot(&stg, &unf);
        assert!(dot.contains("peripheries=2")); // the -b cutoff
        assert!(dot.contains("[000]")); // the initial code appears
        assert!(dot.contains("a+"));
    }
}
