//! Construction of the finite STG-unfolding segment.
//!
//! The segment is a prefix of the (possibly infinite) occurrence-net
//! unfolding of the STG's underlying net, truncated at *cutoff* events —
//! events whose firing reaches a marking already represented by a smaller
//! configuration (McMillan 1993, refined by Esparza/Römer/Vogler). The
//! STG-specific part (the paper, §3.1) assigns to every event the binary
//! code of its local configuration and verifies consistency and safeness on
//! the fly.

use std::cmp::Ordering;
use std::collections::{BinaryHeap, HashMap, HashSet};

use si_cubes::par::par_map;
use si_petri::structural::{non_repeatable_transitions, Incidence};
use si_petri::{BitSet, Marking, PlaceId, TransitionId};
use si_stg::{BinaryCode, SignalTransition, Stg};

use crate::comat::CoMatrix;
use crate::error::UnfoldError;
use crate::ids::{ConditionId, EventId};

/// Estimated number of co-membership probes below which extension search
/// runs inline: segment construction is dominated by tiny searches (a few
/// partner conditions per place), and spawning scoped workers for those
/// costs more than the search itself.
const PAR_EXTENSION_THRESHOLD: u64 = 4096;

/// The adequate order used to declare cutoffs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AdequateOrder {
    /// McMillan's original order: `⌈e'⌉ ≺ ⌈e⌉` iff `|⌈e'⌉| < |⌈e⌉|`.
    #[default]
    McMillan,
    /// Size first, then lexicographic comparison of the sorted transition
    /// multiset (Parikh vector) — a finer order that declares more cutoffs
    /// and produces smaller segments (Esparza/Römer/Vogler style).
    ErvLex,
}

/// Options controlling segment construction.
#[derive(Debug, Clone)]
pub struct UnfoldingOptions {
    /// Cutoff order.
    pub order: AdequateOrder,
    /// Maximum number of events the segment may store, `⊥` included — the
    /// same "max stored" semantics as explicit reachability's state budget.
    pub event_budget: usize,
    /// Worker threads for possible-extension enumeration (`None` = one per
    /// available CPU). Output is byte-identical at any worker count; small
    /// searches run inline regardless.
    pub workers: Option<usize>,
    /// Skip the cutoff-representative hash lookup for transitions that lie
    /// outside every T-invariant **and** can occur at most once in the whole
    /// unfolding (the `prunable_transitions` criterion in the builder).
    /// For such an instance `e` the lookup provably
    /// misses — a hit would require an earlier configuration with the same
    /// final marking, whose Parikh difference to `⌈e⌉` would be a T-invariant
    /// using `e`'s transition — so skipping it cannot change cutoff
    /// decisions, the representative map, or any error: the segment stays
    /// byte-identical (pinned by tests). Purely a constant-factor saving on
    /// terminating/acyclic portions of a spec; default `true`.
    pub prune_non_repeatable: bool,
}

impl Default for UnfoldingOptions {
    fn default() -> Self {
        UnfoldingOptions {
            order: AdequateOrder::McMillan,
            event_budget: 200_000,
            workers: None,
            prune_non_repeatable: true,
        }
    }
}

#[derive(Debug, Clone)]
pub(crate) struct EventData {
    /// Originating STG transition; `None` only for `⊥`.
    pub transition: Option<TransitionId>,
    pub label: Option<SignalTransition>,
    pub preset: Vec<ConditionId>,
    pub postset: Vec<ConditionId>,
    /// `⌈e⌉` as a bit set of event ids (includes `e` itself, excludes `⊥`).
    pub causes: BitSet,
    /// `|⌈e⌉|`.
    pub size: usize,
    /// Per-signal toggle parity of `⌈e⌉`.
    pub parity: BinaryCode,
    /// `Cut(⌈e⌉)`: the conditions marked after firing `⌈e⌉` (sorted).
    pub cut: Vec<ConditionId>,
    /// `Mark(⌈e⌉)`: the final state of the local configuration.
    pub marking: Marking,
    pub cutoff: bool,
    /// Sorted transition multiset of `⌈e⌉`, for the ErvLex order.
    pub parikh: Vec<u32>,
}

#[derive(Debug, Clone)]
pub(crate) struct ConditionData {
    pub place: PlaceId,
    pub producer: EventId,
    pub consumers: Vec<EventId>,
    /// Produced by a cutoff event: excluded from extension search.
    pub frozen: bool,
}

/// A finite STG-unfolding segment `G' = ⟨T', P', F', L'⟩`.
///
/// # Examples
///
/// ```
/// use si_stg::suite::paper_fig1;
/// use si_unfolding::{StgUnfolding, UnfoldingOptions};
///
/// # fn main() -> Result<(), si_unfolding::UnfoldError> {
/// let stg = paper_fig1();
/// let unf = StgUnfolding::build(&stg, &UnfoldingOptions::default())?;
/// // One instance of each of the 8 STG transitions, plus ⊥.
/// assert_eq!(unf.event_count(), 9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StgUnfolding {
    pub(crate) events: Vec<EventData>,
    pub(crate) conditions: Vec<ConditionData>,
    /// Packed symmetric concurrency relation over condition indices.
    pub(crate) co: CoMatrix,
    pub(crate) initial_code: BinaryCode,
    pub(crate) codes: Vec<BinaryCode>,
    pub(crate) signal_count: usize,
}

/// A candidate event (possible extension) waiting in the priority queue.
struct Candidate {
    transition: TransitionId,
    preset: Vec<ConditionId>,
    causes: BitSet,
    size: usize,
    parikh: Vec<u32>,
}

impl Candidate {
    fn key(&self) -> (usize, &[u32], &[ConditionId]) {
        (self.size, &self.parikh, &self.preset)
    }
}

impl PartialEq for Candidate {
    fn eq(&self, other: &Self) -> bool {
        self.key() == other.key() && self.transition == other.transition
    }
}
impl Eq for Candidate {}
impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reversed: BinaryHeap is a max-heap, we want smallest key first.
        other
            .key()
            .cmp(&self.key())
            .then_with(|| other.transition.cmp(&self.transition))
    }
}

impl StgUnfolding {
    /// Builds the STG-unfolding segment of `stg`.
    ///
    /// If the STG declares an initial code it is used (and checked);
    /// otherwise the initial values are inferred from the first change of
    /// each signal, exactly as the `first(a)` rule in the paper prescribes.
    ///
    /// # Errors
    ///
    /// * [`UnfoldError::DummyTransitions`] for unlabelled transitions;
    /// * [`UnfoldError::Inconsistent`] when no consistent state assignment
    ///   exists (wrong polarity alternation, concurrent instances of one
    ///   signal, or code mismatch between equal markings);
    /// * [`UnfoldError::Unsafe`] when two instances of a place can coexist;
    /// * [`UnfoldError::BudgetExceeded`] when storing one more event would
    ///   exceed `options.event_budget` (`⊥` counts, exactly like the
    ///   max-states-stored bound of explicit reachability).
    pub fn build(stg: &Stg, options: &UnfoldingOptions) -> Result<Self, UnfoldError> {
        if !stg.is_fully_labelled() {
            return Err(UnfoldError::DummyTransitions);
        }
        if options.event_budget == 0 {
            // Even ⊥ does not fit; mirror `explore()`'s budget-0 behaviour
            // instead of returning a partial segment.
            return Err(UnfoldError::BudgetExceeded {
                budget: 0,
                events: 0,
                next_transition: "⊥".to_owned(),
            });
        }
        let net = stg.net();
        for t in net.transitions() {
            let mut places: Vec<PlaceId> = net.preset(t).to_vec();
            places.sort();
            if places.windows(2).any(|w| w[0] == w[1]) {
                return Err(UnfoldError::DuplicatePresetPlace {
                    transition: stg.transition_label_string(t),
                });
            }
        }
        let n = stg.signal_count();
        let mut v0: Vec<Option<bool>> = match stg.initial_code() {
            Some(code) => code.iter().map(|(_, v)| Some(v)).collect(),
            None => vec![None; n],
        };

        let skip_rep = if options.prune_non_repeatable {
            prunable_transitions(stg)
        } else {
            vec![false; net.transition_count()]
        };
        let mut builder = Builder {
            stg,
            events: Vec::new(),
            conditions: Vec::new(),
            co: CoMatrix::new(),
            by_place: vec![Vec::new(); net.place_count()],
            queue: BinaryHeap::new(),
            seen: HashSet::new(),
            reps: HashMap::new(),
            order: options.order,
            budget: options.event_budget,
            workers: options.workers,
            skip_rep,
            v0: &mut v0,
        };
        builder.add_root()?;
        builder.run()?;

        let Builder {
            events,
            conditions,
            co,
            ..
        } = builder;

        let mut initial_code = BinaryCode::zeros(n);
        for (i, bit) in v0.iter().enumerate() {
            if bit.unwrap_or(false) {
                initial_code.set(si_stg::SignalId(i as u32), true);
            }
        }
        let codes = events
            .iter()
            .map(|e| {
                let mut c = initial_code.clone();
                for (sig, bit) in e.parity.iter() {
                    if bit {
                        c.toggle(sig);
                    }
                }
                c
            })
            .collect();

        Ok(StgUnfolding {
            events,
            conditions,
            co,
            initial_code,
            codes,
            signal_count: n,
        })
    }
}

struct Builder<'a> {
    stg: &'a Stg,
    events: Vec<EventData>,
    conditions: Vec<ConditionData>,
    /// Packed symmetric concurrency relation, one row per condition, kept
    /// in lockstep with `conditions`.
    co: CoMatrix,
    /// Non-frozen conditions per original place, for extension search.
    by_place: Vec<Vec<ConditionId>>,
    queue: BinaryHeap<Candidate>,
    /// Dedupe set of (transition, sorted preset).
    seen: HashSet<(TransitionId, Vec<ConditionId>)>,
    /// Best (minimal-order) representative per final marking.
    reps: HashMap<Marking, EventId>,
    order: AdequateOrder,
    budget: usize,
    workers: Option<usize>,
    /// Per-transition: the `reps` lookup is a guaranteed miss and may be
    /// skipped (see [`prunable_transitions`]). Insertion is never skipped.
    skip_rep: Vec<bool>,
    v0: &'a mut Vec<Option<bool>>,
}

/// Transitions whose cutoff-representative **lookup** is a guaranteed miss,
/// so [`UnfoldingOptions::prune_non_repeatable`] may skip it.
///
/// `t` qualifies when both hold:
///
/// 1. **Non-repeatable** — `t` lies outside the support of every T-invariant
///    basis vector, so every vector of the rational nullspace of the
///    incidence matrix `C` has a zero in `t`'s coordinate.
/// 2. **Unique-instance** — the unfolding can contain at most one instance
///    of `t`, by the least fixpoint of: a place is *uniquely conditioned*
///    iff it has no producers, or it is initially unmarked with exactly one
///    producer that is itself unique-instance; `t` is *unique-instance* iff
///    its preset is nonempty and every preset place is uniquely conditioned.
///
/// Why the lookup must miss for an instance `e` of such a `t`: a hit would
/// mean some earlier stored configuration `C₂` satisfies
/// `Mark(C₂) = Mark(⌈e⌉)`, so the Parikh difference `x` solves `C·x = 0`
/// and lies in the nullspace span — by (1) `x_t = 0`, hence `C₂` contains a
/// `t`-instance; by (2) that instance is `e` itself, which cannot be in a
/// configuration stored before `e` existed. (The initial-marking entry for
/// `⊥` is covered too: there `x_t = 1 ≠ 0`.) With the lookup a guaranteed
/// miss, skipping it changes neither cutoff decisions, nor the code-match
/// error check, nor — since insertion is never skipped — the `reps` map.
fn prunable_transitions(stg: &Stg) -> Vec<bool> {
    let net = stg.net();
    let Some(non_rep) = non_repeatable_transitions(&Incidence::of(net)) else {
        return vec![false; net.transition_count()];
    };
    let mut non_repeatable = vec![false; net.transition_count()];
    for t in non_rep {
        non_repeatable[t.index()] = true;
    }
    let initial = net.initial_marking();
    let mut place_unique = vec![false; net.place_count()];
    let mut trans_unique = vec![false; net.transition_count()];
    loop {
        let mut changed = false;
        for p in net.places() {
            if place_unique[p.index()] {
                continue;
            }
            let producers = net.place_preset(p);
            let unique = producers.is_empty()
                || (!initial.contains(p)
                    && producers.len() == 1
                    && trans_unique[producers[0].index()]);
            if unique {
                place_unique[p.index()] = true;
                changed = true;
            }
        }
        for t in net.transitions() {
            if trans_unique[t.index()] {
                continue;
            }
            let preset = net.preset(t);
            if !preset.is_empty() && preset.iter().all(|&p| place_unique[p.index()]) {
                trans_unique[t.index()] = true;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    (0..net.transition_count())
        .map(|i| non_repeatable[i] && trans_unique[i])
        .collect()
}

impl Builder<'_> {
    fn add_root(&mut self) -> Result<(), UnfoldError> {
        let n = self.stg.signal_count();
        let root = EventData {
            transition: None,
            label: None,
            preset: Vec::new(),
            postset: Vec::new(),
            causes: BitSet::new(),
            size: 0,
            parity: BinaryCode::zeros(n),
            cut: Vec::new(),
            marking: self.stg.net().initial_marking().clone(),
            cutoff: false,
            parikh: Vec::new(),
        };
        self.events.push(root);
        let initial_places: Vec<PlaceId> = self.stg.net().initial_marking().iter().collect();
        let mut post = Vec::new();
        for &p in &initial_places {
            post.push(self.new_condition(p, EventId::ROOT, false)?);
        }
        // Initial conditions are pairwise concurrent.
        for i in 0..post.len() {
            for j in i + 1..post.len() {
                self.link_co(post[i], post[j]);
            }
        }
        self.events[0].postset = post.clone();
        self.events[0].cut = post.clone();
        self.reps
            .insert(self.stg.net().initial_marking().clone(), EventId::ROOT);
        for (idx, &b) in post.iter().enumerate() {
            self.find_extensions(b, &post[..idx]);
        }
        Ok(())
    }

    fn run(&mut self) -> Result<(), UnfoldError> {
        while let Some(cand) = self.queue.pop() {
            // Exact "max events stored" semantics: fail before storing the
            // event that would push the count past the budget, so a
            // successful build always satisfies `event_count() <= budget`.
            if self.events.len() >= self.budget {
                return Err(UnfoldError::BudgetExceeded {
                    budget: self.budget,
                    events: self.events.len(),
                    next_transition: self.stg.transition_label_string(cand.transition),
                });
            }
            self.add_event(cand)?;
        }
        Ok(())
    }

    fn new_condition(
        &mut self,
        place: PlaceId,
        producer: EventId,
        frozen: bool,
    ) -> Result<ConditionId, UnfoldError> {
        let id = ConditionId(self.conditions.len() as u32);
        self.conditions.push(ConditionData {
            place,
            producer,
            consumers: Vec::new(),
            frozen,
        });
        self.co.push_row();
        if !frozen {
            self.by_place[place.index()].push(id);
        }
        Ok(id)
    }

    fn link_co(&mut self, a: ConditionId, b: ConditionId) {
        self.co.set_pair(a.index(), b.index());
    }

    /// Creates the event for a popped candidate, decides cutoff status, adds
    /// its postset and queues new extensions.
    fn add_event(&mut self, cand: Candidate) -> Result<(), UnfoldError> {
        let stg = self.stg;
        let net = stg.net();
        let label = match stg.label(cand.transition) {
            Some(label) => label,
            // Dummy transitions were rejected in `unfold` before any
            // candidate was queued.
            None => unreachable!("unlabelled transition queued as a candidate"),
        };
        let id = EventId(self.events.len() as u32);

        // Parity of ⌈e⌉ \ {e}: toggle per event in causes.
        let mut parity = BinaryCode::zeros(self.v0.len());
        for eidx in cand.causes.iter() {
            if let Some(l) = self.events[eidx].label {
                parity.toggle(l.signal);
            }
        }
        // Consistency: the signal's value before e must match the polarity.
        let pre_parity = parity.get(label.signal);
        let required_v0 = pre_parity ^ label.polarity.source_value();
        match self.v0[label.signal.index()] {
            None => self.v0[label.signal.index()] = Some(required_v0),
            Some(v) if v != required_v0 => {
                return Err(UnfoldError::Inconsistent {
                    signal: stg.signal_name(label.signal).to_owned(),
                    transition: stg.transition_label_string(cand.transition),
                    detail: format!(
                        "the instance fires with the signal already at {}",
                        u8::from(label.polarity.target_value()),
                    ),
                });
            }
            Some(_) => {}
        }
        parity.toggle(label.signal);

        let mut causes = cand.causes.clone();
        causes.insert(id.index());
        let size = cand.size;

        // Cut(⌈e⌉): postsets of {⊥} ∪ ⌈e⌉ minus presets of ⌈e⌉.
        let mut in_cut: BitSet = BitSet::new();
        for &b in &self.events[0].postset {
            in_cut.insert(b.index());
        }
        for eidx in causes.iter() {
            if eidx == id.index() {
                continue;
            }
            for &b in &self.events[eidx].postset {
                in_cut.insert(b.index());
            }
        }
        for eidx in causes.iter() {
            if eidx == id.index() {
                continue;
            }
            for &b in &self.events[eidx].preset {
                in_cut.remove(b.index());
            }
        }
        for &b in &cand.preset {
            in_cut.remove(b.index());
        }
        // Postset conditions are appended below once created.

        let mut marking = Marking::new();
        for bidx in in_cut.iter() {
            let p = self.conditions[bidx].place;
            if !marking.insert(p) {
                return Err(UnfoldError::Unsafe {
                    place: net.place_name(p).to_owned(),
                });
            }
        }
        for &p in net.postset(cand.transition) {
            if !marking.insert(p) {
                return Err(UnfoldError::Unsafe {
                    place: net.place_name(p).to_owned(),
                });
            }
        }

        // Cutoff decision plus the marking/code agreement check. For
        // prunable transitions the lookup is a guaranteed miss (see
        // `prunable_transitions`), so it is skipped outright; the
        // representative *insertion* below still happens.
        let cutoff = if self.skip_rep[cand.transition.index()] {
            false
        } else {
            match self.reps.get(&marking) {
                Some(&rep) => {
                    let rep_ev = &self.events[rep.index()];
                    let mut rep_code_matches = true;
                    for (sig, bit) in rep_ev.parity.iter() {
                        if parity.get(sig) != bit {
                            rep_code_matches = false;
                            break;
                        }
                    }
                    if !rep_code_matches {
                        return Err(UnfoldError::Inconsistent {
                            signal: stg.signal_name(label.signal).to_owned(),
                            transition: stg.transition_label_string(cand.transition),
                            detail: "two configurations reach the same marking with \
                                 different binary codes"
                                .to_owned(),
                        });
                    }
                    match self.order {
                        AdequateOrder::McMillan => rep_ev.size < size,
                        AdequateOrder::ErvLex => {
                            (rep_ev.size, &rep_ev.parikh) < (size, &cand.parikh)
                        }
                    }
                }
                None => false,
            }
        };

        // Register the event.
        for &b in &cand.preset {
            self.conditions[b.index()].consumers.push(id);
        }
        let mut cut: Vec<ConditionId> = in_cut.iter().map(|i| ConditionId(i as u32)).collect();
        self.events.push(EventData {
            transition: Some(cand.transition),
            label: Some(label),
            preset: cand.preset.clone(),
            postset: Vec::new(),
            causes,
            size,
            parity,
            cut: Vec::new(),
            marking: marking.clone(),
            cutoff,
            parikh: cand.parikh,
        });
        if !cutoff {
            self.reps.entry(marking).or_insert(id);
        }

        // Create the postset conditions and their concurrency rows:
        // co(e) = ⋂_{b ∈ •e} co(b); co(b_new) = co(e) ∪ siblings. The
        // intersection is a word-wise AND over packed matrix rows; preset
        // members drop out on their own (no row contains its own index).
        let preset_rows: Vec<usize> = cand.preset.iter().map(|b| b.index()).collect();
        let co_event: Vec<usize> = self.co.intersect_rows(&preset_rows);
        let mut post = Vec::new();
        for &p in net.postset(cand.transition) {
            let b = self.new_condition(p, id, cutoff)?;
            for &other in &co_event {
                if self.conditions[other].place == p {
                    return Err(UnfoldError::Unsafe {
                        place: net.place_name(p).to_owned(),
                    });
                }
                self.link_co(b, ConditionId(other as u32));
            }
            for &sib in &post {
                self.link_co(b, sib);
            }
            post.push(b);
        }
        cut.extend(&post);
        cut.sort();
        {
            let ev = &mut self.events[id.index()];
            ev.postset = post.clone();
            ev.cut = cut;
        }

        // Auto-concurrency would mean two unordered, conflict-free instances
        // of one signal — an inconsistency the parity check cannot see.
        for other in 0..id.index() {
            let oe = &self.events[other];
            let Some(ol) = oe.label else { continue };
            if ol.signal != label.signal {
                continue;
            }
            if self.events[id.index()].causes.contains(other) {
                continue; // ordered
            }
            let concurrent = self.events[id.index()].postset.iter().any(|&b| {
                oe.postset
                    .iter()
                    .any(|&b2| self.co.get(b.index(), b2.index()))
            });
            if concurrent {
                return Err(UnfoldError::Inconsistent {
                    signal: stg.signal_name(label.signal).to_owned(),
                    transition: stg.transition_label_string(cand.transition),
                    detail: "two concurrent instances of the same signal".to_owned(),
                });
            }
        }

        if !cutoff {
            let post = self.events[id.index()].postset.clone();
            for (idx, &b) in post.iter().enumerate() {
                self.find_extensions(b, &post[..idx]);
            }
        }
        Ok(())
    }

    /// Queues every possible extension whose preset contains `b_new` and
    /// otherwise only conditions with smaller ids (so each co-set is
    /// generated exactly once) — `earlier_siblings` are same-postset
    /// conditions created before `b_new` that are allowed as partners.
    ///
    /// Enumeration over the consuming transitions is a pure read of the
    /// segment, so when the estimated search is large enough it fans out on
    /// the shared scoped worker pool; results are merged back in transition
    /// order, making the queued candidate set — and therefore the whole
    /// segment — byte-identical at any worker count.
    fn find_extensions(&mut self, b_new: ConditionId, earlier_siblings: &[ConditionId]) {
        let place = self.conditions[b_new.index()].place;
        let net = self.stg.net();
        let transitions: Vec<TransitionId> = net.place_postset(place).to_vec();
        if transitions.is_empty() {
            return;
        }
        // Upper-bound the probe count: the product of partner-pool sizes
        // per preset place, summed over transitions.
        let estimate: u64 = transitions
            .iter()
            .map(|&t| {
                net.preset(t)
                    .iter()
                    .map(|&p| {
                        if p == place {
                            1
                        } else {
                            self.by_place[p.index()].len().max(1) as u64
                        }
                    })
                    .fold(1u64, u64::saturating_mul)
            })
            .fold(0u64, u64::saturating_add);
        let presets: Vec<Vec<Vec<ConditionId>>> =
            if transitions.len() > 1 && estimate >= PAR_EXTENSION_THRESHOLD {
                let this: &Self = self;
                par_map(&transitions, self.workers, |_, &t| {
                    this.extension_presets(t, b_new, earlier_siblings)
                })
            } else {
                transitions
                    .iter()
                    .map(|&t| self.extension_presets(t, b_new, earlier_siblings))
                    .collect()
            };
        for (&t, found) in transitions.iter().zip(&presets) {
            for preset in found {
                self.push_candidate(t, preset.clone());
            }
        }
    }

    /// Collects every co-set of `t`'s preset places that contains `b_new`.
    /// Pure (no mutation), so it can run on a worker thread.
    fn extension_presets(
        &self,
        t: TransitionId,
        b_new: ConditionId,
        earlier_siblings: &[ConditionId],
    ) -> Vec<Vec<ConditionId>> {
        let preset_places: Vec<PlaceId> = self.stg.net().preset(t).to_vec();
        let mut chosen: Vec<ConditionId> = Vec::with_capacity(preset_places.len());
        let mut out = Vec::new();
        self.assemble(
            &preset_places,
            0,
            b_new,
            earlier_siblings,
            &mut chosen,
            &mut out,
        );
        out
    }

    fn assemble(
        &self,
        places: &[PlaceId],
        idx: usize,
        b_new: ConditionId,
        earlier_siblings: &[ConditionId],
        chosen: &mut Vec<ConditionId>,
        out: &mut Vec<Vec<ConditionId>>,
    ) {
        if idx == places.len() {
            if chosen.contains(&b_new) {
                out.push(chosen.clone());
            }
            return;
        }
        let p = places[idx];
        let candidates: Vec<ConditionId> = if p == self.conditions[b_new.index()].place {
            vec![b_new]
        } else {
            self.by_place[p.index()]
                .iter()
                .copied()
                .filter(|&b| {
                    (b < b_new || earlier_siblings.contains(&b))
                        && self.co.get(b_new.index(), b.index())
                })
                .collect()
        };
        for b in candidates {
            if chosen
                .iter()
                .all(|&c| c == b || self.co.get(c.index(), b.index()))
            {
                chosen.push(b);
                self.assemble(places, idx + 1, b_new, earlier_siblings, chosen, out);
                chosen.pop();
            }
        }
    }

    fn push_candidate(&mut self, t: TransitionId, mut preset: Vec<ConditionId>) {
        preset.sort();
        preset.dedup();
        if !self.seen.insert((t, preset.clone())) {
            return;
        }
        let mut causes = BitSet::new();
        for &b in &preset {
            let prod = self.conditions[b.index()].producer;
            if !prod.is_root() {
                causes.union_with(&self.events[prod.index()].causes);
            }
        }
        let size = causes.len() + 1;
        let parikh = if self.order == AdequateOrder::ErvLex {
            let mut v: Vec<u32> = causes
                .iter()
                .filter_map(|e| self.events[e].transition.map(|t| t.0))
                .collect();
            v.push(t.0);
            v.sort_unstable();
            v
        } else {
            Vec::new()
        };
        self.queue.push(Candidate {
            transition: t,
            preset,
            causes,
            size,
            parikh,
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_stg::generators::{independent_cycles, muller_pipeline, sequencer};
    use si_stg::suite::paper_fig1;
    use si_stg::{Polarity, StgBuilder};

    #[test]
    fn fig1_segment_has_one_instance_per_transition() {
        let stg = paper_fig1();
        let unf = StgUnfolding::build(&stg, &UnfoldingOptions::default()).expect("builds");
        assert_eq!(unf.event_count(), 9); // ⊥ + 8 transitions

        // Two cutoffs: -a re-reaches {p7,p8} (first produced by the smaller
        // +b' configuration) and -b returns to the initial marking.
        let mut cutoff_labels: Vec<String> = unf
            .events()
            .filter(|&e| unf.is_cutoff(e))
            .map(|e| {
                let l = unf.label(e).expect("labelled");
                format!("{}{}", stg.signal_name(l.signal), l.polarity)
            })
            .collect();
        cutoff_labels.sort();
        assert_eq!(cutoff_labels, vec!["a-", "b-"]);
        let _ = Polarity::Fall;
    }

    #[test]
    fn sequencer_unfolds_linearly() {
        for n in [2, 5, 9] {
            let stg = sequencer(n);
            let unf = StgUnfolding::build(&stg, &UnfoldingOptions::default()).expect("builds");
            // One instance per transition + ⊥ + the cutoff that closes the
            // cycle is one of them.
            assert_eq!(unf.event_count(), 2 * n + 1);
        }
    }

    #[test]
    fn independent_cycles_unfold_linearly_while_sg_explodes() {
        let stg = independent_cycles(12); // SG would have 4096 states
        let unf = StgUnfolding::build(&stg, &UnfoldingOptions::default()).expect("builds");
        assert!(unf.event_count() <= 1 + 2 * 12);
    }

    #[test]
    fn muller_pipeline_unfolds_polynomially() {
        let small = StgUnfolding::build(&muller_pipeline(3), &UnfoldingOptions::default())
            .expect("builds")
            .event_count();
        let big = StgUnfolding::build(&muller_pipeline(6), &UnfoldingOptions::default())
            .expect("builds")
            .event_count();
        // Far from the exponential SG growth: doubling stages should grow
        // the segment by a small polynomial factor.
        assert!(big < small * 8, "small={small} big={big}");
    }

    #[test]
    fn initial_code_inferred_from_first_changes() {
        // b starts at 1 (first change is b-), a at 0.
        let mut b = StgBuilder::new();
        let sa = b.input("a");
        let sb = b.output("b");
        let a_p = b.rise(sa);
        let b_m = b.fall(sb);
        let a_m = b.fall(sa);
        let b_p = b.rise(sb);
        b.arc_tt(a_p, b_m);
        b.arc_tt(b_m, a_m);
        b.arc_tt(a_m, b_p);
        let back = b.arc_tt(b_p, a_p);
        b.mark(back);
        let stg = b.build().expect("valid");
        assert!(stg.initial_code().is_none());
        let unf = StgUnfolding::build(&stg, &UnfoldingOptions::default()).expect("builds");
        assert_eq!(unf.initial_code().to_string(), "01");
    }

    #[test]
    fn inconsistent_double_rise_detected() {
        let mut b = StgBuilder::new();
        let a = b.input("a");
        let t1 = b.transition(a, Polarity::Rise);
        let t2 = b.transition(a, Polarity::Rise);
        b.arc_tt(t1, t2);
        let back = b.arc_tt(t2, t1);
        b.mark(back);
        let stg = b.build().expect("structurally fine");
        assert!(matches!(
            StgUnfolding::build(&stg, &UnfoldingOptions::default()),
            Err(UnfoldError::Inconsistent { .. })
        ));
    }

    #[test]
    fn concurrent_same_signal_instances_detected() {
        // Two concurrent branches both fire a+.
        let mut b = StgBuilder::new();
        let x = b.input("x");
        let a = b.input("a");
        let x_p = b.rise(x);
        let a1 = b.transition(a, Polarity::Rise);
        let a2 = b.transition(a, Polarity::Rise);
        let x_m = b.fall(x);
        b.arc_tt(x_p, a1);
        b.arc_tt(x_p, a2);
        b.arc_tt(a1, x_m);
        b.arc_tt(a2, x_m);
        // close the loop loosely (consistency of x alone)
        let am1 = b.fall(a);
        let am2 = b.fall(a);
        b.arc_tt(x_m, am1);
        b.arc_tt(am1, am2);
        let back = b.arc_tt(am2, x_p);
        b.mark(back);
        let stg = b.build().expect("structurally fine");
        assert!(matches!(
            StgUnfolding::build(&stg, &UnfoldingOptions::default()),
            Err(UnfoldError::Inconsistent { .. })
        ));
    }

    #[test]
    fn unsafe_net_detected() {
        // Producing into a place that is still marked.
        let mut b = StgBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let x_p = b.rise(x);
        let y_p = b.rise(y);
        let shared = b.place("shared");
        b.arc_tp(x_p, shared);
        b.arc_tp(y_p, shared);
        let start1 = b.place("s1");
        let start2 = b.place("s2");
        b.arc_pt(start1, x_p);
        b.arc_pt(start2, y_p);
        // consume shared eventually
        let x_m = b.fall(x);
        b.arc_pt(shared, x_m);
        b.mark(start1);
        b.mark(start2);
        let stg = b.build().expect("structurally fine");
        assert!(matches!(
            StgUnfolding::build(&stg, &UnfoldingOptions::default()),
            Err(UnfoldError::Unsafe { .. })
        ));
    }

    #[test]
    fn budget_is_enforced() {
        let stg = muller_pipeline(6);
        assert!(matches!(
            StgUnfolding::build(
                &stg,
                &UnfoldingOptions {
                    event_budget: 3,
                    ..Default::default()
                }
            ),
            Err(UnfoldError::BudgetExceeded {
                budget: 3,
                events: 3,
                ..
            })
        ));
    }

    #[test]
    fn budget_boundary_is_exact() {
        // "Max events stored" semantics, mirroring `explore()`: a budget of
        // exactly the final event count succeeds, one less fails, zero never
        // returns a partial segment.
        let stg = paper_fig1();
        let full = StgUnfolding::build(&stg, &UnfoldingOptions::default())
            .expect("builds")
            .event_count();
        let exactly = StgUnfolding::build(
            &stg,
            &UnfoldingOptions {
                event_budget: full,
                ..Default::default()
            },
        )
        .expect("exact budget fits");
        assert_eq!(exactly.event_count(), full);
        assert!(matches!(
            StgUnfolding::build(
                &stg,
                &UnfoldingOptions {
                    event_budget: full - 1,
                    ..Default::default()
                }
            ),
            Err(UnfoldError::BudgetExceeded { events, .. }) if events == full - 1
        ));
        assert!(matches!(
            StgUnfolding::build(
                &stg,
                &UnfoldingOptions {
                    event_budget: 0,
                    ..Default::default()
                }
            ),
            Err(UnfoldError::BudgetExceeded {
                budget: 0,
                events: 0,
                ..
            })
        ));
    }

    #[test]
    fn worker_count_does_not_change_the_segment() {
        for stg in [paper_fig1(), muller_pipeline(6)] {
            let base = StgUnfolding::build(
                &stg,
                &UnfoldingOptions {
                    workers: Some(1),
                    ..Default::default()
                },
            )
            .expect("builds");
            for workers in [None, Some(2), Some(4)] {
                let other = StgUnfolding::build(
                    &stg,
                    &UnfoldingOptions {
                        workers,
                        ..Default::default()
                    },
                )
                .expect("builds");
                assert_eq!(other.event_count(), base.event_count());
                for (a, b) in base.events().zip(other.events()) {
                    assert_eq!(base.transition(a), other.transition(b));
                    assert_eq!(base.preset(a), other.preset(b));
                    assert_eq!(base.is_cutoff(a), other.is_cutoff(b));
                    assert_eq!(base.code(a), other.code(b));
                }
            }
        }
    }

    #[test]
    fn dummies_rejected() {
        let mut b = StgBuilder::new();
        let a = b.input("a");
        let t1 = b.rise(a);
        let d = b.dummy("eps");
        let t2 = b.fall(a);
        b.arc_tt(t1, d);
        b.arc_tt(d, t2);
        let back = b.arc_tt(t2, t1);
        b.mark(back);
        let stg = b.build().expect("builds");
        assert!(matches!(
            StgUnfolding::build(&stg, &UnfoldingOptions::default()),
            Err(UnfoldError::DummyTransitions)
        ));
    }

    /// A terminating two-phase spec: marked `start` drives `x+ → x−` into a
    /// sink place, alongside a live `y` cycle so the STG still has cyclic
    /// behaviour. The chain transitions lie outside every T-invariant and
    /// can occur once each.
    fn chain_beside_cycle() -> si_stg::Stg {
        let mut b = StgBuilder::new();
        let x = b.input("x");
        let y = b.output("y");
        let x_p = b.rise(x);
        let x_m = b.fall(x);
        let start = b.place("start");
        let mid = b.place("mid");
        let done = b.place("done");
        b.arc_pt(start, x_p);
        b.arc_tp(x_p, mid);
        b.arc_pt(mid, x_m);
        b.arc_tp(x_m, done);
        b.mark(start);
        let y_p = b.rise(y);
        let y_m = b.fall(y);
        b.arc_tt(y_p, y_m);
        let back = b.arc_tt(y_m, y_p);
        b.mark(back);
        b.initial_all_zero();
        b.must_build()
    }

    #[test]
    fn terminating_chain_is_prunable() {
        let stg = chain_beside_cycle();
        let skip = prunable_transitions(&stg);
        let net = stg.net();
        let by_label: Vec<(String, bool)> = net
            .transitions()
            .map(|t| (stg.transition_label_string(t), skip[t.index()]))
            .collect();
        // The one-shot chain is prunable; the y cycle repeats, so it is not.
        for (label, prunable) in &by_label {
            let expected = label.starts_with('x');
            assert_eq!(prunable, &expected, "transition {label}");
        }
        assert!(by_label.iter().filter(|(_, s)| *s).count() == 2);
    }

    #[test]
    fn pruning_does_not_change_the_segment() {
        let specs = [
            paper_fig1(),
            muller_pipeline(5),
            sequencer(4),
            chain_beside_cycle(),
        ];
        for stg in &specs {
            for order in [AdequateOrder::McMillan, AdequateOrder::ErvLex] {
                let on = StgUnfolding::build(
                    stg,
                    &UnfoldingOptions {
                        order,
                        prune_non_repeatable: true,
                        ..Default::default()
                    },
                )
                .expect("builds");
                let off = StgUnfolding::build(
                    stg,
                    &UnfoldingOptions {
                        order,
                        prune_non_repeatable: false,
                        ..Default::default()
                    },
                )
                .expect("builds");
                assert_eq!(on.event_count(), off.event_count());
                for (a, b) in on.events().zip(off.events()) {
                    assert_eq!(on.transition(a), off.transition(b));
                    assert_eq!(on.preset(a), off.preset(b));
                    assert_eq!(on.is_cutoff(a), off.is_cutoff(b));
                    assert_eq!(on.code(a), off.code(b));
                }
            }
        }
    }

    #[test]
    fn erv_order_never_bigger_than_mcmillan() {
        for n in [2, 4] {
            let stg = muller_pipeline(n);
            let mc = StgUnfolding::build(&stg, &UnfoldingOptions::default())
                .expect("builds")
                .event_count();
            let erv = StgUnfolding::build(
                &stg,
                &UnfoldingOptions {
                    order: AdequateOrder::ErvLex,
                    ..Default::default()
                },
            )
            .expect("builds")
            .event_count();
            assert!(erv <= mc, "erv={erv} mc={mc}");
        }
    }
}
