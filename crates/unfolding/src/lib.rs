//! # si-unfolding — the STG-unfolding segment
//!
//! The partial-order semantic model the paper's synthesis method rests on:
//! a finite, complete prefix of the occurrence-net unfolding of an STG
//! (McMillan-style, with a pluggable adequate order), where every event
//! carries the binary code of its local configuration.
//!
//! Construction doubles as verification, exactly as in the paper:
//! consistency of the state assignment, 1-safeness and (separately)
//! semi-modularity are checked on the segment, so by the time a segment
//! exists the general correctness criteria hold.
//!
//! ## Example
//!
//! ```
//! use si_stg::generators::independent_cycles;
//! use si_unfolding::{StgUnfolding, UnfoldingOptions};
//!
//! # fn main() -> Result<(), si_unfolding::UnfoldError> {
//! // 12 concurrent loops: the state graph has 4096 states …
//! let stg = independent_cycles(12);
//! let unf = StgUnfolding::build(&stg, &UnfoldingOptions::default())?;
//! // … but the segment stays linear in the number of loops.
//! assert!(unf.event_count() <= 25);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod build;
mod checks;
mod comat;
mod dot;
mod error;
mod ids;
mod relations;

pub use build::{AdequateOrder, StgUnfolding, UnfoldingOptions};
pub use checks::{check_segment_persistency, SegmentPersistencyViolation};
pub use dot::unfolding_to_dot;
pub use error::UnfoldError;
pub use ids::{ConditionId, EventId};
