//! The node manager: hash-consed unique table, ITE kernel, quantification,
//! root protection, mark-and-sweep garbage collection, and the retry loop
//! that gives long-running operations reentrant GC/reorder checkpoints.
//!
//! The tables themselves live in [`crate::core`] (sharded, lock-guarded,
//! shared by the parallel workers); this module owns the external surface:
//! variable order, root protection, operation dispatch (serial or
//! work-stealing parallel), and the maintenance policy that fires when a
//! kernel trips its live-node checkpoint mid-operation.

use std::collections::HashMap;

use crate::core::{Core, OpCtx, Task, FREE, ONE, ZERO};
use crate::isop::IsopTables;
use crate::sift::ReorderPolicy;

/// A handle to a Boolean function owned by a [`BddManager`].
///
/// Copyable and cheap; all operations go through the manager. Two handles
/// from the same manager are equal iff they denote the same function (the
/// diagram is reduced and ordered, hence canonical).
///
/// A handle stays valid across [`reorder_sift`](BddManager::reorder_sift)
/// and level swaps (reordering rewrites nodes in place, preserving ids and
/// the function each id denotes), but **not** across
/// [`gc`](BddManager::gc) unless the handle was
/// [`protect`](BddManager::protect)ed: using a collected handle is a logic
/// error, caught by a debug assertion on every access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Bdd(pub(crate) u32);

impl Bdd {
    /// Returns `true` if this is the constant-0 function.
    pub fn is_false(self) -> bool {
        self.0 == ZERO
    }

    /// Returns `true` if this is the constant-1 function.
    pub fn is_true(self) -> bool {
        self.0 == ONE
    }
}

/// Reentrant maintenance policy: when an operation's live pool crosses
/// `live_limit` at a kernel checkpoint, the operation unwinds, the manager
/// collects garbage (and reorders, per `reorder`), and the operation
/// retries — so one monster `and_exists` can no longer blow the node budget
/// between the driver's own fixpoint checkpoints.
#[derive(Debug, Clone, Copy)]
pub struct ReentrantConfig {
    /// Live-node count that trips a mid-operation maintenance pass.
    pub live_limit: usize,
    /// Whether maintenance may also sift (`Off` collects only).
    pub reorder: ReorderPolicy,
    /// Growth cap passed to [`BddManager::reorder_sift`] when sifting.
    pub max_growth: f64,
}

/// Deterministic per-manager operation counters: incremented once per
/// public [`ite`](BddManager::ite) / [`exists`](BddManager::exists) /
/// [`and_exists`](BddManager::and_exists) call. Because every driver
/// decision is made on canonical sets, the public call sequence — and hence
/// these counts — is identical at any thread count, which makes them the
/// perf proxy CI can pin on a 1-CPU runner.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OpCounts {
    /// Public ITE calls (including the `and`/`or`/`not`/`xor`/`diff`
    /// wrappers, which each cost one — `xor` two — ITEs).
    pub ite: u64,
    /// Public existential-quantification calls.
    pub exists: u64,
    /// Public relational-product calls.
    pub and_exists: u64,
}

/// A reduced ordered BDD node pool over a fixed variable count, with a
/// sharded unique table (hash-consing), memoised operation caches, an
/// external-root protection set and a mark-and-sweep collector.
///
/// Nodes branch on *levels*; the variable order maps external variable
/// indices to levels, so callers always speak in variable indices. The order
/// is seeded at construction ([`BddManager::with_order`]) and may change at
/// runtime through sifting ([`BddManager::reorder_sift`]) — every query goes
/// through [`level_of`](Self::level_of) / [`var_at`](Self::var_at), which
/// always reflect the current layout.
///
/// Dead nodes are reclaimed by [`gc`](Self::gc): callers pin the functions
/// they still need with [`protect`](Self::protect) (a refcounted root set),
/// everything unreachable from the roots is swept onto a free list and the
/// slots are reused by later allocations.
///
/// With [`set_threads`](Self::set_threads) above 1, `ite`/`exists`/
/// `and_exists` on large pools fan their cofactor frontier out to a
/// work-stealing thread pool over the shared sharded tables. Node *ids*
/// become schedule-dependent, but canonicity within a run is preserved
/// (hash-consing is maintained under the shard locks), so handle equality,
/// extracted covers, witnesses and counts are identical at any thread
/// count.
pub struct BddManager {
    pub(crate) core: Core,
    /// `level_of[var]` = position of `var` in the order (0 = topmost).
    pub(crate) level_of: Vec<u32>,
    /// `var_at[level]` = variable placed at that level.
    pub(crate) var_at: Vec<u32>,
    /// External root protection: node id → protect count.
    pub(crate) roots: HashMap<u32, usize>,
    /// ISOP extraction state: cover-DAG arena + `(L, U)` memo (see
    /// [`crate::isop`]); purged on GC, cleared on reorder.
    pub(crate) isop: IsopTables,
    threads: usize,
    maint: Option<ReentrantConfig>,
    op_counts: OpCounts,
    maintenance_runs: usize,
    parallel_floor: usize,
}

impl std::fmt::Debug for BddManager {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BddManager")
            .field("num_vars", &self.core.num_vars)
            .field("pool_size", &self.pool_size())
            .field("allocated_size", &self.allocated_size())
            .field("protected", &self.roots.len())
            .field("threads", &self.threads)
            .field("order", &self.order())
            .finish()
    }
}

impl BddManager {
    /// Live-pool size below which parallel dispatch is skipped: thread
    /// fan-out on a small diagram costs more than it saves.
    pub const DEFAULT_PARALLEL_FLOOR: usize = 1 << 15;

    /// Creates a manager over `num_vars` variables in natural order
    /// (variable `i` at level `i`).
    pub fn new(num_vars: usize) -> Self {
        Self::with_order((0..num_vars).collect())
    }

    /// Creates a manager whose variable order is `order` — `order[level]`
    /// is the variable placed at that level (level 0 is the topmost).
    ///
    /// # Panics
    ///
    /// Panics if `order` is not a permutation of `0..order.len()`.
    pub fn with_order(order: Vec<usize>) -> Self {
        let n = order.len();
        let mut level_of = vec![u32::MAX; n];
        let mut var_at = vec![0u32; n];
        for (level, &var) in order.iter().enumerate() {
            assert!(var < n, "variable {var} out of range in order");
            assert!(
                level_of[var] == u32::MAX,
                "variable {var} appears twice in order"
            );
            level_of[var] = level as u32;
            var_at[level] = var as u32;
        }
        BddManager {
            core: Core::new(n),
            level_of,
            var_at,
            roots: HashMap::new(),
            isop: IsopTables::default(),
            threads: 1,
            maint: None,
            op_counts: OpCounts::default(),
            maintenance_runs: 0,
            parallel_floor: Self::DEFAULT_PARALLEL_FLOOR,
        }
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.core.num_vars
    }

    /// The level (order position) of `var` under the *current* order.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn level_of(&self, var: usize) -> usize {
        self.level_of[var] as usize
    }

    /// The variable placed at `level` under the *current* order.
    ///
    /// # Panics
    ///
    /// Panics if `level >= num_vars`.
    pub fn var_at(&self, level: usize) -> usize {
        self.var_at[level] as usize
    }

    /// The current variable order as a permutation: `order()[level]` is the
    /// variable at that level. Reordering changes it; reading it after
    /// [`reorder_sift`](Self::reorder_sift) shows where sifting settled.
    pub fn order(&self) -> Vec<usize> {
        self.var_at.iter().map(|&v| v as usize).collect()
    }

    /// The constant-0 function.
    pub fn zero(&self) -> Bdd {
        Bdd(ZERO)
    }

    /// The constant-1 function.
    pub fn one(&self) -> Bdd {
        Bdd(ONE)
    }

    /// Number of live non-terminal nodes in the pool. Grows with
    /// allocations and shrinks when [`gc`](Self::gc) sweeps dead nodes;
    /// nodes that became unreachable since the last collection still count
    /// until the next one.
    pub fn pool_size(&self) -> usize {
        self.core.pool_size()
    }

    /// Number of pool slots ever allocated (live or freed). Never shrinks;
    /// the gap to [`pool_size`](Self::pool_size) is the reuse headroom the
    /// collector has reclaimed.
    pub fn allocated_size(&self) -> usize {
        self.core.allocated_size()
    }

    /// Sets the worker count for parallel `ite`/`exists`/`and_exists`
    /// dispatch (clamped to at least 1; 1 = fully serial). The choice
    /// affects wall-clock and node *ids* only — never which functions any
    /// computation produces.
    pub fn set_threads(&mut self, threads: usize) {
        self.threads = threads.max(1);
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Installs (or removes, with `None`) the reentrant mid-operation
    /// maintenance policy. See [`ReentrantConfig`].
    pub fn set_maintenance(&mut self, cfg: Option<ReentrantConfig>) {
        self.maint = cfg;
    }

    /// The installed reentrant maintenance policy, if any.
    pub fn maintenance(&self) -> Option<ReentrantConfig> {
        self.maint
    }

    /// Number of mid-operation maintenance passes (GC and/or reorder at a
    /// kernel checkpoint) run so far. Schedule-dependent: do not pin.
    pub fn maintenance_runs(&self) -> usize {
        self.maintenance_runs
    }

    /// Deterministic per-manager operation counters (see [`OpCounts`]).
    pub fn op_counts(&self) -> OpCounts {
        self.op_counts
    }

    /// The largest live-pool size observed at any kernel checkpoint or
    /// operation boundary — visible even when the peak occurred in the
    /// middle of one operation. Schedule-dependent: do not pin.
    pub fn peak_pool(&self) -> usize {
        self.core.peak_pool()
    }

    /// Overrides the pool size below which parallel dispatch is skipped
    /// ([`DEFAULT_PARALLEL_FLOOR`](Self::DEFAULT_PARALLEL_FLOOR)); tests
    /// use 0 to force the parallel path on small pools.
    pub fn set_parallel_floor(&mut self, floor: usize) {
        self.parallel_floor = floor;
    }

    /// Returns `true` if `f` is a terminal or a live (not collected) node.
    pub fn is_live(&self, f: Bdd) -> bool {
        f.0 <= ONE || self.core.store.level(f.0) != FREE
    }

    /// Checked node accessor: `(level, lo, hi)`. Every walk goes through
    /// here so a stale handle trips the assertion instead of silently
    /// reading a freed (possibly reused) slot.
    #[inline]
    pub(crate) fn node(&self, n: u32) -> (u32, u32, u32) {
        self.core.node(n)
    }

    #[inline]
    pub(crate) fn level(&self, n: u32) -> u32 {
        self.core.level(n)
    }

    /// Pins `f` as an external root: it (and everything it reaches)
    /// survives [`gc`](Self::gc). Protection is refcounted — every
    /// `protect` needs a matching [`unprotect`](Self::unprotect).
    pub fn protect(&mut self, f: Bdd) {
        if f.0 > ONE {
            debug_assert!(self.is_live(f), "cannot protect a collected handle");
            *self.roots.entry(f.0).or_insert(0) += 1;
        }
    }

    /// Releases one [`protect`](Self::protect) pin on `f`.
    ///
    /// # Panics
    ///
    /// Panics if `f` is not currently protected.
    pub fn unprotect(&mut self, f: Bdd) {
        if f.0 <= ONE {
            return;
        }
        let entry = self.roots.get_mut(&f.0);
        assert!(entry.is_some(), "unprotect without a matching protect");
        let Some(count) = entry else { return };
        *count -= 1;
        if *count == 0 {
            self.roots.remove(&f.0);
        }
    }

    /// Number of distinct nodes currently pinned as external roots.
    pub fn protected_count(&self) -> usize {
        self.roots.len()
    }

    /// Mark-and-sweep garbage collection: every node unreachable from the
    /// [`protect`](Self::protect)ed roots is unlinked from the unique table
    /// and its slot pushed onto the free list for reuse. Operation-cache
    /// entries touching a dead id are purged; entries over surviving nodes
    /// are kept, so cross-call memoisation survives frequent collection
    /// (the fixpoint drivers rely on this). Returns the number of nodes
    /// collected.
    ///
    /// Handles to collected nodes become stale — touching one afterwards is
    /// a logic error caught by a debug assertion.
    pub fn gc(&mut self) -> usize {
        let len = self.core.store.len();
        let mut marked = vec![false; len];
        let mut stack: Vec<u32> = self.roots.keys().copied().collect();
        while let Some(n) = stack.pop() {
            if marked[n as usize] {
                continue;
            }
            marked[n as usize] = true;
            let (_, lo, hi) = self.core.node(n);
            for c in [lo, hi] {
                if c > ONE && !marked[c as usize] {
                    stack.push(c);
                }
            }
        }
        self.core.purge_caches(|n| n > ONE && !marked[n as usize]);
        self.isop.purge(|n| n > ONE && !marked[n as usize]);
        let mut collected = 0usize;
        for (id, live) in marked.iter().enumerate().take(len).skip(2) {
            let (level, lo, hi) = self.core.store.raw(id as u32);
            if level == FREE || *live {
                continue;
            }
            self.core.unique_remove(level, lo, hi, id as u32);
            self.core.release_slot(id as u32);
            collected += 1;
        }
        collected
    }

    /// The function of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn var(&mut self, var: usize) -> Bdd {
        assert!(var < self.num_vars(), "variable {var} out of range");
        let level = self.level_of[var];
        Bdd(self.core.mk_unchecked(level, ZERO, ONE))
    }

    /// The function of the negated variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= num_vars`.
    pub fn nvar(&mut self, var: usize) -> Bdd {
        assert!(var < self.num_vars(), "variable {var} out of range");
        let level = self.level_of[var];
        Bdd(self.core.mk_unchecked(level, ONE, ZERO))
    }

    /// If-then-else: the function `f·g + f̅·h` — the complete kernel every
    /// binary operation reduces to (memoised).
    pub fn ite(&mut self, f: Bdd, g: Bdd, h: Bdd) -> Bdd {
        self.op_counts.ite += 1;
        Bdd(self.run_op(Task::Ite(f.0, g.0, h.0)))
    }

    /// Conjunction `f · g`.
    pub fn and(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, g, Bdd(ZERO))
    }

    /// Disjunction `f + g`.
    pub fn or(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(f, Bdd(ONE), g)
    }

    /// Negation `f̅`.
    pub fn not(&mut self, f: Bdd) -> Bdd {
        self.ite(f, Bdd(ZERO), Bdd(ONE))
    }

    /// Exclusive or `f ⊕ g`.
    pub fn xor(&mut self, f: Bdd, g: Bdd) -> Bdd {
        let ng = self.not(g);
        self.ite(f, ng, g)
    }

    /// Difference `f · g̅` — one ITE, no materialised complement.
    pub fn diff(&mut self, f: Bdd, g: Bdd) -> Bdd {
        self.ite(g, Bdd(ZERO), f)
    }

    /// The conjunction of positive literals of `vars`, used as the
    /// quantification set of [`exists`](Self::exists) /
    /// [`and_exists`](Self::and_exists).
    ///
    /// # Panics
    ///
    /// Panics if any variable is out of range.
    pub fn cube_vars(&mut self, vars: &[usize]) -> Bdd {
        self.cube(&vars.iter().map(|&v| (v, true)).collect::<Vec<_>>())
    }

    /// The conjunction of the given `(variable, value)` literals.
    ///
    /// # Panics
    ///
    /// Panics if any variable is out of range or appears twice with
    /// conflicting values (same-value duplicates collapse).
    pub fn cube(&mut self, literals: &[(usize, bool)]) -> Bdd {
        let mut lits: Vec<(u32, bool)> = literals
            .iter()
            .map(|&(v, b)| {
                assert!(v < self.num_vars(), "variable {v} out of range");
                (self.level_of[v], b)
            })
            .collect();
        lits.sort_unstable();
        lits.dedup();
        for w in lits.windows(2) {
            assert!(
                w[0].0 != w[1].0,
                "conflicting literals for variable {}",
                self.var_at[w[0].0 as usize]
            );
        }
        let mut acc = ONE;
        for &(level, value) in lits.iter().rev() {
            acc = if value {
                self.core.mk_unchecked(level, ZERO, acc)
            } else {
                self.core.mk_unchecked(level, acc, ZERO)
            };
        }
        Bdd(acc)
    }

    /// Existential quantification `∃ vars. f`, where `vars` is a positive
    /// cube from [`cube_vars`](Self::cube_vars) (memoised).
    pub fn exists(&mut self, f: Bdd, vars: Bdd) -> Bdd {
        self.op_counts.exists += 1;
        Bdd(self.run_op(Task::Exists(f.0, vars.0)))
    }

    /// The relational product `∃ vars. f · g` computed in one pass, without
    /// materialising the conjunction (memoised) — the workhorse of symbolic
    /// image computation.
    pub fn and_exists(&mut self, f: Bdd, g: Bdd, vars: Bdd) -> Bdd {
        self.op_counts.and_exists += 1;
        Bdd(self.run_op(Task::AndExists(f.0, g.0, vars.0)))
    }

    /// Runs one public operation to completion: dispatch serial or
    /// parallel, and when a kernel trips its live-node checkpoint, unwind,
    /// run the reentrant maintenance pass, raise the effective limit enough
    /// to guarantee progress, and retry against the (gc'd, possibly
    /// reordered, cache-warmed) pool.
    fn run_op(&mut self, task: Task) -> u32 {
        let base_limit = match &self.maint {
            Some(cfg) => cfg.live_limit,
            None => usize::MAX,
        };
        let mut effective = base_limit;
        loop {
            self.core.arm_trip(effective);
            let result = if self.threads > 1 && self.core.pool_size() >= self.parallel_floor {
                crate::par::run(&self.core, self.threads, task)
            } else {
                self.core.run_task(task, &mut OpCtx::default())
            };
            self.core.arm_trip(usize::MAX);
            match result {
                Ok(r) => return r,
                Err(_) => {
                    self.maintain_mid_op(task);
                    // Maintenance may not reach base_limit (the operands
                    // genuinely need more); give the retry headroom to
                    // double the surviving pool so it always progresses.
                    effective = effective
                        .max(self.core.pool_size().saturating_mul(2))
                        .max(base_limit);
                }
            }
        }
    }

    /// The mid-operation maintenance pass: protect the interrupted
    /// operation's operands (nothing else pins them mid-call), collect, and
    /// — if the policy allows and the pool is still over the limit — sift.
    fn maintain_mid_op(&mut self, task: Task) {
        let Some(cfg) = self.maint else { return };
        let operands = task_operands(task);
        for &id in &operands {
            self.protect(Bdd(id));
        }
        self.gc();
        if cfg.reorder != ReorderPolicy::Off && self.core.pool_size() > cfg.live_limit {
            self.reorder_sift(cfg.max_growth);
        }
        for &id in &operands {
            self.unprotect(Bdd(id));
        }
        self.maintenance_runs += 1;
    }

    /// Number of satisfying assignments over the full `2^num_vars` space,
    /// saturating at `u128::MAX`.
    pub fn sat_count(&self, f: Bdd) -> u128 {
        let mut memo: HashMap<u32, u128> = HashMap::new();
        let c = self.sat_count_rec(f.0, &mut memo);
        shl_sat(c, self.level(f.0))
    }

    fn sat_count_rec(&self, n: u32, memo: &mut HashMap<u32, u128>) -> u128 {
        if n == ZERO {
            return 0;
        }
        if n == ONE {
            return 1;
        }
        if let Some(&c) = memo.get(&n) {
            return c;
        }
        let (level, lo, hi) = self.node(n);
        let cl = self.sat_count_rec(lo, memo);
        let ch = self.sat_count_rec(hi, memo);
        let c = shl_sat(cl, self.level(lo) - level - 1)
            .saturating_add(shl_sat(ch, self.level(hi) - level - 1));
        memo.insert(n, c);
        c
    }

    /// Number of diagram nodes reachable from `f`.
    pub fn node_count(&self, f: Bdd) -> usize {
        if f.0 <= ONE {
            return 0;
        }
        let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
        seen.insert(f.0);
        let mut stack = vec![f.0];
        while let Some(n) = stack.pop() {
            let (_, lo, hi) = self.node(n);
            for c in [lo, hi] {
                if c > ONE && seen.insert(c) {
                    stack.push(c);
                }
            }
        }
        seen.len()
    }

    /// The variables `f` depends on, in index order.
    pub fn support(&self, f: Bdd) -> Vec<usize> {
        let mut on_level = vec![false; self.num_vars()];
        let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
        let mut stack = vec![f.0];
        while let Some(n) = stack.pop() {
            if n <= ONE || !seen.insert(n) {
                continue;
            }
            let (level, lo, hi) = self.node(n);
            on_level[level as usize] = true;
            stack.push(lo);
            stack.push(hi);
        }
        let mut vars: Vec<usize> = (0..self.num_vars())
            .filter(|&l| on_level[l])
            .map(|l| self.var_at[l] as usize)
            .collect();
        vars.sort_unstable();
        vars
    }

    /// Evaluates `f` at a complete assignment given in *variable index*
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != num_vars`.
    pub fn eval(&self, f: Bdd, bits: &[bool]) -> bool {
        assert_eq!(bits.len(), self.num_vars(), "assignment width mismatch");
        let mut n = f.0;
        while n > ONE {
            let (level, lo, hi) = self.node(n);
            n = if bits[self.var_at[level as usize] as usize] {
                hi
            } else {
                lo
            };
        }
        n == ONE
    }

    /// Checks every structural invariant of the pool, panicking with a
    /// description on the first violation: live nodes are reduced
    /// (`lo != hi`), reference only live strictly-deeper children, and are
    /// registered exactly once in the unique table (so no two live nodes
    /// share a `(level, lo, hi)` triple); the free list matches the freed
    /// slots; the order arrays are a consistent permutation; and every
    /// protected root is live. Intended for tests and debugging — cost is a
    /// full pool scan.
    pub fn assert_invariants(&self) {
        let len = self.core.store.len();
        let mut live = 0usize;
        for i in 2..len {
            let (level, lo, hi) = self.core.store.raw(i as u32);
            if level == FREE {
                continue;
            }
            live += 1;
            assert!(
                (level as usize) < self.num_vars(),
                "node {i}: level {level} out of range"
            );
            assert!(lo != hi, "node {i}: redundant (lo == hi == {lo})");
            for c in [lo, hi] {
                assert!(
                    c <= ONE || self.core.store.level(c) != FREE,
                    "node {i}: references freed child {c}"
                );
                assert!(
                    self.level(c) > level,
                    "node {i}: child {c} not strictly below level {level}"
                );
            }
            assert_eq!(
                self.core.unique_get(level, lo, hi),
                Some(i as u32),
                "node {i}: unique table misses it or maps its key elsewhere"
            );
        }
        assert_eq!(
            self.core.unique_len(),
            live,
            "unique table holds entries for dead nodes"
        );
        assert_eq!(
            live + self.core.free_len(),
            len - 2,
            "free list out of sync with freed slots"
        );
        for v in 0..self.num_vars() {
            assert_eq!(
                self.var_at[self.level_of[v] as usize] as usize, v,
                "level_of/var_at are not inverse permutations at variable {v}"
            );
        }
        for &id in self.roots.keys() {
            assert!(
                id <= ONE || self.core.store.level(id) != FREE,
                "protected root {id} was collected"
            );
        }
    }
}

/// The operand ids a task holds across a maintenance pass (terminals are
/// harmless to protect: `protect` ignores them).
fn task_operands(task: Task) -> [u32; 3] {
    match task {
        Task::Ite(f, g, h) => [f, g, h],
        Task::Exists(f, cube) => [f, cube, ZERO],
        Task::AndExists(f, g, cube) => [f, g, cube],
    }
}

/// Saturating left shift for satisfying-assignment counts.
fn shl_sat(x: u128, k: u32) -> u128 {
    if x == 0 {
        0
    } else if k >= 128 || x.leading_zeros() < k {
        u128::MAX
    } else {
        x << k
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All assignments over `width` variables, variable-index order.
    fn assignments(width: usize) -> impl Iterator<Item = Vec<bool>> {
        (0..(1u32 << width)).map(move |x| (0..width).map(|i| (x >> i) & 1 == 1).collect())
    }

    #[test]
    fn boolean_ops_match_pointwise() {
        for order in [vec![0, 1, 2, 3], vec![3, 1, 0, 2]] {
            let mut mgr = BddManager::with_order(order);
            let a = mgr.var(0);
            let b = mgr.var(1);
            let c = mgr.var(2);
            let d = mgr.nvar(3);
            let ab = mgr.and(a, b);
            let f = mgr.or(ab, c);
            let g = mgr.xor(f, d);
            let h = mgr.diff(f, c);
            let nf = mgr.not(f);
            for bits in assignments(4) {
                let (va, vb, vc, vd) = (bits[0], bits[1], bits[2], !bits[3]);
                let vf = (va && vb) || vc;
                assert_eq!(mgr.eval(f, &bits), vf, "{bits:?}");
                assert_eq!(mgr.eval(g, &bits), vf ^ vd, "{bits:?}");
                assert_eq!(mgr.eval(h, &bits), vf && !vc, "{bits:?}");
                assert_eq!(mgr.eval(nf, &bits), !vf, "{bits:?}");
            }
        }
    }

    #[test]
    fn canonicity_equal_functions_share_handles() {
        let mut mgr = BddManager::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let ab = mgr.and(a, b);
        let ba = mgr.and(b, a);
        assert_eq!(ab, ba);
        // De Morgan: ¬(a·b) == ¬a + ¬b.
        let left = mgr.not(ab);
        let na = mgr.not(a);
        let nb = mgr.not(b);
        let right = mgr.or(na, nb);
        assert_eq!(left, right);
    }

    #[test]
    fn ite_matches_truth_table() {
        let mut mgr = BddManager::new(3);
        let f = mgr.var(0);
        let g = mgr.var(1);
        let h = mgr.var(2);
        let r = mgr.ite(f, g, h);
        for bits in assignments(3) {
            let expect = if bits[0] { bits[1] } else { bits[2] };
            assert_eq!(mgr.eval(r, &bits), expect, "{bits:?}");
        }
    }

    #[test]
    fn exists_quantifies_out_variables() {
        let mut mgr = BddManager::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let ab = mgr.and(a, b);
        let f = mgr.or(ab, c);
        let q = mgr.cube_vars(&[1]);
        let e = mgr.exists(f, q);
        let expect = mgr.or(a, c);
        assert_eq!(e, expect);
        // Quantifying the whole support collapses to a constant.
        let all = mgr.cube_vars(&[0, 1, 2]);
        assert!(mgr.exists(f, all).is_true());
        let zero = mgr.zero();
        assert!(mgr.exists(zero, all).is_false());
    }

    #[test]
    fn exists_over_unsupported_vars_is_identity() {
        let mut mgr = BddManager::new(4);
        let a = mgr.var(0);
        let c = mgr.var(2);
        let f = mgr.and(a, c);
        let q = mgr.cube_vars(&[1, 3]);
        assert_eq!(mgr.exists(f, q), f);
    }

    #[test]
    fn and_exists_equals_and_then_exists() {
        for order in [vec![0, 1, 2, 3, 4], vec![4, 2, 0, 3, 1]] {
            let mut mgr = BddManager::with_order(order);
            let a = mgr.var(0);
            let b = mgr.var(1);
            let c = mgr.var(2);
            let d = mgr.var(3);
            let e = mgr.var(4);
            let nb = mgr.not(b);
            let t1 = mgr.or(a, nb);
            let t2 = mgr.and(c, d);
            let f = mgr.xor(t1, t2);
            let de = mgr.and(d, e);
            let g = mgr.or(b, de);
            for q_vars in [vec![1], vec![1, 3], vec![0, 1, 2, 3, 4], vec![]] {
                let q = mgr.cube_vars(&q_vars);
                let direct = mgr.and_exists(f, g, q);
                let conj = mgr.and(f, g);
                let two_step = mgr.exists(conj, q);
                assert_eq!(direct, two_step, "vars {q_vars:?}");
            }
        }
    }

    #[test]
    fn cube_builds_the_expected_minterm_set() {
        let mut mgr = BddManager::new(3);
        let c = mgr.cube(&[(0, true), (2, false)]);
        for bits in assignments(3) {
            assert_eq!(mgr.eval(c, &bits), bits[0] && !bits[2], "{bits:?}");
        }
        assert_eq!(mgr.sat_count(c), 2);
    }

    #[test]
    #[should_panic(expected = "conflicting literals")]
    fn conflicting_cube_literals_panic() {
        let mut mgr = BddManager::new(2);
        mgr.cube(&[(0, true), (0, false)]);
    }

    #[test]
    fn sat_count_counts_minterms() {
        let mut mgr = BddManager::new(10);
        assert_eq!(mgr.sat_count(mgr.one()), 1024);
        assert_eq!(mgr.sat_count(mgr.zero()), 0);
        let a = mgr.var(0);
        assert_eq!(mgr.sat_count(a), 512);
        let b = mgr.var(9);
        let ab = mgr.and(a, b);
        assert_eq!(mgr.sat_count(ab), 256);
        let aob = mgr.or(a, b);
        assert_eq!(mgr.sat_count(aob), 768);
    }

    #[test]
    fn support_reports_dependent_variables() {
        let mut mgr = BddManager::with_order(vec![2, 0, 1]);
        let a = mgr.var(0);
        let c = mgr.var(2);
        let f = mgr.xor(a, c);
        assert_eq!(mgr.support(f), vec![0, 2]);
        assert!(mgr.support(mgr.one()).is_empty());
    }

    #[test]
    #[should_panic(expected = "appears twice")]
    fn duplicate_order_rejected() {
        BddManager::with_order(vec![0, 0, 1]);
    }

    #[test]
    fn gc_sweeps_unprotected_nodes_and_reuses_slots() {
        let mut mgr = BddManager::new(6);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let keep = mgr.and(a, b);
        // Garbage: a pile of intermediate results nothing pins.
        for i in 2..6 {
            let v = mgr.var(i);
            let t = mgr.xor(keep, v);
            let _ = mgr.or(t, a);
        }
        let before = mgr.pool_size();
        mgr.protect(keep);
        let collected = mgr.gc();
        assert!(collected > 0, "expected dead nodes");
        assert_eq!(mgr.pool_size(), before - collected);
        assert!(mgr.is_live(keep));
        mgr.assert_invariants();
        // The protected function still evaluates correctly and freed slots
        // are reused by new allocations.
        assert_eq!(mgr.sat_count(keep), 16);
        let allocated = mgr.allocated_size();
        let c = mgr.var(2);
        let f = mgr.or(keep, c);
        assert_eq!(mgr.allocated_size(), allocated, "slots must be reused");
        assert_eq!(mgr.sat_count(f), 40);
        mgr.unprotect(keep);
        mgr.assert_invariants();
    }

    #[test]
    fn gc_without_roots_sweeps_everything() {
        let mut mgr = BddManager::new(4);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let _ = mgr.xor(a, b);
        assert!(mgr.pool_size() > 0);
        mgr.gc();
        assert_eq!(mgr.pool_size(), 0);
        mgr.assert_invariants();
        // Terminals survive unconditionally.
        assert!(mgr.one().is_true());
        assert!(mgr.zero().is_false());
    }

    #[test]
    fn protection_is_refcounted() {
        let mut mgr = BddManager::new(2);
        let a = mgr.var(0);
        mgr.protect(a);
        mgr.protect(a);
        mgr.unprotect(a);
        mgr.gc();
        assert!(mgr.is_live(a), "still pinned once");
        mgr.unprotect(a);
        mgr.gc();
        assert!(!mgr.is_live(a));
    }

    #[test]
    #[should_panic(expected = "unprotect without a matching protect")]
    fn unbalanced_unprotect_panics() {
        let mut mgr = BddManager::new(2);
        let a = mgr.var(0);
        mgr.unprotect(a);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "garbage-collected")]
    fn stale_handle_after_gc_panics_in_sat_count() {
        let mut mgr = BddManager::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let stale = mgr.and(a, b);
        mgr.gc(); // nothing protected: `stale` is collected
        let _ = mgr.sat_count(stale);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "garbage-collected")]
    fn stale_handle_after_gc_panics_in_ops() {
        let mut mgr = BddManager::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let stale = mgr.and(a, b);
        // Keep `a` alive so the stale handle's slot is not immediately
        // reused (reuse is the one case the guard cannot see).
        mgr.protect(a);
        mgr.gc();
        let _ = mgr.and(stale, a);
    }

    #[test]
    fn gc_preserves_semantics_of_protected_dag() {
        let mut mgr = BddManager::with_order(vec![2, 0, 3, 1]);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let d = mgr.nvar(3);
        let t1 = mgr.and(a, b);
        let t2 = mgr.or(c, d);
        let f = mgr.xor(t1, t2);
        let expected: Vec<bool> = assignments(4).map(|bits| mgr.eval(f, &bits)).collect();
        mgr.protect(f);
        mgr.gc();
        mgr.assert_invariants();
        let after: Vec<bool> = assignments(4).map(|bits| mgr.eval(f, &bits)).collect();
        assert_eq!(expected, after);
        // Rebuilding the same function lands on the same (hash-consed) id.
        let a2 = mgr.var(0);
        let b2 = mgr.var(1);
        let c2 = mgr.var(2);
        let d2 = mgr.nvar(3);
        let t1b = mgr.and(a2, b2);
        let t2b = mgr.or(c2, d2);
        assert_eq!(mgr.xor(t1b, t2b), f);
        mgr.unprotect(f);
    }

    #[test]
    fn op_counts_track_public_calls() {
        let mut mgr = BddManager::new(4);
        assert_eq!(mgr.op_counts(), OpCounts::default());
        let a = mgr.var(0);
        let b = mgr.var(1);
        let f = mgr.and(a, b); // 1 ite
        let g = mgr.xor(f, a); // not + ite = 2
        let q = mgr.cube_vars(&[0]);
        let _ = mgr.exists(g, q);
        let _ = mgr.and_exists(f, g, q);
        let counts = mgr.op_counts();
        assert_eq!(counts.ite, 3);
        assert_eq!(counts.exists, 1);
        assert_eq!(counts.and_exists, 1);
    }

    #[test]
    fn parallel_dispatch_matches_serial_results() {
        // Force the parallel path on a small pool and check handle-level
        // equality against the serial manager: canonicity makes results
        // comparable through evaluation and sat counts.
        let build = |mgr: &mut BddManager| {
            let mut f = mgr.zero();
            for i in 0..4 {
                let a = mgr.var(i);
                let b = mgr.var(i + 4);
                let t = mgr.xor(a, b);
                f = mgr.or(f, t);
            }
            f
        };
        let mut serial = BddManager::new(8);
        let fs = build(&mut serial);
        for threads in [2, 4] {
            let mut par = BddManager::new(8);
            par.set_threads(threads);
            par.set_parallel_floor(0);
            let fp = build(&mut par);
            assert_eq!(serial.sat_count(fs), par.sat_count(fp), "{threads} threads");
            let q_serial = serial.cube_vars(&[0, 4]);
            let q_par = par.cube_vars(&[0, 4]);
            let es = serial.exists(fs, q_serial);
            let ep = par.exists(fp, q_par);
            assert_eq!(serial.sat_count(es), par.sat_count(ep));
            let gs = serial.and_exists(fs, es, q_serial);
            let gp = par.and_exists(fp, ep, q_par);
            assert_eq!(serial.sat_count(gs), par.sat_count(gp));
            for bits in assignments(8) {
                assert_eq!(serial.eval(fs, &bits), par.eval(fp, &bits), "{bits:?}");
            }
            par.assert_invariants();
        }
    }

    #[test]
    fn reentrant_maintenance_completes_an_over_budget_op() {
        // A conjunction of xors whose intermediate results overflow a tiny
        // live limit: without reentrant maintenance the pool simply grows;
        // with it, the op must trip, collect, and still produce the right
        // function.
        let mut mgr = BddManager::new(16);
        mgr.set_maintenance(Some(ReentrantConfig {
            live_limit: 64,
            reorder: ReorderPolicy::Off,
            max_growth: BddManager::DEFAULT_MAX_GROWTH,
        }));
        let mut f = mgr.one();
        for i in 0..8 {
            let a = mgr.var(i);
            let b = mgr.var(15 - i);
            let x = mgr.xor(a, b);
            f = mgr.and(f, x);
        }
        assert_eq!(mgr.sat_count(f), 1 << 8);
        // The op counters must be unaffected by retries: 8 xor (2 ites
        // each) + 8 and = 24 public ites.
        assert_eq!(mgr.op_counts().ite, 24);
        mgr.assert_invariants();
    }
}
