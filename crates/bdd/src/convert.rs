//! Conversions between [`Bdd`] functions and
//! [`si_cubes::implicit::ImplicitCover`] point sets.
//!
//! The two representations are both canonical DAGs over Boolean point sets,
//! but they live in different pools with (possibly) different variable
//! orders, so conversion goes through semantics rather than structure
//! sharing: implicit → BDD enumerates the canonical disjoint-cube cover and
//! rebuilds it as a disjunction of cubes; BDD → implicit walks the diagram
//! once with a per-node memo, recombining children through the implicit
//! pool's cached set algebra. A bulk minterm build
//! ([`BddManager::from_minterms`]) mirrors
//! `ImplicitPool::from_minterms` for loading explicit state sets.

use std::collections::HashMap;
use std::fmt;

use si_cubes::implicit::{ImplicitCover, ImplicitPool};
use si_cubes::{Cube, Literal};

use crate::manager::{Bdd, BddManager};

/// Error from a BDD → implicit conversion.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ConvertError {
    /// The function's support contains a manager variable the variable map
    /// leaves unmapped (`var_map[var]` is `None`), so its points have no
    /// home in the implicit pool.
    UnmappedVariable {
        /// The unmapped manager variable index.
        var: usize,
    },
}

impl fmt::Display for ConvertError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConvertError::UnmappedVariable { var } => {
                write!(f, "function depends on unmapped variable {var}")
            }
        }
    }
}

impl std::error::Error for ConvertError {}

/// A reusable BDD-node → implicit-set memo for batch conversions of related
/// functions into *one* pool under *one* variable map — the per-call memo
/// [`BddManager::to_implicit`] builds internally, lifted out so shared
/// subgraphs translate once per batch instead of once per function.
///
/// Entries are keyed on node ids, which survive reordering (sifting rewrites
/// nodes in place) but **not** garbage collection: drop the cache before (or
/// after) any [`gc`](BddManager::gc) between conversions, and never reuse it
/// with a different pool or variable map.
#[derive(Default)]
pub struct TranslationCache {
    memo: HashMap<u32, ImplicitCover>,
}

impl BddManager {
    /// Builds the BDD of an implicit point set by enumerating its canonical
    /// disjoint-cube cover. `var_map[implicit_var]` names the manager
    /// variable carrying that implicit variable.
    ///
    /// # Panics
    ///
    /// Panics if `var_map.len() != pool.width()` or any mapped variable is
    /// out of range.
    pub fn from_implicit(
        &mut self,
        pool: &ImplicitPool,
        set: ImplicitCover,
        var_map: &[usize],
    ) -> Bdd {
        assert_eq!(var_map.len(), pool.width(), "variable map width mismatch");
        let cover = pool.to_cover(set);
        let mut acc = self.zero();
        let mut literals: Vec<(usize, bool)> = Vec::new();
        for cube in cover.cubes() {
            literals.clear();
            for (v, &mapped) in var_map.iter().enumerate() {
                match cube.get(v) {
                    Literal::DontCare => {}
                    Literal::Zero => literals.push((mapped, false)),
                    Literal::One => literals.push((mapped, true)),
                }
            }
            let c = self.cube(&literals);
            acc = self.or(acc, c);
        }
        acc
    }

    /// Converts a BDD into an implicit point set over `pool`.
    /// `var_map[manager_var]` names the implicit variable carrying that
    /// manager variable (`None` for variables the function must not depend
    /// on — e.g. quantified-out state bits).
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError::UnmappedVariable`] if `f` depends on a
    /// variable mapped to `None`.
    ///
    /// # Panics
    ///
    /// Panics if `var_map.len() != num_vars` or a mapped index is
    /// `>= pool.width()`.
    pub fn to_implicit(
        &self,
        f: Bdd,
        pool: &mut ImplicitPool,
        var_map: &[Option<usize>],
    ) -> Result<ImplicitCover, ConvertError> {
        let mut cache = TranslationCache::default();
        self.to_implicit_cached(f, pool, var_map, &mut cache)
    }

    /// [`to_implicit`](Self::to_implicit) with a caller-held memo, so a
    /// batch of functions sharing diagram structure (e.g. one on/off pair
    /// per signal over the same reachable set) translates each shared
    /// subgraph once. See [`TranslationCache`] for the validity rules.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError::UnmappedVariable`] if `f` depends on a
    /// variable mapped to `None`.
    ///
    /// # Panics
    ///
    /// Panics if `var_map.len() != num_vars` or a mapped index is
    /// `>= pool.width()`.
    pub fn to_implicit_cached(
        &self,
        f: Bdd,
        pool: &mut ImplicitPool,
        var_map: &[Option<usize>],
        cache: &mut TranslationCache,
    ) -> Result<ImplicitCover, ConvertError> {
        assert_eq!(
            var_map.len(),
            self.num_vars(),
            "variable map width mismatch"
        );
        self.to_implicit_rec(f.0, pool, var_map, &mut cache.memo)
    }

    fn to_implicit_rec(
        &self,
        n: u32,
        pool: &mut ImplicitPool,
        var_map: &[Option<usize>],
        memo: &mut HashMap<u32, ImplicitCover>,
    ) -> Result<ImplicitCover, ConvertError> {
        if Bdd(n).is_false() {
            return Ok(pool.empty());
        }
        if Bdd(n).is_true() {
            return Ok(pool.full());
        }
        if let Some(&r) = memo.get(&n) {
            return Ok(r);
        }
        let (level, lo, hi) = self.node(n);
        let var = self.var_at(level as usize);
        let iv = var_map[var].ok_or(ConvertError::UnmappedVariable { var })?;
        let l = self.to_implicit_rec(lo, pool, var_map, memo)?;
        let h = self.to_implicit_rec(hi, pool, var_map, memo)?;
        let mut cube0 = Cube::full(pool.width());
        cube0.set(iv, Literal::Zero);
        let mut cube1 = Cube::full(pool.width());
        cube1.set(iv, Literal::One);
        let c0 = pool.cube_set(&cube0);
        let c1 = pool.cube_set(&cube1);
        let left = pool.intersect(c0, l);
        let right = pool.intersect(c1, h);
        let r = pool.union(left, right);
        memo.insert(n, r);
        Ok(r)
    }

    /// Bulk-builds the BDD of a batch of complete minterms, merging shared
    /// structure as it recurses (the rows are reordered in place; duplicate
    /// rows collapse). Row `i` gives the value of logical variable `i`;
    /// `var_map[i]` names the manager variable carrying it.
    ///
    /// # Panics
    ///
    /// Panics if rows disagree with `var_map.len()` in width, or a mapped
    /// variable is out of range or repeated.
    pub fn from_minterms(&mut self, rows: &mut [Vec<bool>], var_map: &[usize]) -> Bdd {
        // Logical variables sorted topmost-level first, so the recursion
        // emits nodes in diagram order.
        let mut by_level: Vec<(u32, usize)> = var_map
            .iter()
            .enumerate()
            .map(|(logical, &var)| {
                assert!(var < self.num_vars(), "variable {var} out of range");
                (self.level_of(var) as u32, logical)
            })
            .collect();
        by_level.sort_unstable();
        for w in by_level.windows(2) {
            assert!(w[0].0 != w[1].0, "variable map repeats a manager variable");
        }
        for row in rows.iter() {
            assert_eq!(row.len(), var_map.len(), "minterm width mismatch");
        }
        Bdd(self.build_sorted(rows, &by_level, 0))
    }

    fn build_sorted(
        &mut self,
        rows: &mut [Vec<bool>],
        by_level: &[(u32, usize)],
        depth: usize,
    ) -> u32 {
        if rows.is_empty() {
            return self.zero().0;
        }
        let Some(&(level, logical)) = by_level.get(depth) else {
            return self.one().0;
        };
        // In-place partition: rows with bit 0 first.
        let mut lo_end = 0usize;
        for i in 0..rows.len() {
            if !rows[i][logical] {
                rows.swap(lo_end, i);
                lo_end += 1;
            }
        }
        let (lo_rows, hi_rows) = rows.split_at_mut(lo_end);
        let lo = self.build_sorted(lo_rows, by_level, depth + 1);
        let hi = self.build_sorted(hi_rows, by_level, depth + 1);
        self.mk_pub(level, lo, hi)
    }

    /// Thin crate-internal bridge so the builder above can hash-cons.
    fn mk_pub(&mut self, level: u32, lo: u32, hi: u32) -> u32 {
        // `cube`-style construction through ITE keeps this allocation-free:
        // ite(var_at_level, hi, lo) builds exactly mk(level, lo, hi).
        let var = self.var_at(level as usize);
        let v = self.var(var);
        self.ite(v, Bdd(hi), Bdd(lo)).0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_cubes::Cover;

    fn cover(cubes: &[&str]) -> Cover {
        cubes.iter().map(|s| Cube::from_str_cube(s)).collect()
    }

    /// All assignments over `width` variables.
    fn assignments(width: usize) -> impl Iterator<Item = Vec<bool>> {
        (0..(1u32 << width)).map(move |x| (0..width).map(|i| (x >> i) & 1 == 1).collect())
    }

    #[test]
    fn implicit_roundtrip_identity_map() {
        let mut pool = ImplicitPool::new(4);
        let c = cover(&["1--0", "01--", "--11"]);
        let set = pool.cover_set(&c);
        let mut mgr = BddManager::new(4);
        let map: Vec<usize> = (0..4).collect();
        let f = mgr.from_implicit(&pool, set, &map);
        for bits in assignments(4) {
            assert_eq!(mgr.eval(f, &bits), c.covers_bits(&bits), "{bits:?}");
        }
        let back_map: Vec<Option<usize>> = (0..4).map(Some).collect();
        let back = mgr
            .to_implicit(f, &mut pool, &back_map)
            .expect("support is mapped");
        assert_eq!(back, set, "roundtrip lands on the same canonical set");
    }

    #[test]
    fn implicit_roundtrip_permuted_map() {
        // Implicit variable i lives on manager variable map[i], and the
        // manager itself uses a scrambled level order.
        let mut pool = ImplicitPool::new(3);
        let c = cover(&["10-", "-01"]);
        let set = pool.cover_set(&c);
        let mut mgr = BddManager::with_order(vec![4, 0, 2, 1, 3]);
        let map = [3usize, 0, 4];
        let f = mgr.from_implicit(&pool, set, &map);
        let mut back_map = vec![None; 5];
        for (iv, &mv) in map.iter().enumerate() {
            back_map[mv] = Some(iv);
        }
        let back = mgr
            .to_implicit(f, &mut pool, &back_map)
            .expect("support is mapped");
        assert_eq!(back, set);
        // Pointwise: manager assignment bits pull from implicit vars.
        for bits in assignments(3) {
            let mut mbits = vec![false; 5];
            for (iv, &mv) in map.iter().enumerate() {
                mbits[mv] = bits[iv];
            }
            assert_eq!(mgr.eval(f, &mbits), c.covers_bits(&bits), "{bits:?}");
        }
    }

    #[test]
    fn from_minterms_matches_per_point_or() {
        let points = [0b0000u32, 0b1010, 0b0110, 0b1111, 0b1010];
        let mut rows: Vec<Vec<bool>> = points
            .iter()
            .map(|&p| (0..4).map(|i| (p >> i) & 1 == 1).collect())
            .collect();
        let mut mgr = BddManager::with_order(vec![2, 0, 3, 1]);
        let map: Vec<usize> = (0..4).collect();
        let bulk = mgr.from_minterms(&mut rows, &map);
        let mut one_by_one = mgr.zero();
        for &p in &points {
            let lits: Vec<(usize, bool)> = (0..4).map(|i| (i, (p >> i) & 1 == 1)).collect();
            let c = mgr.cube(&lits);
            one_by_one = mgr.or(one_by_one, c);
        }
        assert_eq!(bulk, one_by_one);
        assert_eq!(mgr.sat_count(bulk), 4, "duplicate rows collapse");
    }

    #[test]
    fn empty_and_full_sets_convert() {
        let mut pool = ImplicitPool::new(2);
        let mut mgr = BddManager::new(2);
        let map: Vec<usize> = (0..2).collect();
        let back_map: Vec<Option<usize>> = (0..2).map(Some).collect();
        let empty = pool.empty();
        let full = pool.full();
        assert!(mgr.from_implicit(&pool, empty, &map).is_false());
        assert!(mgr.from_implicit(&pool, full, &map).is_true());
        let zero = mgr.zero();
        let one = mgr.one();
        assert!(mgr
            .to_implicit(zero, &mut pool, &back_map)
            .expect("constants have empty support")
            .is_empty());
        assert_eq!(
            mgr.to_implicit(one, &mut pool, &back_map)
                .expect("constants have empty support"),
            pool.full()
        );
        let mut no_rows: Vec<Vec<bool>> = Vec::new();
        assert!(mgr.from_minterms(&mut no_rows, &map).is_false());
    }

    #[test]
    fn unmapped_support_variable_is_a_typed_error() {
        let mut mgr = BddManager::new(2);
        let f = mgr.var(1);
        let mut pool = ImplicitPool::new(1);
        let err = mgr
            .to_implicit(f, &mut pool, &[Some(0), None])
            .expect_err("support variable 1 is unmapped");
        assert_eq!(err, ConvertError::UnmappedVariable { var: 1 });
        assert_eq!(err.to_string(), "function depends on unmapped variable 1");
        // The same contract holds for the ISOP extraction front end.
        let isop_err = mgr
            .isop_implicit(f, &mut pool, &[Some(0), None])
            .expect_err("support variable 1 is unmapped");
        assert_eq!(isop_err, ConvertError::UnmappedVariable { var: 1 });
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "garbage-collected")]
    fn converting_a_stale_handle_panics() {
        let mut mgr = BddManager::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let stale = mgr.and(a, b);
        mgr.protect(a); // keep the slot from being reused
        mgr.gc();
        let mut pool = ImplicitPool::new(3);
        let map: Vec<Option<usize>> = (0..3).map(Some).collect();
        let _ = mgr.to_implicit(stale, &mut pool, &map);
    }

    #[test]
    fn conversions_are_reorder_safe() {
        // `to_implicit`/`from_implicit`/`from_minterms` must query the
        // *current* layout: after sifting, the same point set comes back.
        let mut pool = ImplicitPool::new(4);
        let c = cover(&["1--0", "01--", "--11"]);
        let set = pool.cover_set(&c);
        let mut mgr = BddManager::with_order(vec![3, 1, 0, 2]);
        let map: Vec<usize> = (0..4).collect();
        let f = mgr.from_implicit(&pool, set, &map);
        mgr.protect(f);
        mgr.swap_levels(1);
        mgr.reorder_sift(BddManager::DEFAULT_MAX_GROWTH);
        let back_map: Vec<Option<usize>> = (0..4).map(Some).collect();
        assert_eq!(
            mgr.to_implicit(f, &mut pool, &back_map)
                .expect("support is mapped"),
            set
        );
        assert_eq!(mgr.from_implicit(&pool, set, &map), f);
        let mut rows: Vec<Vec<bool>> = (0..16u32)
            .filter(|&x| c.covers_bits(&(0..4).map(|i| (x >> i) & 1 == 1).collect::<Vec<_>>()))
            .map(|x| (0..4).map(|i| (x >> i) & 1 == 1).collect())
            .collect();
        assert_eq!(mgr.from_minterms(&mut rows, &map), f);
        mgr.unprotect(f);
    }
}
