//! BDD-native irredundant sum-of-products extraction (Minato–Morreale).
//!
//! The classic three-way cofactor recursion `isop(L, U)` computes, for a
//! pair of bounds `L ⊆ U`, a cover `C` and its function `B` with
//! `L ⊆ B ⊆ U` such that `C` is an *irredundant* SOP: every cube is needed
//! (dropping any loses a point of `L`). Called with `L = U = f` it yields an
//! irredundant cover of exactly `f` — the minimiser front end — without ever
//! enumerating the canonical disjoint-cube decomposition the
//! [`to_implicit`](crate::BddManager::to_implicit) translation path walks.
//!
//! Covers are built as a shared DAG in a manager-resident arena: node
//! `{var, lo, hi, dc}` denotes the cube set `x̅·lo ∪ x·hi ∪ dc` (with `x`
//! the branch variable), mirroring the recursion's combine step, so the
//! extraction is polynomial in diagram size even when the cube count is not.
//! The `(L, U) → (cover, B)` memo lives on the manager next to the unique
//! table: garbage collection purges entries whose operand or result ids
//! died, and reordering clears the tables outright — the recursion itself is
//! order-sensitive (bounds are split at the current top level), so memoised
//! covers from an old order would silently lose irredundancy under a new
//! one.
//!
//! Extraction runs under `&mut self` with the interruption trip disarmed: no
//! GC, reorder or concurrent kernel can run mid-extraction, so intermediate
//! `B` roots need no protection — they stay valid until the caller's next
//! maintenance point, which is exactly when the memo entries naming them are
//! purged.

use std::collections::HashMap;

use si_cubes::implicit::{ImplicitCover, ImplicitPool};
use si_cubes::{Cover, Cube, Literal};

use crate::convert::ConvertError;
use crate::core::{FxMap, OpCtx, ONE, ZERO};
use crate::manager::{Bdd, BddManager};

/// Cover-DAG sentinel: the empty cover.
const EMPTY_C: u32 = u32::MAX;
/// Cover-DAG sentinel: the single tautology cube.
const TAUT_C: u32 = u32::MAX - 1;

/// One cover-DAG node: the cube set `x̅·lo ∪ x·hi ∪ dc` with `x = var`.
/// Children are [`EMPTY_C`]/[`TAUT_C`] or indices into the arena; every
/// child's cubes mention only variables strictly below `var` in the order
/// that built the node (the arena never survives a reorder).
#[derive(Clone, Copy)]
struct IsopNode {
    var: u32,
    lo: u32,
    hi: u32,
    dc: u32,
}

/// Manager-resident extraction state: the cover-DAG arena plus the
/// `(L, U) → (cover ref, cover function)` memo over BDD node ids.
#[derive(Default)]
pub(crate) struct IsopTables {
    arena: Vec<IsopNode>,
    memo: FxMap<(u32, u32), (u32, u32)>,
}

impl IsopTables {
    /// Drops everything — reordering retires the level structure the
    /// memoised covers were split on.
    pub(crate) fn clear(&mut self) {
        self.arena.clear();
        self.memo.clear();
    }

    /// Purges memo entries whose operand or result ids died in a
    /// collection. Arena nodes reference no BDD ids, so they stay valid;
    /// once nothing references them any more the arena is reset wholesale.
    pub(crate) fn purge(&mut self, dead: impl Fn(u32) -> bool) {
        self.memo
            .retain(|&(l, u), &mut (_, b)| !dead(l) && !dead(u) && !dead(b));
        if self.memo.is_empty() {
            self.arena.clear();
        }
    }
}

impl BddManager {
    /// Extracts an irredundant sum-of-products cover of `f` directly on the
    /// diagram (Minato–Morreale), returning it as an implicit point set over
    /// `pool` — the BDD-native alternative to the
    /// [`to_implicit`](Self::to_implicit) disjoint-cube translation.
    /// `var_map` follows the same contract. The point set equals `f`
    /// exactly; only the internal cube decomposition differs from the
    /// translation path, and both collapse to the same canonical set.
    ///
    /// # Errors
    ///
    /// Returns [`ConvertError::UnmappedVariable`] if `f` depends on a
    /// variable mapped to `None`.
    ///
    /// # Panics
    ///
    /// Panics if `var_map.len() != num_vars` or a mapped index is
    /// `>= pool.width()`.
    pub fn isop_implicit(
        &mut self,
        f: Bdd,
        pool: &mut ImplicitPool,
        var_map: &[Option<usize>],
    ) -> Result<ImplicitCover, ConvertError> {
        assert_eq!(
            var_map.len(),
            self.num_vars(),
            "variable map width mismatch"
        );
        let cover = self.isop_root(f);
        let mut memo: HashMap<u32, ImplicitCover> = HashMap::new();
        self.cover_to_implicit(cover, pool, var_map, &mut memo)
    }

    /// Extracts an irredundant sum-of-products cover of `f` as explicit
    /// cubes over the manager's variables (cube position `i` carries
    /// variable `i`). Cube enumeration expands the shared cover DAG, so this
    /// is for inspection and tests; the synthesis path uses
    /// [`isop_implicit`](Self::isop_implicit).
    pub fn isop(&mut self, f: Bdd) -> Cover {
        let cover = self.isop_root(f);
        let width = self.num_vars();
        let mut memo: HashMap<u32, Vec<Cube>> = HashMap::new();
        self.cover_to_cubes(cover, width, &mut memo)
            .into_iter()
            .collect()
    }

    /// Runs the bounded recursion with `L = U = f` and cross-checks the
    /// fundamental invariant: with tight bounds the extracted cover's
    /// function must be `f` itself.
    fn isop_root(&mut self, f: Bdd) -> u32 {
        // Disarm the mid-operation trip so the kernels this recursion leans
        // on cannot unwind; re-disarming is idempotent (public ops already
        // leave the trip disarmed on exit).
        self.core.arm_trip(usize::MAX);
        let mut ctx = OpCtx::default();
        let (cover, b) = self.isop_rec(f.0, f.0, &mut ctx);
        debug_assert_eq!(b, f.0, "isop(f, f) must cover exactly f");
        let _ = b;
        cover
    }

    /// `ite` against the core kernel (no public-op accounting: extraction
    /// is a read-out, not a driver decision, and the CI-pinned op counts
    /// must not depend on the extraction front end).
    fn isop_ite(&mut self, f: u32, g: u32, h: u32, ctx: &mut OpCtx) -> u32 {
        match self.core.ite_rec(f, g, h, ctx) {
            Ok(r) => r,
            Err(_) => unreachable!("interruption is disarmed during ISOP extraction"),
        }
    }

    /// The Minato–Morreale recursion on bounds `L ⊆ U` (BDD node ids).
    /// Returns `(cover ref, B)` with `L ⊆ B ⊆ U` and the cover irredundant.
    fn isop_rec(&mut self, l: u32, u: u32, ctx: &mut OpCtx) -> (u32, u32) {
        if l == ZERO {
            return (EMPTY_C, ZERO);
        }
        if u == ONE {
            return (TAUT_C, ONE);
        }
        if let Some(&r) = self.isop.memo.get(&(l, u)) {
            return r;
        }
        let level = self.core.level(l).min(self.core.level(u));
        let var = self.var_at[level as usize];
        let (l0, l1) = self.core.children_at(l, level);
        let (u0, u1) = self.core.children_at(u, level);
        // Points only reachable with an x̅ (resp. x) literal: cofactor
        // points of L that U's opposite branch cannot absorb.
        let l0_only = self.isop_ite(u1, ZERO, l0, ctx);
        let (c0, b0) = self.isop_rec(l0_only, u0, ctx);
        let l1_only = self.isop_ite(u0, ZERO, l1, ctx);
        let (c1, b1) = self.isop_rec(l1_only, u1, ctx);
        // Whatever the literal cubes left uncovered must come from cubes
        // without an x literal, admissible under both upper cofactors.
        let l0_rest = self.isop_ite(b0, ZERO, l0, ctx);
        let l1_rest = self.isop_ite(b1, ZERO, l1, ctx);
        let l_rest = self.isop_ite(l0_rest, ONE, l1_rest, ctx);
        let u_both = self.isop_ite(u0, u1, ZERO, ctx);
        let (cd, bd) = self.isop_rec(l_rest, u_both, ctx);
        let cover = if c0 == EMPTY_C && c1 == EMPTY_C {
            cd
        } else {
            let r = self.isop.arena.len() as u32;
            self.isop.arena.push(IsopNode {
                var,
                lo: c0,
                hi: c1,
                dc: cd,
            });
            r
        };
        let b0d = self.isop_ite(b0, ONE, bd, ctx);
        let b1d = self.isop_ite(b1, ONE, bd, ctx);
        let xv = self.core.mk_unchecked(level, ZERO, ONE);
        let b = self.isop_ite(xv, b1d, b0d, ctx);
        self.isop.memo.insert((l, u), (cover, b));
        (cover, b)
    }

    /// Folds a cover-DAG node into an implicit point set:
    /// `x̅·lo ∪ x·hi ∪ dc`, memoised per arena node.
    fn cover_to_implicit(
        &self,
        r: u32,
        pool: &mut ImplicitPool,
        var_map: &[Option<usize>],
        memo: &mut HashMap<u32, ImplicitCover>,
    ) -> Result<ImplicitCover, ConvertError> {
        if r == EMPTY_C {
            return Ok(pool.empty());
        }
        if r == TAUT_C {
            return Ok(pool.full());
        }
        if let Some(&s) = memo.get(&r) {
            return Ok(s);
        }
        let IsopNode { var, lo, hi, dc } = self.isop.arena[r as usize];
        let iv =
            var_map[var as usize].ok_or(ConvertError::UnmappedVariable { var: var as usize })?;
        let l = self.cover_to_implicit(lo, pool, var_map, memo)?;
        let h = self.cover_to_implicit(hi, pool, var_map, memo)?;
        let d = self.cover_to_implicit(dc, pool, var_map, memo)?;
        let mut cube0 = Cube::full(pool.width());
        cube0.set(iv, Literal::Zero);
        let mut cube1 = Cube::full(pool.width());
        cube1.set(iv, Literal::One);
        let c0 = pool.cube_set(&cube0);
        let c1 = pool.cube_set(&cube1);
        let left = pool.intersect(c0, l);
        let right = pool.intersect(c1, h);
        let lr = pool.union(left, right);
        let s = pool.union(lr, d);
        memo.insert(r, s);
        Ok(s)
    }

    /// Expands a cover-DAG node into explicit cubes (literal pushed onto
    /// every cube of the matching branch).
    fn cover_to_cubes(
        &self,
        r: u32,
        width: usize,
        memo: &mut HashMap<u32, Vec<Cube>>,
    ) -> Vec<Cube> {
        if r == EMPTY_C {
            return Vec::new();
        }
        if r == TAUT_C {
            return vec![Cube::full(width)];
        }
        if let Some(cubes) = memo.get(&r) {
            return cubes.clone();
        }
        let IsopNode { var, lo, hi, dc } = self.isop.arena[r as usize];
        let mut out = Vec::new();
        for mut cube in self.cover_to_cubes(lo, width, memo) {
            cube.set(var as usize, Literal::Zero);
            out.push(cube);
        }
        for mut cube in self.cover_to_cubes(hi, width, memo) {
            cube.set(var as usize, Literal::One);
            out.push(cube);
        }
        out.extend(self.cover_to_cubes(dc, width, memo));
        memo.insert(r, out.clone());
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// All assignments over `width` variables, variable-index order.
    fn assignments(width: usize) -> impl Iterator<Item = Vec<bool>> {
        (0..(1u32 << width)).map(move |x| (0..width).map(|i| (x >> i) & 1 == 1).collect())
    }

    /// Checks the two ISOP contracts pointwise: the cover equals `f`, and
    /// dropping any one cube loses at least one point of `f`.
    fn assert_isop_exact_and_irredundant(mgr: &BddManager, f: Bdd, cover: &Cover) {
        let width = mgr.num_vars();
        let cubes: Vec<Cube> = cover.cubes().to_vec();
        for bits in assignments(width) {
            let covered = cubes.iter().any(|c| c.covers_bits(&bits));
            assert_eq!(covered, mgr.eval(f, &bits), "cover ≠ f at {bits:?}");
        }
        for drop in 0..cubes.len() {
            let lost = assignments(width).any(|bits| {
                mgr.eval(f, &bits)
                    && !cubes
                        .iter()
                        .enumerate()
                        .any(|(i, c)| i != drop && c.covers_bits(&bits))
            });
            assert!(lost, "cube {drop} ({}) is redundant", cubes[drop]);
        }
    }

    #[test]
    fn isop_constants() {
        let mut mgr = BddManager::new(3);
        let zero = mgr.zero();
        let one = mgr.one();
        assert!(mgr.isop(zero).cubes().is_empty());
        let taut = mgr.isop(one);
        assert_eq!(taut.cubes().len(), 1);
        assert_eq!(taut.cubes()[0], Cube::full(3));
    }

    #[test]
    fn isop_is_exact_and_irredundant_on_small_functions() {
        for order in [vec![0, 1, 2, 3], vec![3, 1, 0, 2]] {
            let mut mgr = BddManager::with_order(order);
            let a = mgr.var(0);
            let b = mgr.var(1);
            let c = mgr.var(2);
            let d = mgr.var(3);
            let ab = mgr.and(a, b);
            let cd = mgr.and(c, d);
            let mut functions = vec![
                mgr.or(ab, cd),
                mgr.xor(a, b),
                mgr.ite(a, cd, b),
                mgr.diff(ab, d),
            ];
            let x = mgr.xor(c, d);
            functions.push(mgr.or(ab, x));
            for f in functions {
                let cover = mgr.isop(f);
                assert_isop_exact_and_irredundant(&mgr, f, &cover);
            }
        }
    }

    #[test]
    fn isop_finds_the_consensus_cube() {
        // f = a·b + a̅·c has the classic 2-cube irredundant cover (the
        // consensus cube b·c is redundant); ISOP must not emit 3 cubes.
        let mut mgr = BddManager::new(3);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let ab = mgr.and(a, b);
        let nac = mgr.diff(c, a);
        let f = mgr.or(ab, nac);
        let cover = mgr.isop(f);
        assert_eq!(cover.cubes().len(), 2);
        assert_isop_exact_and_irredundant(&mgr, f, &cover);
    }

    #[test]
    fn isop_implicit_matches_translation_path() {
        let mut mgr = BddManager::with_order(vec![2, 0, 3, 1]);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let d = mgr.nvar(3);
        let t1 = mgr.and(a, b);
        let t2 = mgr.or(c, d);
        let f = mgr.xor(t1, t2);
        let map: Vec<Option<usize>> = (0..4).map(Some).collect();
        let mut pool = ImplicitPool::new(4);
        let via_isop = mgr.isop_implicit(f, &mut pool, &map).expect("mapped");
        let via_translate = mgr.to_implicit(f, &mut pool, &map).expect("mapped");
        assert_eq!(via_isop, via_translate, "same canonical point set");
    }

    #[test]
    fn isop_memo_survives_gc_of_live_operands_and_reorder_clears_it() {
        let mut mgr = BddManager::new(4);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let ab = mgr.and(a, b);
        let f = mgr.or(ab, c);
        mgr.protect(f);
        let cover1 = mgr.isop(f);
        // A GC keeping f alive keeps the memo warm; the same extraction
        // must come back (and stay correct).
        mgr.gc();
        let cover2 = mgr.isop(f);
        assert_eq!(format!("{cover1}"), format!("{cover2}"));
        // Reordering clears the tables; extraction after a sift is rebuilt
        // against the new layout and still exact + irredundant.
        mgr.swap_levels(1);
        mgr.reorder_sift(BddManager::DEFAULT_MAX_GROWTH);
        let cover3 = mgr.isop(f);
        assert_isop_exact_and_irredundant(&mgr, f, &cover3);
        mgr.unprotect(f);
    }

    #[test]
    fn isop_after_gc_of_dead_intermediates_is_correct() {
        // Extraction memoises B-functions nothing protects; a GC kills
        // them, the purge must drop the stale entries, and a fresh
        // extraction of a surviving function must still be right.
        let mut mgr = BddManager::new(4);
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let d = mgr.var(3);
        let ab = mgr.and(a, b);
        let cd = mgr.xor(c, d);
        let g = mgr.or(ab, cd);
        let _ = mgr.isop(g);
        let keep = mgr.ite(a, cd, b);
        mgr.protect(keep);
        mgr.gc();
        let cover = mgr.isop(keep);
        assert_isop_exact_and_irredundant(&mgr, keep, &cover);
        mgr.unprotect(keep);
    }
}
