//! # si-bdd — reduced ordered binary decision diagrams
//!
//! The symbolic substrate for BDD-based state traversal: a classic ROBDD
//! engine with a hash-consed unique table (the same canonicity discipline as
//! `si_cubes::implicit`), a memoised complement-edge-free [`ite`] kernel,
//! existential quantification ([`exists`]) and the relational product
//! ([`and_exists`]) that image computation is built from, a variable-order
//! heuristic seeded from adjacency ([`order_from_adjacency`]), and lossless
//! conversion both ways between [`Bdd`] functions and
//! [`si_cubes::implicit::ImplicitCover`] point sets, plus a BDD-native
//! Minato–Morreale irredundant-SOP extraction
//! ([`isop`](BddManager::isop) / [`isop_implicit`](BddManager::isop_implicit))
//! that reads covers straight off the diagram.
//!
//! The pool is kept alive under memory pressure by two mechanisms built for
//! long symbolic fixpoints: refcounted root protection with mark-and-sweep
//! garbage collection ([`protect`] / [`gc`]), and Rudell-style dynamic
//! variable reordering ([`reorder_sift`], [`swap_levels`]) with a
//! growth-triggered [`AutoReorder`] policy for workloads whose static order
//! is bad. Reordering rewrites nodes in place — ids and the functions they
//! denote survive, so caller-held handles stay valid across any sift.
//!
//! Functions are identified by node handles inside a [`BddManager`]; two
//! handles from the same manager are equal iff the functions are equal, so
//! equality, emptiness and fixpoint-convergence tests are O(1).
//!
//! The node substrate is concurrent (safe Rust only): the unique table and
//! operation caches are sharded behind fine-grained locks, and
//! [`set_threads`](BddManager::set_threads) turns the `ite`/`exists`/
//! `and_exists` kernels into work-stealing parallel operations over the
//! shared tables. Long-running operations can also run *reentrant*
//! maintenance ([`set_maintenance`](BddManager::set_maintenance)): kernels
//! poll a live-node checkpoint and unwind for a GC/reorder pass mid-call
//! instead of only between driver iterations. Node ids become
//! schedule-dependent under threads, but canonicity within a run — and
//! every extracted artifact — does not.
//!
//! ## Example
//!
//! ```
//! use si_bdd::BddManager;
//!
//! let mut mgr = BddManager::new(3);
//! let (a, b, c) = (mgr.var(0), mgr.var(1), mgr.var(2));
//! let f = mgr.and(a, b);
//! let g = mgr.or(f, c); // a·b + c
//! // ∃b. (a·b + c) = a + c
//! let q = mgr.cube_vars(&[1]);
//! let h = mgr.exists(g, q);
//! let expect = mgr.or(a, c);
//! assert_eq!(h, expect);
//! ```
//!
//! [`ite`]: BddManager::ite
//! [`exists`]: BddManager::exists
//! [`and_exists`]: BddManager::and_exists
//! [`protect`]: BddManager::protect
//! [`gc`]: BddManager::gc
//! [`reorder_sift`]: BddManager::reorder_sift
//! [`swap_levels`]: BddManager::swap_levels

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod convert;
mod core;
mod isop;
mod manager;
mod order;
mod par;
mod sift;

pub use convert::{ConvertError, TranslationCache};
pub use manager::{Bdd, BddManager, OpCounts, ReentrantConfig};
pub use order::order_from_adjacency;
pub use sift::{AutoReorder, ReorderPolicy};
