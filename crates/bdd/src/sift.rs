//! Dynamic variable reordering: in-place adjacent-level swaps and
//! Rudell-style sifting.
//!
//! BDD sizes are exquisitely order-sensitive, and the adjacency-seeded
//! static order ([`crate::order_from_adjacency`]) has nothing to offer when
//! the interaction graph is dense — wide arbitration and many-way choice
//! produce near-cliques whose breadth-first layout is as good as arbitrary.
//! Sifting recovers at runtime: each variable is moved through every level
//! by adjacent swaps and parked where the live pool is smallest
//! ([`BddManager::reorder_sift`]), with a growth cap aborting hopeless
//! directions early. The [`AutoReorder`] policy triggers sifting on pool
//! growth with CUDD-style doubling thresholds, so the cost amortises away
//! once a good order is found.
//!
//! A swap rewrites the two affected levels **in place**: every node keeps
//! its id and the function it denotes, so caller-held [`Bdd`] handles
//! survive arbitrary reordering. Both entry points first run
//! [`gc`](BddManager::gc) (the swap's reference counts must be exact), so
//! unprotected handles are collected — and then flush the memoised
//! operation caches: swaps retire nodes without mark information, so
//! entries cannot be purged selectively the way `gc` alone does.
//!
//! The sharded unique table is keyed globally by `(level, lo, hi)`, so the
//! per-level enumeration a swap needs comes from *level lists* — id lists
//! per level built by one pool scan at reorder entry and maintained for the
//! two levels each swap rewrites. Cascading unlinks leave stale ids in
//! deeper levels' lists; consumers filter them lazily by checking that a
//! listed node still lives at that level.

use crate::core::{FREE, ONE};
use crate::manager::BddManager;

/// When to run garbage collection + sifting during a symbolic fixpoint.
///
/// The policy is consumed by drivers (e.g. `si_petri::SymbolicReach`); the
/// manager itself only ever reorders when told to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReorderPolicy {
    /// Never reorder: keep the static order. Collection still runs, but a
    /// specification with no good static order will exhaust its node
    /// budget.
    #[default]
    Off,
    /// Reorder only under budget pressure: when the live pool exceeds the
    /// node budget even after collection, sift once as a last resort
    /// before giving up.
    Sift,
    /// Reorder proactively on pool growth ([`AutoReorder`] thresholds), as
    /// CUDD does — the right default when the static order might be bad.
    Auto,
}

impl ReorderPolicy {
    /// Parses the `off|sift|auto` spellings used by CLI flags.
    pub fn parse(s: &str) -> Option<Self> {
        match s {
            "off" => Some(ReorderPolicy::Off),
            "sift" => Some(ReorderPolicy::Sift),
            "auto" => Some(ReorderPolicy::Auto),
            _ => None,
        }
    }
}

/// Growth-triggered reordering state: sift when the live pool outgrows a
/// threshold, then double the threshold so reordering amortises (the CUDD
/// `CUDD_REORDER_SIFT` discipline).
#[derive(Debug, Clone)]
pub struct AutoReorder {
    threshold: usize,
    max_growth: f64,
}

impl AutoReorder {
    /// The default initial trigger: small enough to catch a bad order
    /// before the pool gets expensive to sift.
    pub const DEFAULT_THRESHOLD: usize = 4096;

    /// Creates the policy with the given initial live-node trigger.
    pub fn new(initial_threshold: usize) -> Self {
        AutoReorder {
            threshold: initial_threshold.max(1),
            max_growth: BddManager::DEFAULT_MAX_GROWTH,
        }
    }

    /// The current live-node trigger.
    pub fn threshold(&self) -> usize {
        self.threshold
    }

    /// Returns `true` when `live_nodes` exceeds the current trigger.
    pub fn due(&self, live_nodes: usize) -> bool {
        live_nodes > self.threshold
    }

    /// Raises the trigger after a reorder settled the pool at `live_nodes`,
    /// so the next sift only fires once the pool doubles again.
    pub fn rearm(&mut self, live_nodes: usize) {
        self.threshold = self.threshold.max(live_nodes.saturating_mul(2));
    }

    /// One policy step: if the live pool exceeds the trigger, collect; if
    /// it still does, sift and raise the trigger. Returns `true` when a
    /// sift ran.
    ///
    /// The caller must have [`protect`](BddManager::protect)ed every BDD it
    /// still needs — both steps collect garbage.
    pub fn maybe_reorder(&mut self, mgr: &mut BddManager) -> bool {
        if !self.due(mgr.pool_size()) {
            return false;
        }
        mgr.gc();
        if !self.due(mgr.pool_size()) {
            return false;
        }
        mgr.reorder_sift(self.max_growth);
        self.rearm(mgr.pool_size());
        true
    }
}

impl BddManager {
    /// The growth cap [`reorder_sift`](Self::reorder_sift) is usually run
    /// with: a variable stops moving in a direction once the pool doubles.
    pub const DEFAULT_MAX_GROWTH: f64 = 2.0;

    /// Swaps the variables at `level` and `level + 1` in place.
    ///
    /// Semantics-preserving and id-preserving: every live handle denotes
    /// the same function afterwards. Runs [`gc`](Self::gc) first (the swap
    /// maintains exact reference counts, which dead nodes would poison), so
    /// unprotected handles are collected — protect what you keep.
    ///
    /// # Panics
    ///
    /// Panics if `level + 1 >= num_vars`.
    pub fn swap_levels(&mut self, level: usize) {
        assert!(
            level + 1 < self.num_vars(),
            "level {level} has no successor to swap with"
        );
        self.gc();
        // Swaps retire nodes without mark information, so the memoised
        // results must go wholesale (gc alone purges selectively). The ISOP
        // tables go too: memoised covers were split on the old levels.
        self.core.clear_caches();
        self.isop.clear();
        let mut refs = self.compute_refs();
        let mut lists = self.level_lists();
        self.swap_adjacent(level, &mut refs, &mut lists);
    }

    /// Rudell sifting: every variable (most-populated levels first) is
    /// moved through all levels by adjacent swaps and parked where the live
    /// pool was smallest; a direction is abandoned early once the pool
    /// exceeds `max_growth` times its size at that variable's start
    /// ([`DEFAULT_MAX_GROWTH`](Self::DEFAULT_MAX_GROWTH) is the usual cap).
    /// Returns `(live_before, live_after)`.
    ///
    /// Runs [`gc`](Self::gc) first; unprotected handles are collected.
    /// Handles that survive keep their ids and functions — only the
    /// internal layout (and [`order`](Self::order)) changes.
    ///
    /// # Panics
    ///
    /// Panics if `max_growth < 1.0`.
    pub fn reorder_sift(&mut self, max_growth: f64) -> (usize, usize) {
        assert!(
            max_growth >= 1.0,
            "growth cap below 1.0 forbids standing still"
        );
        self.gc();
        self.core.clear_caches();
        self.isop.clear();
        let before = self.pool_size();
        if self.num_vars() < 2 || before == 0 {
            return (before, before);
        }
        let mut refs = self.compute_refs();
        let mut lists = self.level_lists();
        let occupancy: Vec<usize> = lists.iter().map(Vec::len).collect();
        // Densest levels first — the CUDD heuristic — with the occupancy
        // snapshot taken once (sifting itself redistributes the levels).
        let mut vars: Vec<usize> = (0..self.num_vars()).collect();
        vars.sort_by_key(|&v| (std::cmp::Reverse(occupancy[self.level_of[v] as usize]), v));
        for &v in &vars {
            self.sift_one(v, max_growth, &mut refs, &mut lists);
        }
        (before, self.pool_size())
    }

    /// Sifts one variable: walk it to the nearer end, sweep to the other,
    /// then settle on the best level seen. Pool size is a function of the
    /// order alone (dead nodes are unlinked as swaps create them), so
    /// revisited positions report consistent sizes.
    fn sift_one(
        &mut self,
        var: usize,
        max_growth: f64,
        refs: &mut Vec<u32>,
        lists: &mut [Vec<u32>],
    ) {
        let start = self.level_of[var] as usize;
        let start_size = self.pool_size();
        let limit = (start_size as f64 * max_growth) as usize;
        let mut best = (start_size, start);
        let mut level = start;
        let down_first = self.num_vars() - 1 - start <= start;
        self.sift_walk(&mut level, down_first, limit, &mut best, refs, lists);
        self.sift_walk(&mut level, !down_first, limit, &mut best, refs, lists);
        // Settle on the best position (ties break towards the position
        // visited first, which includes the starting level).
        while level < best.1 {
            self.swap_adjacent(level, refs, lists);
            level += 1;
        }
        while level > best.1 {
            self.swap_adjacent(level - 1, refs, lists);
            level -= 1;
        }
    }

    /// One directional walk of [`sift_one`], recording the live size at
    /// every visited level and aborting once it exceeds `limit`.
    #[allow(clippy::too_many_arguments)]
    fn sift_walk(
        &mut self,
        level: &mut usize,
        down: bool,
        limit: usize,
        best: &mut (usize, usize),
        refs: &mut Vec<u32>,
        lists: &mut [Vec<u32>],
    ) {
        loop {
            if down {
                if *level + 1 >= self.num_vars() {
                    return;
                }
                self.swap_adjacent(*level, refs, lists);
                *level += 1;
            } else {
                if *level == 0 {
                    return;
                }
                self.swap_adjacent(*level - 1, refs, lists);
                *level -= 1;
            }
            let s = self.pool_size();
            if s < best.0 {
                *best = (s, *level);
            }
            if s > limit {
                return;
            }
        }
    }

    /// Exact reference counts over the live pool (node child links plus
    /// protected-root pins). Call right after [`gc`](Self::gc): dead nodes
    /// would contribute phantom references.
    fn compute_refs(&self) -> Vec<u32> {
        let len = self.core.store.len();
        let mut refs = vec![0u32; len];
        for id in 2..len {
            let (level, lo, hi) = self.core.store.raw(id as u32);
            if level != FREE {
                refs[lo as usize] += 1;
                refs[hi as usize] += 1;
            }
        }
        for (&id, &count) in &self.roots {
            refs[id as usize] = refs[id as usize].saturating_add(count as u32);
        }
        refs
    }

    /// Per-level id lists from one pool scan — the per-level enumeration the
    /// sharded global unique table no longer provides directly. Maintained
    /// exactly for the two levels each swap rewrites; stale ids left at
    /// deeper levels by cascading unlinks are filtered on read.
    fn level_lists(&self) -> Vec<Vec<u32>> {
        let mut lists = vec![Vec::new(); self.num_vars()];
        for id in 2..self.core.store.len() {
            let level = self.core.store.level(id as u32);
            if level != FREE {
                lists[level as usize].push(id as u32);
            }
        }
        lists
    }

    /// The in-place unique-table exchange of levels `l` and `l + 1`.
    ///
    /// Invariant: every node id denotes the same function before and after.
    /// Nodes at the lower level keep their structure (their variable moves
    /// up with them); nodes at the upper level that depend on the lower
    /// variable are rewritten in place with fresh children one level down;
    /// upper nodes independent of it slide down unchanged. Lower nodes left
    /// unreferenced are unlinked immediately (cascading into their
    /// children), keeping `refs` and the live count exact throughout.
    fn swap_adjacent(&mut self, l: usize, refs: &mut Vec<u32>, lists: &mut [Vec<u32>]) {
        let lu = l as u32;
        let ll = (l + 1) as u32;
        // Filter the level lists down to the ids actually living at each
        // level (stale entries from earlier cascaded unlinks drop out), and
        // sort: list order must not leak into allocation order.
        let mut upper: Vec<u32> = lists[l]
            .iter()
            .copied()
            .filter(|&n| self.core.store.level(n) == lu)
            .collect();
        let mut lower: Vec<u32> = lists[l + 1]
            .iter()
            .copied()
            .filter(|&n| self.core.store.level(n) == ll)
            .collect();
        upper.sort_unstable();
        lower.sort_unstable();
        // Unregister both levels wholesale before rewriting: a lower node's
        // relabelled key could transiently collide with an upper node's
        // still-registered one.
        for &m in &lower {
            let (_, lo, hi) = self.core.node(m);
            self.core.unique_remove(ll, lo, hi, m);
        }
        for &n in &upper {
            let (_, f0, f1) = self.core.node(n);
            self.core.unique_remove(lu, f0, f1, n);
        }

        // 1. Lower nodes keep their children; their variable moves up.
        for &m in &lower {
            let (_, lo, hi) = self.core.node(m);
            self.core.store.set_level(m, lu);
            let prev = self.core.unique_insert(lu, lo, hi, m);
            debug_assert!(prev.is_none(), "duplicate key while relabelling up");
        }

        // 2. Upper nodes independent of the lower variable slide down
        //    unchanged. They must be registered before step 3 so dependent
        //    rewrites hash-cons against them.
        let mut dependent: Vec<u32> = Vec::new();
        let mut slid: Vec<u32> = Vec::new();
        for &n in &upper {
            let (_, f0, f1) = self.core.node(n);
            // Children sat strictly below level l; those now at `lu` are
            // exactly the relabelled lower nodes.
            let f0_branches = f0 > ONE && self.core.store.level(f0) == lu;
            let f1_branches = f1 > ONE && self.core.store.level(f1) == lu;
            if f0_branches || f1_branches {
                dependent.push(n);
            } else {
                self.core.store.set_level(n, ll);
                let prev = self.core.unique_insert(ll, f0, f1, n);
                debug_assert!(prev.is_none(), "duplicate key while sliding down");
                slid.push(n);
            }
        }

        // 3. Dependent upper nodes are rewritten in place:
        //    u ? (v ? f11 : f10) : (v ? f01 : f00)
        //      == v ? (u ? f11 : f01) : (u ? f10 : f00).
        let mut created: Vec<u32> = Vec::new();
        for &n in &dependent {
            let (_, f0, f1) = self.core.node(n);
            let (f00, f01) = if f0 > ONE && self.core.store.level(f0) == lu {
                let (_, a, b) = self.core.node(f0);
                (a, b)
            } else {
                (f0, f0)
            };
            let (f10, f11) = if f1 > ONE && self.core.store.level(f1) == lu {
                let (_, a, b) = self.core.node(f1);
                (a, b)
            } else {
                (f1, f1)
            };
            refs[f0 as usize] -= 1;
            refs[f1 as usize] -= 1;
            let lo = self.swap_child(ll, f00, f10, refs, &mut created);
            let hi = self.swap_child(ll, f01, f11, refs, &mut created);
            debug_assert!(lo != hi, "dependent node reduced away during swap");
            refs[lo as usize] += 1;
            refs[hi as usize] += 1;
            self.core.store.write(n, lu, lo, hi);
            let prev = self.core.unique_insert(lu, lo, hi, n);
            debug_assert!(prev.is_none(), "duplicate key at the upper level");
        }

        // 4. Lower nodes nothing references any more are dead — unlink
        //    them now so reference counts and the live size stay exact.
        for &m in &lower {
            if refs[m as usize] == 0 {
                self.unlink_dead(m, refs);
            }
        }

        // 5. The two levels trade variables, and the level lists are
        //    rebuilt exactly for the two rewritten levels (dead lower
        //    nodes drop out lazily via the level filter above).
        self.var_at.swap(l, l + 1);
        self.level_of[self.var_at[l] as usize] = lu;
        self.level_of[self.var_at[l + 1] as usize] = ll;
        let mut new_upper = lower;
        new_upper.extend_from_slice(&dependent);
        let mut new_lower = slid;
        new_lower.extend_from_slice(&created);
        lists[l] = new_upper;
        lists[l + 1] = new_lower;
    }

    /// Hash-consed child construction for [`swap_adjacent`], maintaining
    /// reference counts for newly allocated nodes and recording fresh ids
    /// for the level lists.
    fn swap_child(
        &mut self,
        level: u32,
        lo: u32,
        hi: u32,
        refs: &mut Vec<u32>,
        created: &mut Vec<u32>,
    ) -> u32 {
        if lo == hi {
            return lo;
        }
        if let Some(id) = self.core.unique_get(level, lo, hi) {
            return id;
        }
        let id = self.core.mk_unchecked(level, lo, hi);
        if id as usize >= refs.len() {
            refs.resize(id as usize + 1, 0);
        }
        refs[id as usize] = 0;
        refs[lo as usize] += 1;
        refs[hi as usize] += 1;
        created.push(id);
        id
    }

    /// Frees a dead node, cascading into children whose counts hit zero.
    fn unlink_dead(&mut self, id: u32, refs: &mut [u32]) {
        let mut stack = vec![id];
        while let Some(n) = stack.pop() {
            let (level, lo, hi) = self.core.node(n);
            self.core.unique_remove(level, lo, hi, n);
            self.core.release_slot(n);
            for c in [lo, hi] {
                if c > ONE {
                    refs[c as usize] -= 1;
                    if refs[c as usize] == 0 {
                        stack.push(c);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manager::Bdd;

    /// All assignments over `width` variables, variable-index order.
    fn assignments(width: usize) -> impl Iterator<Item = Vec<bool>> {
        (0..(1u32 << width)).map(move |x| (0..width).map(|i| (x >> i) & 1 == 1).collect())
    }

    /// A 4-variable function with structure at every level.
    fn sample(mgr: &mut BddManager) -> Bdd {
        let a = mgr.var(0);
        let b = mgr.var(1);
        let c = mgr.var(2);
        let d = mgr.nvar(3);
        let ab = mgr.and(a, b);
        let cd = mgr.xor(c, d);
        mgr.or(ab, cd)
    }

    #[test]
    fn swap_preserves_semantics_and_handles() {
        let mut mgr = BddManager::new(4);
        let f = sample(&mut mgr);
        let truth: Vec<bool> = assignments(4).map(|bits| mgr.eval(f, &bits)).collect();
        mgr.protect(f);
        for level in [0, 1, 2, 0, 2, 1, 1, 0] {
            mgr.swap_levels(level);
            mgr.assert_invariants();
            let now: Vec<bool> = assignments(4).map(|bits| mgr.eval(f, &bits)).collect();
            assert_eq!(truth, now, "after swapping level {level}");
            assert_eq!(mgr.sat_count(f), 10);
        }
        mgr.unprotect(f);
    }

    #[test]
    fn swap_is_its_own_inverse() {
        let mut mgr = BddManager::new(4);
        let f = sample(&mut mgr);
        mgr.protect(f);
        mgr.gc();
        let order = mgr.order();
        let size = mgr.pool_size();
        mgr.swap_levels(1);
        mgr.swap_levels(1);
        assert_eq!(mgr.order(), order);
        assert_eq!(mgr.pool_size(), size, "double swap must restore the pool");
        mgr.assert_invariants();
        mgr.unprotect(f);
    }

    #[test]
    fn sift_finds_the_interleaved_order() {
        // f = x0·x3 + x1·x4 + x2·x5 under the order (x0 x1 x2 x3 x4 x5) is
        // the classic exponential-vs-linear example: sifting must pull each
        // pair together and shrink the pool.
        let mut mgr = BddManager::new(6);
        let mut f = mgr.zero();
        for i in 0..3 {
            let a = mgr.var(i);
            let b = mgr.var(i + 3);
            let t = mgr.and(a, b);
            f = mgr.or(f, t);
        }
        let truth: Vec<bool> = assignments(6).map(|bits| mgr.eval(f, &bits)).collect();
        mgr.protect(f);
        mgr.gc();
        let before = mgr.pool_size();
        let (reported_before, after) = mgr.reorder_sift(BddManager::DEFAULT_MAX_GROWTH);
        assert_eq!(reported_before, before);
        assert!(after < before, "sifting must shrink {before} nodes");
        assert_eq!(after, mgr.pool_size());
        mgr.assert_invariants();
        let now: Vec<bool> = assignments(6).map(|bits| mgr.eval(f, &bits)).collect();
        assert_eq!(truth, now);
        // The interleaved order keeps each pair adjacent: 6 internal nodes.
        assert_eq!(mgr.node_count(f), 6);
        mgr.unprotect(f);
    }

    #[test]
    fn sift_never_grows_the_pool() {
        let mut mgr = BddManager::with_order(vec![2, 0, 3, 1]);
        let f = sample(&mut mgr);
        mgr.protect(f);
        mgr.gc();
        let before = mgr.pool_size();
        let (_, after) = mgr.reorder_sift(BddManager::DEFAULT_MAX_GROWTH);
        assert!(after <= before, "{after} > {before}");
        mgr.assert_invariants();
        mgr.unprotect(f);
    }

    #[test]
    fn operations_after_sift_are_consistent() {
        let mut mgr = BddManager::new(6);
        let mut f = mgr.zero();
        for i in 0..3 {
            let a = mgr.var(i);
            let b = mgr.var(i + 3);
            let t = mgr.and(a, b);
            f = mgr.or(f, t);
        }
        mgr.protect(f);
        mgr.reorder_sift(BddManager::DEFAULT_MAX_GROWTH);
        // Hash-consing still canonicalises: rebuilding f finds the same id,
        // and quantification agrees with the brute-force answer.
        let mut g = mgr.zero();
        for i in 0..3 {
            let a = mgr.var(i);
            let b = mgr.var(i + 3);
            let t = mgr.and(a, b);
            g = mgr.or(g, t);
        }
        assert_eq!(f, g);
        let q = mgr.cube_vars(&[0, 3]);
        let e = mgr.exists(f, q);
        for bits in assignments(6) {
            let mut any = false;
            for (x0, x3) in [(false, false), (false, true), (true, false), (true, true)] {
                let mut b2 = bits.clone();
                b2[0] = x0;
                b2[3] = x3;
                any |= mgr.eval(f, &b2);
            }
            assert_eq!(mgr.eval(e, &bits), any, "{bits:?}");
        }
        mgr.unprotect(f);
    }

    #[test]
    fn auto_reorder_fires_on_growth_and_rearms() {
        let mut mgr = BddManager::new(8);
        let mut auto = AutoReorder::new(4);
        assert!(!auto.maybe_reorder(&mut mgr), "empty pool: nothing due");
        // Build something bigger than the threshold.
        let mut f = mgr.zero();
        for i in 0..4 {
            let a = mgr.var(i);
            let b = mgr.var(i + 4);
            let t = mgr.and(a, b);
            f = mgr.or(f, t);
        }
        mgr.protect(f);
        let t0 = auto.threshold();
        assert!(auto.maybe_reorder(&mut mgr), "pool above threshold");
        assert!(auto.threshold() >= t0, "threshold must not shrink");
        assert_eq!(auto.threshold(), auto.threshold().max(2 * mgr.pool_size()));
        mgr.assert_invariants();
        mgr.unprotect(f);
    }

    #[test]
    fn reorder_policy_parses_cli_spellings() {
        assert_eq!(ReorderPolicy::parse("off"), Some(ReorderPolicy::Off));
        assert_eq!(ReorderPolicy::parse("sift"), Some(ReorderPolicy::Sift));
        assert_eq!(ReorderPolicy::parse("auto"), Some(ReorderPolicy::Auto));
        assert_eq!(ReorderPolicy::parse("bogus"), None);
        assert_eq!(ReorderPolicy::default(), ReorderPolicy::Off);
    }

    #[test]
    #[should_panic(expected = "no successor")]
    fn swapping_the_last_level_panics() {
        let mut mgr = BddManager::new(2);
        mgr.swap_levels(1);
    }
}
