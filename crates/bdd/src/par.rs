//! Work-stealing parallel dispatch for `ite`/`exists`/`and_exists`.
//!
//! The strategy is frontier decomposition rather than fork–join inside the
//! kernel: the root call is expanded breadth-first (mirroring the kernel's
//! own normalisation via [`Core::probe`]) into a deduplicated set of
//! independent subproblems — a few per worker — which are distributed over
//! per-worker deques and run to completion with the ordinary serial kernel
//! against the shared sharded tables. Idle workers steal from the back of
//! other deques. A final serial pass from the root then stitches the
//! results together; because every distributed subtask is exactly a
//! recursive call the kernel would have made, the finish pass runs almost
//! entirely on warmed caches.
//!
//! Correctness never depends on the expansion: workers only populate the
//! shared memo tables, and the finish pass recomputes anything missing. The
//! expansion only decides how much of the work runs concurrently.

use std::collections::{HashSet, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;
use std::thread;

use crate::core::{lock, Core, Interrupted, OpCtx, OpResult, Probe, Task};

/// Subproblems to aim for per worker; a few per thread smooths out uneven
/// subtree sizes without flooding the queues.
const TASKS_PER_WORKER: usize = 4;

/// Cap on expansion probes, as a multiple of the target: diagrams that
/// resolve near the root (cache hits, terminal rules) stop expanding early
/// and fall back to the serial path.
const EXPANSION_BUDGET: usize = 8;

/// Runs `root` using `threads` workers over the shared tables. Returns the
/// same node the serial kernel would (canonicity makes that well-defined),
/// or [`Interrupted`] if any worker — or the finish pass — tripped the
/// live-node checkpoint.
pub(crate) fn run(core: &Core, threads: usize, root: Task) -> OpResult {
    let target = threads * TASKS_PER_WORKER;
    let mut frontier: VecDeque<Task> = VecDeque::new();
    let mut seen: HashSet<Task> = HashSet::new();
    frontier.push_back(root);
    seen.insert(root);
    let mut budget = target * EXPANSION_BUDGET;
    while frontier.len() < target && budget > 0 {
        let Some(task) = frontier.pop_front() else {
            break;
        };
        budget -= 1;
        if let Probe::Fork(subtasks) = core.probe(task) {
            for t in subtasks {
                if seen.insert(t) {
                    frontier.push_back(t);
                }
            }
        }
    }
    if frontier.len() < 2 {
        // Everything resolved near the root — nothing worth distributing.
        return core.run_task(root, &mut OpCtx::default());
    }

    let queues: Vec<Mutex<VecDeque<Task>>> =
        (0..threads).map(|_| Mutex::new(VecDeque::new())).collect();
    for (i, task) in frontier.into_iter().enumerate() {
        lock(&queues[i % threads]).push_back(task);
    }
    let interrupted = AtomicBool::new(false);
    thread::scope(|scope| {
        for me in 0..threads {
            let queues = &queues;
            let interrupted = &interrupted;
            scope.spawn(move || {
                let mut ctx = OpCtx::default();
                loop {
                    if interrupted.load(Ordering::Relaxed) {
                        return;
                    }
                    // Own work from the front; steal from the back of the
                    // others (the back holds the larger, later-forked
                    // subtrees less likely to be contended).
                    let mut task = lock(&queues[me]).pop_front();
                    if task.is_none() {
                        for other in 1..threads {
                            task = lock(&queues[(me + other) % threads]).pop_back();
                            if task.is_some() {
                                break;
                            }
                        }
                    }
                    let Some(task) = task else { return };
                    if core.run_task(task, &mut ctx).is_err() {
                        interrupted.store(true, Ordering::Relaxed);
                        return;
                    }
                }
            });
        }
    });
    if interrupted.load(Ordering::Relaxed) {
        return Err(Interrupted);
    }
    // Stitch the distributed results together: every subtask result is a
    // cache hit now, so this touches only the frontier's interior.
    core.run_task(root, &mut OpCtx::default())
}
