//! Variable-order heuristics.
//!
//! BDD sizes are exquisitely order-sensitive: variables that interact should
//! sit at adjacent levels. For the state spaces this workspace traverses the
//! interaction structure is known up front — STG signals (and the places
//! between their transitions) form an adjacency graph — so a breadth-first
//! bandwidth-reduction pass over that graph (Cuthill–McKee style) produces
//! chain-like orders that keep pipeline state sets near-linear where the
//! natural order is exponential.

/// Orders `n` vertices so that vertices joined by `edges` land close
/// together: each connected component is laid out breadth-first from a
/// minimum-degree start vertex, visiting neighbours in ascending-degree
/// order (Cuthill–McKee). Repeated edges reinforce adjacency but not the
/// result beyond their degree contribution; self-loops are ignored.
///
/// Returns the order as a permutation: `order[level]` is the vertex placed
/// at that level. Deterministic — ties break towards smaller vertex ids.
///
/// # Panics
///
/// Panics if an edge endpoint is `>= n`.
///
/// # Examples
///
/// ```
/// use si_bdd::order_from_adjacency;
///
/// // A chain presented scrambled comes back in chain order.
/// let order = order_from_adjacency(4, &[(2, 3), (0, 1), (1, 2)]);
/// assert_eq!(order, vec![0, 1, 2, 3]);
/// ```
pub fn order_from_adjacency(n: usize, edges: &[(usize, usize)]) -> Vec<usize> {
    let mut adj: Vec<Vec<usize>> = vec![Vec::new(); n];
    for &(a, b) in edges {
        assert!(a < n && b < n, "edge ({a}, {b}) out of range");
        if a != b {
            adj[a].push(b);
            adj[b].push(a);
        }
    }
    let degree: Vec<usize> = adj.iter().map(Vec::len).collect();

    let mut order = Vec::with_capacity(n);
    let mut placed = vec![false; n];
    // Start each component at the unplaced vertex of minimum degree.
    while let Some(start) = (0..n)
        .filter(|&v| !placed[v])
        .min_by_key(|&v| (degree[v], v))
    {
        placed[start] = true;
        order.push(start);
        let mut head = order.len() - 1;
        while head < order.len() {
            let v = order[head];
            head += 1;
            let mut next: Vec<usize> = adj[v].iter().copied().filter(|&w| !placed[w]).collect();
            next.sort_unstable_by_key(|&w| (degree[w], w));
            next.dedup();
            for w in next {
                if !placed[w] {
                    placed[w] = true;
                    order.push(w);
                }
            }
        }
    }
    order
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chain_is_recovered() {
        let order = order_from_adjacency(6, &[(4, 5), (1, 0), (3, 2), (2, 1), (3, 4)]);
        assert_eq!(order, vec![0, 1, 2, 3, 4, 5]);
    }

    #[test]
    fn result_is_a_permutation() {
        let order = order_from_adjacency(7, &[(0, 3), (3, 3), (6, 2), (2, 0), (5, 4)]);
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..7).collect::<Vec<_>>());
    }

    #[test]
    fn isolated_vertices_and_no_edges() {
        assert_eq!(order_from_adjacency(3, &[]), vec![0, 1, 2]);
        assert_eq!(order_from_adjacency(0, &[]), Vec::<usize>::new());
    }

    #[test]
    fn duplicate_edges_do_not_duplicate_vertices() {
        let order = order_from_adjacency(3, &[(0, 1), (0, 1), (1, 2)]);
        assert_eq!(order.len(), 3);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_edge_panics() {
        order_from_adjacency(2, &[(0, 2)]);
    }
}
