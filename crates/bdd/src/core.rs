//! The concurrent node substrate: a chunked atomic node store, a unique
//! table and operation caches sharded by hash behind fine-grained locks, and
//! interruptible recursive kernels that any number of worker threads can run
//! against the shared tables at once.
//!
//! Everything here is safe Rust. Concurrency rests on three disciplines:
//!
//! * **Append-only node slots.** Node fields live in fixed-size chunks of
//!   atomics behind [`OnceLock`]s; a slot's fields are written *before* its
//!   id is published through a unique-table shard, and the shard's mutex
//!   provides the happens-before edge for every later reader. Slots are
//!   only recycled by [`gc`](crate::BddManager::gc), which runs quiesced
//!   (`&mut` access), so concurrent readers never observe reuse.
//! * **Sharded tables.** The unique table and the three operation caches
//!   are split into [`SHARDS`] mutex-guarded maps selected by a fixed
//!   deterministic hash, so concurrent kernels contend only when they touch
//!   the same shard at the same instant.
//! * **Cooperative interruption.** Kernels count their steps and poll a
//!   trip flag every [`CHECK_INTERVAL`] steps; when the pool outgrows the
//!   configured limit the flag latches, every running kernel unwinds with
//!   [`Interrupted`], and the manager performs garbage collection and/or
//!   reordering at the API boundary before retrying — the reentrant
//!   maintenance that keeps one monster operation from blowing the budget
//!   between the driver's own checkpoints.
//!
//! Canonicity is schedule-independent even though node *ids* are not: the
//! hash-consing invariant (one live id per `(level, lo, hi)` triple) is
//! maintained under the shard locks, so equal functions always share an id
//! within a run, and all extracted artifacts (covers, witnesses, counts) go
//! through semantics rather than ids.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};

/// Terminal node id for the constant 0 function.
pub(crate) const ZERO: u32 = 0;
/// Terminal node id for the constant 1 function.
pub(crate) const ONE: u32 = 1;
/// Level sentinel marking a pool slot freed by garbage collection (terminal
/// slots use `u32::MAX`, so the two are never confused).
pub(crate) const FREE: u32 = u32::MAX - 1;
/// Level stored in the terminal slots.
const TERMINAL_LEVEL: u32 = u32::MAX;

/// Node slots per chunk (a power of two; ids split into chunk/offset bits).
const CHUNK_BITS: usize = 16;
const CHUNK_SIZE: usize = 1 << CHUNK_BITS;
/// Chunk-table capacity: 2^31 node slots — far above any budgeted run.
const MAX_CHUNKS: usize = 1 << 15;

/// Shard count of the unique table and the operation caches. A fixed power
/// of two: enough to make lock collisions rare at any sane thread count,
/// small enough that clearing every shard stays cheap.
pub(crate) const SHARDS: usize = 64;

/// Kernel steps (recursive calls that miss the short-circuits, plus node
/// constructions) between interruption polls. Polling reads two atomics, so
/// the interval only has to amortise that; it also bounds how far past the
/// live-node limit one operation can run before maintenance fires.
pub(crate) const CHECK_INTERVAL: u64 = 1024;

/// Marker error unwinding an interrupted kernel to the API boundary, where
/// the manager runs reentrant maintenance and retries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Interrupted;

pub(crate) type OpResult = Result<u32, Interrupted>;

/// Locks a mutex, ignoring poisoning: the guarded tables are plain maps
/// whose invariants hold between every two map operations, so a panic in
/// another thread cannot leave them in a state worth refusing.
pub(crate) fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    match m.lock() {
        Ok(guard) => guard,
        Err(poisoned) => poisoned.into_inner(),
    }
}

/// A deterministic multiply-rotate hasher (the rustc-hash construction):
/// process-independent — unlike `RandomState` — and fast on the small fixed
/// keys used here. Determinism matters because shard selection and map
/// behaviour must be identical across runs for reproducible performance,
/// even though no hash order ever reaches an output.
#[derive(Default)]
pub(crate) struct FxHasher {
    hash: u64,
}

const FX_SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl FxHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(FX_SEED);
    }
}

impl Hasher for FxHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }
    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.add(b as u64);
        }
    }
    #[inline]
    fn write_u32(&mut self, n: u32) {
        self.add(n as u64);
    }
    #[inline]
    fn write_u64(&mut self, n: u64) {
        self.add(n);
    }
    #[inline]
    fn write_usize(&mut self, n: usize) {
        self.add(n as u64);
    }
}

pub(crate) type FxMap<K, V> = HashMap<K, V, BuildHasherDefault<FxHasher>>;

/// Shard index of a three-word key.
#[inline]
fn shard3(a: u32, b: u32, c: u32) -> usize {
    let mut h = FxHasher::default();
    h.write_u32(a);
    h.write_u32(b);
    h.write_u32(c);
    ((h.finish() >> 32) as usize) & (SHARDS - 1)
}

/// Shard index of a two-word key.
#[inline]
fn shard2(a: u32, b: u32) -> usize {
    let mut h = FxHasher::default();
    h.write_u32(a);
    h.write_u32(b);
    ((h.finish() >> 32) as usize) & (SHARDS - 1)
}

/// One fixed-size block of node slots. `level` and the packed `(lo, hi)`
/// pair are atomics so workers can read nodes other workers just published;
/// slots beyond the allocation high-water mark are never read.
struct Chunk {
    level: Box<[AtomicU32]>,
    kids: Box<[AtomicU64]>,
}

impl Chunk {
    fn new() -> Chunk {
        Chunk {
            level: (0..CHUNK_SIZE).map(|_| AtomicU32::new(FREE)).collect(),
            kids: (0..CHUNK_SIZE).map(|_| AtomicU64::new(0)).collect(),
        }
    }
}

#[inline]
fn pack(lo: u32, hi: u32) -> u64 {
    (lo as u64) | ((hi as u64) << 32)
}

/// The chunked append-only node store. The chunk table is a fixed array of
/// [`OnceLock`]s so readers reach any published slot through one atomic
/// load, with no global lock on the read path; chunks materialise lazily as
/// the high-water mark crosses them.
pub(crate) struct NodeStore {
    chunks: Box<[OnceLock<Chunk>]>,
    len: AtomicUsize,
}

impl NodeStore {
    fn new() -> NodeStore {
        let store = NodeStore {
            chunks: (0..MAX_CHUNKS).map(|_| OnceLock::new()).collect(),
            len: AtomicUsize::new(2),
        };
        let chunk = store.chunks[0].get_or_init(Chunk::new);
        chunk.level[ZERO as usize].store(TERMINAL_LEVEL, Ordering::Release);
        chunk.kids[ZERO as usize].store(pack(0, 0), Ordering::Release);
        chunk.level[ONE as usize].store(TERMINAL_LEVEL, Ordering::Release);
        chunk.kids[ONE as usize].store(pack(1, 1), Ordering::Release);
        store
    }

    #[inline]
    fn chunk(&self, id: u32) -> &Chunk {
        match self.chunks[(id as usize) >> CHUNK_BITS].get() {
            Some(c) => c,
            // Ids are only minted by `bump`, which materialises the chunk
            // before publishing the id.
            None => unreachable!("node {id} beyond the allocated chunks"),
        }
    }

    /// Raw slot read: `(level, lo, hi)` with no liveness check.
    #[inline]
    pub(crate) fn raw(&self, id: u32) -> (u32, u32, u32) {
        let chunk = self.chunk(id);
        let i = (id as usize) & (CHUNK_SIZE - 1);
        let level = chunk.level[i].load(Ordering::Acquire);
        let kids = chunk.kids[i].load(Ordering::Acquire);
        (level, kids as u32, (kids >> 32) as u32)
    }

    /// The slot's level field alone.
    #[inline]
    pub(crate) fn level(&self, id: u32) -> u32 {
        let chunk = self.chunk(id);
        chunk.level[(id as usize) & (CHUNK_SIZE - 1)].load(Ordering::Acquire)
    }

    /// Writes all fields of a slot (children first, then the level, so a
    /// racing level read never precedes the children becoming visible).
    #[inline]
    pub(crate) fn write(&self, id: u32, level: u32, lo: u32, hi: u32) {
        let chunk = self.chunk(id);
        let i = (id as usize) & (CHUNK_SIZE - 1);
        chunk.kids[i].store(pack(lo, hi), Ordering::Release);
        chunk.level[i].store(level, Ordering::Release);
    }

    /// Relabels a slot in place (reordering only; quiesced).
    #[inline]
    pub(crate) fn set_level(&self, id: u32, level: u32) {
        let chunk = self.chunk(id);
        chunk.level[(id as usize) & (CHUNK_SIZE - 1)].store(level, Ordering::Release);
    }

    /// Allocation high-water mark (terminals included).
    #[inline]
    pub(crate) fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Reserves a fresh slot id at the end, materialising its chunk.
    fn bump(&self) -> u32 {
        let id = self.len.fetch_add(1, Ordering::AcqRel);
        assert!(id < MAX_CHUNKS << CHUNK_BITS, "BDD node store exhausted");
        let _ = self.chunks[id >> CHUNK_BITS].get_or_init(Chunk::new);
        id as u32
    }
}

/// Per-kernel-invocation state: the step counter driving interruption polls.
/// Each worker thread carries its own, so polling involves no sharing.
#[derive(Default)]
pub(crate) struct OpCtx {
    steps: u64,
}

impl OpCtx {
    /// One kernel step: every [`CHECK_INTERVAL`] steps, poll the trip flag
    /// and the live-pool limit, unwinding with [`Interrupted`] when either
    /// says maintenance is due.
    #[inline]
    fn tick(&mut self, core: &Core) -> Result<(), Interrupted> {
        self.steps += 1;
        if self.steps.is_multiple_of(CHECK_INTERVAL) && core.poll_trip() {
            return Err(Interrupted);
        }
        Ok(())
    }
}

/// The sharded concurrent substrate shared by every kernel. All `&self`
/// methods are safe to call from any number of threads; the `&mut self`
/// maintenance entry points (collection, reordering, cache clearing) run
/// quiesced by construction.
pub(crate) struct Core {
    pub(crate) num_vars: usize,
    pub(crate) store: NodeStore,
    unique: Sharded<(u32, u32, u32)>,
    ite_cache: Sharded<(u32, u32, u32)>,
    exists_cache: Sharded<(u32, u32)>,
    and_exists_cache: Sharded<(u32, u32, u32)>,
    free: Mutex<Vec<u32>>,
    free_count: AtomicUsize,
    /// Latched when a checkpoint found the pool above `trip_limit`; every
    /// kernel unwinds, the manager maintains, then rearms.
    tripped: AtomicBool,
    /// Live-pool size above which kernels trip (`usize::MAX` = disabled).
    trip_limit: AtomicUsize,
    /// Largest pool size observed at any interruption poll — the mid-op
    /// allocation peak the between-iteration statistics cannot see.
    peak_pool: AtomicUsize,
}

/// A hash-sharded `key → node` map: [`SHARDS`] independently locked
/// `FxHashMap`s. Two threads contend only when their keys hash into the
/// same shard.
type Sharded<K> = Box<[Mutex<FxMap<K, u32>>]>;

fn shard_vec<K, V>() -> Box<[Mutex<FxMap<K, V>>]> {
    (0..SHARDS).map(|_| Mutex::new(FxMap::default())).collect()
}

impl Core {
    pub(crate) fn new(num_vars: usize) -> Core {
        Core {
            num_vars,
            store: NodeStore::new(),
            unique: shard_vec(),
            ite_cache: shard_vec(),
            exists_cache: shard_vec(),
            and_exists_cache: shard_vec(),
            free: Mutex::new(Vec::new()),
            free_count: AtomicUsize::new(0),
            tripped: AtomicBool::new(false),
            trip_limit: AtomicUsize::new(usize::MAX),
            peak_pool: AtomicUsize::new(0),
        }
    }

    /// Number of live non-terminal nodes (allocated minus freed).
    #[inline]
    pub(crate) fn pool_size(&self) -> usize {
        self.store.len() - 2 - self.free_count.load(Ordering::Acquire)
    }

    /// Number of pool slots ever allocated (live or freed).
    #[inline]
    pub(crate) fn allocated_size(&self) -> usize {
        self.store.len() - 2
    }

    /// The mid-operation pool peak sampled at interruption polls.
    pub(crate) fn peak_pool(&self) -> usize {
        self.peak_pool.load(Ordering::Acquire).max(self.pool_size())
    }

    /// Arms (or disarms, with `usize::MAX`) the mid-operation trip limit
    /// and clears the latch.
    pub(crate) fn arm_trip(&self, limit: usize) {
        self.trip_limit.store(limit, Ordering::Release);
        self.tripped.store(false, Ordering::Release);
    }

    /// One interruption poll: samples the pool peak and reports (latching)
    /// whether the pool exceeds the armed limit.
    fn poll_trip(&self) -> bool {
        if self.tripped.load(Ordering::Relaxed) {
            return true;
        }
        let pool = self.pool_size();
        self.peak_pool.fetch_max(pool, Ordering::AcqRel);
        if pool > self.trip_limit.load(Ordering::Relaxed) {
            self.tripped.store(true, Ordering::Release);
            return true;
        }
        false
    }

    /// Checked node read: `(level, lo, hi)`. Every walk goes through here
    /// so a stale handle trips the assertion instead of silently reading a
    /// freed (possibly reused) slot.
    #[inline]
    pub(crate) fn node(&self, n: u32) -> (u32, u32, u32) {
        let raw = self.store.raw(n);
        debug_assert!(
            raw.0 != FREE,
            "stale Bdd handle: node {n} was garbage-collected"
        );
        raw
    }

    #[inline]
    pub(crate) fn level(&self, n: u32) -> u32 {
        if n <= ONE {
            self.num_vars as u32
        } else {
            let level = self.store.level(n);
            debug_assert!(
                level != FREE,
                "stale Bdd handle: node {n} was garbage-collected"
            );
            level
        }
    }

    /// Splits `n` at `level`: its children if it branches there, `(n, n)`
    /// if the level is unconstrained.
    #[inline]
    pub(crate) fn children_at(&self, n: u32, level: u32) -> (u32, u32) {
        if n > ONE {
            let (l, lo, hi) = self.node(n);
            if l == level {
                return (lo, hi);
            }
        }
        (n, n)
    }

    /// Pops a freed slot or reserves a fresh one.
    fn alloc_slot(&self) -> u32 {
        {
            let mut free = lock(&self.free);
            if let Some(id) = free.pop() {
                self.free_count.fetch_sub(1, Ordering::AcqRel);
                return id;
            }
        }
        self.store.bump()
    }

    /// Hash-consed node constructor with the `lo == hi` reduction, safe
    /// under concurrency: the winning inserter's id is returned to every
    /// racer, and a slot allocated for a lost race goes straight back to
    /// the free list (its fields were never published).
    pub(crate) fn mk(&self, level: u32, lo: u32, hi: u32, ctx: &mut OpCtx) -> OpResult {
        if lo == hi {
            return Ok(lo);
        }
        ctx.tick(self)?;
        Ok(self.mk_unchecked(level, lo, hi))
    }

    /// [`mk`](Self::mk) without the interruption poll — for bounded
    /// builders (variables, cubes, reordering) that must not unwind.
    pub(crate) fn mk_unchecked(&self, level: u32, lo: u32, hi: u32) -> u32 {
        if lo == hi {
            return lo;
        }
        debug_assert!(
            (lo <= ONE || self.store.level(lo) != FREE)
                && (hi <= ONE || self.store.level(hi) != FREE),
            "stale Bdd handle: child of a new node was garbage-collected"
        );
        let key = (level, lo, hi);
        let mut shard = lock(&self.unique[shard3(level, lo, hi)]);
        if let Some(&id) = shard.get(&key) {
            return id;
        }
        // Publish order: fields first, then the map entry; the shard mutex
        // is the release/acquire edge every other reader goes through.
        let id = self.alloc_slot();
        self.store.write(id, level, lo, hi);
        shard.insert(key, id);
        id
    }

    fn cache_get3(cache: &Sharded<(u32, u32, u32)>, key: (u32, u32, u32)) -> Option<u32> {
        lock(&cache[shard3(key.0, key.1, key.2)]).get(&key).copied()
    }

    fn cache_put3(cache: &Sharded<(u32, u32, u32)>, key: (u32, u32, u32), r: u32) {
        lock(&cache[shard3(key.0, key.1, key.2)]).insert(key, r);
    }

    /// The memoised ITE kernel: `f·g + f̅·h`.
    pub(crate) fn ite_rec(&self, f: u32, g: u32, h: u32, ctx: &mut OpCtx) -> OpResult {
        // Terminal short-circuits.
        if f == ONE {
            return Ok(g);
        }
        if f == ZERO {
            return Ok(h);
        }
        if g == h {
            return Ok(g);
        }
        if g == ONE && h == ZERO {
            return Ok(f);
        }
        ctx.tick(self)?;
        let key = (f, g, h);
        if let Some(r) = Self::cache_get3(&self.ite_cache, key) {
            return Ok(r);
        }
        let level = self.level(f).min(self.level(g)).min(self.level(h));
        let (f0, f1) = self.children_at(f, level);
        let (g0, g1) = self.children_at(g, level);
        let (h0, h1) = self.children_at(h, level);
        let lo = self.ite_rec(f0, g0, h0, ctx)?;
        let hi = self.ite_rec(f1, g1, h1, ctx)?;
        let r = self.mk(level, lo, hi, ctx)?;
        Self::cache_put3(&self.ite_cache, key, r);
        Ok(r)
    }

    /// Existential quantification `∃ cube. f` (memoised), with the
    /// cube-skipping normalisation above `f`'s support.
    pub(crate) fn exists_rec(&self, f: u32, mut cube: u32, ctx: &mut OpCtx) -> OpResult {
        if f <= ONE {
            return Ok(f);
        }
        // Quantifying a variable above f's support is the identity.
        while cube > ONE && self.level(cube) < self.level(f) {
            cube = self.node(cube).2;
        }
        if cube == ONE {
            return Ok(f);
        }
        ctx.tick(self)?;
        let key = (f, cube);
        if let Some(r) = lock(&self.exists_cache[shard2(f, cube)]).get(&key).copied() {
            return Ok(r);
        }
        let level = self.level(f);
        let (f0, f1) = self.children_at(f, level);
        let r = if self.level(cube) == level {
            let rest = self.node(cube).2;
            let lo = self.exists_rec(f0, rest, ctx)?;
            if lo == ONE {
                ONE
            } else {
                let hi = self.exists_rec(f1, rest, ctx)?;
                self.ite_rec(lo, ONE, hi, ctx)?
            }
        } else {
            let lo = self.exists_rec(f0, cube, ctx)?;
            let hi = self.exists_rec(f1, cube, ctx)?;
            self.mk(level, lo, hi, ctx)?
        };
        lock(&self.exists_cache[shard2(f, cube)]).insert(key, r);
        Ok(r)
    }

    /// The relational product `∃ cube. f · g` in one pass (memoised).
    pub(crate) fn and_exists_rec(
        &self,
        f: u32,
        g: u32,
        mut cube: u32,
        ctx: &mut OpCtx,
    ) -> OpResult {
        if f == ZERO || g == ZERO {
            return Ok(ZERO);
        }
        if f == ONE {
            return self.exists_rec(g, cube, ctx);
        }
        if g == ONE || f == g {
            return self.exists_rec(f, cube, ctx);
        }
        let top = self.level(f).min(self.level(g));
        while cube > ONE && self.level(cube) < top {
            cube = self.node(cube).2;
        }
        if cube == ONE {
            return self.ite_rec(f, g, ZERO, ctx);
        }
        ctx.tick(self)?;
        // Conjunction is commutative: normalise the key.
        let key = if f > g { (g, f, cube) } else { (f, g, cube) };
        if let Some(r) = Self::cache_get3(&self.and_exists_cache, key) {
            return Ok(r);
        }
        let (f0, f1) = self.children_at(f, top);
        let (g0, g1) = self.children_at(g, top);
        let r = if self.level(cube) == top {
            let rest = self.node(cube).2;
            let lo = self.and_exists_rec(f0, g0, rest, ctx)?;
            if lo == ONE {
                ONE
            } else {
                let hi = self.and_exists_rec(f1, g1, rest, ctx)?;
                self.ite_rec(lo, ONE, hi, ctx)?
            }
        } else {
            let lo = self.and_exists_rec(f0, g0, cube, ctx)?;
            let hi = self.and_exists_rec(f1, g1, cube, ctx)?;
            self.mk(top, lo, hi, ctx)?
        };
        Self::cache_put3(&self.and_exists_cache, key, r);
        Ok(r)
    }

    // ------------------------------------------------------------------
    // Quiesced maintenance support (`&mut self`: no kernel is running).
    // ------------------------------------------------------------------

    /// Drops every memoised operation result (reordering retires nodes
    /// without mark information, so selective purging is impossible).
    pub(crate) fn clear_caches(&mut self) {
        for shard in self.ite_cache.iter() {
            lock(shard).clear();
        }
        for shard in self.exists_cache.iter() {
            lock(shard).clear();
        }
        for shard in self.and_exists_cache.iter() {
            lock(shard).clear();
        }
    }

    /// Purges cache entries touching any id for which `dead` holds.
    pub(crate) fn purge_caches(&mut self, dead: impl Fn(u32) -> bool) {
        let alive = |n: u32| !dead(n);
        for shard in self.ite_cache.iter() {
            lock(shard).retain(|&(f, g, h), r| alive(f) && alive(g) && alive(h) && alive(*r));
        }
        for shard in self.exists_cache.iter() {
            lock(shard).retain(|&(f, cube), r| alive(f) && alive(cube) && alive(*r));
        }
        for shard in self.and_exists_cache.iter() {
            lock(shard).retain(|&(f, g, cube), r| alive(f) && alive(g) && alive(cube) && alive(*r));
        }
    }

    /// Removes a node's unique-table entry. Panics (via the debug
    /// assertion) if the table is out of sync.
    pub(crate) fn unique_remove(&mut self, level: u32, lo: u32, hi: u32, id: u32) {
        let removed = lock(&self.unique[shard3(level, lo, hi)]).remove(&(level, lo, hi));
        debug_assert_eq!(removed, Some(id), "unique table out of sync");
        let _ = removed;
        let _ = id;
    }

    /// Registers a node under a (new) unique-table key, returning any
    /// previous occupant (reordering asserts there is none).
    pub(crate) fn unique_insert(&mut self, level: u32, lo: u32, hi: u32, id: u32) -> Option<u32> {
        lock(&self.unique[shard3(level, lo, hi)]).insert((level, lo, hi), id)
    }

    /// Looks up a unique-table key (reordering's hash-consing path).
    pub(crate) fn unique_get(&self, level: u32, lo: u32, hi: u32) -> Option<u32> {
        lock(&self.unique[shard3(level, lo, hi)])
            .get(&(level, lo, hi))
            .copied()
    }

    /// Frees a slot: level becomes [`FREE`], the id joins the free list.
    pub(crate) fn release_slot(&mut self, id: u32) {
        self.store.write(id, FREE, 0, 0);
        lock(&self.free).push(id);
        self.free_count.fetch_add(1, Ordering::AcqRel);
    }

    /// Total entries across the unique-table shards (invariant checking).
    pub(crate) fn unique_len(&self) -> usize {
        self.unique.iter().map(|s| lock(s).len()).sum()
    }

    /// Number of free-list entries (invariant checking).
    pub(crate) fn free_len(&self) -> usize {
        lock(&self.free).len()
    }
}

// ----------------------------------------------------------------------
// Frontier decomposition: the probe used by the parallel apply to expand a
// root call into independent subproblems, mirroring each kernel's
// normalisation so worker results land on the keys the serial finish pass
// will ask for.
// ----------------------------------------------------------------------

/// One independent kernel invocation, in normalised form.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Task {
    /// `ite(f, g, h)`.
    Ite(u32, u32, u32),
    /// `∃ cube. f`.
    Exists(u32, u32),
    /// `∃ cube. f · g`.
    AndExists(u32, u32, u32),
}

/// Result of probing a task without allocating: either it resolves
/// immediately (terminal rule or cache hit), or it forks into the two
/// cofactor subtasks the kernel would recurse on.
pub(crate) enum Probe {
    /// Resolved without recursion; no work to distribute.
    Done,
    /// The two subtasks of the cofactor recursion (already normalised).
    Fork([Task; 2]),
}

impl Core {
    /// Runs a task to completion with the serial kernel.
    pub(crate) fn run_task(&self, task: Task, ctx: &mut OpCtx) -> OpResult {
        match task {
            Task::Ite(f, g, h) => self.ite_rec(f, g, h, ctx),
            Task::Exists(f, cube) => self.exists_rec(f, cube, ctx),
            Task::AndExists(f, g, cube) => self.and_exists_rec(f, g, cube, ctx),
        }
    }

    /// Probes one task, mirroring the kernel's own normalisation (terminal
    /// short-circuits, cube skipping, commutative key swap, cache lookup)
    /// so the forked subtasks are exactly the recursive calls the serial
    /// kernel will make — their results are guaranteed cache hits for the
    /// finish pass.
    pub(crate) fn probe(&self, task: Task) -> Probe {
        match task {
            Task::Ite(f, g, h) => {
                if f <= ONE || g == h || (g == ONE && h == ZERO) {
                    return Probe::Done;
                }
                if Self::cache_get3(&self.ite_cache, (f, g, h)).is_some() {
                    return Probe::Done;
                }
                let level = self.level(f).min(self.level(g)).min(self.level(h));
                let (f0, f1) = self.children_at(f, level);
                let (g0, g1) = self.children_at(g, level);
                let (h0, h1) = self.children_at(h, level);
                Probe::Fork([Task::Ite(f0, g0, h0), Task::Ite(f1, g1, h1)])
            }
            Task::Exists(f, mut cube) => {
                if f <= ONE {
                    return Probe::Done;
                }
                while cube > ONE && self.level(cube) < self.level(f) {
                    cube = self.node(cube).2;
                }
                if cube == ONE {
                    return Probe::Done;
                }
                if lock(&self.exists_cache[shard2(f, cube)])
                    .get(&(f, cube))
                    .is_some()
                {
                    return Probe::Done;
                }
                let level = self.level(f);
                let (f0, f1) = self.children_at(f, level);
                if self.level(cube) == level {
                    let rest = self.node(cube).2;
                    Probe::Fork([Task::Exists(f0, rest), Task::Exists(f1, rest)])
                } else {
                    Probe::Fork([Task::Exists(f0, cube), Task::Exists(f1, cube)])
                }
            }
            Task::AndExists(f, g, mut cube) => {
                if f == ZERO || g == ZERO {
                    return Probe::Done;
                }
                if f == ONE {
                    return self.probe(Task::Exists(g, cube));
                }
                if g == ONE || f == g {
                    return self.probe(Task::Exists(f, cube));
                }
                let top = self.level(f).min(self.level(g));
                while cube > ONE && self.level(cube) < top {
                    cube = self.node(cube).2;
                }
                if cube == ONE {
                    return self.probe(Task::Ite(f, g, ZERO));
                }
                let key = if f > g { (g, f, cube) } else { (f, g, cube) };
                if Self::cache_get3(&self.and_exists_cache, key).is_some() {
                    return Probe::Done;
                }
                let (f0, f1) = self.children_at(f, top);
                let (g0, g1) = self.children_at(g, top);
                if self.level(cube) == top {
                    let rest = self.node(cube).2;
                    Probe::Fork([Task::AndExists(f0, g0, rest), Task::AndExists(f1, g1, rest)])
                } else {
                    Probe::Fork([Task::AndExists(f0, g0, cube), Task::AndExists(f1, g1, cube)])
                }
            }
        }
    }
}
