//! # si-petri — 1-safe Petri net kernel
//!
//! The bottom-most substrate of the `si-synth` workspace: marked place/
//! transition nets `N = ⟨P, T, F, m₀⟩` with unit arc weights, the firing
//! rule, explicit and symbolic (BDD-based) reachability exploration, and the
//! [`BitSet`] utility shared by the state-graph and unfolding crates.
//!
//! Signal Transition Graphs (crate `si-stg`) are labelled 1-safe nets; the
//! STG-unfolding segment (crate `si-unfolding`) is a partial-order run of
//! such a net. Everything here assumes and enforces 1-safeness: a firing that
//! would place a second token on a place is reported as [`NetError::Unsafe`].
//!
//! ## Example
//!
//! ```
//! use si_petri::{PetriNet, ReachabilityGraph};
//!
//! # fn main() -> Result<(), si_petri::NetError> {
//! // A two-phase handshake: req alternates with ack.
//! let mut net = PetriNet::new();
//! let idle = net.add_place("idle");
//! let busy = net.add_place("busy");
//! let req = net.add_transition("req");
//! let ack = net.add_transition("ack");
//! net.add_arc_pt(idle, req);
//! net.add_arc_tp(req, busy);
//! net.add_arc_pt(busy, ack);
//! net.add_arc_tp(ack, idle);
//! net.mark_initially(idle);
//!
//! let graph = ReachabilityGraph::explore(&net, 1_000)?;
//! assert_eq!(graph.len(), 2);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod bitset;
mod dot;
mod error;
mod marking;
mod net;
mod reach;
pub mod structural;
mod symbolic;

pub use bitset::{BitSet, Iter as BitSetIter};
pub use dot::to_dot;
pub use error::NetError;
pub use marking::Marking;
pub use net::{PetriNet, PlaceId, TransitionId};
pub use reach::ReachabilityGraph;
pub use symbolic::{AuxAction, SymbolicOptions, SymbolicReach, SymbolicStats};
