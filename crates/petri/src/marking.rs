//! Markings of 1-safe nets: sets of marked places.

use std::fmt;

use crate::bitset::BitSet;
use crate::net::{PetriNet, PlaceId};

/// A marking of a 1-safe net — the set of places currently holding a token.
///
/// # Examples
///
/// ```
/// use si_petri::{Marking, PlaceId};
///
/// let mut m = Marking::new();
/// m.insert(PlaceId(2));
/// assert!(m.contains(PlaceId(2)));
/// assert_eq!(m.iter().collect::<Vec<_>>(), vec![PlaceId(2)]);
/// ```
#[derive(Clone, Default, PartialEq, Eq, Hash)]
pub struct Marking {
    places: BitSet,
}

impl Marking {
    /// Creates an empty marking.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty marking whose backing bitset is pre-sized for
    /// `place_count` places, so clones made while firing never reallocate.
    /// Equality and hashing ignore trailing empty blocks, so a pre-sized
    /// marking compares equal to an organically grown one.
    pub fn with_capacity(place_count: usize) -> Self {
        Marking {
            places: BitSet::with_capacity(place_count),
        }
    }

    /// Returns `true` if `place` is marked.
    pub fn contains(&self, place: PlaceId) -> bool {
        self.places.contains(place.index())
    }

    /// Marks `place`. Returns `true` if it was previously unmarked.
    pub fn insert(&mut self, place: PlaceId) -> bool {
        self.places.insert(place.index())
    }

    /// Unmarks `place`. Returns `true` if it was previously marked.
    pub fn remove(&mut self, place: PlaceId) -> bool {
        self.places.remove(place.index())
    }

    /// Number of marked places.
    pub fn len(&self) -> usize {
        self.places.len()
    }

    /// Returns `true` if no place is marked.
    pub fn is_empty(&self) -> bool {
        self.places.is_empty()
    }

    /// Iterates over the marked places in id order.
    pub fn iter(&self) -> impl Iterator<Item = PlaceId> + '_ {
        self.places.iter().map(|i| PlaceId(i as u32))
    }

    /// Returns `true` if every place marked here is also marked in `other`.
    pub fn is_subset(&self, other: &Marking) -> bool {
        self.places.is_subset(&other.places)
    }

    /// Renders the marking with place names from `net`, e.g. `{p2, p6, p8}`.
    pub fn display<'a>(&'a self, net: &'a PetriNet) -> impl fmt::Display + 'a {
        DisplayMarking { marking: self, net }
    }
}

impl FromIterator<PlaceId> for Marking {
    fn from_iter<I: IntoIterator<Item = PlaceId>>(iter: I) -> Self {
        let mut m = Marking::new();
        for p in iter {
            m.insert(p);
        }
        m
    }
}

impl fmt::Debug for Marking {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

struct DisplayMarking<'a> {
    marking: &'a Marking,
    net: &'a PetriNet,
}

impl fmt::Display for DisplayMarking<'_> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, p) in self.marking.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{}", self.net.place_name(p))?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_remove_contains() {
        let mut m = Marking::new();
        assert!(m.insert(PlaceId(1)));
        assert!(!m.insert(PlaceId(1)));
        assert!(m.contains(PlaceId(1)));
        assert!(m.remove(PlaceId(1)));
        assert!(m.is_empty());
    }

    #[test]
    fn from_iterator_and_eq() {
        let a: Marking = [PlaceId(0), PlaceId(3)].into_iter().collect();
        let b: Marking = [PlaceId(3), PlaceId(0)].into_iter().collect();
        assert_eq!(a, b);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn subset() {
        let a: Marking = [PlaceId(1)].into_iter().collect();
        let b: Marking = [PlaceId(1), PlaceId(2)].into_iter().collect();
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
    }

    #[test]
    fn display_uses_names() {
        let mut net = PetriNet::new();
        let p0 = net.add_place("req");
        let p1 = net.add_place("ack");
        let m: Marking = [p0, p1].into_iter().collect();
        assert_eq!(m.display(&net).to_string(), "{req, ack}");
    }
}
