//! Polynomial-time structural analysis of marked nets.
//!
//! Everything in this module works on the **incidence matrix** `C` of a net
//! (`C[p][t] = post(t)(p) − pre(t)(p)`) and the initial marking — no state
//! space is ever explored. The centrepieces:
//!
//! * [`Incidence`] — the integer incidence matrix;
//! * [`p_invariant_basis`] / [`t_invariant_basis`] — exact integer bases of
//!   the left/right nullspace of `C`, computed by rational Gaussian
//!   elimination (`i128` numerators/denominators, checked arithmetic) and
//!   scaled to primitive integer vectors;
//! * [`certify_one_safe`] — a **1-safety certificate**: a cover of the
//!   places by unary P-invariants (token-conserving place sets) that each
//!   carry at most one initial token. Every place covered this way is
//!   1-safe in *every* reachable marking, so downstream engines may skip
//!   their dynamic safety checks;
//! * [`unmarked_siphon`] — the maximal siphon among initially unmarked
//!   places (a witness of structurally dead transitions);
//! * [`classify`] — marked-graph / state-machine / free-choice membership;
//! * [`validation_errors`] — the structural well-formedness rules shared by
//!   [`PetriNet::validate`] and the STG linter, so each rule lives in
//!   exactly one place.

use crate::error::NetError;
use crate::net::{PetriNet, PlaceId, TransitionId};

/// The integer incidence matrix `C` of a net: `C[p][t]` is the token change
/// on place `p` when transition `t` fires (`post − pre`, with self-loops
/// cancelling to 0).
#[derive(Debug, Clone)]
pub struct Incidence {
    place_count: usize,
    transition_count: usize,
    /// Row-major: `entries[p * transition_count + t]`.
    entries: Vec<i64>,
}

impl Incidence {
    /// Builds the incidence matrix of `net`.
    pub fn of(net: &PetriNet) -> Self {
        let place_count = net.place_count();
        let transition_count = net.transition_count();
        let mut entries = vec![0i64; place_count * transition_count];
        for t in net.transitions() {
            for &p in net.preset(t) {
                entries[p.index() * transition_count + t.index()] -= 1;
            }
            for &p in net.postset(t) {
                entries[p.index() * transition_count + t.index()] += 1;
            }
        }
        Self {
            place_count,
            transition_count,
            entries,
        }
    }

    /// Number of places (rows).
    pub fn place_count(&self) -> usize {
        self.place_count
    }

    /// Number of transitions (columns).
    pub fn transition_count(&self) -> usize {
        self.transition_count
    }

    /// The entry `C[p][t]`.
    pub fn entry(&self, place: PlaceId, transition: TransitionId) -> i64 {
        self.entries[place.index() * self.transition_count + transition.index()]
    }

    fn at(&self, p: usize, t: usize) -> i64 {
        self.entries[p * self.transition_count + t]
    }
}

/// An exact rational with `i128` numerator/denominator. All arithmetic is
/// checked: any overflow aborts the whole invariant computation (the caller
/// degrades to "no structural information" rather than panicking or
/// returning wrong vectors).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Ratio {
    num: i128,
    den: i128, // > 0
}

fn gcd(mut a: i128, mut b: i128) -> i128 {
    a = a.abs();
    b = b.abs();
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

impl Ratio {
    const ZERO: Ratio = Ratio { num: 0, den: 1 };

    fn int(v: i64) -> Ratio {
        Ratio {
            num: v as i128,
            den: 1,
        }
    }

    fn is_zero(self) -> bool {
        self.num == 0
    }

    fn reduce(num: i128, den: i128) -> Option<Ratio> {
        if den == 0 {
            return None;
        }
        if num == 0 {
            return Some(Ratio::ZERO);
        }
        let g = gcd(num, den);
        let sign = if den < 0 { -1 } else { 1 };
        Some(Ratio {
            num: num.checked_div(g)?.checked_mul(sign)?,
            den: den.checked_div(g)?.checked_mul(sign)?,
        })
    }

    fn mul(self, other: Ratio) -> Option<Ratio> {
        // Cross-reduce first to keep intermediates small.
        let g1 = gcd(self.num, other.den).max(1);
        let g2 = gcd(other.num, self.den).max(1);
        let num = (self.num / g1).checked_mul(other.num / g2)?;
        let den = (self.den / g2).checked_mul(other.den / g1)?;
        Ratio::reduce(num, den)
    }

    fn sub(self, other: Ratio) -> Option<Ratio> {
        let g = gcd(self.den, other.den).max(1);
        let lhs = self.num.checked_mul(other.den / g)?;
        let rhs = other.num.checked_mul(self.den / g)?;
        let num = lhs.checked_sub(rhs)?;
        let den = self.den.checked_mul(other.den / g)?;
        Ratio::reduce(num, den)
    }

    fn div(self, other: Ratio) -> Option<Ratio> {
        if other.num == 0 {
            return None;
        }
        self.mul(Ratio {
            num: other.den,
            den: other.num,
        })
    }
}

/// Basis of the nullspace `{x : A·x = 0}` of a dense rational matrix given
/// row-major as `rows` (each of length `cols`). Returns one primitive
/// integer vector per free column, or `None` if the exact arithmetic
/// overflowed `i128`.
fn nullspace(mut rows: Vec<Vec<Ratio>>, cols: usize) -> Option<Vec<Vec<i64>>> {
    // Reduced row echelon form.
    let mut pivot_of_col: Vec<Option<usize>> = vec![None; cols];
    let mut rank = 0usize;
    for col in 0..cols {
        // Find a pivot row at or below `rank`.
        let Some(pivot) = (rank..rows.len()).find(|&r| !rows[r][col].is_zero()) else {
            continue;
        };
        rows.swap(rank, pivot);
        let inv = Ratio::int(1).div(rows[rank][col])?;
        for cell in &mut rows[rank][col..cols] {
            *cell = cell.mul(inv)?;
        }
        let pivot_row = rows[rank][col..cols].to_vec();
        for (r, row) in rows.iter_mut().enumerate() {
            if r != rank && !row[col].is_zero() {
                let factor = row[col];
                for (cell, &p) in row[col..cols].iter_mut().zip(&pivot_row) {
                    let scaled = p.mul(factor)?;
                    *cell = cell.sub(scaled)?;
                }
            }
        }
        pivot_of_col[col] = Some(rank);
        rank += 1;
        if rank == rows.len() {
            // Remaining columns are all free.
            break;
        }
    }

    let mut basis = Vec::new();
    for free in 0..cols {
        if pivot_of_col[free].is_some() {
            continue;
        }
        // x[free] = 1, x[pivot col] = -row[free] for each pivot row.
        let mut vec_q = vec![Ratio::ZERO; cols];
        vec_q[free] = Ratio::int(1);
        for col in 0..cols {
            if let Some(row) = pivot_of_col[col] {
                vec_q[col] = Ratio::ZERO.sub(rows[row][free])?;
            }
        }
        // Scale to a primitive integer vector.
        let mut lcm: i128 = 1;
        for q in &vec_q {
            if !q.is_zero() {
                let g = gcd(lcm, q.den).max(1);
                lcm = lcm.checked_mul(q.den / g)?;
            }
        }
        let mut ints: Vec<i128> = Vec::with_capacity(cols);
        for q in &vec_q {
            ints.push(q.num.checked_mul(lcm / q.den)?);
        }
        let mut g = 0i128;
        for &v in &ints {
            g = gcd(g, v);
        }
        if g > 1 {
            for v in &mut ints {
                *v /= g;
            }
        }
        let mut out = Vec::with_capacity(cols);
        for v in ints {
            out.push(i64::try_from(v).ok()?);
        }
        basis.push(out);
    }
    Some(basis)
}

/// Exact integer basis of the **P-invariants** of `inc`: all `y` with
/// `yᵀ·C = 0`. Each basis vector has one entry per place and is primitive
/// (contents share no common factor, first nonzero entry positive after the
/// free-column convention). Returns `None` if the exact arithmetic
/// overflowed.
pub fn p_invariant_basis(inc: &Incidence) -> Option<Vec<Vec<i64>>> {
    // yᵀ·C = 0 ⟺ Cᵀ·y = 0: one equation per transition, one unknown per
    // place.
    let rows = (0..inc.transition_count)
        .map(|t| {
            (0..inc.place_count)
                .map(|p| Ratio::int(inc.at(p, t)))
                .collect()
        })
        .collect();
    nullspace(rows, inc.place_count)
}

/// Exact integer basis of the **T-invariants** of `inc`: all `x` with
/// `C·x = 0` (firing-count vectors that reproduce the marking). One entry
/// per transition. Returns `None` if the exact arithmetic overflowed.
pub fn t_invariant_basis(inc: &Incidence) -> Option<Vec<Vec<i64>>> {
    let rows = (0..inc.place_count)
        .map(|p| {
            (0..inc.transition_count)
                .map(|t| Ratio::int(inc.at(p, t)))
                .collect()
        })
        .collect();
    nullspace(rows, inc.transition_count)
}

/// Transitions that appear in **no** T-invariant: the union of the supports
/// of the nullspace basis misses them, so their firing count is zero in any
/// reproduction vector — they can fire at most finitely often on any run.
/// Returns `None` if the invariant computation overflowed.
pub fn non_repeatable_transitions(inc: &Incidence) -> Option<Vec<TransitionId>> {
    let basis = t_invariant_basis(inc)?;
    let mut covered = vec![false; inc.transition_count];
    for vec in &basis {
        for (t, &v) in vec.iter().enumerate() {
            if v != 0 {
                covered[t] = true;
            }
        }
    }
    Some(
        covered
            .iter()
            .enumerate()
            .filter(|&(_, &c)| !c)
            .map(|(t, _)| TransitionId(t as u32))
            .collect(),
    )
}

/// A structural 1-safety certificate: a family of **unary P-invariants**
/// (place sets `S` with `Σ_{p∈S} C[p][t] = 0` for every transition `t`)
/// each holding at most one initial token, covering some subset of the
/// places. Token conservation means no covered place can ever hold a
/// second token — covered places are 1-safe in every reachable marking.
#[derive(Debug, Clone)]
pub struct SafetyCertificate {
    /// The certifying place sets, each sorted by id, each with `≤ 1`
    /// initial token.
    pub invariants: Vec<Vec<PlaceId>>,
    /// `covered[p]` — whether place `p` belongs to some certifying set.
    pub covered: Vec<bool>,
    /// Whether *every* place is covered (the whole net is certified
    /// 1-safe).
    pub certified: bool,
}

impl SafetyCertificate {
    /// Places not covered by any certifying invariant, in id order.
    pub fn uncovered(&self) -> Vec<PlaceId> {
        self.covered
            .iter()
            .enumerate()
            .filter(|&(_, &c)| !c)
            .map(|(p, _)| PlaceId(p as u32))
            .collect()
    }
}

/// Work budget for the unary-invariant search, counted in DFS node visits
/// across all seeds. Generous for the net sizes this workspace handles
/// (hundreds of places) while keeping the pass polynomial in practice.
const UNARY_SEARCH_BUDGET: usize = 200_000;

/// Searches for unary P-invariant covers and assembles a
/// [`SafetyCertificate`]. Deterministic: seeds are tried in place-id order
/// and the DFS explores candidate places in id order, so the certificate —
/// and everything seeded from it, like BDD variable orders — is stable
/// across runs.
pub fn certify_one_safe(net: &PetriNet) -> SafetyCertificate {
    let inc = Incidence::of(net);
    let place_count = net.place_count();
    let transition_count = net.transition_count();
    // Per-place sparse column view: (transition, entry) pairs.
    let mut touching: Vec<Vec<(usize, i64)>> = vec![Vec::new(); place_count];
    for (p, row) in touching.iter_mut().enumerate() {
        for t in 0..transition_count {
            let e = inc.at(p, t);
            if e != 0 {
                row.push((t, e));
            }
        }
    }
    let marked: Vec<bool> = (0..place_count)
        .map(|p| net.initial_marking().contains(PlaceId(p as u32)))
        .collect();

    let mut covered = vec![false; place_count];
    let mut invariants = Vec::new();
    let mut budget = UNARY_SEARCH_BUDGET;
    for seed in 0..place_count {
        if covered[seed] || budget == 0 {
            continue;
        }
        let mut support = vec![false; place_count];
        let mut balance = vec![0i64; transition_count];
        support[seed] = true;
        for &(t, e) in &touching[seed] {
            balance[t] += e;
        }
        let mut tokens = usize::from(marked[seed]);
        if tokens <= 1
            && extend_invariant(
                &touching,
                &marked,
                &mut support,
                &mut balance,
                &mut tokens,
                &mut budget,
            )
        {
            let set: Vec<PlaceId> = support
                .iter()
                .enumerate()
                .filter(|&(_, &s)| s)
                .map(|(p, _)| PlaceId(p as u32))
                .collect();
            for p in &set {
                covered[p.index()] = true;
            }
            invariants.push(set);
        }
    }
    let certified = covered.iter().all(|&c| c);
    SafetyCertificate {
        invariants,
        covered,
        certified,
    }
}

/// Bounded backtracking step of the unary-invariant search: if some
/// transition is unbalanced over the current support, try every place whose
/// incidence entry reduces the imbalance, in id order.
fn extend_invariant(
    touching: &[Vec<(usize, i64)>],
    marked: &[bool],
    support: &mut [bool],
    balance: &mut [i64],
    tokens: &mut usize,
    budget: &mut usize,
) -> bool {
    if *budget == 0 {
        return false;
    }
    *budget -= 1;
    let Some(unbalanced) = balance.iter().position(|&b| b != 0) else {
        return true;
    };
    let need_negative = balance[unbalanced] > 0;
    for (p, entries) in touching.iter().enumerate() {
        if support[p] {
            continue;
        }
        let Some(&(_, e)) = entries.iter().find(|&&(t, _)| t == unbalanced) else {
            continue;
        };
        if (e < 0) != need_negative {
            continue;
        }
        support[p] = true;
        for &(t, d) in entries {
            balance[t] += d;
        }
        let tok = usize::from(marked[p]);
        *tokens += tok;
        if *tokens <= 1 && extend_invariant(touching, marked, support, balance, tokens, budget) {
            return true;
        }
        *tokens -= tok;
        for &(t, d) in entries {
            balance[t] -= d;
        }
        support[p] = false;
    }
    false
}

/// An upper bound on the number of reachable markings implied by a safety
/// certificate: each certifying invariant with `k` initial tokens confines
/// its token to one of `|S|` places (or pins the set empty when `k = 0`),
/// and each uncovered place contributes a free binary choice. Saturating;
/// `None` when the certificate covers nothing (bound would be the trivial
/// `2^places`).
pub fn structural_state_bound(net: &PetriNet, cert: &SafetyCertificate) -> Option<u128> {
    if cert.invariants.is_empty() {
        return None;
    }
    let mut bound: u128 = 1;
    let mut grouped = vec![false; net.place_count()];
    for set in &cert.invariants {
        // Only places not already counted by an earlier (overlapping)
        // invariant contribute fresh alternatives.
        let fresh: Vec<&PlaceId> = set.iter().filter(|p| !grouped[p.index()]).collect();
        if fresh.is_empty() {
            continue;
        }
        let tokens: usize = set
            .iter()
            .filter(|p| net.initial_marking().contains(**p))
            .count();
        let alternatives = if tokens == 0 {
            // Token sum conserved at zero: the whole set stays empty.
            1
        } else if fresh.len() == set.len() {
            // One conserved token over |S| disjoint places: |S| positions.
            set.len() as u128
        } else {
            // Overlap with an earlier invariant: the token may also sit on
            // an already counted place, leaving every fresh place empty.
            fresh.len() as u128 + 1
        };
        bound = bound.saturating_mul(alternatives);
        for p in fresh {
            grouped[p.index()] = true;
        }
    }
    let uncovered = grouped.iter().filter(|&&g| !g).count();
    if uncovered >= 128 {
        return Some(u128::MAX);
    }
    Some(bound.saturating_mul(1u128 << uncovered))
}

/// The **maximal siphon among initially unmarked places**: the largest set
/// `S` of unmarked places such that every transition producing into `S`
/// also consumes from `S`. Such a set can never acquire a token, so every
/// transition consuming from it is structurally dead. Returns the set in
/// id order (empty when every unmarked place is eventually feedable).
pub fn unmarked_siphon(net: &PetriNet) -> Vec<PlaceId> {
    let mut in_siphon: Vec<bool> = net
        .places()
        .map(|p| !net.initial_marking().contains(p))
        .collect();
    loop {
        let mut changed = false;
        for p in net.places() {
            if !in_siphon[p.index()] {
                continue;
            }
            // p must leave the siphon if some producer of p takes no input
            // from the siphon (it could fire and feed p a token).
            let escapes = net
                .place_preset(p)
                .iter()
                .any(|&t| !net.preset(t).iter().any(|&q| in_siphon[q.index()]));
            if escapes {
                in_siphon[p.index()] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    net.places().filter(|p| in_siphon[p.index()]).collect()
}

/// Transitions disabled forever by an (unmarked) siphon: those consuming
/// from some place of `siphon`.
pub fn dead_by_siphon(net: &PetriNet, siphon: &[PlaceId]) -> Vec<TransitionId> {
    let mut in_siphon = vec![false; net.place_count()];
    for p in siphon {
        in_siphon[p.index()] = true;
    }
    net.transitions()
        .filter(|&t| net.preset(t).iter().any(|&p| in_siphon[p.index()]))
        .collect()
}

/// The **maximal trap inside `within`**: the largest `Q ⊆ within` such that
/// every transition consuming from `Q` also produces into `Q`. Dual of the
/// siphon fixpoint — tokens may enter a trap but can never drain it, so an
/// initially marked trap stays marked in every reachable marking. Returns
/// the set in id order (possibly empty).
pub fn max_trap_within(net: &PetriNet, within: &[PlaceId]) -> Vec<PlaceId> {
    let mut in_trap = vec![false; net.place_count()];
    for p in within {
        in_trap[p.index()] = true;
    }
    loop {
        let mut changed = false;
        for p in net.places() {
            if !in_trap[p.index()] {
                continue;
            }
            // p must leave the trap if some consumer of p produces nothing
            // into it (firing that consumer could drain the trap's last
            // token through p).
            let escapes = net
                .place_postset(p)
                .iter()
                .any(|&t| !net.postset(t).iter().any(|&q| in_trap[q.index()]));
            if escapes {
                in_trap[p.index()] = false;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    net.places().filter(|p| in_trap[p.index()]).collect()
}

/// Work budget for [`minimal_siphons`], counted in DFS node visits across
/// all seeds. Sized so the shipped benchmark suite completes instantly
/// while genuinely exponential siphon structures degrade to "no answer"
/// instead of hanging the linter.
pub const SIPHON_ENUM_BUDGET: usize = 20_000;

/// Cap on candidate siphons recorded before minimisation; enumeration past
/// this point would only slow the inclusion filter down without making the
/// verdict more useful.
const SIPHON_ENUM_CAP: usize = 512;

/// Enumerates the **minimal siphons** of `net` (inclusion-minimal nonempty
/// place sets `S` with `•S ⊆ S•`): the carriers of every possible deadlock.
/// Deterministic — siphons are partitioned by their smallest place id
/// (seeds in id order, branch candidates in id order) and returned sorted.
/// Returns `None` when the DFS budget or the candidate cap is exhausted,
/// in which case the list would be incomplete and no liveness conclusion
/// may be drawn from it.
pub fn minimal_siphons(net: &PetriNet, budget: usize) -> Option<Vec<Vec<PlaceId>>> {
    let place_count = net.place_count();
    let mut found: Vec<Vec<usize>> = Vec::new();
    let mut budget = budget;
    for seed in 0..place_count {
        let mut in_set = vec![false; place_count];
        let mut forbidden = vec![false; place_count];
        for f in forbidden.iter_mut().take(seed) {
            *f = true;
        }
        in_set[seed] = true;
        extend_siphon(net, &mut in_set, &mut forbidden, &mut found, &mut budget)?;
        if found.len() > SIPHON_ENUM_CAP {
            return None;
        }
    }
    // Keep only inclusion-minimal sets, deduplicated, in lexicographic
    // order (each set is already sorted by construction).
    found.sort();
    found.dedup();
    let minimal: Vec<Vec<PlaceId>> = found
        .iter()
        .filter(|s| {
            !found
                .iter()
                .any(|o| o.len() < s.len() && o.iter().all(|p| s.contains(p)))
        })
        .map(|s| s.iter().map(|&p| PlaceId(p as u32)).collect())
        .collect();
    Some(minimal)
}

/// One DFS step of the minimal-siphon search: if some transition produces
/// into the current set without consuming from it, branch over the places
/// of its preset that could repair the violation. Branches taken earlier
/// are forbidden in later siblings, so every closure is explored exactly
/// once; completeness for *minimal* siphons is preserved because any siphon
/// containing two candidates is reached through the earlier one.
fn extend_siphon(
    net: &PetriNet,
    in_set: &mut [bool],
    forbidden: &mut [bool],
    found: &mut Vec<Vec<usize>>,
    budget: &mut usize,
) -> Option<()> {
    if *budget == 0 {
        return None;
    }
    *budget -= 1;
    let violating = net.transitions().find(|&t| {
        net.postset(t).iter().any(|&q| in_set[q.index()])
            && !net.preset(t).iter().any(|&q| in_set[q.index()])
    });
    let Some(t) = violating else {
        // No producer violates the condition: the current set is a siphon.
        found.push(
            in_set
                .iter()
                .enumerate()
                .filter(|&(_, &s)| s)
                .map(|(p, _)| p)
                .collect(),
        );
        return Some(());
    };
    let mut candidates: Vec<usize> = net
        .preset(t)
        .iter()
        .map(|p| p.index())
        .filter(|&p| !in_set[p] && !forbidden[p])
        .collect();
    candidates.sort_unstable();
    candidates.dedup();
    let mut tried = 0usize;
    for &p in &candidates {
        in_set[p] = true;
        let ok = extend_siphon(net, in_set, forbidden, found, budget);
        in_set[p] = false;
        if ok.is_none() {
            for &q in candidates.iter().take(tried) {
                forbidden[q] = false;
            }
            return None;
        }
        forbidden[p] = true;
        tried += 1;
        if found.len() > SIPHON_ENUM_CAP {
            break;
        }
    }
    for &q in candidates.iter().take(tried) {
        forbidden[q] = false;
    }
    Some(())
}

/// A structural deadlock verdict. `DeadlockFree` and `CertifiedDeadlock`
/// are *certificates* — sound conclusions about reachable behaviour drawn
/// without exploring any state space; the other variants report why neither
/// certificate could be established.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeadlockCertificate {
    /// Siphon–trap property verified: every minimal siphon contains an
    /// initially marked trap. A reachable dead marking would leave some
    /// minimal siphon unmarked, yet marked traps can never drain — so no
    /// reachable marking is dead (Commoner's condition, sound for any net
    /// class; also *complete* for live free-choice nets).
    DeadlockFree {
        /// How many minimal siphons the certificate rests on.
        siphons_checked: usize,
    },
    /// Marked-graph fast path: every place has at most one producer and
    /// one consumer, so the minimal siphons are exactly the simple cycles
    /// — and every cycle carries an initially marked place, which never
    /// drains (each firing on a cycle consumes one token and returns one).
    /// Commoner's condition verified in linear time, where the general
    /// siphon enumeration blows its budget on long pipelines and token
    /// rings.
    DeadlockFreeMarkedGraph,
    /// A certified reachable deadlock: `siphon` is initially unmarked and
    /// can never be re-marked, the net is certified 1-safe (so runs cannot
    /// grow markings forever), and the transitions not killed by the siphon
    /// admit no T-invariant — every run terminates, and a terminal marking
    /// of a net whose transitions all have presets is dead.
    CertifiedDeadlock {
        /// The never-marked siphon witnessing the dead transitions, in id
        /// order.
        siphon: Vec<PlaceId>,
    },
    /// A concrete minimal siphon whose maximal trap is initially unmarked:
    /// the siphon–trap property fails and deadlock-freedom cannot be
    /// certified structurally (for live free-choice nets this is already a
    /// liveness violation).
    SiphonWithoutMarkedTrap {
        /// The failing siphon, in id order.
        siphon: Vec<PlaceId>,
    },
    /// The siphon enumeration exceeded its budget or the net has no
    /// transitions; no structural conclusion.
    Unknown,
}

impl DeadlockCertificate {
    /// Whether this is a sound deadlock-freedom certificate.
    pub fn is_deadlock_free(&self) -> bool {
        matches!(
            self,
            DeadlockCertificate::DeadlockFree { .. } | DeadlockCertificate::DeadlockFreeMarkedGraph
        )
    }

    /// Whether this certifies a reachable dead marking.
    pub fn is_certified_deadlock(&self) -> bool {
        matches!(self, DeadlockCertificate::CertifiedDeadlock { .. })
    }
}

/// The certified-reachable-deadlock witness on its own: the cheap half of
/// [`certify_deadlock`] (one siphon fixpoint plus one exact nullspace, no
/// siphon enumeration), for callers like flow selection that only need to
/// refuse doomed specs. Returns the never-marked siphon if the chain
/// `certified 1-safe ∧ nonempty unmarked siphon ∧ surviving transitions
/// admit no T-invariant` closes, `None` otherwise.
pub fn certified_deadlock_witness(
    net: &PetriNet,
    safety: &SafetyCertificate,
) -> Option<Vec<PlaceId>> {
    if net.transition_count() == 0 || !safety.certified {
        return None;
    }
    if net.transitions().any(|t| net.preset(t).is_empty()) {
        // A transition with an empty preset is enabled at every marking:
        // no terminal marking exists, so the termination argument is void.
        return None;
    }
    let siphon = unmarked_siphon(net);
    if siphon.is_empty() {
        return None;
    }
    let dead = dead_by_siphon(net, &siphon);
    let mut is_dead = vec![false; net.transition_count()];
    for t in &dead {
        is_dead[t.index()] = true;
    }
    let live_cols: Vec<usize> = (0..net.transition_count())
        .filter(|&t| !is_dead[t])
        .collect();
    let inc = Incidence::of(net);
    let rows: Vec<Vec<Ratio>> = (0..inc.place_count())
        .map(|p| {
            live_cols
                .iter()
                .map(|&t| Ratio::int(inc.at(p, t)))
                .collect()
        })
        .collect();
    match nullspace(rows, live_cols.len()) {
        // Trivial nullspace over the transitions that can ever fire: any
        // infinite run of this (certified bounded) net would revisit a
        // marking and exhibit a nonzero T-invariant — so every run is
        // finite and ends in a dead marking.
        Some(basis) if basis.is_empty() => Some(siphon),
        _ => None,
    }
}

/// Computes the structural deadlock verdict for `net`, given its 1-safety
/// certificate. Polynomial except for the (budgeted) minimal-siphon
/// enumeration; never explores the state space.
pub fn certify_deadlock(net: &PetriNet, safety: &SafetyCertificate) -> DeadlockCertificate {
    if net.transition_count() == 0 {
        // Degenerate: the initial marking is trivially terminal. Other
        // checks flag empty specs; claiming "deadlock" here would drown
        // them.
        return DeadlockCertificate::Unknown;
    }
    if net.transitions().any(|t| net.preset(t).is_empty()) {
        // Permanently enabled transition: no reachable marking is ever
        // dead. (Such a net is rejected as unbounded elsewhere.)
        return DeadlockCertificate::DeadlockFree { siphons_checked: 0 };
    }
    if let Some(siphon) = certified_deadlock_witness(net, safety) {
        return DeadlockCertificate::CertifiedDeadlock { siphon };
    }
    if is_marked_graph(net) {
        // A source place feeding a transition is a one-place siphon whose
        // maximal trap is empty: once drained it never refills, so the
        // siphon–trap property fails exactly as the general enumeration
        // would conclude. It must be ruled out first — the cycle argument
        // below assumes every consumed place has a producer.
        if let Some(p) = net
            .places()
            .find(|&p| net.place_preset(p).is_empty() && !net.place_postset(p).is_empty())
        {
            return DeadlockCertificate::SiphonWithoutMarkedTrap { siphon: vec![p] };
        }
        // With that ruled out, the minimal siphons of a marked graph are
        // exactly its simple cycles (a dead marking leaves some cycle of
        // token-starved transitions, and cycle token counts are invariant),
        // so the siphon–trap property reduces to "every cycle is initially
        // marked" — checked in linear time instead of enumerating a
        // combinatorial family (a 20-stage pipeline has ~2^20 siphons).
        return match unmarked_cycle(net) {
            None => DeadlockCertificate::DeadlockFreeMarkedGraph,
            // An unmarked cycle is its own (unmarked) maximal trap: the
            // siphon–trap property fails with the cycle as witness.
            Some(siphon) => DeadlockCertificate::SiphonWithoutMarkedTrap { siphon },
        };
    }
    match minimal_siphons(net, SIPHON_ENUM_BUDGET) {
        None => DeadlockCertificate::Unknown,
        Some(siphons) => {
            let siphons_checked = siphons.len();
            for siphon in siphons {
                let trap = max_trap_within(net, &siphon);
                let trap_marked = trap.iter().any(|&p| net.initial_marking().contains(p));
                if !trap_marked {
                    return DeadlockCertificate::SiphonWithoutMarkedTrap { siphon };
                }
            }
            DeadlockCertificate::DeadlockFree { siphons_checked }
        }
    }
}

/// A marked graph: every place has at most one producing and at most one
/// consuming transition (pipelines, token rings, latch chains).
fn is_marked_graph(net: &PetriNet) -> bool {
    net.places()
        .all(|p| net.place_preset(p).len() <= 1 && net.place_postset(p).len() <= 1)
}

/// Finds a directed cycle running entirely through initially unmarked
/// places, or `None` when every cycle of the marked graph carries a token.
///
/// Kahn elimination on the transition graph restricted to unmarked places
/// is linear: when it empties the graph, every cycle is marked. Otherwise
/// the residue consists of the unmarked cycles plus their descendants, and
/// a backward walk inside the residue — every residue node keeps at least
/// one residue predecessor — must revisit a transition; the places pushed
/// between the two visits are one concrete unmarked cycle, returned in id
/// order.
fn unmarked_cycle(net: &PetriNet) -> Option<Vec<PlaceId>> {
    let tn = net.transition_count();
    let mut out: Vec<Vec<TransitionId>> = vec![Vec::new(); tn];
    let mut incoming: Vec<Vec<(TransitionId, PlaceId)>> = vec![Vec::new(); tn];
    let mut indegree = vec![0usize; tn];
    for p in net.places() {
        if net.initial_marking().contains(p) {
            continue;
        }
        if let (&[src], &[dst]) = (net.place_preset(p), net.place_postset(p)) {
            out[src.index()].push(dst);
            incoming[dst.index()].push((src, p));
            indegree[dst.index()] += 1;
        }
    }
    let mut queue: Vec<usize> = (0..tn).filter(|&t| indegree[t] == 0).collect();
    let mut remaining = tn;
    while let Some(t) = queue.pop() {
        remaining -= 1;
        for dst in &out[t] {
            indegree[dst.index()] -= 1;
            if indegree[dst.index()] == 0 {
                queue.push(dst.index());
            }
        }
    }
    if remaining == 0 {
        return None;
    }
    // After elimination, `indegree[t] > 0` marks the residue, and counts
    // only edges from residue predecessors.
    let start = (0..tn).find(|&t| indegree[t] > 0)?;
    let mut visited_at = vec![usize::MAX; tn];
    let mut path: Vec<PlaceId> = Vec::new();
    let mut cur = start;
    loop {
        if visited_at[cur] != usize::MAX {
            let mut places = path[visited_at[cur]..].to_vec();
            places.sort_unstable_by_key(|p| p.index());
            return Some(places);
        }
        visited_at[cur] = path.len();
        let &(src, p) = incoming[cur]
            .iter()
            .find(|(src, _)| indegree[src.index()] > 0)?;
        path.push(p);
        cur = src.index();
    }
}

/// The free-choice rank-theorem data: the rank of the incidence matrix
/// against the number of clusters. By the rank theorem (Desel–Esparza), a
/// connected free-choice net is well-formed — *some* marking makes it live
/// and bounded — only if `rank(C) = clusters − 1`; when the equation fails,
/// no initial marking whatsoever yields a live, safe circuit.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RankCheck {
    /// Rank of the incidence matrix over the rationals.
    pub rank: usize,
    /// Number of clusters (see [`cluster_count`]).
    pub clusters: usize,
}

impl RankCheck {
    /// Whether the necessary well-formedness equation `rank = clusters − 1`
    /// holds.
    pub fn holds(&self) -> bool {
        self.rank + 1 == self.clusters
    }
}

/// Runs the rank-theorem check. Returns `None` when the exact rank
/// computation overflows `i128`.
pub fn rank_check(net: &PetriNet) -> Option<RankCheck> {
    let inc = Incidence::of(net);
    Some(RankCheck {
        rank: incidence_rank(&inc)?,
        clusters: cluster_count(net),
    })
}

/// Rank of the incidence matrix over the rationals, by exact forward
/// elimination. Returns `None` if the arithmetic overflowed `i128`.
pub fn incidence_rank(inc: &Incidence) -> Option<usize> {
    let mut rows: Vec<Vec<Ratio>> = (0..inc.place_count)
        .map(|p| {
            (0..inc.transition_count)
                .map(|t| Ratio::int(inc.at(p, t)))
                .collect()
        })
        .collect();
    let mut rank = 0usize;
    for col in 0..inc.transition_count {
        let Some(pivot) = (rank..rows.len()).find(|&r| !rows[r][col].is_zero()) else {
            continue;
        };
        rows.swap(rank, pivot);
        let inv = Ratio::int(1).div(rows[rank][col])?;
        for cell in &mut rows[rank][col..] {
            *cell = cell.mul(inv)?;
        }
        let pivot_row = rows[rank][col..].to_vec();
        for row in rows.iter_mut().skip(rank + 1) {
            if row[col].is_zero() {
                continue;
            }
            let factor = row[col];
            for (cell, &p) in row[col..].iter_mut().zip(&pivot_row) {
                *cell = cell.sub(p.mul(factor)?)?;
            }
        }
        rank += 1;
        if rank == rows.len() {
            break;
        }
    }
    Some(rank)
}

/// Number of **clusters** of the net: equivalence classes of places and
/// transitions under the closure of "p is an input place of t". Clusters
/// are the units in which free-choice conflicts are resolved; their count
/// is the right-hand side of the rank theorem. Only nodes carrying at
/// least one arc are counted, matching [`connected_components`].
pub fn cluster_count(net: &PetriNet) -> usize {
    let p = net.place_count();
    let n = p + net.transition_count();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let mut has_arc = vec![false; n];
    for t in net.transitions() {
        for &q in net.preset(t) {
            let (ra, rb) = (
                find(&mut parent, q.index()),
                find(&mut parent, p + t.index()),
            );
            if ra != rb {
                parent[ra] = rb;
            }
            has_arc[q.index()] = true;
        }
        if !net.preset(t).is_empty() || !net.postset(t).is_empty() {
            has_arc[p + t.index()] = true;
        }
        for &q in net.postset(t) {
            has_arc[q.index()] = true;
        }
    }
    let mut roots: Vec<usize> = (0..n)
        .filter(|&v| has_arc[v])
        .map(|v| find(&mut parent, v))
        .collect();
    roots.sort_unstable();
    roots.dedup();
    roots.len()
}

/// Structural net-class membership.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NetClass {
    /// Every transition has exactly one input and one output place (no
    /// concurrency; conflicts only).
    pub state_machine: bool,
    /// Every place has at most one producer and one consumer (no
    /// conflicts; concurrency only).
    pub marked_graph: bool,
    /// Every arc `(p, t)` satisfies `|p•| = 1` or `|•t| = 1`: choices are
    /// never controlled by concurrent context.
    pub free_choice: bool,
}

impl NetClass {
    /// A short human-readable summary, e.g. `"marked graph, free choice"`.
    pub fn describe(&self) -> String {
        let mut parts = Vec::new();
        if self.state_machine {
            parts.push("state machine");
        }
        if self.marked_graph {
            parts.push("marked graph");
        }
        if self.free_choice {
            parts.push("free choice");
        }
        if parts.is_empty() {
            parts.push("general place/transition net");
        }
        parts.join(", ")
    }
}

/// Classifies `net` into the classical structural net classes.
pub fn classify(net: &PetriNet) -> NetClass {
    let state_machine = net
        .transitions()
        .all(|t| net.preset(t).len() == 1 && net.postset(t).len() == 1);
    let marked_graph = net
        .places()
        .all(|p| net.place_preset(p).len() <= 1 && net.place_postset(p).len() <= 1);
    let free_choice = net.places().all(|p| {
        net.place_postset(p).len() <= 1
            || net
                .place_postset(p)
                .iter()
                .all(|&t| net.preset(t).len() == 1)
    });
    NetClass {
        state_machine,
        marked_graph,
        free_choice,
    }
}

/// Number of weakly connected components of the net's bipartite graph,
/// counting only places/transitions that carry at least one arc. A net
/// whose behaviour splits into several disconnected components usually
/// indicates a specification mistake.
pub fn connected_components(net: &PetriNet) -> usize {
    let p = net.place_count();
    let n = p + net.transition_count();
    let mut parent: Vec<usize> = (0..n).collect();
    fn find(parent: &mut [usize], mut x: usize) -> usize {
        while parent[x] != x {
            parent[x] = parent[parent[x]];
            x = parent[x];
        }
        x
    }
    let union = |parent: &mut Vec<usize>, a: usize, b: usize| {
        let (ra, rb) = (find(parent, a), find(parent, b));
        if ra != rb {
            parent[ra] = rb;
        }
    };
    let mut has_arc = vec![false; n];
    for t in net.transitions() {
        for &q in net.preset(t) {
            union(&mut parent, q.index(), p + t.index());
            has_arc[q.index()] = true;
            has_arc[p + t.index()] = true;
        }
        for &q in net.postset(t) {
            union(&mut parent, q.index(), p + t.index());
            has_arc[q.index()] = true;
            has_arc[p + t.index()] = true;
        }
    }
    let mut roots: Vec<usize> = (0..n)
        .filter(|&v| has_arc[v])
        .map(|v| find(&mut parent, v))
        .collect();
    roots.sort_unstable();
    roots.dedup();
    roots.len()
}

/// Places that duplicate an earlier place: identical preset, postset (as
/// sets) and initial marking. Structurally redundant — they double the
/// safety bookkeeping without changing behaviour. Returns `(duplicate,
/// original)` pairs.
pub fn duplicate_places(net: &PetriNet) -> Vec<(PlaceId, PlaceId)> {
    use std::collections::HashMap;
    let mut seen: HashMap<(Vec<TransitionId>, Vec<TransitionId>, bool), PlaceId> = HashMap::new();
    let mut dups = Vec::new();
    for p in net.places() {
        let mut pre: Vec<TransitionId> = net.place_preset(p).to_vec();
        let mut post: Vec<TransitionId> = net.place_postset(p).to_vec();
        if pre.is_empty() && post.is_empty() {
            continue;
        }
        pre.sort_unstable();
        pre.dedup();
        post.sort_unstable();
        post.dedup();
        let key = (pre, post, net.initial_marking().contains(p));
        match seen.get(&key) {
            Some(&original) => dups.push((p, original)),
            None => {
                seen.insert(key, p);
            }
        }
    }
    dups
}

/// The structural well-formedness rules, reported exhaustively: every
/// transition needs a non-empty preset (else it is permanently enabled and
/// the behaviour unbounded), and a net with transitions needs a non-empty
/// initial marking. [`PetriNet::validate`] returns the first of these;
/// the STG linter reports them all with source spans.
pub fn validation_errors(net: &PetriNet) -> Vec<NetError> {
    let mut errors = Vec::new();
    for t in net.transitions() {
        if net.preset(t).is_empty() {
            errors.push(NetError::EmptyPreset {
                transition: t,
                name: net.transition_name(t).to_owned(),
            });
        }
    }
    if net.transition_count() > 0 && net.initial_marking().is_empty() {
        errors.push(NetError::EmptyInitialMarking);
    }
    errors
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The two-place cycle `p0 → t0 → p1 → t1 → p0`, one token on `p0`.
    fn cycle() -> PetriNet {
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let t0 = net.add_transition("t0");
        let t1 = net.add_transition("t1");
        net.add_arc_pt(p0, t0);
        net.add_arc_tp(t0, p1);
        net.add_arc_pt(p1, t1);
        net.add_arc_tp(t1, p0);
        net.mark_initially(p0);
        net
    }

    #[test]
    fn incidence_entries() {
        let net = cycle();
        let inc = Incidence::of(&net);
        assert_eq!(inc.entry(PlaceId(0), TransitionId(0)), -1);
        assert_eq!(inc.entry(PlaceId(1), TransitionId(0)), 1);
        assert_eq!(inc.entry(PlaceId(0), TransitionId(1)), 1);
        assert_eq!(inc.entry(PlaceId(1), TransitionId(1)), -1);
    }

    #[test]
    fn self_loop_cancels_in_incidence() {
        let mut net = PetriNet::new();
        let p = net.add_place("p");
        let t = net.add_transition("t");
        net.add_arc_pt(p, t);
        net.add_arc_tp(t, p);
        let inc = Incidence::of(&net);
        assert_eq!(inc.entry(p, t), 0);
    }

    #[test]
    fn cycle_invariants() {
        let net = cycle();
        let inc = Incidence::of(&net);
        let p_basis = p_invariant_basis(&inc).expect("exact");
        // One P-invariant: y = (1, 1).
        assert_eq!(p_basis, vec![vec![1, 1]]);
        let t_basis = t_invariant_basis(&inc).expect("exact");
        // One T-invariant: x = (1, 1).
        assert_eq!(t_basis, vec![vec![1, 1]]);
        assert_eq!(non_repeatable_transitions(&inc).expect("exact"), vec![]);
    }

    #[test]
    fn acyclic_net_has_no_t_invariant() {
        // p0 → t0 → p1: t0 fires exactly once.
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let t0 = net.add_transition("t0");
        net.add_arc_pt(p0, t0);
        net.add_arc_tp(t0, p1);
        net.mark_initially(p0);
        let inc = Incidence::of(&net);
        assert_eq!(
            t_invariant_basis(&inc).expect("exact"),
            Vec::<Vec<i64>>::new()
        );
        assert_eq!(
            non_repeatable_transitions(&inc).expect("exact"),
            vec![TransitionId(0)]
        );
        // But it still has the conservation P-invariant (1, 1).
        assert_eq!(p_invariant_basis(&inc).expect("exact"), vec![vec![1, 1]]);
    }

    #[test]
    fn nullspace_of_zero_matrix_is_identity() {
        let rows = vec![vec![Ratio::ZERO, Ratio::ZERO]];
        let basis = nullspace(rows, 2).expect("exact");
        assert_eq!(basis, vec![vec![1, 0], vec![0, 1]]);
    }

    #[test]
    fn certificate_covers_cycle() {
        let net = cycle();
        let cert = certify_one_safe(&net);
        assert!(cert.certified);
        assert_eq!(cert.invariants, vec![vec![PlaceId(0), PlaceId(1)]]);
        assert!(cert.uncovered().is_empty());
        // Token confined to one of two places: bound of 2 states.
        assert_eq!(structural_state_bound(&net, &cert), Some(2));
    }

    #[test]
    fn certificate_rejects_two_token_cycle() {
        let mut net = cycle();
        net.mark_initially(PlaceId(1));
        let cert = certify_one_safe(&net);
        assert!(!cert.certified);
        assert_eq!(cert.uncovered(), vec![PlaceId(0), PlaceId(1)]);
    }

    #[test]
    fn certificate_handles_fork_join() {
        // t0 forks into p1 ∥ p2, t3 joins them back into p0.
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let p2 = net.add_place("p2");
        let fork = net.add_transition("fork");
        let join = net.add_transition("join");
        net.add_arc_pt(p0, fork);
        net.add_arc_tp(fork, p1);
        net.add_arc_tp(fork, p2);
        net.add_arc_pt(p1, join);
        net.add_arc_pt(p2, join);
        net.add_arc_tp(join, p0);
        net.mark_initially(p0);
        let cert = certify_one_safe(&net);
        // {p0, p1} and {p0, p2} are unary invariants with one token each.
        assert!(cert.certified);
        assert_eq!(cert.invariants.len(), 2);
    }

    #[test]
    fn self_loop_place_is_trivially_covered() {
        let mut net = PetriNet::new();
        let p = net.add_place("bus");
        let t = net.add_transition("t");
        net.add_arc_pt(p, t);
        net.add_arc_tp(t, p);
        net.mark_initially(p);
        let cert = certify_one_safe(&net);
        assert!(cert.certified);
        assert_eq!(cert.invariants, vec![vec![p]]);
    }

    #[test]
    fn unmarked_siphon_found_and_empty_on_live_cycle() {
        // Live cycle: no unmarked siphon survives the fixpoint.
        assert_eq!(unmarked_siphon(&cycle()), vec![]);

        // Unmarked cycle attached to a marked one: {p2, p3} is a siphon.
        let mut net = cycle();
        let p2 = net.add_place("p2");
        let p3 = net.add_place("p3");
        let t2 = net.add_transition("t2");
        let t3 = net.add_transition("t3");
        net.add_arc_pt(p2, t2);
        net.add_arc_tp(t2, p3);
        net.add_arc_pt(p3, t3);
        net.add_arc_tp(t3, p2);
        let siphon = unmarked_siphon(&net);
        assert_eq!(siphon, vec![p2, p3]);
        assert_eq!(dead_by_siphon(&net, &siphon), vec![t2, t3]);
    }

    #[test]
    fn trap_found_on_cycle_and_drained_by_sink() {
        // The full cycle is a trap (and a siphon): tokens circulate forever.
        let net = cycle();
        let all: Vec<PlaceId> = net.places().collect();
        assert_eq!(max_trap_within(&net, &all), vec![PlaceId(0), PlaceId(1)]);

        // Adding a token-killing transition t2: p0 → ∅ drains the trap:
        // p0 escapes (t2 produces nothing back), then p1 (t1 feeds only
        // the escaped p0).
        let mut net = cycle();
        let t2 = net.add_transition("t2");
        net.add_arc_pt(PlaceId(0), t2);
        let all: Vec<PlaceId> = net.places().collect();
        assert_eq!(max_trap_within(&net, &all), vec![]);
    }

    #[test]
    fn minimal_siphons_of_cycle_and_chain() {
        let siphons = minimal_siphons(&cycle(), SIPHON_ENUM_BUDGET).expect("in budget");
        assert_eq!(siphons, vec![vec![PlaceId(0), PlaceId(1)]]);

        // p0 → t0 → p1: the sourceless {p0} is the only minimal siphon.
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let t0 = net.add_transition("t0");
        net.add_arc_pt(p0, t0);
        net.add_arc_tp(t0, p1);
        net.mark_initially(p0);
        let siphons = minimal_siphons(&net, SIPHON_ENUM_BUDGET).expect("in budget");
        assert_eq!(siphons, vec![vec![p0]]);

        // A zero budget yields no answer rather than a truncated list.
        assert_eq!(minimal_siphons(&cycle(), 0), None);
    }

    #[test]
    fn minimal_siphons_filters_non_minimal_closures() {
        // Fork-join: {p0, p1}, {p0, p2} are minimal; {p0, p1, p2} is not.
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let p2 = net.add_place("p2");
        let fork = net.add_transition("fork");
        let join = net.add_transition("join");
        net.add_arc_pt(p0, fork);
        net.add_arc_tp(fork, p1);
        net.add_arc_tp(fork, p2);
        net.add_arc_pt(p1, join);
        net.add_arc_pt(p2, join);
        net.add_arc_tp(join, p0);
        net.mark_initially(p0);
        let siphons = minimal_siphons(&net, SIPHON_ENUM_BUDGET).expect("in budget");
        assert_eq!(siphons, vec![vec![p0, p1], vec![p0, p2]]);
    }

    #[test]
    fn live_cycle_is_certified_deadlock_free() {
        // A single marked cycle is a marked graph: the linear fast path
        // answers, not the siphon enumeration.
        let net = cycle();
        let cert = certify_one_safe(&net);
        assert_eq!(
            certify_deadlock(&net, &cert),
            DeadlockCertificate::DeadlockFreeMarkedGraph
        );
        assert!(certify_deadlock(&net, &cert).is_deadlock_free());
    }

    #[test]
    fn marked_graph_fast_path_beats_the_siphon_budget() {
        // A 64-stage pipeline of chained cycles has one minimal siphon per
        // simple cycle — far beyond SIPHON_ENUM_BUDGET enumeration on the
        // non-MG encoding of larger nets, and historically `Unknown` here.
        // The marked-graph path certifies it in linear time.
        let mut net = PetriNet::new();
        let stages = 64;
        let mut fwd_places = Vec::new();
        let transitions: Vec<_> = (0..=stages)
            .map(|i| net.add_transition(format!("t{i}")))
            .collect();
        for i in 0..stages {
            // Request/acknowledge place pair between neighbouring stages:
            // forward place unmarked, backward place marked (a Muller
            // pipeline's empty initial state).
            let f = net.add_place(format!("f{i}"));
            let b = net.add_place(format!("b{i}"));
            net.add_arc_tp(transitions[i], f);
            net.add_arc_pt(f, transitions[i + 1]);
            net.add_arc_tp(transitions[i + 1], b);
            net.add_arc_pt(b, transitions[i]);
            net.mark_initially(b);
            fwd_places.push(f);
        }
        let cert = certify_one_safe(&net);
        assert_eq!(
            certify_deadlock(&net, &cert),
            DeadlockCertificate::DeadlockFreeMarkedGraph
        );

        // An unmarked stage cycle next to a live marked one: the marked
        // cycle's T-invariant blocks the certified-deadlock witness (the
        // net never terminates), and the fast path names the unmarked
        // two-place cycle as the failing siphon.
        let mut broken = PetriNet::new();
        let t0 = broken.add_transition("t0");
        let t1 = broken.add_transition("t1");
        let f = broken.add_place("f");
        let b = broken.add_place("b");
        broken.add_arc_tp(t0, f);
        broken.add_arc_pt(f, t1);
        broken.add_arc_tp(t1, b);
        broken.add_arc_pt(b, t0);
        let u0 = broken.add_transition("u0");
        let u1 = broken.add_transition("u1");
        let q0 = broken.add_place("q0");
        let q1 = broken.add_place("q1");
        broken.add_arc_tp(u0, q0);
        broken.add_arc_pt(q0, u1);
        broken.add_arc_tp(u1, q1);
        broken.add_arc_pt(q1, u0);
        broken.mark_initially(q0);
        let cert = certify_one_safe(&broken);
        assert_eq!(certified_deadlock_witness(&broken, &cert), None);
        assert_eq!(
            certify_deadlock(&broken, &cert),
            DeadlockCertificate::SiphonWithoutMarkedTrap { siphon: vec![f, b] }
        );
    }

    #[test]
    fn terminating_chain_fails_the_siphon_trap_property() {
        // p0 → t0 → p1 deadlocks after one firing; the sourceless siphon
        // {p0} has an empty maximal trap, so only a warning-grade verdict.
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let t0 = net.add_transition("t0");
        net.add_arc_pt(p0, t0);
        net.add_arc_tp(t0, p1);
        net.mark_initially(p0);
        let cert = certify_one_safe(&net);
        assert_eq!(
            certify_deadlock(&net, &cert),
            DeadlockCertificate::SiphonWithoutMarkedTrap { siphon: vec![p0] }
        );
    }

    #[test]
    fn dead_siphon_plus_termination_certifies_a_deadlock() {
        // Marked chain p0 → t → p1 beside an unmarked cycle q0/q1: the
        // cycle is a never-marked siphon, the chain terminates — a dead
        // marking is certain.
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let t = net.add_transition("t");
        net.add_arc_pt(p0, t);
        net.add_arc_tp(t, p1);
        net.mark_initially(p0);
        let q0 = net.add_place("q0");
        let q1 = net.add_place("q1");
        let u0 = net.add_transition("u0");
        let u1 = net.add_transition("u1");
        net.add_arc_pt(q0, u0);
        net.add_arc_tp(u0, q1);
        net.add_arc_pt(q1, u1);
        net.add_arc_tp(u1, q0);
        let cert = certify_one_safe(&net);
        assert!(cert.certified);
        assert_eq!(certified_deadlock_witness(&net, &cert), Some(vec![q0, q1]));
        assert_eq!(
            certify_deadlock(&net, &cert),
            DeadlockCertificate::CertifiedDeadlock {
                siphon: vec![q0, q1]
            }
        );
    }

    #[test]
    fn marked_trap_blocks_the_deadlock_certificate() {
        // Same net, but marking q0 turns the cycle into a marked trap:
        // nothing is certifiable as deadlocking, and the siphon–trap
        // property now holds for every minimal siphon.
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let t = net.add_transition("t");
        net.add_arc_pt(p0, t);
        net.add_arc_tp(t, p1);
        net.mark_initially(p0);
        let q0 = net.add_place("q0");
        let q1 = net.add_place("q1");
        let u0 = net.add_transition("u0");
        let u1 = net.add_transition("u1");
        net.add_arc_pt(q0, u0);
        net.add_arc_tp(u0, q1);
        net.add_arc_pt(q1, u1);
        net.add_arc_tp(u1, q0);
        net.mark_initially(q0);
        let cert = certify_one_safe(&net);
        assert_eq!(certified_deadlock_witness(&net, &cert), None);
        // {p0} still fails the siphon–trap property (the chain genuinely
        // terminates), so the verdict degrades to the warning, not to
        // deadlock-freedom.
        assert_eq!(
            certify_deadlock(&net, &cert),
            DeadlockCertificate::SiphonWithoutMarkedTrap { siphon: vec![p0] }
        );
    }

    #[test]
    fn empty_preset_transition_means_no_dead_marking() {
        let mut net = PetriNet::new();
        let p = net.add_place("p");
        net.add_transition("always");
        let t = net.add_transition("t");
        net.add_arc_pt(p, t);
        net.mark_initially(p);
        let cert = certify_one_safe(&net);
        assert_eq!(
            certify_deadlock(&net, &cert),
            DeadlockCertificate::DeadlockFree { siphons_checked: 0 }
        );
    }

    #[test]
    fn transitionless_net_has_no_verdict() {
        let mut net = PetriNet::new();
        net.add_place("p");
        let cert = certify_one_safe(&net);
        assert_eq!(certify_deadlock(&net, &cert), DeadlockCertificate::Unknown);
    }

    #[test]
    fn rank_theorem_holds_on_cycle_and_fails_with_kill_transition() {
        let check = rank_check(&cycle()).expect("exact");
        assert_eq!(
            check,
            RankCheck {
                rank: 1,
                clusters: 2
            }
        );
        assert!(check.holds());

        // The token-killing t2: p0 → ∅ raises the rank without adding a
        // cluster: no marking makes this net live and bounded.
        let mut net = cycle();
        let t2 = net.add_transition("t2");
        net.add_arc_pt(PlaceId(0), t2);
        let check = rank_check(&net).expect("exact");
        assert_eq!(
            check,
            RankCheck {
                rank: 2,
                clusters: 2
            }
        );
        assert!(!check.holds());
    }

    #[test]
    fn classify_cycle_is_all_classes() {
        let class = classify(&cycle());
        assert!(class.state_machine);
        assert!(class.marked_graph);
        assert!(class.free_choice);
        assert_eq!(class.describe(), "state machine, marked graph, free choice");
    }

    #[test]
    fn classify_non_free_choice() {
        // Shared place p0 feeds t0 and t1; t1 also needs p1 — asymmetric
        // choice, not free choice.
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let t0 = net.add_transition("t0");
        let t1 = net.add_transition("t1");
        net.add_arc_pt(p0, t0);
        net.add_arc_pt(p0, t1);
        net.add_arc_pt(p1, t1);
        net.mark_initially(p0);
        let class = classify(&net);
        assert!(!class.free_choice);
        assert!(!class.marked_graph);
        assert_eq!(class.describe(), "general place/transition net");
    }

    #[test]
    fn components_counted_without_isolated_places() {
        let mut net = cycle();
        net.add_place("isolated");
        assert_eq!(connected_components(&net), 1);
        // A second disconnected cycle.
        let p2 = net.add_place("p2");
        let t2 = net.add_transition("t2");
        net.add_arc_pt(p2, t2);
        net.add_arc_tp(t2, p2);
        assert_eq!(connected_components(&net), 2);
    }

    #[test]
    fn duplicate_place_detection() {
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let t0 = net.add_transition("t0");
        let t1 = net.add_transition("t1");
        net.add_arc_pt(p0, t0);
        net.add_arc_tp(t1, p0);
        net.add_arc_pt(p1, t0);
        net.add_arc_tp(t1, p1);
        assert_eq!(duplicate_places(&net), vec![(p1, p0)]);
    }

    #[test]
    fn validation_errors_reported_exhaustively() {
        let mut net = PetriNet::new();
        let p = net.add_place("p");
        let t0 = net.add_transition("t0");
        let t1 = net.add_transition("t1");
        net.add_arc_tp(t0, p);
        net.add_arc_tp(t1, p);
        let errors = validation_errors(&net);
        assert_eq!(errors.len(), 3); // two empty presets + empty marking
        assert!(validation_errors(&cycle()).is_empty());
    }

    #[test]
    fn state_bound_with_uncovered_places() {
        // Cycle plus an uncovered 2-token cycle: bound = 2 · 2^2.
        let mut net = cycle();
        let p2 = net.add_place("p2");
        let p3 = net.add_place("p3");
        let t2 = net.add_transition("t2");
        let t3 = net.add_transition("t3");
        net.add_arc_pt(p2, t2);
        net.add_arc_tp(t2, p3);
        net.add_arc_pt(p3, t3);
        net.add_arc_tp(t3, p2);
        net.mark_initially(p2);
        net.mark_initially(p3);
        let cert = certify_one_safe(&net);
        assert!(!cert.certified);
        assert_eq!(structural_state_bound(&net, &cert), Some(8));
    }
}
