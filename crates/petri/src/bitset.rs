//! A compact, growable bit set used throughout the workspace.
//!
//! Markings of 1-safe Petri nets, causal-predecessor sets of unfolding nodes
//! and concurrency rows are all sets of small dense integer ids, so a packed
//! `u64`-block bit set is the natural representation. The type is deliberately
//! minimal: it stores bits, supports the set algebra the algorithms need, and
//! nothing else.

use std::fmt;

const BITS: usize = 64;

/// A growable set of `usize` ids packed into 64-bit blocks.
///
/// # Examples
///
/// ```
/// use si_petri::BitSet;
///
/// let mut set = BitSet::new();
/// set.insert(3);
/// set.insert(200);
/// assert!(set.contains(3));
/// assert!(!set.contains(4));
/// assert_eq!(set.len(), 2);
/// ```
#[derive(Clone, Default)]
pub struct BitSet {
    blocks: Vec<u64>,
}

// Equality and hashing ignore trailing zero blocks, so a set that grew and
// shrank compares equal to a freshly built one.
impl PartialEq for BitSet {
    fn eq(&self, other: &Self) -> bool {
        self.trimmed() == other.trimmed()
    }
}

impl Eq for BitSet {}

impl std::hash::Hash for BitSet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.trimmed().hash(state);
    }
}

impl BitSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        BitSet { blocks: Vec::new() }
    }

    /// Creates an empty set pre-sized to hold ids below `capacity` without
    /// reallocation.
    pub fn with_capacity(capacity: usize) -> Self {
        BitSet {
            blocks: vec![0; capacity.div_ceil(BITS)],
        }
    }

    /// Number of ids currently in the set.
    pub fn len(&self) -> usize {
        self.blocks.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Returns `true` if no id is in the set.
    pub fn is_empty(&self) -> bool {
        self.blocks.iter().all(|&b| b == 0)
    }

    /// Inserts `id`, growing the backing storage if needed. Returns `true`
    /// if the id was not already present.
    pub fn insert(&mut self, id: usize) -> bool {
        let block = id / BITS;
        if block >= self.blocks.len() {
            self.blocks.resize(block + 1, 0);
        }
        let mask = 1u64 << (id % BITS);
        let fresh = self.blocks[block] & mask == 0;
        self.blocks[block] |= mask;
        fresh
    }

    /// Removes `id`. Returns `true` if it was present.
    pub fn remove(&mut self, id: usize) -> bool {
        let block = id / BITS;
        if block >= self.blocks.len() {
            return false;
        }
        let mask = 1u64 << (id % BITS);
        let present = self.blocks[block] & mask != 0;
        self.blocks[block] &= !mask;
        present
    }

    /// Returns `true` if `id` is in the set.
    pub fn contains(&self, id: usize) -> bool {
        let block = id / BITS;
        block < self.blocks.len() && self.blocks[block] & (1u64 << (id % BITS)) != 0
    }

    /// Removes all ids, keeping the allocation.
    pub fn clear(&mut self) {
        self.blocks.iter_mut().for_each(|b| *b = 0);
    }

    /// In-place union: `self ← self ∪ other`.
    pub fn union_with(&mut self, other: &BitSet) {
        if other.blocks.len() > self.blocks.len() {
            self.blocks.resize(other.blocks.len(), 0);
        }
        for (dst, src) in self.blocks.iter_mut().zip(&other.blocks) {
            *dst |= *src;
        }
    }

    /// In-place intersection: `self ← self ∩ other`.
    pub fn intersect_with(&mut self, other: &BitSet) {
        for (i, dst) in self.blocks.iter_mut().enumerate() {
            *dst &= other.blocks.get(i).copied().unwrap_or(0);
        }
    }

    /// In-place difference: `self ← self \ other`.
    pub fn difference_with(&mut self, other: &BitSet) {
        for (dst, src) in self.blocks.iter_mut().zip(&other.blocks) {
            *dst &= !*src;
        }
    }

    /// Returns `true` if the two sets share at least one id.
    pub fn intersects(&self, other: &BitSet) -> bool {
        self.blocks
            .iter()
            .zip(&other.blocks)
            .any(|(a, b)| a & b != 0)
    }

    /// Returns `true` if every id of `self` is also in `other`.
    pub fn is_subset(&self, other: &BitSet) -> bool {
        self.blocks
            .iter()
            .enumerate()
            .all(|(i, a)| a & !other.blocks.get(i).copied().unwrap_or(0) == 0)
    }

    /// Iterates over the ids in ascending order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            block: 0,
            bits: self.blocks.first().copied().unwrap_or(0),
        }
    }

    /// Smallest id in the set, if any.
    pub fn first(&self) -> Option<usize> {
        self.iter().next()
    }

    /// The blocks with trailing zeros stripped (the canonical form used by
    /// equality and hashing).
    fn trimmed(&self) -> &[u64] {
        let mut len = self.blocks.len();
        while len > 0 && self.blocks[len - 1] == 0 {
            len -= 1;
        }
        &self.blocks[..len]
    }
}

impl FromIterator<usize> for BitSet {
    fn from_iter<I: IntoIterator<Item = usize>>(iter: I) -> Self {
        let mut set = BitSet::new();
        for id in iter {
            set.insert(id);
        }
        set
    }
}

impl Extend<usize> for BitSet {
    fn extend<I: IntoIterator<Item = usize>>(&mut self, iter: I) {
        for id in iter {
            self.insert(id);
        }
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

/// Iterator over the ids of a [`BitSet`] in ascending order.
pub struct Iter<'a> {
    set: &'a BitSet,
    block: usize,
    bits: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        loop {
            if self.bits != 0 {
                let bit = self.bits.trailing_zeros() as usize;
                self.bits &= self.bits - 1;
                return Some(self.block * BITS + bit);
            }
            self.block += 1;
            if self.block >= self.set.blocks.len() {
                return None;
            }
            self.bits = self.set.blocks[self.block];
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_contains_remove() {
        let mut s = BitSet::new();
        assert!(s.insert(5));
        assert!(!s.insert(5));
        assert!(s.contains(5));
        assert!(!s.contains(6));
        assert!(s.remove(5));
        assert!(!s.remove(5));
        assert!(s.is_empty());
    }

    #[test]
    fn grows_on_demand() {
        let mut s = BitSet::new();
        s.insert(1000);
        assert!(s.contains(1000));
        assert!(!s.contains(999));
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn union_and_intersection() {
        let a: BitSet = [1, 2, 3, 100].into_iter().collect();
        let b: BitSet = [3, 4, 100].into_iter().collect();
        let mut u = a.clone();
        u.union_with(&b);
        assert_eq!(u.iter().collect::<Vec<_>>(), vec![1, 2, 3, 4, 100]);
        let mut i = a.clone();
        i.intersect_with(&b);
        assert_eq!(i.iter().collect::<Vec<_>>(), vec![3, 100]);
    }

    #[test]
    fn difference() {
        let a: BitSet = [1, 2, 3].into_iter().collect();
        let b: BitSet = [2].into_iter().collect();
        let mut d = a.clone();
        d.difference_with(&b);
        assert_eq!(d.iter().collect::<Vec<_>>(), vec![1, 3]);
    }

    #[test]
    fn subset_and_intersects() {
        let a: BitSet = [1, 2].into_iter().collect();
        let b: BitSet = [1, 2, 3].into_iter().collect();
        let c: BitSet = [4].into_iter().collect();
        assert!(a.is_subset(&b));
        assert!(!b.is_subset(&a));
        assert!(a.intersects(&b));
        assert!(!a.intersects(&c));
        // Empty set is a subset of everything.
        assert!(BitSet::new().is_subset(&a));
        assert!(a.is_subset(&a));
    }

    #[test]
    fn iter_ascending_across_blocks() {
        let ids = [0, 63, 64, 65, 127, 128, 300];
        let s: BitSet = ids.into_iter().collect();
        assert_eq!(s.iter().collect::<Vec<_>>(), ids.to_vec());
        assert_eq!(s.first(), Some(0));
    }

    #[test]
    fn subset_with_shorter_other() {
        let a: BitSet = [200].into_iter().collect();
        let b: BitSet = [1].into_iter().collect();
        assert!(!a.is_subset(&b));
    }

    #[test]
    fn debug_not_empty() {
        let s: BitSet = [1].into_iter().collect();
        assert_eq!(format!("{s:?}"), "{1}");
    }

    #[test]
    fn eq_and_hash_ignore_trailing_blocks() {
        use std::collections::HashSet;
        let mut grown: BitSet = [1].into_iter().collect();
        grown.insert(500);
        grown.remove(500);
        let fresh: BitSet = [1].into_iter().collect();
        assert_eq!(grown, fresh);
        let mut set = HashSet::new();
        set.insert(grown);
        assert!(set.contains(&fresh));
    }
}
