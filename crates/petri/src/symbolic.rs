//! Symbolic (BDD-based) reachability for 1-safe nets.
//!
//! The explicit [`ReachabilityGraph`](crate::ReachabilityGraph) materialises
//! one marking at a time and hits its state budget around a few million
//! states. This module encodes markings as BDD variables — one variable per
//! place — and computes the reachable set as a fixpoint of per-transition
//! image computations ([`SymbolicReach::explore`]), so the cost tracks the
//! *diagram size* of the state set instead of its cardinality: concurrent
//! sections multiply the state count but only add to the diagram.
//!
//! The encoding is deliberately wider than bare markings: callers may attach
//! **auxiliary state variables** updated by transitions
//! ([`SymbolicOptions::aux_vars`] / [`AuxAction`]). The state-graph layer
//! uses this to carry one binary-code bit per signal, giving a relation over
//! `(marking, code)` pairs whose projections answer every question SG-based
//! synthesis asks — without ever enumerating states.
//!
//! Transitions are kept as **partitioned relations**: each transition owns a
//! small guard cube (preset places marked, aux preconditions), a
//! quantification cube (the variables it touches) and a result cube (the
//! values it writes). An image step is one relational product plus one cube
//! conjunction per transition, so locality in the net translates directly
//! into cheap BDD operations.
//!
//! ## Example
//!
//! ```
//! use si_petri::{PetriNet, SymbolicOptions, SymbolicReach};
//!
//! # fn main() -> Result<(), si_petri::NetError> {
//! let mut net = PetriNet::new();
//! let p0 = net.add_place("p0");
//! let p1 = net.add_place("p1");
//! let t = net.add_transition("t");
//! net.add_arc_pt(p0, t);
//! net.add_arc_tp(t, p1);
//! net.mark_initially(p0);
//! let reach = SymbolicReach::explore(&net, &SymbolicOptions::default())?;
//! assert_eq!(reach.state_count(), 2);
//! # Ok(())
//! # }
//! ```

use std::time::{Duration, Instant};

use si_bdd::{AutoReorder, Bdd, BddManager, OpCounts, ReentrantConfig, ReorderPolicy};

use crate::error::NetError;
use crate::marking::Marking;
use crate::net::{PetriNet, PlaceId, TransitionId};

/// One auxiliary-variable effect of a transition: firing requires the
/// variable to hold `from` and rewrites it to `to`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AuxAction {
    /// The auxiliary variable (index into `0..aux_vars`).
    pub var: usize,
    /// Required value before the firing (a guard on the relation).
    pub from: bool,
    /// Value after the firing.
    pub to: bool,
}

/// Options for [`SymbolicReach::explore`].
#[derive(Debug, Clone)]
pub struct SymbolicOptions {
    /// Number of auxiliary state variables tracked alongside the places.
    pub aux_vars: usize,
    /// Initial values of the auxiliary variables (`len == aux_vars`).
    pub aux_initial: Vec<bool>,
    /// Per-transition auxiliary effects, indexed by transition id. May be
    /// empty (no transition touches the auxiliary state) or have exactly one
    /// entry per transition.
    pub aux_actions: Vec<Vec<AuxAction>>,
    /// Variable order over the *logical* variables — places first
    /// (`0..place_count`), then auxiliaries (`place_count..place_count +
    /// aux_vars`): `order[level]` is the logical variable at that level.
    /// `None` uses the natural order. See
    /// [`si_bdd::order_from_adjacency`] for a good seed.
    pub order: Option<Vec<usize>>,
    /// Transitions excluded from the transition relation. They still get
    /// enabling sets, so callers can ask "where *would* this fire" over the
    /// restricted reachable set — the state-graph layer uses this to infer
    /// initial signal values.
    pub frozen: Vec<TransitionId>,
    /// Upper bound on **live** BDD nodes across the fixpoint: checked
    /// between iterations *after* garbage collection (and, when
    /// [`reorder`](Self::reorder) allows, after a last-resort sift), so
    /// only genuinely needed nodes count. Exceeded means
    /// [`NetError::NodeBudgetExceeded`] instead of thrashing.
    pub node_budget: usize,
    /// Dynamic variable reordering policy: `Off` keeps the static order,
    /// `Sift` reorders only as a last resort under budget pressure, `Auto`
    /// reorders proactively on pool growth (CUDD-style doubling
    /// thresholds). All policies produce the same reachable set.
    pub reorder: ReorderPolicy,
    /// Pool size (live + not-yet-collected nodes) above which garbage is
    /// collected between fixpoint iterations. `0` collects every
    /// iteration — useful for stress tests.
    pub gc_threshold: usize,
    /// Initial live-node trigger of the `Auto` reordering policy,
    /// evaluated at the checkpoints where a collection fired (pool past
    /// [`gc_threshold`](Self::gc_threshold) or the node budget) — the only
    /// points where the live size is exact. Forcing a collection every
    /// iteration just to test this trigger would cost more than sifting
    /// saves, so under a large `gc_threshold` the first sift can happen
    /// well after the pool passes this value.
    pub reorder_threshold: usize,
    /// Skip the per-iteration symbolic 1-safety check. Only set this when
    /// 1-safety is already **proven** — e.g. by a structural certificate
    /// from [`crate::structural::certify_one_safe`]. With the certificate
    /// in hand the per-transition `fresh_places ∧ reachable` tests are
    /// dead weight; without it, skipping turns an [`NetError::Unsafe`]
    /// diagnosis into a silently wrong reachable set.
    pub assume_one_safe: bool,
    /// Worker threads for the BDD kernels themselves (`None` = 1, serial).
    /// Affects wall-clock and node ids only: the reachable set, enabling
    /// sets, state counts and [`SymbolicStats::ops`] are identical at any
    /// thread count.
    pub bdd_threads: Option<usize>,
    /// Pool size below which operations stay serial even with
    /// `bdd_threads > 1` (`None` = the manager default): forking workers
    /// over a small diagram costs more than it saves. Tests set `Some(0)`
    /// to force the parallel path on small nets.
    pub bdd_parallel_floor: Option<usize>,
    /// Arm the manager's reentrant maintenance: long-running kernels poll
    /// the live-node budget at recursion checkpoints and run a GC (plus a
    /// sift, under the `Sift`/`Auto` policies) *mid-operation* instead of
    /// only between fixpoint iterations — so one monster `and_exists`
    /// cannot blow the budget before the policy gets a look. The
    /// between-iteration budget check is unchanged.
    pub reentrant: bool,
}

impl Default for SymbolicOptions {
    fn default() -> Self {
        SymbolicOptions {
            aux_vars: 0,
            aux_initial: Vec::new(),
            aux_actions: Vec::new(),
            order: None,
            frozen: Vec::new(),
            node_budget: 16_000_000,
            reorder: ReorderPolicy::Off,
            gc_threshold: 1 << 20,
            reorder_threshold: AutoReorder::DEFAULT_THRESHOLD,
            assume_one_safe: false,
            bdd_threads: None,
            bdd_parallel_floor: None,
            reentrant: true,
        }
    }
}

/// Collection/reordering telemetry of one [`SymbolicReach::explore`] run.
#[derive(Debug, Clone, Default)]
pub struct SymbolicStats {
    /// Garbage-collection passes run between fixpoint iterations.
    pub gc_runs: usize,
    /// Total nodes reclaimed by those passes.
    pub gc_collected: usize,
    /// Sifting passes run (auto-triggered or budget-pressure).
    pub reorder_runs: usize,
    /// Wall-clock time spent collecting.
    pub gc_time: Duration,
    /// Wall-clock time spent sifting.
    pub reorder_time: Duration,
    /// Maximum pool size observed at the between-iteration checkpoints,
    /// after any collection/reordering that round. Checkpoints where no
    /// collection fired still count garbage, so with
    /// [`SymbolicOptions::gc_threshold`] `== 0` (collect every iteration)
    /// this is the exact live peak — the smallest
    /// [`SymbolicOptions::node_budget`] the run fits in.
    pub peak_live_nodes: usize,
    /// Deterministic operation counters: public `ite`/`exists`/`and_exists`
    /// calls issued by the run. Identical at any thread count and under any
    /// GC/reorder schedule — the perf proxy CI pins on a 1-CPU runner.
    pub ops: OpCounts,
    /// Reentrant mid-operation maintenance passes (GC/reorder at a kernel
    /// checkpoint). Schedule-dependent: do not pin.
    pub reentrant_maintenance: usize,
    /// Largest pool size sampled at kernel checkpoints or operation
    /// boundaries — visible even when the peak occurred *inside* one
    /// operation, which [`peak_live_nodes`](Self::peak_live_nodes) cannot
    /// see. Schedule-dependent: do not pin.
    pub peak_pool: usize,
}

/// Per-transition partitioned relation: everything an image step needs.
struct TransitionRelation {
    /// Guard: preset places marked ∧ aux preconditions.
    guard: Bdd,
    /// Quantification cube over the variables the firing rewrites.
    changed: Bdd,
    /// Values written: postset marked, consumed places cleared, aux results.
    result: Bdd,
    /// Postset places not in the preset — marked ones expose 1-safety
    /// violations.
    fresh_places: Vec<PlaceId>,
    /// Excluded from the relation ([`SymbolicOptions::frozen`]).
    frozen: bool,
}

/// The symbolically represented reachable state space of a 1-safe net:
/// the reachable set plus per-transition enabling sets, all over one BDD
/// manager whose variables are the places followed by the auxiliaries.
pub struct SymbolicReach {
    mgr: BddManager,
    reachable: Bdd,
    /// `enabling[t]` = reachable states whose *marking* enables `t`
    /// (auxiliary guards deliberately not applied — callers compare the two
    /// notions to detect guard violations).
    enabling: Vec<Bdd>,
    place_count: usize,
    aux_vars: usize,
    steps: usize,
    stats: SymbolicStats,
}

impl SymbolicReach {
    /// Computes the reachable set of `net` (plus auxiliary state) as a
    /// least fixpoint of the per-transition image relations.
    ///
    /// # Errors
    ///
    /// * [`NetError::Unsafe`] if a reachable firing would put a second
    ///   token on a place;
    /// * [`NetError::NodeBudgetExceeded`] if the *live* diagram still
    ///   exceeds [`SymbolicOptions::node_budget`] after garbage collection
    ///   (and, under the `Sift`/`Auto` policies, a last-resort reorder).
    ///
    /// # Panics
    ///
    /// Panics if the options are malformed: `aux_initial` or a non-empty
    /// `aux_actions` of the wrong length, an out-of-range [`AuxAction`]
    /// variable, or an `order` that is not a permutation of the logical
    /// variables.
    pub fn explore(net: &PetriNet, options: &SymbolicOptions) -> Result<Self, NetError> {
        let place_count = net.place_count();
        let aux_vars = options.aux_vars;
        let n = place_count + aux_vars;
        assert_eq!(
            options.aux_initial.len(),
            aux_vars,
            "aux_initial must cover every auxiliary variable"
        );
        assert!(
            options.aux_actions.is_empty() || options.aux_actions.len() == net.transition_count(),
            "aux_actions must be empty or cover every transition"
        );
        let order = options
            .order
            .clone()
            .unwrap_or_else(|| (0..n).collect::<Vec<_>>());
        assert_eq!(order.len(), n, "order must cover every logical variable");
        let mut mgr = BddManager::with_order(order);
        mgr.set_threads(options.bdd_threads.unwrap_or(1));
        if let Some(floor) = options.bdd_parallel_floor {
            mgr.set_parallel_floor(floor);
        }
        if options.reentrant {
            mgr.set_maintenance(Some(ReentrantConfig {
                live_limit: options.node_budget,
                reorder: options.reorder,
                max_growth: BddManager::DEFAULT_MAX_GROWTH,
            }));
        }

        // Initial state: one complete minterm over places and auxiliaries.
        let mut literals: Vec<(usize, bool)> = Vec::with_capacity(n);
        for p in net.places() {
            literals.push((p.index(), net.initial_marking().contains(p)));
        }
        for (k, &v) in options.aux_initial.iter().enumerate() {
            literals.push((place_count + k, v));
        }
        let init = mgr.cube(&literals);

        let relations = Self::build_relations(net, options, place_count, &mut mgr);
        // The relation cubes are needed live for the whole fixpoint: pin
        // them so the between-iteration collections cannot sweep them.
        for rel in &relations {
            for b in [rel.guard, rel.changed, rel.result] {
                mgr.protect(b);
            }
        }

        let mut auto = AutoReorder::new(options.reorder_threshold);
        let mut stats = SymbolicStats::default();
        let mut reachable = init;
        let mut frontier = init;
        // Reentrant maintenance can collect *mid-operation*, when the
        // manager protects only the interrupted operation's own operands.
        // Every loop-carried handle must therefore stay pinned by this
        // driver for as long as it is needed — not just across the
        // between-iteration checkpoint. Intermediates (`firing`, `freed`,
        // `image`) need no pin: whenever one is still needed it is an
        // operand of the operation in flight.
        mgr.protect(reachable);
        mgr.protect(frontier);
        let mut steps = 0usize;
        while !frontier.is_false() {
            steps += 1;
            let mut next = mgr.zero();
            for (ti, rel) in relations.iter().enumerate() {
                if rel.frozen {
                    continue;
                }
                let firing = mgr.and(frontier, rel.guard);
                if firing.is_false() {
                    continue;
                }
                // 1-safety: a postset place outside the preset must be free.
                // A structural certificate makes this test redundant.
                if !options.assume_one_safe {
                    for &p in &rel.fresh_places {
                        let occupied = mgr.var(p.index());
                        if !mgr.and(firing, occupied).is_false() {
                            return Err(NetError::Unsafe {
                                place: p,
                                name: net.place_name(p).to_owned(),
                                transition: TransitionId(ti as u32),
                            });
                        }
                    }
                }
                let freed = mgr.exists(firing, rel.changed);
                let image = mgr.and(freed, rel.result);
                let merged = mgr.or(next, image);
                mgr.protect(merged);
                mgr.unprotect(next);
                next = merged;
            }
            let advanced = mgr.diff(next, reachable);
            mgr.protect(advanced);
            mgr.unprotect(frontier);
            frontier = advanced;
            let grown = mgr.or(reachable, frontier);
            mgr.protect(grown);
            mgr.unprotect(reachable);
            reachable = grown;
            mgr.unprotect(next);
            Self::maintain(
                &mut mgr,
                &mut auto,
                options,
                &mut stats,
                [reachable, frontier],
            )?;
        }

        // Marking-level enabling sets, for every transition (frozen ones
        // included).
        let enabling: Vec<Bdd> = net
            .transitions()
            .map(|t| {
                let lits: Vec<(usize, bool)> =
                    net.preset(t).iter().map(|p| (p.index(), true)).collect();
                let preset = mgr.cube(&lits);
                let e = mgr.and(reachable, preset);
                // Pinned at creation: a reentrant collection during a later
                // transition's conjunction must not sweep this one. The pin
                // doubles as the permanent root the struct hands out.
                mgr.protect(e);
                e
            })
            .collect();

        // The stored sets outlive explore: `reachable` keeps its fixpoint
        // pin and every enabling set was pinned at creation, so a
        // caller-driven `gc` through `manager_mut` cannot free what the
        // struct hands out. The relation cubes are done — release them.
        for rel in &relations {
            for b in [rel.guard, rel.changed, rel.result] {
                mgr.unprotect(b);
            }
        }

        stats.ops = mgr.op_counts();
        stats.reentrant_maintenance = mgr.maintenance_runs();
        stats.peak_pool = mgr.peak_pool();

        // The reentrant checkpoints are an explore-internal discipline:
        // this driver pins every loop-carried handle, but downstream
        // consumers (per-signal projections, consistency checks) hold
        // intermediates across op calls without pinning them, as the
        // pre-reentrant contract allowed. A mid-operation collection there
        // would sweep those handles out from under the caller, so the
        // policy must not outlive the fixpoint.
        mgr.set_maintenance(None);

        Ok(SymbolicReach {
            mgr,
            reachable,
            enabling,
            place_count,
            aux_vars,
            steps,
            stats,
        })
    }

    /// Between-iteration pool maintenance: collect on growth, sift when the
    /// reordering policy says so, and enforce the node budget against the
    /// *live* pool — garbage never kills a run, and under `Sift`/`Auto` a
    /// bad variable order does not either unless sifting cannot fix it.
    ///
    /// Collection fires on pool pressure only (`gc_threshold` or the node
    /// budget) — never on the reordering policy's account: the pool count
    /// includes garbage, and forcing a collection every iteration just to
    /// measure the live size costs more than it saves (memoised subresults
    /// of the image relations die with their intermediates). The `Auto`
    /// policy therefore evaluates its threshold at the checkpoints where a
    /// collection happened anyway, when the live size is exact.
    fn maintain(
        mgr: &mut BddManager,
        auto: &mut AutoReorder,
        options: &SymbolicOptions,
        stats: &mut SymbolicStats,
        roots: [Bdd; 2],
    ) -> Result<(), NetError> {
        let over_gc = mgr.pool_size() > options.gc_threshold;
        let over_budget = mgr.pool_size() > options.node_budget;
        for r in roots {
            mgr.protect(r);
        }
        if over_gc || over_budget {
            let t = Instant::now();
            stats.gc_collected += mgr.gc();
            stats.gc_time += t.elapsed();
            stats.gc_runs += 1;
        }
        let live = mgr.pool_size();
        let want_sift = (over_gc || over_budget)
            && match options.reorder {
                ReorderPolicy::Off => false,
                // Last resort: only when the budget would otherwise fail.
                ReorderPolicy::Sift => live > options.node_budget,
                // Proactive, plus the same last resort.
                ReorderPolicy::Auto => auto.due(live) || live > options.node_budget,
            };
        if want_sift {
            let t = Instant::now();
            mgr.reorder_sift(BddManager::DEFAULT_MAX_GROWTH);
            stats.reorder_time += t.elapsed();
            stats.reorder_runs += 1;
            auto.rearm(mgr.pool_size());
        }
        for r in roots {
            mgr.unprotect(r);
        }
        if mgr.pool_size() > options.node_budget {
            return Err(NetError::NodeBudgetExceeded {
                budget: options.node_budget,
            });
        }
        stats.peak_live_nodes = stats.peak_live_nodes.max(mgr.pool_size());
        Ok(())
    }

    fn build_relations(
        net: &PetriNet,
        options: &SymbolicOptions,
        place_count: usize,
        mgr: &mut BddManager,
    ) -> Vec<TransitionRelation> {
        let mut frozen = vec![false; net.transition_count()];
        for &t in &options.frozen {
            frozen[t.index()] = true;
        }
        net.transitions()
            .map(|t| {
                let actions: &[AuxAction] = options
                    .aux_actions
                    .get(t.index())
                    .map(Vec::as_slice)
                    .unwrap_or(&[]);
                for a in actions {
                    assert!(
                        a.var < options.aux_vars,
                        "aux action variable {} out of range",
                        a.var
                    );
                }
                let mut guard_lits: Vec<(usize, bool)> =
                    net.preset(t).iter().map(|p| (p.index(), true)).collect();
                guard_lits.extend(actions.iter().map(|a| (place_count + a.var, a.from)));
                let guard = mgr.cube(&guard_lits);

                // Variables the firing rewrites: preset ∪ postset places and
                // acted-on auxiliaries.
                let mut changed_vars: Vec<usize> =
                    net.preset(t).iter().map(|p| p.index()).collect();
                changed_vars.extend(net.postset(t).iter().map(|p| p.index()));
                changed_vars.extend(actions.iter().map(|a| place_count + a.var));
                changed_vars.sort_unstable();
                changed_vars.dedup();
                let changed = mgr.cube_vars(&changed_vars);

                let mut result_lits: Vec<(usize, bool)> = Vec::new();
                for &p in net.postset(t) {
                    result_lits.push((p.index(), true));
                }
                for &p in net.preset(t) {
                    if !net.postset(t).contains(&p) {
                        result_lits.push((p.index(), false));
                    }
                }
                result_lits.extend(actions.iter().map(|a| (place_count + a.var, a.to)));
                let result = mgr.cube(&result_lits);

                let fresh_places: Vec<PlaceId> = net
                    .postset(t)
                    .iter()
                    .copied()
                    .filter(|p| !net.preset(t).contains(p))
                    .collect();

                TransitionRelation {
                    guard,
                    changed,
                    result,
                    fresh_places,
                    frozen: frozen[t.index()],
                }
            })
            .collect()
    }

    /// The BDD manager owning every set below. Variable `p` is place `p`;
    /// variable `place_count + k` is auxiliary `k`.
    pub fn manager(&self) -> &BddManager {
        &self.mgr
    }

    /// Mutable manager access (set algebra needs it).
    pub fn manager_mut(&mut self) -> &mut BddManager {
        &mut self.mgr
    }

    /// The reachable set over `(marking, aux)` states.
    pub fn reachable(&self) -> Bdd {
        self.reachable
    }

    /// Reachable states whose marking enables `transition` (auxiliary
    /// guards not applied; frozen transitions included).
    ///
    /// # Panics
    ///
    /// Panics if the transition id is out of range.
    pub fn enabling(&self, transition: TransitionId) -> Bdd {
        self.enabling[transition.index()]
    }

    /// Number of places (and the index of the first auxiliary variable).
    pub fn place_count(&self) -> usize {
        self.place_count
    }

    /// Number of auxiliary variables.
    pub fn aux_vars(&self) -> usize {
        self.aux_vars
    }

    /// The manager variable of `place`.
    pub fn place_var(&self, place: PlaceId) -> usize {
        place.index()
    }

    /// The manager variable of auxiliary `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= aux_vars`.
    pub fn aux_var(&self, k: usize) -> usize {
        assert!(k < self.aux_vars, "auxiliary variable {k} out of range");
        self.place_count + k
    }

    /// Number of reachable `(marking, aux)` states, saturating at
    /// `u128::MAX`.
    pub fn state_count(&self) -> u128 {
        self.mgr.sat_count(self.reachable)
    }

    /// Number of frontier iterations the fixpoint took.
    pub fn steps(&self) -> usize {
        self.steps
    }

    /// Collection/reordering telemetry of the fixpoint run.
    pub fn stats(&self) -> &SymbolicStats {
        &self.stats
    }

    /// Returns `true` if `marking` (with the given auxiliary values, which
    /// may be empty when `aux_vars == 0`) is reachable.
    ///
    /// # Panics
    ///
    /// Panics if `aux.len() != aux_vars`.
    pub fn contains(&self, marking: &Marking, aux: &[bool]) -> bool {
        assert_eq!(aux.len(), self.aux_vars, "auxiliary width mismatch");
        let mut bits = vec![false; self.place_count + self.aux_vars];
        for p in marking.iter() {
            bits[p.index()] = true;
        }
        bits[self.place_count..].copy_from_slice(aux);
        self.mgr.eval(self.reachable, &bits)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reach::ReachabilityGraph;

    /// Two independent 2-cycles: 4 reachable markings.
    fn two_cycles() -> PetriNet {
        let mut net = PetriNet::new();
        let a0 = net.add_place("a0");
        let a1 = net.add_place("a1");
        let b0 = net.add_place("b0");
        let b1 = net.add_place("b1");
        for (x0, x1, n) in [(a0, a1, "a"), (b0, b1, "b")] {
            let fwd = net.add_transition(format!("{n}+"));
            let bwd = net.add_transition(format!("{n}-"));
            net.add_arc_pt(x0, fwd);
            net.add_arc_tp(fwd, x1);
            net.add_arc_pt(x1, bwd);
            net.add_arc_tp(bwd, x0);
        }
        net.mark_initially(a0);
        net.mark_initially(b0);
        net
    }

    /// `k` independent 2-cycles: `2^k` markings from `2k` places.
    fn independent_cycles(k: usize) -> PetriNet {
        let mut net = PetriNet::new();
        for i in 0..k {
            let p0 = net.add_place(format!("c{i}_0"));
            let p1 = net.add_place(format!("c{i}_1"));
            let fwd = net.add_transition(format!("t{i}+"));
            let bwd = net.add_transition(format!("t{i}-"));
            net.add_arc_pt(p0, fwd);
            net.add_arc_tp(fwd, p1);
            net.add_arc_pt(p1, bwd);
            net.add_arc_tp(bwd, p0);
            net.mark_initially(p0);
        }
        net
    }

    #[test]
    fn matches_explicit_exploration() {
        let net = two_cycles();
        let explicit = ReachabilityGraph::explore(&net, 100).expect("explores");
        let symbolic = SymbolicReach::explore(&net, &SymbolicOptions::default()).expect("explores");
        assert_eq!(symbolic.state_count(), explicit.len() as u128);
        for (_, m) in explicit.iter() {
            assert!(symbolic.contains(m, &[]), "{m:?} missing symbolically");
        }
    }

    #[test]
    fn enabling_sets_match_explicit_edges() {
        let net = two_cycles();
        let explicit = ReachabilityGraph::explore(&net, 100).expect("explores");
        let symbolic = SymbolicReach::explore(&net, &SymbolicOptions::default()).expect("explores");
        for t in net.transitions() {
            let expected = explicit
                .iter()
                .filter(|(_, m)| net.is_enabled(t, m))
                .count() as u128;
            let e = symbolic.enabling(t);
            assert_eq!(symbolic.manager().sat_count(e), expected, "{t}");
        }
    }

    #[test]
    fn exponential_state_spaces_stay_small_symbolically() {
        let net = independent_cycles(40);
        let reach = SymbolicReach::explore(&net, &SymbolicOptions::default()).expect("explores");
        assert_eq!(reach.state_count(), 1u128 << 40);
        // The diagram is linear in the cycle count even though the state
        // count is 2^40 (three nodes per place-pair XOR constraint).
        assert!(
            reach.manager().node_count(reach.reachable()) <= 4 * 40,
            "diagram blew up: {} nodes",
            reach.manager().node_count(reach.reachable())
        );
    }

    #[test]
    fn unsafe_net_reported() {
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let p2 = net.add_place("p2");
        let t0 = net.add_transition("t0");
        let t1 = net.add_transition("t1");
        net.add_arc_pt(p0, t0);
        net.add_arc_tp(t0, p2);
        net.add_arc_pt(p1, t1);
        net.add_arc_tp(t1, p2);
        net.mark_initially(p0);
        net.mark_initially(p1);
        assert!(matches!(
            SymbolicReach::explore(&net, &SymbolicOptions::default()),
            Err(NetError::Unsafe { place, .. }) if place == p2
        ));
    }

    #[test]
    fn node_budget_enforced() {
        let net = independent_cycles(20);
        let options = SymbolicOptions {
            node_budget: 8,
            ..SymbolicOptions::default()
        };
        assert!(matches!(
            SymbolicReach::explore(&net, &options),
            Err(NetError::NodeBudgetExceeded { budget: 8 })
        ));
    }

    #[test]
    fn aux_variables_track_transition_parity() {
        // One 2-cycle with an aux bit toggled by the forward transition and
        // required back by the backward transition: the aux bit mirrors
        // "token in p1".
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let fwd = net.add_transition("fwd");
        let bwd = net.add_transition("bwd");
        net.add_arc_pt(p0, fwd);
        net.add_arc_tp(fwd, p1);
        net.add_arc_pt(p1, bwd);
        net.add_arc_tp(bwd, p0);
        net.mark_initially(p0);
        let options = SymbolicOptions {
            aux_vars: 1,
            aux_initial: vec![false],
            aux_actions: vec![
                vec![AuxAction {
                    var: 0,
                    from: false,
                    to: true,
                }],
                vec![AuxAction {
                    var: 0,
                    from: true,
                    to: false,
                }],
            ],
            ..SymbolicOptions::default()
        };
        let reach = SymbolicReach::explore(&net, &options).expect("explores");
        assert_eq!(reach.state_count(), 2);
        let m0: Marking = [p0].into_iter().collect();
        let m1: Marking = [p1].into_iter().collect();
        assert!(reach.contains(&m0, &[false]));
        assert!(reach.contains(&m1, &[true]));
        assert!(!reach.contains(&m0, &[true]));
        assert!(!reach.contains(&m1, &[false]));
    }

    #[test]
    fn aux_guard_blocks_the_relation() {
        // Same cycle, but the backward transition demands an aux value that
        // never holds: only the forward firing happens.
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let fwd = net.add_transition("fwd");
        let bwd = net.add_transition("bwd");
        net.add_arc_pt(p0, fwd);
        net.add_arc_tp(fwd, p1);
        net.add_arc_pt(p1, bwd);
        net.add_arc_tp(bwd, p0);
        net.mark_initially(p0);
        let options = SymbolicOptions {
            aux_vars: 1,
            aux_initial: vec![false],
            aux_actions: vec![
                Vec::new(),
                vec![AuxAction {
                    var: 0,
                    from: true,
                    to: true,
                }],
            ],
            ..SymbolicOptions::default()
        };
        let reach = SymbolicReach::explore(&net, &options).expect("explores");
        assert_eq!(reach.state_count(), 2);
        // bwd is marking-enabled at p1 but its aux guard never holds there.
        let e = reach.enabling(TransitionId(1));
        let m1: Marking = [p1].into_iter().collect();
        assert!(reach.contains(&m1, &[false]));
        assert_eq!(reach.manager().sat_count(e), 1);
    }

    #[test]
    fn frozen_transitions_are_skipped_but_still_get_enabling_sets() {
        let net = two_cycles();
        let options = SymbolicOptions {
            frozen: vec![TransitionId(2)], // b+ frozen: the b-cycle never moves
            ..SymbolicOptions::default()
        };
        let reach = SymbolicReach::explore(&net, &options).expect("explores");
        assert_eq!(reach.state_count(), 2);
        // b+ is still marking-enabled everywhere (b0 stays marked).
        let e = reach.enabling(TransitionId(2));
        assert_eq!(reach.manager().sat_count(e), 2);
    }

    #[test]
    fn custom_order_changes_layout_not_semantics() {
        let net = two_cycles();
        let options = SymbolicOptions {
            order: Some(vec![3, 1, 2, 0]),
            ..SymbolicOptions::default()
        };
        let reach = SymbolicReach::explore(&net, &options).expect("explores");
        assert_eq!(reach.state_count(), 4);
    }

    #[test]
    fn node_budget_binds_live_nodes_exactly() {
        // Mirror of the explicit `explore(budget)` boundary test: measure
        // the peak live pool at the between-iteration checkpoints, then
        // rerun with exactly that budget (must succeed) and one node less
        // (must fail with the structured budget error).
        let net = independent_cycles(12);
        let tight_gc = SymbolicOptions {
            gc_threshold: 0, // collect every iteration
            ..SymbolicOptions::default()
        };
        let reach = SymbolicReach::explore(&net, &tight_gc).expect("explores");
        let peak = reach.stats().peak_live_nodes;
        assert!(peak > 0);
        assert!(reach.stats().gc_runs > 0, "gc must have fired every round");

        let exact = SymbolicOptions {
            node_budget: peak,
            ..tight_gc.clone()
        };
        let at_budget = SymbolicReach::explore(&net, &exact).expect("peak live nodes fit exactly");
        assert_eq!(at_budget.state_count(), 1u128 << 12);

        let under = SymbolicOptions {
            node_budget: peak - 1,
            ..tight_gc
        };
        assert!(matches!(
            SymbolicReach::explore(&net, &under),
            Err(NetError::NodeBudgetExceeded { budget }) if budget == peak - 1
        ));
    }

    #[test]
    fn gc_alone_completes_a_run_that_cumulative_allocation_would_kill() {
        // With per-iteration collection the live pool stays far below the
        // total allocations, so a budget between the two completes — the
        // pre-GC engine (budget == cumulative pool) died here.
        let net = independent_cycles(16);
        let unbounded = SymbolicOptions {
            gc_threshold: 0,
            ..SymbolicOptions::default()
        };
        let reference = SymbolicReach::explore(&net, &unbounded).expect("explores");
        let peak = reference.stats().peak_live_nodes;
        let allocated = reference.manager().allocated_size();
        assert!(
            allocated > peak,
            "collection must have reclaimed something: {allocated} vs {peak}"
        );
        let options = SymbolicOptions {
            gc_threshold: 0,
            node_budget: peak,
            ..SymbolicOptions::default()
        };
        let reach = SymbolicReach::explore(&net, &options).expect("GC keeps the run alive");
        assert_eq!(reach.state_count(), 1u128 << 16);
        assert!(
            reach.manager().allocated_size() > peak,
            "the run allocated more than the budget overall — GC alone saved it"
        );
    }

    #[test]
    fn reorder_policies_reach_the_same_set() {
        let net = two_cycles();
        let baseline = SymbolicReach::explore(&net, &SymbolicOptions::default()).expect("explores");
        for reorder in [ReorderPolicy::Off, ReorderPolicy::Sift, ReorderPolicy::Auto] {
            let options = SymbolicOptions {
                reorder,
                gc_threshold: 0,
                reorder_threshold: 1, // sift at every opportunity under Auto
                ..SymbolicOptions::default()
            };
            let reach = SymbolicReach::explore(&net, &options).expect("explores");
            assert_eq!(reach.state_count(), baseline.state_count(), "{reorder:?}");
            for (_, m) in ReachabilityGraph::explore(&net, 100)
                .expect("explicit explores")
                .iter()
            {
                assert!(reach.contains(m, &[]), "{reorder:?}: {m:?} missing");
            }
        }
    }

    #[test]
    fn auto_reorder_shrinks_a_bad_static_order() {
        // Reverse-interleaved order for a pipeline of cycles: the static
        // layout separates each place pair; sifting pulls them together.
        let net = independent_cycles(12);
        let n = net.place_count();
        let bad: Vec<usize> = (0..n / 2).flat_map(|i| [i, n - 1 - i]).collect();
        let off = SymbolicOptions {
            order: Some(bad.clone()),
            gc_threshold: 0,
            ..SymbolicOptions::default()
        };
        let auto = SymbolicOptions {
            order: Some(bad),
            gc_threshold: 0,
            reorder: ReorderPolicy::Auto,
            reorder_threshold: 8,
            ..SymbolicOptions::default()
        };
        let r_off = SymbolicReach::explore(&net, &off).expect("explores");
        let r_auto = SymbolicReach::explore(&net, &auto).expect("explores");
        assert_eq!(r_off.state_count(), r_auto.state_count());
        assert!(r_auto.stats().reorder_runs > 0, "auto policy must sift");
        let n_off = r_off.manager().node_count(r_off.reachable());
        let n_auto = r_auto.manager().node_count(r_auto.reachable());
        assert!(
            n_auto < n_off,
            "sifting should shrink the reachable set: {n_auto} vs {n_off}"
        );
    }

    #[test]
    fn bdd_threads_match_serial_results_and_op_counts() {
        let net = independent_cycles(10);
        let reference =
            SymbolicReach::explore(&net, &SymbolicOptions::default()).expect("explores");
        for threads in [2, 4] {
            let options = SymbolicOptions {
                bdd_threads: Some(threads),
                // Force the parallel path: this net never reaches the
                // manager's default floor.
                bdd_parallel_floor: Some(0),
                ..SymbolicOptions::default()
            };
            let reach = SymbolicReach::explore(&net, &options).expect("explores");
            assert_eq!(
                reach.state_count(),
                reference.state_count(),
                "{threads} threads"
            );
            assert_eq!(
                reach.stats().ops,
                reference.stats().ops,
                "{threads} threads: op counts must not depend on the schedule"
            );
            for t in net.transitions() {
                assert_eq!(
                    reach.manager().sat_count(reach.enabling(t)),
                    reference.manager().sat_count(reference.enabling(t)),
                    "{threads} threads: enabling({t})"
                );
            }
        }
    }

    #[test]
    fn reentrant_checkpoint_completes_an_over_budget_operation() {
        // Maximally separating each cycle's place pair (all "even" places,
        // then the "odd" ones reversed) makes every reachable-set diagram
        // exponential in the cycle count, so single operations run tens of
        // thousands of kernel steps and allocate far past the live
        // checkpoint sizes. The non-reentrant engine blows straight through
        // the budget *mid-operation* (visible in `peak_pool`); the
        // reentrant engine trips the in-kernel checkpoint, collects, and
        // completes the same fixpoint under the armed budget.
        let net = independent_cycles(12);
        let n = net.place_count();
        let bad: Vec<usize> = (0..n).step_by(2).chain((1..n).step_by(2).rev()).collect();
        let reference = SymbolicOptions {
            order: Some(bad.clone()),
            gc_threshold: 0, // collect every iteration: checkpoint peaks are exact
            reentrant: false,
            ..SymbolicOptions::default()
        };
        let r = SymbolicReach::explore(&net, &reference).expect("explores");
        let live_peak = r.stats().peak_live_nodes;
        let pool_peak = r.stats().peak_pool;
        assert!(
            pool_peak > live_peak,
            "mid-operation allocation must overshoot the checkpoint peak: \
             {pool_peak} vs {live_peak}"
        );

        // A budget the between-iteration checkpoints satisfy exactly but
        // single operations exceed mid-flight: without reentrancy this run
        // overshoots (per `pool_peak` above); with it, the kernel
        // checkpoint must fire and the run must still finish.
        let reentrant = SymbolicOptions {
            order: Some(bad),
            gc_threshold: 0,
            node_budget: live_peak,
            reentrant: true,
            ..SymbolicOptions::default()
        };
        let reach = SymbolicReach::explore(&net, &reentrant)
            .expect("reentrant maintenance keeps the run under budget");
        assert_eq!(reach.state_count(), r.state_count());
        assert!(
            reach.stats().reentrant_maintenance > 0,
            "the in-kernel checkpoint must actually have fired"
        );
        assert_eq!(
            reach.stats().ops,
            r.stats().ops,
            "reentrant retries must not change the public op counts"
        );
    }

    #[test]
    fn no_transitions_reaches_only_the_initial_state() {
        let mut net = PetriNet::new();
        let p = net.add_place("p");
        net.mark_initially(p);
        let reach = SymbolicReach::explore(&net, &SymbolicOptions::default()).expect("explores");
        assert_eq!(reach.state_count(), 1);
        assert_eq!(reach.steps(), 1);
    }
}
