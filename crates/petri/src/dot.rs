//! Graphviz DOT export for nets, for debugging and documentation.

use std::fmt::Write as _;

use crate::net::PetriNet;

/// Renders `net` in Graphviz DOT syntax. Places are circles (marked places
/// are filled), transitions are boxes.
///
/// # Examples
///
/// ```
/// use si_petri::{PetriNet, to_dot};
///
/// let mut net = PetriNet::new();
/// let p = net.add_place("p0");
/// let t = net.add_transition("t0");
/// net.add_arc_pt(p, t);
/// net.mark_initially(p);
/// let dot = to_dot(&net, "example");
/// assert!(dot.contains("digraph example"));
/// assert!(dot.contains("p0"));
/// ```
pub fn to_dot(net: &PetriNet, name: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph {name} {{");
    let _ = writeln!(out, "  rankdir=TB;");
    for p in net.places() {
        let fill = if net.initial_marking().contains(p) {
            ", style=filled, fillcolor=gray80"
        } else {
            ""
        };
        let _ = writeln!(
            out,
            "  P{} [label=\"{}\", shape=circle{}];",
            p.0,
            net.place_name(p),
            fill
        );
    }
    for t in net.transitions() {
        let _ = writeln!(
            out,
            "  T{} [label=\"{}\", shape=box];",
            t.0,
            net.transition_name(t)
        );
    }
    for t in net.transitions() {
        for &p in net.preset(t) {
            let _ = writeln!(out, "  P{} -> T{};", p.0, t.0);
        }
        for &p in net.postset(t) {
            let _ = writeln!(out, "  T{} -> P{};", t.0, p.0);
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dot_contains_all_nodes_and_arcs() {
        let mut net = PetriNet::new();
        let p0 = net.add_place("in");
        let p1 = net.add_place("out");
        let t = net.add_transition("go");
        net.add_arc_pt(p0, t);
        net.add_arc_tp(t, p1);
        net.mark_initially(p0);
        let dot = to_dot(&net, "g");
        assert!(dot.contains("digraph g {"));
        assert!(dot.contains("label=\"in\""));
        assert!(dot.contains("label=\"go\""));
        assert!(dot.contains("P0 -> T0;"));
        assert!(dot.contains("T0 -> P1;"));
        // Initial place is highlighted.
        assert!(dot.contains("fillcolor=gray80"));
        assert!(dot.ends_with("}\n"));
    }
}
