//! Explicit reachability exploration with a state budget.
//!
//! This is the "build the full reachability graph" primitive that SG-based
//! synthesis tools rely on, and whose state explosion the paper's
//! unfolding-based method avoids. It is kept in the kernel crate because both
//! the state-graph substrate and several checks reuse it.

use std::collections::HashMap;

use crate::error::NetError;
use crate::marking::Marking;
use crate::net::{PetriNet, TransitionId};

/// The reachability graph of a 1-safe net: all reachable markings plus the
/// labelled successor relation.
#[derive(Debug, Clone)]
pub struct ReachabilityGraph {
    markings: Vec<Marking>,
    /// `edges[s]` lists `(t, s')` with `markings[s] --t--> markings[s']`.
    edges: Vec<Vec<(TransitionId, usize)>>,
    index: HashMap<Marking, usize>,
}

impl ReachabilityGraph {
    /// Explores all markings reachable from `net`'s initial marking.
    ///
    /// `budget` is the maximum number of states **stored**: exploration
    /// succeeds iff the net has at most `budget` reachable markings
    /// (the initial marking counts as the first stored state, so a net with
    /// exactly `budget` reachable markings still explores). This protects
    /// the caller from state explosion; the symbolic engine
    /// ([`crate::SymbolicReach`]) goes where this budget cannot.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::Unsafe`] if a firing violates 1-safeness and
    /// [`NetError::StateBudgetExceeded`] if storing one more state would
    /// exceed `budget` — including `budget == 0`, where even the initial
    /// marking does not fit.
    ///
    /// # Examples
    ///
    /// ```
    /// use si_petri::{PetriNet, ReachabilityGraph};
    ///
    /// # fn main() -> Result<(), si_petri::NetError> {
    /// let mut net = PetriNet::new();
    /// let p0 = net.add_place("p0");
    /// let p1 = net.add_place("p1");
    /// let t = net.add_transition("t");
    /// net.add_arc_pt(p0, t);
    /// net.add_arc_tp(t, p1);
    /// net.mark_initially(p0);
    /// let rg = ReachabilityGraph::explore(&net, 100)?;
    /// assert_eq!(rg.len(), 2);
    /// # Ok(())
    /// # }
    /// ```
    pub fn explore(net: &PetriNet, budget: usize) -> Result<Self, NetError> {
        if budget == 0 {
            // Even the initial marking would exceed a zero budget; erroring
            // here keeps the invariant that a returned graph is never a
            // truncated state space.
            return Err(NetError::StateBudgetExceeded { budget });
        }
        let mut graph = ReachabilityGraph {
            markings: Vec::new(),
            edges: Vec::new(),
            index: HashMap::new(),
        };
        // Structural pre-sizing: when a unary-invariant cover bounds the
        // state count below the budget, reserve the tables once up front
        // instead of growing them through the whole exploration.
        let cert = crate::structural::certify_one_safe(net);
        if let Some(bound) = crate::structural::structural_state_bound(net, &cert) {
            if bound < budget as u128 {
                let cap = bound as usize;
                graph.markings.reserve(cap);
                graph.edges.reserve(cap);
                graph.index.reserve(cap);
            }
        }
        // Pre-size the marking's bitset for the full place range so every
        // clone made by `fire` carries full-width blocks from the start.
        let mut initial = Marking::with_capacity(net.place_count());
        for p in net.initial_marking().iter() {
            initial.insert(p);
        }
        graph.intern(initial);
        let mut frontier = 0usize;
        while frontier < graph.markings.len() {
            let marking = graph.markings[frontier].clone();
            for t in net.enabled_transitions(&marking) {
                let next = net.fire(t, &marking)?;
                let next_id = match graph.index.get(&next) {
                    Some(&id) => id,
                    None => {
                        if graph.markings.len() >= budget {
                            return Err(NetError::StateBudgetExceeded { budget });
                        }
                        graph.intern(next)
                    }
                };
                graph.edges[frontier].push((t, next_id));
            }
            frontier += 1;
        }
        Ok(graph)
    }

    fn intern(&mut self, marking: Marking) -> usize {
        let id = self.markings.len();
        self.index.insert(marking.clone(), id);
        self.markings.push(marking);
        self.edges.push(Vec::new());
        id
    }

    /// Number of reachable markings.
    pub fn len(&self) -> usize {
        self.markings.len()
    }

    /// Returns `true` if the graph has no states (only possible for an
    /// unexplored graph; exploration always yields at least the initial
    /// marking).
    pub fn is_empty(&self) -> bool {
        self.markings.is_empty()
    }

    /// The marking of state `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn marking(&self, id: usize) -> &Marking {
        &self.markings[id]
    }

    /// Outgoing `(transition, successor)` edges of state `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn successors(&self, id: usize) -> &[(TransitionId, usize)] {
        &self.edges[id]
    }

    /// Looks up the state id of `marking`, if reachable.
    pub fn state_of(&self, marking: &Marking) -> Option<usize> {
        self.index.get(marking).copied()
    }

    /// Iterates over `(state id, marking)` pairs in discovery (BFS) order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &Marking)> + '_ {
        self.markings.iter().enumerate()
    }

    /// States with no outgoing edges (deadlocks).
    pub fn deadlocks(&self) -> Vec<usize> {
        self.edges
            .iter()
            .enumerate()
            .filter(|(_, e)| e.is_empty())
            .map(|(i, _)| i)
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::PetriNet;

    /// Two independent 2-cycles: 4 reachable markings.
    fn two_cycles() -> PetriNet {
        let mut net = PetriNet::new();
        let a0 = net.add_place("a0");
        let a1 = net.add_place("a1");
        let b0 = net.add_place("b0");
        let b1 = net.add_place("b1");
        for (x0, x1, n) in [(a0, a1, "a"), (b0, b1, "b")] {
            let fwd = net.add_transition(format!("{n}+"));
            let bwd = net.add_transition(format!("{n}-"));
            net.add_arc_pt(x0, fwd);
            net.add_arc_tp(fwd, x1);
            net.add_arc_pt(x1, bwd);
            net.add_arc_tp(bwd, x0);
        }
        net.mark_initially(a0);
        net.mark_initially(b0);
        net
    }

    #[test]
    fn explores_product_space() {
        let net = two_cycles();
        let rg = ReachabilityGraph::explore(&net, 100).expect("explores");
        assert_eq!(rg.len(), 4);
        // Initial state has two enabled transitions.
        assert_eq!(rg.successors(0).len(), 2);
        assert!(rg.deadlocks().is_empty());
    }

    #[test]
    fn budget_enforced() {
        let net = two_cycles();
        assert!(matches!(
            ReachabilityGraph::explore(&net, 2),
            Err(NetError::StateBudgetExceeded { budget: 2 })
        ));
    }

    #[test]
    fn budget_is_max_states_stored_boundary() {
        // two_cycles has exactly 4 reachable markings: a budget of exactly 4
        // (max states stored) must succeed, one less must fail.
        let net = two_cycles();
        let rg = ReachabilityGraph::explore(&net, 4).expect("exactly-budget explores");
        assert_eq!(rg.len(), 4);
        assert!(matches!(
            ReachabilityGraph::explore(&net, 3),
            Err(NetError::StateBudgetExceeded { budget: 3 })
        ));
    }

    #[test]
    fn zero_budget_is_an_error_not_a_partial_graph() {
        let net = two_cycles();
        assert!(matches!(
            ReachabilityGraph::explore(&net, 0),
            Err(NetError::StateBudgetExceeded { budget: 0 })
        ));
    }

    #[test]
    fn state_lookup_roundtrip() {
        let net = two_cycles();
        let rg = ReachabilityGraph::explore(&net, 100).expect("explores");
        for (id, m) in rg.iter() {
            assert_eq!(rg.state_of(m), Some(id));
        }
    }

    #[test]
    fn deadlock_detected() {
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let t = net.add_transition("t");
        net.add_arc_pt(p0, t);
        net.add_arc_tp(t, p1);
        net.mark_initially(p0);
        let rg = ReachabilityGraph::explore(&net, 10).expect("explores");
        assert_eq!(rg.deadlocks(), vec![1]);
    }

    #[test]
    fn unsafe_net_reported() {
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let p2 = net.add_place("p2");
        // Two transitions both feeding p2 from independent sources, one of
        // which also re-enables itself: p2 can receive two tokens.
        let t0 = net.add_transition("t0");
        let t1 = net.add_transition("t1");
        net.add_arc_pt(p0, t0);
        net.add_arc_tp(t0, p2);
        net.add_arc_pt(p1, t1);
        net.add_arc_tp(t1, p2);
        net.mark_initially(p0);
        net.mark_initially(p1);
        assert!(matches!(
            ReachabilityGraph::explore(&net, 100),
            Err(NetError::Unsafe { .. })
        ));
    }
}
