//! Error types for net construction and execution.

use std::error::Error;
use std::fmt;

use crate::net::{PlaceId, TransitionId};

/// Errors raised by Petri net operations.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum NetError {
    /// A transition was fired while not enabled.
    NotEnabled {
        /// The offending transition.
        transition: TransitionId,
        /// Its name, for diagnostics.
        name: String,
    },
    /// Firing a transition would put a second token on a place, so the net is
    /// not 1-safe.
    Unsafe {
        /// The place that would receive a second token.
        place: PlaceId,
        /// Its name, for diagnostics.
        name: String,
        /// The transition whose firing exposed the violation.
        transition: TransitionId,
    },
    /// A transition has no input places and would be enabled forever.
    EmptyPreset {
        /// The offending transition.
        transition: TransitionId,
        /// Its name, for diagnostics.
        name: String,
    },
    /// The net has transitions but no initially marked place.
    EmptyInitialMarking,
    /// Reachability exploration exceeded the configured state budget.
    StateBudgetExceeded {
        /// The budget that was exceeded.
        budget: usize,
    },
    /// Symbolic reachability outgrew its BDD node budget.
    NodeBudgetExceeded {
        /// The budget that was exceeded.
        budget: usize,
    },
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::NotEnabled { name, .. } => {
                write!(f, "transition `{name}` is not enabled")
            }
            NetError::Unsafe {
                name, transition, ..
            } => write!(
                f,
                "net is not 1-safe: firing {transition} puts a second token on place `{name}`"
            ),
            NetError::EmptyPreset { name, .. } => {
                write!(f, "transition `{name}` has an empty preset")
            }
            NetError::EmptyInitialMarking => {
                write!(f, "initial marking is empty")
            }
            NetError::StateBudgetExceeded { budget } => {
                write!(f, "reachability exploration exceeded {budget} states")
            }
            NetError::NodeBudgetExceeded { budget } => {
                write!(
                    f,
                    "symbolic reachability exceeded {budget} decision-diagram nodes"
                )
            }
        }
    }
}

impl Error for NetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = NetError::NotEnabled {
            transition: TransitionId(3),
            name: "a+".into(),
        };
        assert_eq!(e.to_string(), "transition `a+` is not enabled");
        let e = NetError::Unsafe {
            place: PlaceId(1),
            name: "p1".into(),
            transition: TransitionId(0),
        };
        assert!(e.to_string().contains("not 1-safe"));
        assert!(NetError::EmptyInitialMarking.to_string().contains("empty"));
        assert!(NetError::StateBudgetExceeded { budget: 7 }
            .to_string()
            .contains('7'));
        assert!(NetError::NodeBudgetExceeded { budget: 9 }
            .to_string()
            .contains("9 decision-diagram nodes"));
    }
}
