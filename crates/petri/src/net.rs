//! The marked Petri net structure `N = ⟨P, T, F, m₀⟩`.
//!
//! Nets are built incrementally with [`PetriNet::add_place`],
//! [`PetriNet::add_transition`] and [`PetriNet::add_arc`]; the initial marking
//! is set with [`PetriNet::mark_initially`]. All algorithms in this workspace
//! assume (and check) **1-safe** nets — every place holds at most one token in
//! every reachable marking — which is the class Signal Transition Graphs
//! occupy.

use std::fmt;

use crate::error::NetError;
use crate::marking::Marking;

/// Index of a place in a [`PetriNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct PlaceId(pub u32);

/// Index of a transition in a [`PetriNet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TransitionId(pub u32);

impl PlaceId {
    /// The id as a `usize`, for indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl TransitionId {
    /// The id as a `usize`, for indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PlaceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

impl fmt::Display for TransitionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t{}", self.0)
    }
}

#[derive(Debug, Clone, Default)]
struct PlaceData {
    name: String,
    pre: Vec<TransitionId>,
    post: Vec<TransitionId>,
}

#[derive(Debug, Clone, Default)]
struct TransitionData {
    name: String,
    pre: Vec<PlaceId>,
    post: Vec<PlaceId>,
}

/// A marked place/transition net with unit arc weights.
///
/// # Examples
///
/// Build the two-place cycle `p0 → t0 → p1 → t1 → p0` and fire around it:
///
/// ```
/// use si_petri::PetriNet;
///
/// # fn main() -> Result<(), si_petri::NetError> {
/// let mut net = PetriNet::new();
/// let p0 = net.add_place("p0");
/// let p1 = net.add_place("p1");
/// let t0 = net.add_transition("t0");
/// let t1 = net.add_transition("t1");
/// net.add_arc_pt(p0, t0);
/// net.add_arc_tp(t0, p1);
/// net.add_arc_pt(p1, t1);
/// net.add_arc_tp(t1, p0);
/// net.mark_initially(p0);
///
/// let m0 = net.initial_marking().clone();
/// assert!(net.is_enabled(t0, &m0));
/// let m1 = net.fire(t0, &m0)?;
/// assert!(net.is_enabled(t1, &m1));
/// assert_eq!(net.fire(t1, &m1)?, m0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Default)]
pub struct PetriNet {
    places: Vec<PlaceData>,
    transitions: Vec<TransitionData>,
    initial: Marking,
}

impl PetriNet {
    /// Creates an empty net.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a place named `name` and returns its id.
    pub fn add_place(&mut self, name: impl Into<String>) -> PlaceId {
        let id = PlaceId(self.places.len() as u32);
        self.places.push(PlaceData {
            name: name.into(),
            ..PlaceData::default()
        });
        id
    }

    /// Adds a transition named `name` and returns its id.
    pub fn add_transition(&mut self, name: impl Into<String>) -> TransitionId {
        let id = TransitionId(self.transitions.len() as u32);
        self.transitions.push(TransitionData {
            name: name.into(),
            ..TransitionData::default()
        });
        id
    }

    /// Adds a place→transition arc (the place joins the transition's preset).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn add_arc_pt(&mut self, place: PlaceId, transition: TransitionId) {
        assert!(place.index() < self.places.len(), "place id out of range");
        assert!(
            transition.index() < self.transitions.len(),
            "transition id out of range"
        );
        self.places[place.index()].post.push(transition);
        self.transitions[transition.index()].pre.push(place);
    }

    /// Adds a transition→place arc (the place joins the transition's postset).
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    pub fn add_arc_tp(&mut self, transition: TransitionId, place: PlaceId) {
        assert!(place.index() < self.places.len(), "place id out of range");
        assert!(
            transition.index() < self.transitions.len(),
            "transition id out of range"
        );
        self.transitions[transition.index()].post.push(place);
        self.places[place.index()].pre.push(transition);
    }

    /// Puts a token on `place` in the initial marking `m₀`.
    pub fn mark_initially(&mut self, place: PlaceId) {
        self.initial.insert(place);
    }

    /// Number of places.
    pub fn place_count(&self) -> usize {
        self.places.len()
    }

    /// Number of transitions.
    pub fn transition_count(&self) -> usize {
        self.transitions.len()
    }

    /// Iterates over all place ids.
    pub fn places(&self) -> impl Iterator<Item = PlaceId> + '_ {
        (0..self.places.len() as u32).map(PlaceId)
    }

    /// Iterates over all transition ids.
    pub fn transitions(&self) -> impl Iterator<Item = TransitionId> + '_ {
        (0..self.transitions.len() as u32).map(TransitionId)
    }

    /// The name of `place`.
    pub fn place_name(&self, place: PlaceId) -> &str {
        &self.places[place.index()].name
    }

    /// The name of `transition`.
    pub fn transition_name(&self, transition: TransitionId) -> &str {
        &self.transitions[transition.index()].name
    }

    /// The preset `•t`: places with an arc into `transition`.
    pub fn preset(&self, transition: TransitionId) -> &[PlaceId] {
        &self.transitions[transition.index()].pre
    }

    /// The postset `t•`: places with an arc out of `transition`.
    pub fn postset(&self, transition: TransitionId) -> &[PlaceId] {
        &self.transitions[transition.index()].post
    }

    /// The preset `•p`: transitions with an arc into `place`.
    pub fn place_preset(&self, place: PlaceId) -> &[TransitionId] {
        &self.places[place.index()].pre
    }

    /// The postset `p•`: transitions with an arc out of `place`.
    pub fn place_postset(&self, place: PlaceId) -> &[TransitionId] {
        &self.places[place.index()].post
    }

    /// The initial marking `m₀`.
    pub fn initial_marking(&self) -> &Marking {
        &self.initial
    }

    /// Returns `true` if `transition` is enabled at `marking` (all preset
    /// places marked).
    pub fn is_enabled(&self, transition: TransitionId, marking: &Marking) -> bool {
        self.preset(transition).iter().all(|&p| marking.contains(p))
    }

    /// All transitions enabled at `marking`, in id order.
    pub fn enabled_transitions(&self, marking: &Marking) -> Vec<TransitionId> {
        self.transitions()
            .filter(|&t| self.is_enabled(t, marking))
            .collect()
    }

    /// Fires `transition` at `marking` and returns the successor marking.
    ///
    /// # Errors
    ///
    /// Returns [`NetError::NotEnabled`] if the transition is not enabled, and
    /// [`NetError::Unsafe`] if firing would place a second token on a place
    /// (the net is not 1-safe).
    pub fn fire(&self, transition: TransitionId, marking: &Marking) -> Result<Marking, NetError> {
        if !self.is_enabled(transition, marking) {
            return Err(NetError::NotEnabled {
                transition,
                name: self.transition_name(transition).to_owned(),
            });
        }
        let mut next = marking.clone();
        for &p in self.preset(transition) {
            next.remove(p);
        }
        for &p in self.postset(transition) {
            if !next.insert(p) {
                return Err(NetError::Unsafe {
                    place: p,
                    name: self.place_name(p).to_owned(),
                    transition,
                });
            }
        }
        Ok(next)
    }

    /// Structural sanity checks: every transition has a non-empty preset (a
    /// transition with an empty preset is always enabled, which makes the
    /// behaviour unbounded), and the initial marking is non-empty whenever the
    /// net has transitions.
    ///
    /// The rules live in [`crate::structural::validation_errors`], shared
    /// with the STG linter; this wrapper surfaces the first violation.
    ///
    /// # Errors
    ///
    /// Returns the first violated [`NetError`].
    pub fn validate(&self) -> Result<(), NetError> {
        match crate::structural::validation_errors(self)
            .into_iter()
            .next()
        {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cycle() -> (PetriNet, PlaceId, PlaceId, TransitionId, TransitionId) {
        let mut net = PetriNet::new();
        let p0 = net.add_place("p0");
        let p1 = net.add_place("p1");
        let t0 = net.add_transition("t0");
        let t1 = net.add_transition("t1");
        net.add_arc_pt(p0, t0);
        net.add_arc_tp(t0, p1);
        net.add_arc_pt(p1, t1);
        net.add_arc_tp(t1, p0);
        net.mark_initially(p0);
        (net, p0, p1, t0, t1)
    }

    #[test]
    fn build_and_query() {
        let (net, p0, p1, t0, t1) = cycle();
        assert_eq!(net.place_count(), 2);
        assert_eq!(net.transition_count(), 2);
        assert_eq!(net.preset(t0), &[p0]);
        assert_eq!(net.postset(t0), &[p1]);
        assert_eq!(net.place_preset(p0), &[t1]);
        assert_eq!(net.place_postset(p0), &[t0]);
        assert_eq!(net.place_name(p1), "p1");
        assert_eq!(net.transition_name(t1), "t1");
    }

    #[test]
    fn fire_moves_token() {
        let (net, p0, p1, t0, _) = cycle();
        let m0 = net.initial_marking().clone();
        let m1 = net.fire(t0, &m0).expect("enabled");
        assert!(!m1.contains(p0));
        assert!(m1.contains(p1));
    }

    #[test]
    fn fire_disabled_is_error() {
        let (net, _, _, _, t1) = cycle();
        let m0 = net.initial_marking().clone();
        assert!(matches!(
            net.fire(t1, &m0),
            Err(NetError::NotEnabled { transition, .. }) if transition == t1
        ));
    }

    #[test]
    fn unsafe_firing_detected() {
        // t produces into an already marked place.
        let mut net = PetriNet::new();
        let a = net.add_place("a");
        let b = net.add_place("b");
        let t = net.add_transition("t");
        net.add_arc_pt(a, t);
        net.add_arc_tp(t, b);
        net.mark_initially(a);
        net.mark_initially(b);
        let m0 = net.initial_marking().clone();
        assert!(matches!(
            net.fire(t, &m0),
            Err(NetError::Unsafe { place, .. }) if place == b
        ));
    }

    #[test]
    fn self_loop_is_safe() {
        // p is both consumed and produced by t: net stays 1-safe.
        let mut net = PetriNet::new();
        let p = net.add_place("p");
        let t = net.add_transition("t");
        net.add_arc_pt(p, t);
        net.add_arc_tp(t, p);
        net.mark_initially(p);
        let m0 = net.initial_marking().clone();
        let m1 = net.fire(t, &m0).expect("self loop fires");
        assert_eq!(m1, m0);
    }

    #[test]
    fn enabled_transitions_order() {
        let (net, _, _, t0, _) = cycle();
        let m0 = net.initial_marking().clone();
        assert_eq!(net.enabled_transitions(&m0), vec![t0]);
    }

    #[test]
    fn validate_rejects_empty_preset() {
        let mut net = PetriNet::new();
        let p = net.add_place("p");
        let t = net.add_transition("t");
        net.add_arc_tp(t, p);
        net.mark_initially(p);
        assert!(matches!(
            net.validate(),
            Err(NetError::EmptyPreset { transition, .. }) if transition == t
        ));
    }

    #[test]
    fn validate_rejects_empty_initial_marking() {
        let mut net = PetriNet::new();
        let p = net.add_place("p");
        let t = net.add_transition("t");
        net.add_arc_pt(p, t);
        assert!(matches!(net.validate(), Err(NetError::EmptyInitialMarking)));
    }

    #[test]
    fn validate_accepts_good_net() {
        let (net, ..) = cycle();
        assert!(net.validate().is_ok());
    }
}
