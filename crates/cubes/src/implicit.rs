//! Implicit cover representation: canonical disjoint-cube sets.
//!
//! The explicit SG baseline materialises one full-width minterm [`Cube`] per
//! reachable state and feeds tens of thousands of them to the minimiser —
//! the state-explosion behaviour the paper's Figure 6 demonstrates. This
//! module represents the same point sets *implicitly*: a hash-consed,
//! reduced, ordered decision diagram ([`ImplicitPool`]) whose root-to-`1`
//! paths form a canonical disjoint-cube set (ZDD/BDD-style), with cached
//! union / intersection / complement / cofactor. States that agree on a
//! signal's support collapse into a single shared subgraph, so the
//! representation stays near-linear where the explicit one is exponential.
//!
//! [`minimize_implicit`] runs the Espresso-style EXPAND → IRREDUNDANT →
//! REDUCE iteration directly against the implicit on/off sets and produces
//! **byte-identical** output to [`minimize`](crate::minimize) applied to the
//! canonically ordered explicit minterm covers of the same sets (pinned by
//! the equivalence proptest suite). The key observations making that
//! possible:
//!
//! * EXPAND's raise legality ("does the raised cube still miss the
//!   off-set?") is a property of the off-set *as a set of points*, not of
//!   its cube list, so it can be answered by an implicit membership probe;
//! * the cubes EXPAND processes are exactly the successive canonically
//!   smallest minterms not yet covered by an emitted prime — which is the
//!   leftmost path of the residual implicit set;
//! * IRREDUNDANT's and REDUCE's cover-containment questions reduce to
//!   emptiness of implicit differences, and REDUCE's residue supercube is
//!   the supercube of one implicit set.
//!
//! ## Example
//!
//! ```
//! use si_cubes::implicit::{minimize_implicit, ImplicitPool, MintermList};
//!
//! // On(b)/Off(b) of the paper's Figure 1, accumulated as points.
//! let mut on_list = MintermList::new(3);
//! for s in ["100", "101", "110", "111", "001", "011"] {
//!     on_list.push(s.chars().map(|c| c == '1'));
//! }
//! let mut off_list = MintermList::new(3);
//! for s in ["010", "000"] {
//!     off_list.push(s.chars().map(|c| c == '1'));
//! }
//! let mut pool = ImplicitPool::new(3);
//! let on = pool.from_minterms(&mut on_list);
//! let off = pool.from_minterms(&mut off_list);
//! let gate = minimize_implicit(&mut pool, on, off);
//! assert_eq!(gate.to_expression_string(&["a", "b", "c"]), "a + c");
//! ```

use std::collections::HashMap;

use crate::cover::Cover;
use crate::cube::{Cube, Literal};
use crate::espresso::canonical_order;
use crate::qm::{minimize_exact, QmBudget};

/// Terminal node id for the empty set (constant 0).
const EMPTY: u32 = 0;
/// Terminal node id for the full space (constant 1).
const FULL: u32 = 1;

/// A handle to a point set owned by an [`ImplicitPool`].
///
/// Copyable and cheap; all operations go through the pool. Two handles from
/// the same pool are equal iff they denote the same point set (the diagram
/// is canonical).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ImplicitCover(u32);

impl ImplicitCover {
    /// Returns `true` if this is the empty set (constant 0).
    pub fn is_empty(self) -> bool {
        self.0 == EMPTY
    }
}

/// Binary operation codes for the apply cache.
const OP_UNION: u8 = 0;
const OP_INTERSECT: u8 = 1;
const OP_DIFF: u8 = 2;
/// Unary cofactor codes (`b` in the cache key holds the variable).
const OP_COFACTOR0: u8 = 3;
const OP_COFACTOR1: u8 = 4;

/// A hash-consed pool of reduced ordered decision-diagram nodes over a
/// fixed variable width, plus an operation cache.
///
/// Node ids 0 and 1 are the terminals; every other node `(var, lo, hi)` is
/// unique (`lo != hi`), so equal point sets always share one id and
/// emptiness / equality tests are O(1).
#[derive(Debug, Clone)]
pub struct ImplicitPool {
    width: usize,
    /// `(var, lo, hi)`; entries 0/1 are terminal placeholders.
    nodes: Vec<(u32, u32, u32)>,
    unique: HashMap<(u32, u32, u32), u32>,
    cache: HashMap<(u8, u32, u32), u32>,
}

impl ImplicitPool {
    /// Creates a pool over `width` variables.
    pub fn new(width: usize) -> Self {
        ImplicitPool {
            width,
            nodes: vec![(u32::MAX, 0, 0), (u32::MAX, 1, 1)],
            unique: HashMap::new(),
            cache: HashMap::new(),
        }
    }

    /// Number of variables.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The empty set (constant 0).
    pub fn empty(&self) -> ImplicitCover {
        ImplicitCover(EMPTY)
    }

    /// The full space (constant 1).
    pub fn full(&self) -> ImplicitCover {
        ImplicitCover(FULL)
    }

    /// Total number of live non-terminal nodes in the pool.
    pub fn pool_size(&self) -> usize {
        self.nodes.len() - 2
    }

    fn var_of(&self, n: u32) -> u32 {
        if n <= FULL {
            self.width as u32
        } else {
            self.nodes[n as usize].0
        }
    }

    /// Hash-consed node constructor with the `lo == hi` reduction.
    fn mk(&mut self, var: u32, lo: u32, hi: u32) -> u32 {
        if lo == hi {
            return lo;
        }
        let key = (var, lo, hi);
        if let Some(&id) = self.unique.get(&key) {
            return id;
        }
        let id = self.nodes.len() as u32;
        self.nodes.push(key);
        self.unique.insert(key, id);
        id
    }

    /// Splits `n` at variable `var`: the `(lo, hi)` children if `n` branches
    /// there, `(n, n)` if `var` is unconstrained at this level.
    fn children_at(&self, n: u32, var: u32) -> (u32, u32) {
        if n > FULL && self.nodes[n as usize].0 == var {
            let (_, lo, hi) = self.nodes[n as usize];
            (lo, hi)
        } else {
            (n, n)
        }
    }

    fn apply(&mut self, op: u8, a: u32, b: u32) -> u32 {
        // Terminal short-circuits.
        match op {
            OP_UNION => {
                if a == FULL || b == FULL {
                    return FULL;
                }
                if a == EMPTY || a == b {
                    return b;
                }
                if b == EMPTY {
                    return a;
                }
            }
            OP_INTERSECT => {
                if a == EMPTY || b == EMPTY {
                    return EMPTY;
                }
                if a == FULL || a == b {
                    return b;
                }
                if b == FULL {
                    return a;
                }
            }
            OP_DIFF => {
                if a == EMPTY || b == FULL || a == b {
                    return EMPTY;
                }
                if b == EMPTY {
                    return a;
                }
            }
            _ => unreachable!("apply handles binary set ops only"),
        }
        // Union and intersection are commutative: normalise the key.
        let key = if op != OP_DIFF && a > b {
            (op, b, a)
        } else {
            (op, a, b)
        };
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let var = self.var_of(a).min(self.var_of(b));
        let (a0, a1) = self.children_at(a, var);
        let (b0, b1) = self.children_at(b, var);
        let lo = self.apply(op, a0, b0);
        let hi = self.apply(op, a1, b1);
        let r = self.mk(var, lo, hi);
        self.cache.insert(key, r);
        r
    }

    /// The union of two sets (cached).
    pub fn union(&mut self, a: ImplicitCover, b: ImplicitCover) -> ImplicitCover {
        ImplicitCover(self.apply(OP_UNION, a.0, b.0))
    }

    /// The intersection of two sets (cached).
    pub fn intersect(&mut self, a: ImplicitCover, b: ImplicitCover) -> ImplicitCover {
        ImplicitCover(self.apply(OP_INTERSECT, a.0, b.0))
    }

    /// The set difference `a \ b` (cached).
    pub fn diff(&mut self, a: ImplicitCover, b: ImplicitCover) -> ImplicitCover {
        ImplicitCover(self.apply(OP_DIFF, a.0, b.0))
    }

    /// The complement of `a` within the full space (cached).
    pub fn complement(&mut self, a: ImplicitCover) -> ImplicitCover {
        let full = self.full();
        self.diff(full, a)
    }

    /// Rebuilds `set` (owned by `src`) inside this pool, returning the
    /// handle of the identical point set here. Shared subgraphs are
    /// visited once, so the cost is linear in the copied diagram — this
    /// is how a batch of sets built in one shared pool is carved into
    /// per-signal pools for parallel minimisation.
    ///
    /// # Panics
    ///
    /// Panics if the two pools have different widths.
    pub fn copy_set_from(&mut self, src: &ImplicitPool, set: ImplicitCover) -> ImplicitCover {
        assert_eq!(
            self.width, src.width,
            "copying a set between pools of different widths"
        );
        let mut memo = HashMap::new();
        ImplicitCover(self.copy_rec(src, set.0, &mut memo))
    }

    fn copy_rec(&mut self, src: &ImplicitPool, n: u32, memo: &mut HashMap<u32, u32>) -> u32 {
        if n <= FULL {
            return n;
        }
        if let Some(&r) = memo.get(&n) {
            return r;
        }
        let (var, lo, hi) = src.nodes[n as usize];
        let lo = self.copy_rec(src, lo, memo);
        let hi = self.copy_rec(src, hi, memo);
        let r = self.mk(var, lo, hi);
        memo.insert(n, r);
        r
    }

    /// Returns `true` if the sets share at least one point — O(shared
    /// structure) instead of the explicit cover's quadratic cube sweep.
    pub fn intersects(&mut self, a: ImplicitCover, b: ImplicitCover) -> bool {
        !self.intersect(a, b).is_empty()
    }

    /// The Shannon cofactor of `a` with variable `var` pinned to `value`
    /// (cached). The result no longer depends on `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var >= width`.
    pub fn cofactor(&mut self, a: ImplicitCover, var: usize, value: bool) -> ImplicitCover {
        assert!(var < self.width, "variable {var} out of range");
        let op = if value { OP_COFACTOR1 } else { OP_COFACTOR0 };
        ImplicitCover(self.cofactor_rec(op, a.0, var as u32))
    }

    fn cofactor_rec(&mut self, op: u8, n: u32, var: u32) -> u32 {
        if n <= FULL || self.var_of(n) > var {
            return n;
        }
        let key = (op, n, var);
        if let Some(&r) = self.cache.get(&key) {
            return r;
        }
        let (v, lo, hi) = self.nodes[n as usize];
        let r = if v == var {
            if op == OP_COFACTOR1 {
                hi
            } else {
                lo
            }
        } else {
            let l = self.cofactor_rec(op, lo, var);
            let h = self.cofactor_rec(op, hi, var);
            self.mk(v, l, h)
        };
        self.cache.insert(key, r);
        r
    }

    /// The set of points covered by `cube` as an implicit set.
    pub fn cube_set(&mut self, cube: &Cube) -> ImplicitCover {
        debug_assert_eq!(cube.width(), self.width);
        let mut acc = FULL;
        for v in (0..self.width).rev() {
            match cube.get(v) {
                Literal::DontCare => {}
                Literal::Zero => acc = self.mk(v as u32, acc, EMPTY),
                Literal::One => acc = self.mk(v as u32, EMPTY, acc),
            }
        }
        ImplicitCover(acc)
    }

    /// The set of points covered by an explicit cover.
    pub fn cover_set(&mut self, cover: &Cover) -> ImplicitCover {
        let mut acc = self.empty();
        for cube in cover.cubes() {
            let c = self.cube_set(cube);
            acc = self.union(acc, c);
        }
        acc
    }

    /// Builds the set of a batch of complete minterms, merging shared
    /// suffixes as it goes (the rows are reordered in place). This is the
    /// bulk entry point for SG traversal: O(rows × width) with no
    /// intermediate per-state cube allocation.
    pub fn from_minterms(&mut self, list: &mut MintermList) -> ImplicitCover {
        debug_assert_eq!(list.width, self.width);
        let blocks = list.blocks;
        let width = self.width;
        let mut data = std::mem::take(&mut list.data);
        let root = self.build_sorted(&mut data, blocks, 0, width);
        list.data = data;
        ImplicitCover(root)
    }

    /// Recursive bulk build: partition the rows on `var` (zeros first) and
    /// hash-cons the two halves.
    fn build_sorted(&mut self, rows: &mut [u64], blocks: usize, var: usize, width: usize) -> u32 {
        if rows.is_empty() {
            return EMPTY;
        }
        if var == width {
            return FULL;
        }
        let n = rows.len() / blocks;
        let (b, m) = (var / 64, 1u64 << (var % 64));
        // In-place partition: rows with bit 0 first.
        let mut lo_end = 0usize;
        for i in 0..n {
            if rows[i * blocks + b] & m == 0 {
                if i != lo_end {
                    for k in 0..blocks {
                        rows.swap(lo_end * blocks + k, i * blocks + k);
                    }
                }
                lo_end += 1;
            }
        }
        let (lo_rows, hi_rows) = rows.split_at_mut(lo_end * blocks);
        let lo = self.build_sorted(lo_rows, blocks, var + 1, width);
        let hi = self.build_sorted(hi_rows, blocks, var + 1, width);
        self.mk(var as u32, lo, hi)
    }

    /// Returns `true` if `cube` shares at least one point with `set` — the
    /// implicit form of the minimiser's innermost disjointness probe.
    pub fn cube_intersects(&self, cube: &Cube, set: ImplicitCover) -> bool {
        debug_assert_eq!(cube.width(), self.width);
        let mut memo: HashMap<u32, bool> = HashMap::new();
        self.cube_intersects_rec(cube, set.0, &mut memo)
    }

    fn cube_intersects_rec(&self, cube: &Cube, n: u32, memo: &mut HashMap<u32, bool>) -> bool {
        if n == EMPTY {
            return false;
        }
        if n == FULL {
            // Remaining variables are unconstrained by the set; the cube's
            // own literals are always satisfiable.
            return true;
        }
        if let Some(&r) = memo.get(&n) {
            return r;
        }
        let (var, lo, hi) = self.nodes[n as usize];
        let r = match cube.get(var as usize) {
            Literal::Zero => self.cube_intersects_rec(cube, lo, memo),
            Literal::One => self.cube_intersects_rec(cube, hi, memo),
            Literal::DontCare => {
                self.cube_intersects_rec(cube, lo, memo) || self.cube_intersects_rec(cube, hi, memo)
            }
        };
        memo.insert(n, r);
        r
    }

    /// Number of points in the set, saturating at `u128::MAX`.
    pub fn count(&self, set: ImplicitCover) -> u128 {
        let mut memo: HashMap<u32, u128> = HashMap::new();
        let c = self.count_rec(set.0, &mut memo);
        shl_sat(c, self.var_of(set.0))
    }

    fn count_rec(&self, n: u32, memo: &mut HashMap<u32, u128>) -> u128 {
        if n == EMPTY {
            return 0;
        }
        if n == FULL {
            return 1;
        }
        if let Some(&c) = memo.get(&n) {
            return c;
        }
        let (var, lo, hi) = self.nodes[n as usize];
        let cl = self.count_rec(lo, memo);
        let ch = self.count_rec(hi, memo);
        let c = shl_sat(cl, self.var_of(lo) - var - 1)
            .saturating_add(shl_sat(ch, self.var_of(hi) - var - 1));
        memo.insert(n, c);
        c
    }

    /// Number of diagram nodes reachable from `set` (the implicit size the
    /// exact minimiser charges its budget against).
    pub fn node_count(&self, set: ImplicitCover) -> usize {
        if set.0 <= FULL {
            return 0;
        }
        let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
        seen.insert(set.0);
        let mut stack = vec![set.0];
        while let Some(n) = stack.pop() {
            let (_, lo, hi) = self.nodes[n as usize];
            for c in [lo, hi] {
                if c > FULL && seen.insert(c) {
                    stack.push(c);
                }
            }
        }
        seen.len()
    }

    /// The canonically smallest minterm of the set (`0` preferred over `1`
    /// at every variable, earlier variables first), or `None` when empty.
    pub fn first_minterm(&self, set: ImplicitCover) -> Option<Vec<bool>> {
        if set.is_empty() {
            return None;
        }
        let mut bits = vec![false; self.width];
        let mut n = set.0;
        while n != FULL {
            let (var, lo, hi) = self.nodes[n as usize];
            if lo != EMPTY {
                n = lo;
            } else {
                bits[var as usize] = true;
                n = hi;
            }
        }
        Some(bits)
    }

    /// The smallest cube containing every point of the set, or `None` when
    /// the set is empty.
    pub fn supercube(&self, set: ImplicitCover) -> Option<Cube> {
        if set.is_empty() {
            return None;
        }
        let width = self.width;
        let mut can0 = vec![false; width];
        let mut can1 = vec![false; width];
        let free_between = |lo: u32, hi: u32, can0: &mut [bool], can1: &mut [bool]| {
            for v in lo..hi {
                can0[v as usize] = true;
                can1[v as usize] = true;
            }
        };
        free_between(0, self.var_of(set.0), &mut can0, &mut can1);
        if set.0 == FULL {
            // Every variable is free.
        } else {
            let mut seen: std::collections::HashSet<u32> = std::collections::HashSet::new();
            seen.insert(set.0);
            let mut stack = vec![set.0];
            // In a canonical diagram every non-empty child edge lies on an
            // accepting path, so polarity/freeness can be read off edges.
            while let Some(n) = stack.pop() {
                let (var, lo, hi) = self.nodes[n as usize];
                if lo != EMPTY {
                    can0[var as usize] = true;
                    free_between(var + 1, self.var_of(lo), &mut can0, &mut can1);
                    if lo > FULL && seen.insert(lo) {
                        stack.push(lo);
                    }
                }
                if hi != EMPTY {
                    can1[var as usize] = true;
                    free_between(var + 1, self.var_of(hi), &mut can0, &mut can1);
                    if hi > FULL && seen.insert(hi) {
                        stack.push(hi);
                    }
                }
            }
        }
        let mut cube = Cube::full(width);
        for v in 0..width {
            match (can0[v], can1[v]) {
                (true, true) => {}
                (true, false) => cube.set(v, Literal::Zero),
                (false, true) => cube.set(v, Literal::One),
                (false, false) => unreachable!("non-empty set constrains every variable somehow"),
            }
        }
        Some(cube)
    }

    /// Materialises the set as its canonical disjoint-cube cover: one cube
    /// per root-to-`1` path (skipped variables become don't-cares), in
    /// canonical cube order.
    pub fn to_cover(&self, set: ImplicitCover) -> Cover {
        let mut out: Vec<Cube> = Vec::new();
        let mut path = Cube::full(self.width);
        self.paths_rec(set.0, &mut path, &mut out);
        let mut cover: Cover = out.into_iter().collect();
        if cover.is_empty() {
            cover = Cover::empty(self.width);
        }
        canonical_order(&mut cover);
        cover
    }

    fn paths_rec(&self, n: u32, path: &mut Cube, out: &mut Vec<Cube>) {
        if n == EMPTY {
            return;
        }
        if n == FULL {
            out.push(path.clone());
            return;
        }
        let (var, lo, hi) = self.nodes[n as usize];
        path.set(var as usize, Literal::Zero);
        self.paths_rec(lo, path, out);
        path.set(var as usize, Literal::One);
        self.paths_rec(hi, path, out);
        path.set(var as usize, Literal::DontCare);
    }

    /// Materialises the set as its explicit minterm cover, in canonical
    /// (lexicographic) order — exactly the cover the explicit enumeration
    /// path would have produced. Cost is proportional to the point count,
    /// so only call this where the explicit path would have been viable.
    pub fn minterms_cover(&self, set: ImplicitCover) -> Cover {
        let mut out: Vec<Cube> = Vec::new();
        let mut bits = vec![false; self.width];
        self.minterms_rec(set.0, 0, &mut bits, &mut out);
        let mut cover: Cover = out.into_iter().collect();
        if cover.is_empty() {
            cover = Cover::empty(self.width);
        }
        cover
    }

    fn minterms_rec(&self, n: u32, var: usize, bits: &mut Vec<bool>, out: &mut Vec<Cube>) {
        if n == EMPTY {
            return;
        }
        if var == self.width {
            out.push(Cube::minterm(bits.iter().copied()));
            return;
        }
        let (lo, hi) = self.children_at(n, var as u32);
        bits[var] = false;
        self.minterms_rec(lo, var + 1, bits, out);
        bits[var] = true;
        self.minterms_rec(hi, var + 1, bits, out);
        bits[var] = false;
    }
}

/// Saturating left shift for point counts.
fn shl_sat(x: u128, k: u32) -> u128 {
    if x == 0 {
        0
    } else if k >= 128 || x.leading_zeros() < k {
        u128::MAX
    } else {
        x << k
    }
}

/// A flat batch of complete minterms (one row of packed bit blocks per
/// point) feeding [`ImplicitPool::from_minterms`].
#[derive(Debug, Clone)]
pub struct MintermList {
    width: usize,
    blocks: usize,
    data: Vec<u64>,
}

impl MintermList {
    /// Creates an empty list over `width` variables.
    pub fn new(width: usize) -> Self {
        MintermList {
            width,
            blocks: width.div_ceil(64).max(1),
            data: Vec::new(),
        }
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.data.len() / self.blocks
    }

    /// Returns `true` if no rows were pushed.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Appends one complete minterm given as variable values in index order.
    ///
    /// # Panics
    ///
    /// Panics if the iterator yields fewer or more than `width` values.
    pub fn push<I: IntoIterator<Item = bool>>(&mut self, bits: I) {
        let start = self.data.len();
        self.data.resize(start + self.blocks, 0);
        let mut n = 0usize;
        for (i, v) in bits.into_iter().enumerate() {
            if v {
                self.data[start + i / 64] |= 1u64 << (i % 64);
            }
            n += 1;
        }
        assert_eq!(n, self.width, "minterm width mismatch");
    }

    /// Appends one minterm given as pre-packed bit blocks.
    ///
    /// # Panics
    ///
    /// Panics if `row` has the wrong number of blocks.
    pub fn push_blocks(&mut self, row: &[u64]) {
        assert_eq!(row.len(), self.blocks, "block count mismatch");
        self.data.extend_from_slice(row);
    }
}

/// EXPAND seeded from the implicit on-set: emits exactly the primes the
/// explicit EXPAND would produce on the canonically ordered minterm cover of
/// `on` — successive canonically smallest uncovered minterms, greedily
/// raised in variable order against the off-set, with the same absorption
/// bookkeeping.
fn expand_implicit(pool: &mut ImplicitPool, on: ImplicitCover, off: ImplicitCover) -> Cover {
    let width = pool.width();
    let mut result: Vec<Cube> = Vec::new();
    let mut remaining = on;
    while let Some(bits) = pool.first_minterm(remaining) {
        let mut cube = Cube::minterm(bits);
        for v in 0..width {
            let saved = cube.get(v);
            if saved == Literal::DontCare {
                continue;
            }
            cube.set(v, Literal::DontCare);
            if pool.cube_intersects(&cube, off) {
                cube.set(v, saved);
            }
        }
        let covered = pool.cube_set(&cube);
        remaining = pool.diff(remaining, covered);
        if !result.iter().any(|r| r.contains(&cube)) {
            result.retain(|r| !cube.contains(r));
            result.push(cube);
        }
    }
    result.into_iter().collect()
}

/// EXPAND over an explicit working cover (iterations after the first),
/// probing raise legality against the implicit off-set. Decision-identical
/// to the explicit blocking-structure EXPAND against the off-set's minterm
/// cover: a raise is legal iff the raised cube still misses the off-set as
/// a point set.
fn expand_cover_implicit(pool: &mut ImplicitPool, f: &mut Cover, off: ImplicitCover) {
    let width = f.width();
    let mut cubes: Vec<Cube> = f.cubes().to_vec();
    cubes.sort_by_key(|c| c.literal_count());
    let mut result: Vec<Cube> = Vec::with_capacity(cubes.len());
    for mut cube in cubes {
        if result.iter().any(|r| r.contains(&cube)) {
            continue;
        }
        for v in 0..width {
            let saved = cube.get(v);
            if saved == Literal::DontCare {
                continue;
            }
            cube.set(v, Literal::DontCare);
            if pool.cube_intersects(&cube, off) {
                cube.set(v, saved);
            }
        }
        if !result.iter().any(|r| r.contains(&cube)) {
            result.retain(|r| !cube.contains(r));
            result.push(cube);
        }
    }
    *f = result.into_iter().collect();
}

/// IRREDUNDANT against the implicit on-set: a cube is removable iff the
/// on-points inside it stay covered by the remaining cubes — the emptiness
/// of one implicit difference. Removal order matches the explicit phase.
fn irredundant_implicit(pool: &mut ImplicitPool, f: &mut Cover, on: ImplicitCover) {
    let mut order: Vec<usize> = (0..f.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(f.cubes()[i].literal_count()));
    let mut removed = vec![false; f.len()];
    for &i in &order {
        removed[i] = true;
        let target = pool.cube_set(&f.cubes()[i]);
        let mut rest = pool.empty();
        for (j, c) in f.cubes().iter().enumerate() {
            if !removed[j] {
                let cs = pool.cube_set(c);
                rest = pool.union(rest, cs);
            }
        }
        let obliged = pool.intersect(on, target);
        if !pool.diff(obliged, rest).is_empty() {
            removed[i] = false;
        }
    }
    *f = f
        .cubes()
        .iter()
        .enumerate()
        .filter(|(j, _)| !removed[*j])
        .map(|(_, c)| c.clone())
        .collect();
}

/// REDUCE against the implicit on-set: each cube shrinks onto the supercube
/// of the on-points inside it left uncovered by the rest of the cover —
/// the same landing spot as the explicit residue-supercube REDUCE.
fn reduce_implicit(pool: &mut ImplicitPool, f: &mut Cover, on: ImplicitCover) {
    let width = f.width();
    let mut cubes: Vec<Cube> = f.cubes().to_vec();
    for i in 0..cubes.len() {
        let entry = cubes[i].clone();
        let entry_set = pool.cube_set(&entry);
        let mut rest = pool.empty();
        for (j, c) in cubes.iter().enumerate() {
            if j != i {
                let cs = pool.cube_set(c);
                rest = pool.union(rest, cs);
            }
        }
        let obliged = pool.intersect(on, entry_set);
        let residue = pool.diff(obliged, rest);
        cubes[i] = match pool.supercube(residue) {
            // No residue: the rest already covers every obligation; the
            // greedy pins each free variable to 1.
            None => {
                let mut c = entry;
                for v in 0..width {
                    if c.get(v) == Literal::DontCare {
                        c.set(v, Literal::One);
                    }
                }
                c
            }
            Some(s) if entry.contains(&s) => s,
            // The residue sticks out: no shrink is valid.
            Some(_) => entry,
        };
    }
    *f = cubes.into_iter().collect();
}

/// Cover cost: cube count first, then literal count (lexicographic), in a
/// width-independent integer type so the implicit minterm count can be
/// compared without materialising.
fn cost(f: &Cover) -> (u128, u128) {
    (f.len() as u128, f.literal_count() as u128)
}

/// Minimises the implicit on-set against the implicit off-set, producing
/// **byte-identical** output to [`minimize`](crate::minimize) applied to
/// the canonically ordered explicit minterm covers of the same point sets
/// — without ever materialising those covers (unless no iteration improves
/// on the raw minterm cost, in which case the minterms *are* the result,
/// exactly as in the explicit path).
///
/// Points in neither set are don't-cares, as in the explicit minimiser.
///
/// # Examples
///
/// ```
/// use si_cubes::implicit::{minimize_implicit, ImplicitPool};
/// use si_cubes::{Cover, Cube};
///
/// let mut pool = ImplicitPool::new(2);
/// let on_cover: Cover = [Cube::from_str_cube("11")].into_iter().collect();
/// let off_cover: Cover = [Cube::from_str_cube("00")].into_iter().collect();
/// let on = pool.cover_set(&on_cover);
/// let off = pool.cover_set(&off_cover);
/// let min = minimize_implicit(&mut pool, on, off);
/// assert_eq!(min.literal_count(), 1); // 01/10 are DC: one literal suffices
/// ```
pub fn minimize_implicit(pool: &mut ImplicitPool, on: ImplicitCover, off: ImplicitCover) -> Cover {
    debug_assert!(
        !pool.intersects(on, off),
        "on-set and off-set must be disjoint"
    );
    let width = pool.width();
    if on.is_empty() {
        return Cover::empty(width);
    }
    let n = pool.count(on);
    // The explicit path's starting point is the minterm cover itself.
    let mut best: Option<Cover> = None;
    let mut best_cost: (u128, u128) = (n, n.saturating_mul(width as u128));
    let mut f = Cover::empty(width);
    for iteration in 0..8 {
        if iteration == 0 {
            f = expand_implicit(pool, on, off);
        } else {
            expand_cover_implicit(pool, &mut f, off);
        }
        irredundant_implicit(pool, &mut f, on);
        let c = cost(&f);
        if c < best_cost {
            best = Some(f.clone());
            best_cost = c;
        } else {
            break;
        }
        reduce_implicit(pool, &mut f, on);
    }
    let mut out = match best {
        Some(b) => b,
        // No iteration beat the raw minterm cover (XOR-like functions):
        // the explicit path returns the minterm cover itself.
        None => pool.minterms_cover(on),
    };
    canonical_order(&mut out);
    out
}

/// Exactly minimises the implicit on-set against the implicit off-set with
/// the Quine–McCluskey engine, charging [`QmBudget::max_nodes`] against the
/// implicit representation *before* materialising anything: the diagram
/// node counts are charged first, then a lower bound of the explicit
/// engine's work (`|on| · width · |off|` raise probes). If either exceeds
/// the budget the explicit search is guaranteed to give up too, so `None`
/// comes back in O(implicit size) instead of after an exponential
/// enumeration. Within budget the result is byte-identical to
/// [`minimize_exact`] on the canonically ordered minterm covers.
pub fn minimize_exact_implicit(
    pool: &mut ImplicitPool,
    on: ImplicitCover,
    off: ImplicitCover,
    budget: &QmBudget,
) -> Option<Cover> {
    debug_assert!(!pool.intersects(on, off), "on/off must be disjoint");
    let width = pool.width() as u128;
    if on.is_empty() {
        return Some(Cover::empty(pool.width()));
    }
    let max = budget.max_nodes as u128;
    let nodes = (pool.node_count(on) + pool.node_count(off)) as u128;
    if nodes > max {
        return None;
    }
    let n = pool.count(on);
    let m = pool.count(off);
    // Lower bound of the explicit engine's spend: popping the |on| seed
    // minterms charges 1 + width·(1 + |off|) work units each.
    let lower = n.saturating_mul(1 + width.saturating_mul(1 + m));
    if lower > max {
        return None;
    }
    let on_cover = pool.minterms_cover(on);
    let off_cover = pool.minterms_cover(off);
    minimize_exact(&on_cover, &off_cover, budget)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::espresso::minimize;

    fn cover(cubes: &[&str]) -> Cover {
        cubes.iter().map(|s| Cube::from_str_cube(s)).collect()
    }

    /// All assignments over `width` variables.
    fn assignments(width: usize) -> impl Iterator<Item = Vec<bool>> {
        (0..(1u32 << width)).map(move |x| (0..width).map(|i| (x >> i) & 1 == 1).collect())
    }

    fn set_of(pool: &mut ImplicitPool, cubes: &[&str]) -> ImplicitCover {
        let c = cover(cubes);
        pool.cover_set(&c)
    }

    #[test]
    fn set_algebra_matches_pointwise() {
        let mut pool = ImplicitPool::new(4);
        let a = set_of(&mut pool, &["1--0", "01--"]);
        let b = set_of(&mut pool, &["1---", "--11"]);
        let u = pool.union(a, b);
        let i = pool.intersect(a, b);
        let d = pool.diff(a, b);
        let n = pool.complement(a);
        let ca = cover(&["1--0", "01--"]);
        let cb = cover(&["1---", "--11"]);
        for bits in assignments(4) {
            let ia = ca.covers_bits(&bits);
            let ib = cb.covers_bits(&bits);
            let m = Cube::minterm(bits.iter().copied());
            let mut p = pool.clone();
            let ms = p.cube_set(&m);
            assert_eq!(p.intersects(ms, u), ia || ib, "{bits:?} union");
            assert_eq!(p.intersects(ms, i), ia && ib, "{bits:?} intersect");
            assert_eq!(p.intersects(ms, d), ia && !ib, "{bits:?} diff");
            assert_eq!(p.intersects(ms, n), !ia, "{bits:?} complement");
        }
    }

    #[test]
    fn canonicity_equal_sets_share_ids() {
        let mut pool = ImplicitPool::new(3);
        let a = set_of(&mut pool, &["1--", "-1-"]);
        let b = set_of(&mut pool, &["-1-", "1--"]);
        assert_eq!(a, b);
        let c = set_of(&mut pool, &["11-", "10-", "01-", "-1-"]);
        assert_eq!(a, c, "same point set, different cube lists");
    }

    #[test]
    fn cofactor_matches_pointwise() {
        let mut pool = ImplicitPool::new(3);
        let a = set_of(&mut pool, &["1-0", "01-"]);
        let ca = cover(&["1-0", "01-"]);
        for var in 0..3 {
            for value in [false, true] {
                let cof = pool.cofactor(a, var, value);
                for mut bits in assignments(3) {
                    // Membership of the cofactor must not depend on `var`.
                    bits[var] = value;
                    let m = Cube::minterm(bits.iter().copied());
                    let ms = pool.cube_set(&m);
                    assert_eq!(
                        pool.intersects(ms, cof),
                        ca.covers_bits(&bits),
                        "var {var}={value:?} at {bits:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn copy_set_from_lands_on_the_same_point_set() {
        let mut src = ImplicitPool::new(4);
        // Populate the source pool with unrelated garbage first so the
        // copied ids cannot accidentally line up.
        let _ = set_of(&mut src, &["0--1", "--00"]);
        let a = set_of(&mut src, &["1--0", "01--", "--11"]);
        let mut dst = ImplicitPool::new(4);
        let b = dst.copy_set_from(&src, a);
        assert_eq!(src.minterms_cover(a).cubes(), dst.minterms_cover(b).cubes());
        // Terminals pass through unchanged.
        assert_eq!(dst.copy_set_from(&src, src.empty()), dst.empty());
        assert_eq!(dst.copy_set_from(&src, src.full()), dst.full());
        // Copying into a non-empty pool hash-conses against what is
        // already there: the same set copied twice shares one handle.
        assert_eq!(dst.copy_set_from(&src, a), b);
    }

    #[test]
    fn from_minterms_equals_per_point_union() {
        let mut list = MintermList::new(4);
        let points = [0b0000u32, 0b1010, 0b0110, 0b1111, 0b1010];
        for &p in &points {
            list.push((0..4).map(|i| (p >> i) & 1 == 1));
        }
        let mut pool = ImplicitPool::new(4);
        let bulk = pool.from_minterms(&mut list);
        let mut one_by_one = pool.empty();
        for &p in &points {
            let m = Cube::minterm((0..4).map(|i| (p >> i) & 1 == 1));
            let ms = pool.cube_set(&m);
            one_by_one = pool.union(one_by_one, ms);
        }
        assert_eq!(bulk, one_by_one);
        assert_eq!(pool.count(bulk), 4, "duplicate rows collapse");
    }

    #[test]
    fn first_minterm_is_canonical_min() {
        let mut pool = ImplicitPool::new(3);
        let a = set_of(&mut pool, &["11-", "-01"]);
        // Points: 110, 111, 001, 101 → canonical min (var order, 0<1): 001.
        assert_eq!(pool.first_minterm(a), Some(vec![false, false, true]));
        let empty = pool.empty();
        assert_eq!(pool.first_minterm(empty), None);
    }

    #[test]
    fn count_and_node_count() {
        let mut pool = ImplicitPool::new(10);
        let full = pool.full();
        assert_eq!(pool.count(full), 1024);
        assert_eq!(pool.node_count(full), 0);
        let a = set_of(&mut pool, &["1---------"]);
        assert_eq!(pool.count(a), 512);
        assert_eq!(pool.node_count(a), 1);
        let empty = pool.empty();
        assert_eq!(pool.count(empty), 0);
    }

    #[test]
    fn supercube_matches_explicit() {
        let mut pool = ImplicitPool::new(4);
        for cubes in [
            vec!["1100", "1010"],
            vec!["0---"],
            vec!["1111", "0000"],
            vec!["01-0", "011-"],
        ] {
            let s = set_of(&mut pool, &cubes);
            let sup = pool.supercube(s).expect("non-empty");
            // Explicit supercube over the materialised minterms.
            let minterms = pool.minterms_cover(s);
            let mut expected = minterms.cubes()[0].clone();
            for m in &minterms.cubes()[1..] {
                expected = expected.supercube(m);
            }
            assert_eq!(sup, expected, "{cubes:?}");
        }
        let empty = pool.empty();
        assert!(pool.supercube(empty).is_none());
    }

    #[test]
    fn to_cover_is_disjoint_and_exact() {
        let mut pool = ImplicitPool::new(4);
        let s = set_of(&mut pool, &["11--", "1-1-", "--01"]);
        let c = pool.to_cover(s);
        let reference = cover(&["11--", "1-1-", "--01"]);
        for bits in assignments(4) {
            assert_eq!(c.covers_bits(&bits), reference.covers_bits(&bits));
        }
        // Pairwise disjoint cubes.
        for (i, a) in c.cubes().iter().enumerate() {
            for b in &c.cubes()[i + 1..] {
                assert!(a.disjoint(b), "{a} overlaps {b}");
            }
        }
    }

    #[test]
    fn minterms_cover_is_sorted_and_complete() {
        let mut pool = ImplicitPool::new(3);
        let s = set_of(&mut pool, &["1--"]);
        let m = pool.minterms_cover(s);
        let strs: Vec<String> = m.cubes().iter().map(ToString::to_string).collect();
        assert_eq!(strs, vec!["100", "101", "110", "111"]);
    }

    #[test]
    fn minimize_implicit_fig1() {
        let mut pool = ImplicitPool::new(3);
        let on = set_of(&mut pool, &["100", "101", "110", "111", "001", "011"]);
        let off = set_of(&mut pool, &["010", "000"]);
        let min = minimize_implicit(&mut pool, on, off);
        assert_eq!(min.to_expression_string(&["a", "b", "c"]), "a + c");
    }

    #[test]
    fn minimize_implicit_matches_explicit_on_partitions() {
        // Deterministic seed sweep; the full random pin lives in the
        // proptest suite.
        for seed in [1u64, 7, 42, 0xDEAD_BEEF, 0x1234_5678_9ABC] {
            let width = 5usize;
            let mut on = Cover::empty(width);
            let mut off = Cover::empty(width);
            for x in 0..(1u32 << width) {
                let bits: Vec<bool> = (0..width).map(|i| (x >> i) & 1 == 1).collect();
                match (seed >> (x as usize % 60)) & 0b11 {
                    0 => on.push(Cube::minterm(bits)),
                    1 => off.push(Cube::minterm(bits)),
                    _ => {}
                }
            }
            canonical_order(&mut on);
            canonical_order(&mut off);
            let mut pool = ImplicitPool::new(width);
            let on_i = pool.cover_set(&on);
            let off_i = pool.cover_set(&off);
            let implicit = minimize_implicit(&mut pool, on_i, off_i);
            let explicit = if on.is_empty() {
                on.clone()
            } else {
                minimize(&on, &off)
            };
            assert_eq!(
                implicit.cubes(),
                explicit.cubes(),
                "seed {seed}: {implicit} vs {explicit}"
            );
        }
    }

    #[test]
    fn minimize_implicit_xor_returns_minterms() {
        // XOR cannot be improved: the explicit path returns the input
        // minterm cover; the implicit path must materialise the same.
        let mut pool = ImplicitPool::new(2);
        let on = set_of(&mut pool, &["10", "01"]);
        let off = set_of(&mut pool, &["11", "00"]);
        let min = minimize_implicit(&mut pool, on, off);
        let on_cover = cover(&["01", "10"]);
        let explicit = minimize(&on_cover, &cover(&["00", "11"]));
        assert_eq!(min.cubes(), explicit.cubes());
    }

    #[test]
    fn minimize_exact_implicit_within_budget_matches() {
        let mut pool = ImplicitPool::new(3);
        let on = set_of(&mut pool, &["110", "100"]);
        let off = set_of(&mut pool, &["0--", "1-1"]);
        let min = minimize_exact_implicit(&mut pool, on, off, &QmBudget::default())
            .expect("small problem");
        assert_eq!(min.len(), 1);
        assert_eq!(min.cubes()[0].to_string(), "1-0");
    }

    #[test]
    fn minimize_exact_implicit_gives_up_without_materialising() {
        // A wide on/off pair whose explicit lower bound alone blows a tiny
        // budget: the give-up must not enumerate the (large) point sets.
        let mut pool = ImplicitPool::new(40);
        let full = pool.full();
        let zero_half = {
            let c = Cube::from_str_cube(&("0".to_owned() + &"-".repeat(39)));
            pool.cube_set(&c)
        };
        let one_half = pool.diff(full, zero_half);
        let tiny = QmBudget {
            max_primes: 10,
            max_nodes: 1_000,
        };
        assert!(minimize_exact_implicit(&mut pool, one_half, zero_half, &tiny).is_none());
    }

    #[test]
    fn empty_on_set_minimises_to_empty() {
        let mut pool = ImplicitPool::new(3);
        let empty = pool.empty();
        let off = pool.full();
        assert!(minimize_implicit(&mut pool, empty, off).is_empty());
        let exact =
            minimize_exact_implicit(&mut pool, empty, off, &QmBudget::default()).expect("trivial");
        assert!(exact.is_empty());
    }
}
