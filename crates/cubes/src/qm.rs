//! Exact two-level minimisation (Quine–McCluskey with a Petrick-style
//! branch-and-bound cover selection).
//!
//! The SG-based tools the paper compares against perform *exact* logic
//! minimisation, which the paper blames for the second exponent in their
//! doubly-exponential Figure 6 curves ("the second is due to the
//! exponential complexity of the exact synthesis process used in both
//! tools"). This module reproduces that behaviour faithfully: prime
//! implicant generation over the on∪dc space followed by an exact minimum
//! cover search.
//!
//! Budgeted: the search gives up (returning `None`) past `QmBudget` so
//! benchmark harnesses can report "prohibitively long" instead of hanging.

use std::collections::HashSet;

use crate::cover::Cover;
use crate::cube::{Cube, Literal};

/// Resource limits for the exact minimiser.
#[derive(Debug, Clone, Copy)]
pub struct QmBudget {
    /// Maximum number of prime implicants generated.
    pub max_primes: usize,
    /// Maximum number of work units spent overall: candidate cubes expanded
    /// during prime generation, chunk splits, and branch-and-bound nodes all
    /// count against this single bound, so `minimize_exact` returns `None`
    /// in bounded time instead of hanging on wide inputs.
    pub max_nodes: usize,
}

impl Default for QmBudget {
    fn default() -> Self {
        QmBudget {
            max_primes: 20_000,
            max_nodes: 10_000_000,
        }
    }
}

/// Exactly minimises `on` against `off` (everything else don't-care):
/// returns a minimum-cube (then minimum-literal) prime cover of the on-set,
/// or `None` when the budget is exhausted.
///
/// # Panics
///
/// Panics (in debug builds) if `on` and `off` intersect.
///
/// # Examples
///
/// ```
/// use si_cubes::{minimize_exact, Cover, Cube, QmBudget};
///
/// let on: Cover = ["110", "100"].into_iter().map(Cube::from_str_cube).collect();
/// let off: Cover = ["0--", "1-1"].into_iter().map(Cube::from_str_cube).collect();
/// let min = minimize_exact(&on, &off, &QmBudget::default()).expect("small problem");
/// assert_eq!(min.len(), 1);
/// assert_eq!(min.cubes()[0].to_string(), "1-0");
/// ```
pub fn minimize_exact(on: &Cover, off: &Cover, budget: &QmBudget) -> Option<Cover> {
    debug_assert!(!on.intersects(off), "on/off must be disjoint");
    if on.is_empty() {
        return Some(on.clone());
    }
    let width = on.width();

    // 1. Prime implicants: start from the on-cubes and expand/merge until
    //    closure. A cube is an implicant iff it misses the off-set; it is
    //    prime iff no single-literal raise keeps it an implicant.
    let mut work: Vec<Cube> = on.cubes().to_vec();
    let mut seen: HashSet<String> = work.iter().map(ToString::to_string).collect();
    let mut primes: Vec<Cube> = Vec::new();
    let mut spent = 0usize;
    while let Some(cube) = work.pop() {
        spent += 1;
        if spent > budget.max_nodes {
            return None;
        }
        let mut is_prime = true;
        for v in 0..width {
            if cube.get(v) == Literal::DontCare {
                continue;
            }
            // Each raise test scans the off-set, so it is the dominant cost
            // of prime generation — charge it against the work budget in
            // proportion to the cubes it touches.
            spent = spent.saturating_add(1 + off.len());
            if spent > budget.max_nodes {
                return None;
            }
            let mut raised = cube.clone();
            raised.set(v, Literal::DontCare);
            if off.cubes().iter().any(|o| o.intersect(&raised).is_some()) {
                continue;
            }
            is_prime = false;
            if seen.insert(raised.to_string()) {
                work.push(raised);
            }
        }
        if is_prime && !primes.iter().any(|p| p.contains(&cube)) {
            primes.retain(|p| !cube.contains(p));
            primes.push(cube);
        }
        if primes.len() + work.len() > budget.max_primes {
            return None;
        }
    }

    // 2. Exact cover: every on-cube must be covered by the chosen primes.
    //    Split each on-cube against the prime list so coverage is checked
    //    on disjoint "chunks" (each chunk is wholly inside or outside any
    //    prime it intersects — we conservatively refine to minterm-free
    //    chunks via recursive splitting).
    let chunks = split_into_chunks(on, &primes, budget.max_nodes, &mut spent)?;
    // Membership matrix: chunk i covered by prime j? Building it scans every
    // prime per chunk — charge that before doing the work.
    spent = spent.saturating_add(chunks.len().saturating_mul(primes.len()));
    if spent > budget.max_nodes {
        return None;
    }
    let matrix: Vec<Vec<usize>> = chunks
        .iter()
        .map(|c| {
            primes
                .iter()
                .enumerate()
                .filter(|(_, p)| p.contains(c))
                .map(|(j, _)| j)
                .collect()
        })
        .collect();
    debug_assert!(matrix.iter().all(|row| !row.is_empty()));

    // Branch and bound on (cube count, literal count).
    let mut best: Option<(usize, usize, Vec<usize>)> = None;
    let mut chosen: Vec<usize> = Vec::new();
    search(
        &matrix,
        &primes,
        0,
        &mut chosen,
        &mut best,
        &mut spent,
        budget.max_nodes,
    );
    if spent > budget.max_nodes {
        return None;
    }
    let (_, _, picks) = best?;
    let mut out: Cover = picks.into_iter().map(|j| primes[j].clone()).collect();
    out.remove_contained();
    Some(out)
}

/// Splits the on-cubes into pieces that are each contained in at least one
/// prime (recursively cutting along primes until containment holds).
/// Returns `None` when the cumulative work budget is exhausted.
fn split_into_chunks(
    on: &Cover,
    primes: &[Cube],
    max_nodes: usize,
    spent: &mut usize,
) -> Option<Vec<Cube>> {
    let mut chunks = Vec::new();
    let mut work: Vec<Cube> = on.cubes().to_vec();
    while let Some(cube) = work.pop() {
        // Each popped cube scans the prime list (containment, then overlap).
        *spent = spent.saturating_add(1 + primes.len());
        if *spent > max_nodes {
            return None;
        }
        if primes.iter().any(|p| p.contains(&cube)) {
            chunks.push(cube);
            continue;
        }
        // Cut the cube along the first prime that overlaps it. Prime
        // generation covers the whole on-set, so an overlap always exists
        // for a cube that no prime contains.
        let Some(inside) = primes.iter().find_map(|p| p.intersect(&cube)) else {
            unreachable!("on-set cube outside every prime implicant");
        };
        work.extend(cube.sharp(&inside));
        work.push(inside);
    }
    Some(chunks)
}

fn cost_of(primes: &[Cube], picks: &[usize]) -> (usize, usize) {
    (
        picks.len(),
        picks.iter().map(|&j| primes[j].literal_count()).sum(),
    )
}

fn search(
    matrix: &[Vec<usize>],
    primes: &[Cube],
    row: usize,
    chosen: &mut Vec<usize>,
    best: &mut Option<(usize, usize, Vec<usize>)>,
    nodes: &mut usize,
    max_nodes: usize,
) {
    *nodes += 1;
    if *nodes > max_nodes {
        return;
    }
    // Prune: already worse than the best complete solution.
    if let Some((bc, bl, _)) = best {
        let (c, l) = cost_of(primes, chosen);
        if c > *bc || (c == *bc && l >= *bl) {
            return;
        }
    }
    // Find the next uncovered row.
    let mut r = row;
    while r < matrix.len() && matrix[r].iter().any(|j| chosen.contains(j)) {
        r += 1;
    }
    if r == matrix.len() {
        let (c, l) = cost_of(primes, chosen);
        let better = match best {
            None => true,
            Some((bc, bl, _)) => c < *bc || (c == *bc && l < *bl),
        };
        if better {
            *best = Some((c, l, chosen.clone()));
        }
        return;
    }
    for &j in &matrix[r] {
        chosen.push(j);
        search(matrix, primes, r + 1, chosen, best, nodes, max_nodes);
        chosen.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::espresso::minimize;

    fn cover(cubes: &[&str]) -> Cover {
        cubes.iter().map(|s| Cube::from_str_cube(s)).collect()
    }

    fn check(on: &Cover, off: &Cover) -> Cover {
        let min = minimize_exact(on, off, &QmBudget::default()).expect("within budget");
        assert!(min.covers_cover(on), "on-set lost");
        assert!(!min.intersects(off), "off-set hit");
        min
    }

    #[test]
    fn merges_adjacent_minterms() {
        let on = cover(&["110", "100"]);
        let off = cover(&["0--", "1-1"]);
        let min = check(&on, &off);
        assert_eq!(min.len(), 1);
        assert_eq!(min.cubes()[0].to_string(), "1-0");
    }

    #[test]
    fn paper_fig1_exactly_two_literals() {
        let on = cover(&["100", "101", "110", "111", "001", "011"]);
        let off = cover(&["010", "000"]);
        let min = check(&on, &off);
        assert_eq!(min.literal_count(), 2);
    }

    #[test]
    fn xor_needs_two_cubes() {
        let on = cover(&["10", "01"]);
        let off = cover(&["11", "00"]);
        let min = check(&on, &off);
        assert_eq!(min.len(), 2);
        assert_eq!(min.literal_count(), 4);
    }

    #[test]
    fn never_worse_than_espresso() {
        // On random-ish partitions, the exact result costs at most as much
        // as the heuristic one.
        for seed in [3u64, 17, 99, 123456] {
            let width = 5usize;
            let mut on = Cover::empty(width);
            let mut off = Cover::empty(width);
            for x in 0..(1u32 << width) {
                let bits: Vec<bool> = (0..width).map(|i| (x >> i) & 1 == 1).collect();
                match (seed
                    .wrapping_mul(0x9e37_79b9)
                    .wrapping_add(x as u64 * 0x85eb_ca6b)
                    >> 7)
                    & 0b11
                {
                    0 => on.push(Cube::minterm(bits)),
                    1 => off.push(Cube::minterm(bits)),
                    _ => {}
                }
            }
            if on.is_empty() {
                continue;
            }
            let exact = check(&on, &off);
            let heuristic = minimize(&on, &off);
            assert!(
                exact.len() <= heuristic.len(),
                "seed {seed}: exact {} vs espresso {}",
                exact.len(),
                heuristic.len()
            );
        }
    }

    #[test]
    fn budget_gives_up_gracefully() {
        let on = cover(&["1-------", "-1------", "--1-----", "---1----"]);
        let off = cover(&["0000----"]);
        let tiny = QmBudget {
            max_primes: 1,
            max_nodes: 1,
        };
        assert!(minimize_exact(&on, &off, &tiny).is_none());
    }

    #[test]
    fn empty_on_set() {
        let on = Cover::empty(3);
        let off = cover(&["---"]);
        let min = minimize_exact(&on, &off, &QmBudget::default()).expect("trivial");
        assert!(min.is_empty());
    }
}
