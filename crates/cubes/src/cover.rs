//! Covers: sums of product terms, with the algebra synthesis needs.

use std::fmt;

use crate::cube::{Cube, Literal};

/// A sum-of-products cover over a fixed variable width.
///
/// # Examples
///
/// ```
/// use si_cubes::{Cover, Cube};
///
/// // a + c over variables (a, b, c)
/// let cover: Cover = [Cube::from_str_cube("1--"), Cube::from_str_cube("--1")]
///     .into_iter()
///     .collect();
/// assert!(cover.covers_bits(&[true, false, false]));
/// assert!(cover.covers_bits(&[false, false, true]));
/// assert!(!cover.covers_bits(&[false, true, false]));
/// ```
#[derive(Clone, PartialEq, Eq)]
pub struct Cover {
    cubes: Vec<Cube>,
    width: usize,
}

impl Cover {
    /// The empty cover (constant 0) over `width` variables.
    pub fn empty(width: usize) -> Self {
        Cover {
            cubes: Vec::new(),
            width,
        }
    }

    /// Number of variables.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The cubes of the cover.
    pub fn cubes(&self) -> &[Cube] {
        &self.cubes
    }

    /// Number of cubes.
    pub fn len(&self) -> usize {
        self.cubes.len()
    }

    /// Returns `true` if the cover is the constant 0.
    pub fn is_empty(&self) -> bool {
        self.cubes.is_empty()
    }

    /// Adds a cube.
    ///
    /// # Panics
    ///
    /// Panics if the cube width differs from the cover width (unless the
    /// cover is still empty and its width was 0).
    pub fn push(&mut self, cube: Cube) {
        if self.width == 0 && self.cubes.is_empty() {
            self.width = cube.width();
        }
        assert_eq!(cube.width(), self.width, "cube width mismatch");
        self.cubes.push(cube);
    }

    /// Total number of literals across all cubes — the paper's `LitCnt`
    /// quality metric.
    pub fn literal_count(&self) -> usize {
        self.cubes.iter().map(Cube::literal_count).sum()
    }

    /// Returns `true` if some cube covers the assignment.
    pub fn covers_bits(&self, bits: &[bool]) -> bool {
        self.cubes.iter().any(|c| c.covers_bits(bits))
    }

    /// Returns `true` if the two covers share at least one point.
    pub fn intersects(&self, other: &Cover) -> bool {
        self.cubes
            .iter()
            .any(|a| other.cubes.iter().any(|b| a.intersects(b)))
    }

    /// The pairwise intersection cover (`self · other`), with contained
    /// cubes pruned.
    pub fn intersect(&self, other: &Cover) -> Cover {
        let mut out = Cover::empty(self.width);
        for a in &self.cubes {
            for b in &other.cubes {
                if let Some(c) = a.intersect(b) {
                    out.cubes.push(c);
                }
            }
        }
        out.remove_contained();
        out
    }

    /// The union of two covers, with contained cubes pruned.
    pub fn union(&self, other: &Cover) -> Cover {
        let mut out = self.clone();
        if out.width == 0 {
            out.width = other.width;
        }
        out.cubes.extend(other.cubes.iter().cloned());
        out.remove_contained();
        out
    }

    /// Removes every cube contained in another cube of the cover
    /// (single-cube containment).
    pub fn remove_contained(&mut self) {
        let mut keep: Vec<bool> = vec![true; self.cubes.len()];
        for i in 0..self.cubes.len() {
            if !keep[i] {
                continue;
            }
            for (j, keep_j) in keep.iter_mut().enumerate() {
                if i == j || !*keep_j {
                    continue;
                }
                if self.cubes[i].contains(&self.cubes[j])
                    && (!self.cubes[j].contains(&self.cubes[i]) || i < j)
                {
                    *keep_j = false;
                }
            }
        }
        let mut idx = 0;
        self.cubes.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
    }

    /// Returns `true` if the cover evaluates to 1 for *every* assignment —
    /// the classic recursive tautology check with unate reduction.
    pub fn is_tautology(&self) -> bool {
        if self.cubes.iter().any(Cube::is_full) {
            return true;
        }
        if self.cubes.is_empty() {
            return false;
        }
        tautology_rec(&self.cubes, self.width)
    }

    /// Returns `true` if the cover covers every point of `cube`
    /// (`cube ⊆ self`): the unate-recursive containment check — cofactor
    /// every cube against `cube`, then decide by recursive tautology.
    pub fn contains_cube(&self, cube: &Cube) -> bool {
        cofactor_covers(self.cubes.iter(), cube, self.width)
    }

    /// Alias of [`Cover::contains_cube`], kept for the `covers_*` naming of
    /// the rest of the algebra.
    pub fn covers_cube(&self, cube: &Cube) -> bool {
        self.contains_cube(cube)
    }

    /// Returns `true` if the cover covers every point of `other`.
    pub fn covers_cover(&self, other: &Cover) -> bool {
        other.cubes.iter().all(|c| self.covers_cube(c))
    }

    /// The set difference `self # cube`: every point of `self` not covered
    /// by `cube`, with contained cubes pruned.
    pub fn subtract_cube(&self, cube: &Cube) -> Cover {
        let mut out = Cover::empty(self.width);
        for c in &self.cubes {
            out.cubes.extend(c.sharp(cube));
        }
        out.remove_contained();
        out
    }

    /// The set difference `self # other` over a whole cover.
    pub fn subtract(&self, other: &Cover) -> Cover {
        let mut out = self.clone();
        for cube in &other.cubes {
            out = out.subtract_cube(cube);
        }
        out
    }

    /// Renders the cover as a sum of products with the given variable names
    /// (e.g. `a + c d'`). The empty cover renders as `0`.
    pub fn to_expression_string(&self, names: &[impl AsRef<str>]) -> String {
        if self.cubes.is_empty() {
            return "0".to_owned();
        }
        self.cubes
            .iter()
            .map(|c| c.to_product_string(names))
            .collect::<Vec<_>>()
            .join(" + ")
    }
}

impl FromIterator<Cube> for Cover {
    fn from_iter<I: IntoIterator<Item = Cube>>(iter: I) -> Self {
        let mut cover = Cover::empty(0);
        for cube in iter {
            cover.push(cube);
        }
        cover
    }
}

impl Extend<Cube> for Cover {
    fn extend<I: IntoIterator<Item = Cube>>(&mut self, iter: I) {
        for cube in iter {
            self.push(cube);
        }
    }
}

impl fmt::Display for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.cubes.is_empty() {
            return f.write_str("0");
        }
        for (i, c) in self.cubes.iter().enumerate() {
            if i > 0 {
                f.write_str(" + ")?;
            }
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for Cover {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cover({self})")
    }
}

/// Containment of `target` in the union of `cubes` without materialising a
/// [`Cover`]: cofactors each cube against `target` and decides by recursive
/// tautology. The minimiser calls this with filtered or element-substituted
/// views of a cover, so taking an iterator avoids cloning cube lists just to
/// ask a yes/no question.
pub(crate) fn cofactor_covers<'a, I>(cubes: I, target: &Cube, width: usize) -> bool
where
    I: Iterator<Item = &'a Cube>,
{
    if width <= 64 {
        return match cofactor_rows1(cubes, target) {
            None => true,
            Some(rows) => !rows.is_empty() && tautology1(&rows),
        };
    }
    let mut cofactored = Vec::new();
    for c in cubes {
        if let Some(x) = c.cofactor(target) {
            if x.is_full() {
                return true;
            }
            cofactored.push(x);
        }
    }
    if cofactored.is_empty() {
        return false;
    }
    tautology_rec(&cofactored, width)
}

/// Single-block fast path: cofactors `cubes` against `target` into packed
/// `(mask, val)` rows. Returns `None` when some cofactor comes out full (the
/// target is covered outright); conflicting cubes are dropped.
pub(crate) fn cofactor_rows1<'a, I>(cubes: I, target: &Cube) -> Option<Vec<(u64, u64)>>
where
    I: Iterator<Item = &'a Cube>,
{
    let (tm, tv) = (target.mask_block(0), target.val_block(0));
    let mut rows = Vec::new();
    for c in cubes {
        let (cm, cv) = (c.mask_block(0), c.val_block(0));
        if (cv ^ tv) & cm & tm != 0 {
            continue; // conflicts with the target: contributes nothing
        }
        let m = cm & !tm;
        if m == 0 {
            return None; // cofactor is the full cube: target covered
        }
        rows.push((m, cv & !tm));
    }
    Some(rows)
}

/// Recursive tautology over packed single-block `(mask, val)` rows — the
/// same unate-reduction algorithm as [`tautology_rec`], but each cofactor
/// step is a flat filter over 16-byte rows instead of cloning heap-backed
/// [`Cube`]s. Rows must be non-full (`mask != 0`).
pub(crate) fn tautology1(rows: &[(u64, u64)]) -> bool {
    // The most binate variable must constrain some row in each polarity.
    let mut ones_union = 0u64;
    let mut zeros_union = 0u64;
    for &(mask, val) in rows {
        ones_union |= mask & val;
        zeros_union |= mask & !val;
    }
    let binate = ones_union & zeros_union;
    if binate == 0 {
        // Unate cover without a full cube: never a tautology.
        return false;
    }
    let mut best_var = 0u32;
    let mut best_score = 0usize;
    let mut candidates = binate;
    while candidates != 0 {
        let v = candidates.trailing_zeros();
        candidates &= candidates - 1;
        let m = 1u64 << v;
        let score = rows.iter().filter(|&&(mask, _)| mask & m != 0).count();
        if score > best_score {
            best_score = score;
            best_var = v;
        }
    }
    let m = 1u64 << best_var;
    for value in [0u64, m] {
        match cofactor_rows_by_var(rows, m, value) {
            None => continue, // a full cube covers this branch
            Some(cof) => {
                if cof.is_empty() || !tautology1(&cof) {
                    return false;
                }
            }
        }
    }
    true
}

/// Cofactors packed single-block rows by one variable (`m` is its bit)
/// pinned to `value` (`0` or `m`): rows of the opposite polarity are
/// dropped, the variable is freed in the rest. Returns `None` when a row
/// comes out full — that branch of the space is covered outright.
pub(crate) fn cofactor_rows_by_var(
    rows: &[(u64, u64)],
    m: u64,
    value: u64,
) -> Option<Vec<(u64, u64)>> {
    let mut cof = Vec::with_capacity(rows.len());
    for &(mask, val) in rows {
        if mask & m != 0 && val & m != value {
            continue; // opposite polarity: dropped by the cofactor
        }
        let nm = mask & !m;
        if nm == 0 {
            return None; // full cube in this branch
        }
        cof.push((nm, val & !m));
    }
    Some(cof)
}

/// Recursive tautology with unate reduction: choose the most binate
/// variable, Shannon-expand, recurse.
fn tautology_rec(cubes: &[Cube], width: usize) -> bool {
    if cubes.iter().any(Cube::is_full) {
        return true;
    }
    if cubes.is_empty() {
        return false;
    }
    // Find the most binate variable (appears in both polarities most often);
    // if the cover is unate it is a tautology iff some cube is full, which
    // was already checked.
    let mut best_var = None;
    let mut best_score = 0usize;
    for v in 0..width {
        let mut zeros = 0usize;
        let mut ones = 0usize;
        for c in cubes {
            match c.get(v) {
                Literal::Zero => zeros += 1,
                Literal::One => ones += 1,
                Literal::DontCare => {}
            }
        }
        if zeros > 0 && ones > 0 {
            let score = zeros + ones;
            if score > best_score {
                best_score = score;
                best_var = Some(v);
            }
        }
    }
    let Some(v) = best_var else {
        // Unate cover without a full cube: never a tautology.
        return false;
    };
    for value in [Literal::Zero, Literal::One] {
        let mut sel = Cube::full(width);
        sel.set(v, value);
        let cof: Vec<Cube> = cubes.iter().filter_map(|c| c.cofactor(&sel)).collect();
        if !tautology_rec(&cof, width) {
            return false;
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(cubes: &[&str]) -> Cover {
        cubes.iter().map(|s| Cube::from_str_cube(s)).collect()
    }

    #[test]
    fn covers_bits_any_cube() {
        let f = cover(&["1--", "--1"]);
        assert!(f.covers_bits(&[true, false, false]));
        assert!(f.covers_bits(&[false, false, true]));
        assert!(!f.covers_bits(&[false, true, false]));
    }

    #[test]
    fn intersection_and_emptiness() {
        let on = cover(&["1--", "--1"]);
        let off = cover(&["00-"]);
        // 00- ∩ 1-- empty; 00- ∩ --1 = 001 non-empty.
        assert!(on.intersects(&off));
        let x = on.intersect(&off);
        assert_eq!(x.len(), 1);
        assert_eq!(x.cubes()[0].to_string(), "001");
        let disjoint = cover(&["000"]);
        assert!(!disjoint.intersects(&cover(&["11-"])));
    }

    #[test]
    fn containment_removal() {
        let mut f = cover(&["1--", "11-", "1--"]);
        f.remove_contained();
        assert_eq!(f.len(), 1);
        assert_eq!(f.cubes()[0].to_string(), "1--");
    }

    #[test]
    fn tautology_basic() {
        assert!(cover(&["---"]).is_tautology());
        assert!(cover(&["1--", "0--"]).is_tautology());
        assert!(!cover(&["1--", "01-"]).is_tautology());
        assert!(cover(&["1--", "01-", "001", "000"]).is_tautology());
        assert!(!Cover::empty(2).is_tautology());
    }

    #[test]
    fn covers_cube_via_tautology() {
        let f = cover(&["11-", "10-"]);
        // f = a: covers cube a, not cube b.
        assert!(f.covers_cube(&Cube::from_str_cube("1--")));
        assert!(!f.covers_cube(&Cube::from_str_cube("-1-")));
        assert!(f.covers_cube(&Cube::from_str_cube("110")));
    }

    #[test]
    fn covers_cover_both_directions() {
        let f = cover(&["11-", "10-"]);
        let g = cover(&["1--"]);
        assert!(g.covers_cover(&f));
        assert!(f.covers_cover(&g));
        let h = cover(&["1-1"]);
        assert!(f.covers_cover(&h));
        assert!(!h.covers_cover(&f));
    }

    #[test]
    fn union_prunes() {
        let f = cover(&["11-"]);
        let g = cover(&["1--"]);
        let u = f.union(&g);
        assert_eq!(u.len(), 1);
        assert_eq!(u.cubes()[0].to_string(), "1--");
    }

    #[test]
    fn expression_rendering() {
        let names = ["a", "b", "c"];
        assert_eq!(
            cover(&["1--", "-01"]).to_expression_string(&names),
            "a + b' c"
        );
        assert_eq!(Cover::empty(3).to_expression_string(&names), "0");
    }

    #[test]
    fn literal_count_totals() {
        assert_eq!(cover(&["1-0", "--1"]).literal_count(), 3);
        assert_eq!(Cover::empty(4).literal_count(), 0);
    }

    #[test]
    fn sharp_agrees_with_pointwise_difference() {
        let a = Cube::from_str_cube("-11-");
        let b = Cube::from_str_cube("0-1-");
        let diff: Cover = a.sharp(&b).into_iter().collect();
        for x in 0..16u8 {
            let bits = [(x & 8) != 0, (x & 4) != 0, (x & 2) != 0, (x & 1) != 0];
            assert_eq!(
                diff.covers_bits(&bits),
                a.covers_bits(&bits) && !b.covers_bits(&bits),
                "at {bits:?}"
            );
        }
        // Disjoint cubes: sharp is the identity.
        let c = Cube::from_str_cube("1---");
        let d = Cube::from_str_cube("0---");
        assert_eq!(c.sharp(&d), vec![c.clone()]);
        // Contained: sharp is empty.
        assert!(Cube::from_str_cube("11--")
            .sharp(&Cube::from_str_cube("1---"))
            .is_empty());
    }

    #[test]
    fn cover_subtract_pointwise() {
        let f = cover(&["1--", "-1-"]);
        let g = cover(&["11-", "--0"]);
        let diff = f.subtract(&g);
        for x in 0..8u8 {
            let bits = [(x & 4) != 0, (x & 2) != 0, (x & 1) != 0];
            assert_eq!(
                diff.covers_bits(&bits),
                f.covers_bits(&bits) && !g.covers_bits(&bits),
                "at {bits:?}"
            );
        }
    }

    #[test]
    fn exhaustive_equivalence_on_three_vars() {
        // covers_cube must agree with brute-force evaluation.
        let f = cover(&["1--", "-11", "00-"]);
        for x in 0..8u8 {
            let bits = [(x & 4) != 0, (x & 2) != 0, (x & 1) != 0];
            let m = Cube::minterm(bits);
            assert_eq!(f.covers_cube(&m), f.covers_bits(&bits));
        }
    }
}
