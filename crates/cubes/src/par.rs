//! A minimal ordered parallel map over scoped threads.
//!
//! Per-signal synthesis (deriving covers, two-level minimisation) is
//! embarrassingly parallel: the per-signal work shares nothing but
//! read-only inputs. This module provides the one combinator both synthesis
//! flows need — run a function over a slice on a small fixed pool of
//! [`std::thread::scope`] workers and return the results *in input order*,
//! so parallel synthesis is bit-identical to sequential synthesis.
//!
//! No work-stealing, no channels: workers claim indices from a shared
//! atomic counter and stash `(index, result)` pairs locally; the results
//! are stitched back into order after the join. With one worker (or one
//! item) the map runs inline on the calling thread.

use std::sync::atomic::{AtomicUsize, Ordering};

/// Resolves a worker-count request: `None` means one worker per available
/// CPU (`std::thread::available_parallelism`), and the result is clamped to
/// the number of items.
fn resolve_workers(requested: Option<usize>, items: usize) -> usize {
    let n = requested.unwrap_or_else(|| {
        std::thread::available_parallelism()
            .map(|p| p.get())
            .unwrap_or(1)
    });
    n.clamp(1, items.max(1))
}

/// Maps `f` over `items` on `workers` scoped threads (`None` = one per
/// available CPU), returning the results in input order.
///
/// `f` receives the item index and the item. Results are deterministic: the
/// output vector is ordered by index regardless of which worker computed
/// which item or in what order they finished. If `f` panics on any item the
/// panic is propagated after the scope joins.
///
/// # Examples
///
/// ```
/// use si_cubes::par::par_map;
///
/// let squares = par_map(&[1, 2, 3, 4], Some(2), |_, &x| x * x);
/// assert_eq!(squares, vec![1, 4, 9, 16]);
/// ```
pub fn par_map<T, R, F>(items: &[T], workers: Option<usize>, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(usize, &T) -> R + Sync,
{
    let workers = resolve_workers(workers, items.len());
    if workers <= 1 || items.len() <= 1 {
        return items.iter().enumerate().map(|(i, t)| f(i, t)).collect();
    }
    let next = AtomicUsize::new(0);
    let mut buckets: Vec<Vec<(usize, R)>> = Vec::with_capacity(workers);
    std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers)
            .map(|_| {
                scope.spawn(|| {
                    let mut local = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        if i >= items.len() {
                            break;
                        }
                        local.push((i, f(i, &items[i])));
                    }
                    local
                })
            })
            .collect();
        for handle in handles {
            match handle.join() {
                Ok(local) => buckets.push(local),
                // Re-raise with the original payload so a panic inside `f`
                // reads the same under any worker count.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    });
    let mut slots: Vec<Option<R>> = (0..items.len()).map(|_| None).collect();
    for (i, r) in buckets.into_iter().flatten() {
        slots[i] = Some(r);
    }
    slots
        .into_iter()
        .map(|s| match s {
            Some(r) => r,
            // The strided partition hands every index to exactly one
            // worker, and all workers joined above.
            None => unreachable!("index left unclaimed by the strided partition"),
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_order_and_results() {
        let items: Vec<usize> = (0..100).collect();
        for workers in [None, Some(1), Some(3), Some(16)] {
            let out = par_map(&items, workers, |i, &x| {
                assert_eq!(i, x);
                x * 2
            });
            assert_eq!(out, items.iter().map(|x| x * 2).collect::<Vec<_>>());
        }
    }

    #[test]
    fn empty_and_singleton() {
        let empty: [u8; 0] = [];
        assert!(par_map(&empty, Some(4), |_, &x| x).is_empty());
        assert_eq!(par_map(&[7], Some(4), |_, &x| x + 1), vec![8]);
    }

    #[test]
    fn more_workers_than_items() {
        assert_eq!(
            par_map(&[1, 2], Some(64), |_, &x| x),
            vec![1, 2],
            "worker count is clamped to the item count"
        );
    }

    #[test]
    #[should_panic(expected = "boom")]
    fn propagates_worker_panics_with_payload() {
        par_map(&[0, 1, 2, 3], Some(2), |_, &x| {
            assert_ne!(x, 2, "boom");
            x
        });
    }
}
