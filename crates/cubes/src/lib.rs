//! # si-cubes — ternary cube and cover algebra
//!
//! The Boolean layer of the synthesis flow: product terms ([`Cube`]) over a
//! fixed signal vector, sums of products ([`Cover`]), the containment /
//! intersection / tautology algebra the paper's cover-correctness checks
//! need, and an Espresso-style two-level minimiser ([`minimize`]) used as
//! the final optimisation stage (the paper's "EspTim" column).
//!
//! ## Example
//!
//! ```
//! use si_cubes::{minimize, Cover, Cube};
//!
//! // On(b) and Off(b) of the paper's Figure 1 example.
//! let on: Cover = ["100", "101", "110", "111", "001", "011"]
//!     .into_iter()
//!     .map(Cube::from_str_cube)
//!     .collect();
//! let off: Cover = ["010", "000"].into_iter().map(Cube::from_str_cube).collect();
//! let min = minimize(&on, &off);
//! assert_eq!(min.to_expression_string(&["a", "b", "c"]), "a + c");
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cover;
mod cube;
mod espresso;
pub mod implicit;
pub mod par;
mod qm;

pub use cover::Cover;
pub use cube::{Cube, Literal};
pub use espresso::minimize;
pub use implicit::{minimize_exact_implicit, minimize_implicit, ImplicitCover, ImplicitPool};
pub use qm::{minimize_exact, QmBudget};

/// The individual minimiser phases, exposed for the equivalence test suite
/// that pins them against reference implementations. Not a stable API.
#[doc(hidden)]
pub mod internals {
    pub use crate::espresso::{canonical_order, expand, irredundant, reduce};
}
