//! Ternary cubes: product terms over a fixed set of Boolean variables.

use std::fmt;

/// The state of one variable inside a [`Cube`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Literal {
    /// The variable must be 0 (complemented literal).
    Zero,
    /// The variable must be 1 (positive literal).
    One,
    /// The variable does not appear in the product term.
    DontCare,
}

/// A product term over `width` Boolean variables, each of which is
/// constrained to 0, to 1, or unconstrained (`-`).
///
/// The textual form lists one character per variable: `1-0` is the cube
/// `x₀ x̄₂`.
///
/// # Examples
///
/// ```
/// use si_cubes::{Cube, Literal};
///
/// let mut cube = Cube::full(3); // covers everything
/// cube.set(0, Literal::One);
/// cube.set(2, Literal::Zero);
/// assert_eq!(cube.to_string(), "1-0");
/// assert_eq!(cube.literal_count(), 2);
/// assert!(cube.covers_bits(&[true, true, false]));
/// assert!(!cube.covers_bits(&[false, true, false]));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Cube {
    /// Bit set ⇒ the variable is constrained (a literal is present).
    mask: Vec<u64>,
    /// Required value where the mask bit is set; kept zero elsewhere.
    val: Vec<u64>,
    width: usize,
}

impl Cube {
    /// The universal cube over `width` variables (all don't-care).
    pub fn full(width: usize) -> Self {
        let blocks = width.div_ceil(64);
        Cube {
            mask: vec![0; blocks],
            val: vec![0; blocks],
            width,
        }
    }

    /// The minterm cube matching exactly the given values.
    pub fn minterm<I: IntoIterator<Item = bool>>(values: I) -> Self {
        let mut vals = Vec::new();
        for v in values {
            vals.push(v);
        }
        let mut cube = Cube::full(vals.len());
        for (i, v) in vals.into_iter().enumerate() {
            cube.set(i, if v { Literal::One } else { Literal::Zero });
        }
        cube
    }

    /// Parses a cube from a `{0,1,-}` string, e.g. `"1-0"`.
    ///
    /// # Panics
    ///
    /// Panics on characters other than `0`, `1`, `-`.
    pub fn from_str_cube(s: &str) -> Self {
        let mut cube = Cube::full(s.chars().count());
        for (i, c) in s.chars().enumerate() {
            assert!(matches!(c, '0' | '1' | '-'), "invalid cube character {c:?}");
            match c {
                '0' => cube.set(i, Literal::Zero),
                '1' => cube.set(i, Literal::One),
                _ => {}
            }
        }
        cube
    }

    /// Number of variables.
    pub fn width(&self) -> usize {
        self.width
    }

    /// The literal of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var ≥ width`.
    pub fn get(&self, var: usize) -> Literal {
        assert!(var < self.width, "variable {var} out of range");
        let (b, m) = (var / 64, 1u64 << (var % 64));
        if self.mask[b] & m == 0 {
            Literal::DontCare
        } else if self.val[b] & m != 0 {
            Literal::One
        } else {
            Literal::Zero
        }
    }

    /// Sets the literal of variable `var`.
    ///
    /// # Panics
    ///
    /// Panics if `var ≥ width`.
    pub fn set(&mut self, var: usize, literal: Literal) {
        assert!(var < self.width, "variable {var} out of range");
        let (b, m) = (var / 64, 1u64 << (var % 64));
        match literal {
            Literal::DontCare => {
                self.mask[b] &= !m;
                self.val[b] &= !m;
            }
            Literal::Zero => {
                self.mask[b] |= m;
                self.val[b] &= !m;
            }
            Literal::One => {
                self.mask[b] |= m;
                self.val[b] |= m;
            }
        }
    }

    /// Number of literals (constrained variables) in the product term —
    /// the paper's synthesis quality metric.
    pub fn literal_count(&self) -> usize {
        self.mask.iter().map(|b| b.count_ones() as usize).sum()
    }

    /// Returns `true` if the cube covers the given complete assignment.
    ///
    /// # Panics
    ///
    /// Panics if `bits.len() != width`.
    pub fn covers_bits(&self, bits: &[bool]) -> bool {
        assert_eq!(bits.len(), self.width, "assignment width mismatch");
        bits.iter().enumerate().all(|(i, &v)| {
            let (b, m) = (i / 64, 1u64 << (i % 64));
            self.mask[b] & m == 0 || (self.val[b] & m != 0) == v
        })
    }

    /// Returns `true` if the cubes share at least one point — the boolean
    /// answer of [`Cube::intersect`] without allocating the intersection.
    ///
    /// This is the minimiser's innermost disjointness probe, so it runs
    /// block-wise over the packed `(mask, val)` words.
    pub fn intersects(&self, other: &Cube) -> bool {
        debug_assert_eq!(self.width, other.width);
        for b in 0..self.mask.len() {
            if (self.val[b] ^ other.val[b]) & self.mask[b] & other.mask[b] != 0 {
                return false;
            }
        }
        true
    }

    /// Returns `true` if the cubes have no common point (some variable is
    /// required to take opposite values).
    pub fn disjoint(&self, other: &Cube) -> bool {
        !self.intersects(other)
    }

    /// The canonical cover order: compares variable by variable with
    /// `0 < 1 < -`, so cubes constraining earlier variables sort first
    /// (`a + c` rather than `c + a`). Decides on the lowest-indexed
    /// differing variable straight from the `(mask, val)` block words, so a
    /// comparison allocates nothing.
    pub fn cmp_canonical(&self, other: &Cube) -> std::cmp::Ordering {
        debug_assert_eq!(self.width, other.width);
        for b in 0..self.mask.len() {
            let diff = (self.mask[b] ^ other.mask[b]) | (self.val[b] ^ other.val[b]);
            if diff != 0 {
                let i = diff.trailing_zeros();
                // Per-variable rank: 0 < 1 < don't-care.
                let rank = |mask: u64, val: u64| {
                    if (mask >> i) & 1 == 0 {
                        2u8
                    } else {
                        ((val >> i) & 1) as u8
                    }
                };
                return rank(self.mask[b], self.val[b]).cmp(&rank(other.mask[b], other.val[b]));
            }
        }
        std::cmp::Ordering::Equal
    }

    /// Builds a single-block (≤ 64 variable) cube directly from its packed
    /// `(mask, val)` words.
    pub(crate) fn from_block1(width: usize, mask: u64, val: u64) -> Cube {
        debug_assert!(width <= 64);
        Cube {
            mask: vec![mask],
            val: vec![val & mask],
            width,
        }
    }

    /// Number of 64-variable blocks backing the cube.
    pub(crate) fn block_count(&self) -> usize {
        self.mask.len()
    }

    /// The packed presence bits (`mask`) of block `b`.
    pub(crate) fn mask_block(&self, b: usize) -> u64 {
        self.mask[b]
    }

    /// The packed value bits (`val`) of block `b`; zero where `mask` is zero.
    pub(crate) fn val_block(&self, b: usize) -> u64 {
        self.val[b]
    }

    /// Frees (sets to don't-care) every variable of block `b` whose bit is
    /// set in `bits` — the EXPAND "raise" move, a whole block at a time.
    pub(crate) fn raise_block(&mut self, b: usize, bits: u64) {
        self.mask[b] &= !bits;
        self.val[b] &= !bits;
    }

    /// Cube intersection; `None` when the cubes conflict on some variable
    /// (empty intersection).
    pub fn intersect(&self, other: &Cube) -> Option<Cube> {
        debug_assert_eq!(self.width, other.width);
        let mut out = self.clone();
        for b in 0..self.mask.len() {
            let both = self.mask[b] & other.mask[b];
            if (self.val[b] ^ other.val[b]) & both != 0 {
                return None;
            }
            out.mask[b] |= other.mask[b];
            out.val[b] |= other.val[b];
        }
        Some(out)
    }

    /// Returns `true` if `self` covers every point of `other` (`other ⊆
    /// self`): every literal of `self` is present in `other` with the same
    /// value.
    pub fn contains(&self, other: &Cube) -> bool {
        debug_assert_eq!(self.width, other.width);
        for b in 0..self.mask.len() {
            // self constrains a variable other leaves free → not containing
            if self.mask[b] & !other.mask[b] != 0 {
                return false;
            }
            if (self.val[b] ^ other.val[b]) & self.mask[b] != 0 {
                return false;
            }
        }
        true
    }

    /// The smallest cube containing both operands.
    pub fn supercube(&self, other: &Cube) -> Cube {
        debug_assert_eq!(self.width, other.width);
        let mut out = Cube::full(self.width);
        for b in 0..self.mask.len() {
            let agree = self.mask[b] & other.mask[b] & !(self.val[b] ^ other.val[b]);
            out.mask[b] = agree;
            out.val[b] = self.val[b] & agree;
        }
        out
    }

    /// Number of variables on which the cubes require opposite values.
    pub fn conflict_count(&self, other: &Cube) -> usize {
        debug_assert_eq!(self.width, other.width);
        (0..self.mask.len())
            .map(|b| {
                ((self.mask[b] & other.mask[b]) & (self.val[b] ^ other.val[b])).count_ones()
                    as usize
            })
            .sum()
    }

    /// Cofactors `self` with respect to `other` (the Shannon cofactor used
    /// by tautology checking): returns `None` if the cubes conflict,
    /// otherwise `self` with all variables constrained by `other` freed.
    pub fn cofactor(&self, other: &Cube) -> Option<Cube> {
        if self.conflict_count(other) > 0 {
            return None;
        }
        let mut out = self.clone();
        for b in 0..self.mask.len() {
            out.mask[b] &= !other.mask[b];
            out.val[b] &= !other.mask[b];
        }
        Some(out)
    }

    /// Returns `true` if every variable is don't-care (the cube covers the
    /// whole space).
    pub fn is_full(&self) -> bool {
        self.mask.iter().all(|&b| b == 0)
    }

    /// The sharp operation `self # other`: the set difference as a list of
    /// disjoint cubes. Empty when `other` contains `self`; `[self]` when
    /// the cubes are disjoint.
    pub fn sharp(&self, other: &Cube) -> Vec<Cube> {
        debug_assert_eq!(self.width, other.width);
        if self.conflict_count(other) > 0 {
            return vec![self.clone()];
        }
        // For each variable constrained by `other` but free in `self`, emit
        // `self` with that variable flipped, fixing the previously processed
        // variables to `other`'s values so the pieces stay disjoint.
        let mut pieces = Vec::new();
        let mut prefix = self.clone();
        for (v, lit) in other.literals() {
            if self.get(v) != Literal::DontCare {
                continue; // agreeing literal (conflicts were handled above)
            }
            let flipped = match lit {
                Literal::Zero => Literal::One,
                Literal::One => Literal::Zero,
                Literal::DontCare => unreachable!("literals() never yields DontCare"),
            };
            let mut piece = prefix.clone();
            piece.set(v, flipped);
            pieces.push(piece);
            prefix.set(v, lit);
        }
        pieces
    }

    /// Iterates over the constrained variables with their literals.
    pub fn literals(&self) -> impl Iterator<Item = (usize, Literal)> + '_ {
        (0..self.width).filter_map(|i| match self.get(i) {
            Literal::DontCare => None,
            lit => Some((i, lit)),
        })
    }

    /// Renders the cube as a product term using the given variable names,
    /// with `'` marking complemented literals (e.g. `a d' g'`). The full
    /// cube renders as `1`.
    pub fn to_product_string(&self, names: &[impl AsRef<str>]) -> String {
        if self.is_full() {
            return "1".to_owned();
        }
        let mut parts = Vec::new();
        for (i, lit) in self.literals() {
            let name = names[i].as_ref();
            match lit {
                Literal::One => parts.push(name.to_owned()),
                Literal::Zero => parts.push(format!("{name}'")),
                Literal::DontCare => unreachable!("literals() never yields DontCare"),
            }
        }
        parts.join(" ")
    }
}

impl fmt::Display for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.width {
            f.write_str(match self.get(i) {
                Literal::Zero => "0",
                Literal::One => "1",
                Literal::DontCare => "-",
            })?;
        }
        Ok(())
    }
}

impl fmt::Debug for Cube {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Cube({self})")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_display_roundtrip() {
        for s in ["1-0", "---", "0101", "1"] {
            assert_eq!(Cube::from_str_cube(s).to_string(), s);
        }
    }

    #[test]
    fn minterm_covers_only_itself() {
        let c = Cube::minterm([true, false, true]);
        assert!(c.covers_bits(&[true, false, true]));
        assert!(!c.covers_bits(&[true, true, true]));
        assert_eq!(c.literal_count(), 3);
    }

    #[test]
    fn intersection() {
        let a = Cube::from_str_cube("1--");
        let b = Cube::from_str_cube("-0-");
        assert_eq!(
            a.intersect(&b).map(|c| c.to_string()).as_deref(),
            Some("10-")
        );
        let c = Cube::from_str_cube("0--");
        assert!(a.intersect(&c).is_none());
    }

    #[test]
    fn boolean_intersects_matches_intersect() {
        let cases = ["1--", "-0-", "0--", "001", "---", "110"];
        for a in cases {
            for b in cases {
                let a = Cube::from_str_cube(a);
                let b = Cube::from_str_cube(b);
                assert_eq!(a.intersects(&b), a.intersect(&b).is_some(), "{a} vs {b}");
                assert_eq!(a.disjoint(&b), a.intersect(&b).is_none(), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn canonical_order_matches_remapped_string_order() {
        // The historical key: the `{0,1,-}` string with `-` remapped past
        // `1`, compared lexicographically.
        let key = |c: &Cube| -> String {
            c.to_string()
                .chars()
                .map(|ch| if ch == '-' { '~' } else { ch })
                .collect()
        };
        let cases = ["---", "1--", "-1-", "0--", "11-", "1-0", "010", "--1"];
        for a in cases {
            for b in cases {
                let (a, b) = (Cube::from_str_cube(a), Cube::from_str_cube(b));
                assert_eq!(a.cmp_canonical(&b), key(&a).cmp(&key(&b)), "{a} vs {b}");
            }
        }
        // And across a block boundary.
        let mut a = Cube::full(70);
        let mut b = Cube::full(70);
        a.set(66, Literal::Zero);
        b.set(66, Literal::One);
        assert_eq!(a.cmp_canonical(&b), std::cmp::Ordering::Less);
        assert_eq!(a.cmp_canonical(&a), std::cmp::Ordering::Equal);
    }

    #[test]
    fn containment() {
        let big = Cube::from_str_cube("1--");
        let small = Cube::from_str_cube("1-0");
        assert!(big.contains(&small));
        assert!(!small.contains(&big));
        assert!(big.contains(&big));
        assert!(Cube::full(3).contains(&small));
    }

    #[test]
    fn supercube() {
        let a = Cube::from_str_cube("110");
        let b = Cube::from_str_cube("100");
        assert_eq!(a.supercube(&b).to_string(), "1-0");
        let c = Cube::from_str_cube("011");
        assert_eq!(a.supercube(&c).to_string(), "-1-");
    }

    #[test]
    fn conflicts_and_cofactor() {
        let a = Cube::from_str_cube("1-0");
        let b = Cube::from_str_cube("0-0");
        assert_eq!(a.conflict_count(&b), 1);
        assert!(a.cofactor(&b).is_none());
        let c = Cube::from_str_cube("1--");
        assert_eq!(
            a.cofactor(&c).map(|x| x.to_string()).as_deref(),
            Some("--0")
        );
    }

    #[test]
    fn product_string() {
        let names = ["a", "b", "c"];
        assert_eq!(Cube::from_str_cube("1-0").to_product_string(&names), "a c'");
        assert_eq!(Cube::full(3).to_product_string(&names), "1");
    }

    #[test]
    fn wide_cubes_cross_block_boundary() {
        let mut c = Cube::full(130);
        c.set(0, Literal::One);
        c.set(64, Literal::Zero);
        c.set(129, Literal::One);
        assert_eq!(c.get(64), Literal::Zero);
        assert_eq!(c.get(129), Literal::One);
        assert_eq!(c.get(65), Literal::DontCare);
        assert_eq!(c.literal_count(), 3);
        let mut bits = vec![false; 130];
        bits[0] = true;
        bits[129] = true;
        assert!(c.covers_bits(&bits));
        bits[64] = true;
        assert!(!c.covers_bits(&bits));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn out_of_range_get_panics() {
        Cube::full(2).get(2);
    }
}
