//! A self-contained Espresso-style two-level minimiser.
//!
//! The paper runs Espresso over the covers derived from the unfolding
//! segment, using the DC-set for optimisation. This module implements the
//! classic EXPAND → IRREDUNDANT → REDUCE iteration driven by an explicit
//! on-set cover and an explicit off-set cover; everything not covered by
//! either is don't-care and may be absorbed freely.
//!
//! Exact minimality is not claimed (neither does Espresso claim it); the
//! result is a *prime and irredundant* cover whose cost (cube count, then
//! literal count) does not exceed the input's.

use crate::cover::{cofactor_covers, cofactor_rows1, cofactor_rows_by_var, tautology1, Cover};
use crate::cube::{Cube, Literal};

/// Minimises `on` against `off`: returns a cover that covers every point of
/// `on`, covers no point of `off`, and is locally minimal under the
/// expand/irredundant/reduce moves.
///
/// Points covered by neither input are treated as don't-cares.
///
/// # Panics
///
/// Panics (in debug builds) if `on` and `off` intersect — the caller must
/// provide a consistent partition, which is exactly the paper's cover
/// correctness condition.
///
/// # Examples
///
/// ```
/// use si_cubes::{minimize, Cover, Cube};
///
/// // on = {11-, 10-} (= a), off = {0--}
/// let on: Cover = [Cube::from_str_cube("11-"), Cube::from_str_cube("10-")]
///     .into_iter()
///     .collect();
/// let off: Cover = [Cube::from_str_cube("0--")].into_iter().collect();
/// let min = minimize(&on, &off);
/// assert_eq!(min.len(), 1);
/// assert_eq!(min.cubes()[0].to_string(), "1--");
/// ```
pub fn minimize(on: &Cover, off: &Cover) -> Cover {
    debug_assert!(
        !on.intersects(off),
        "on-set and off-set covers must be disjoint"
    );
    if on.is_empty() {
        return on.clone();
    }
    let mut f = on.clone();
    f.remove_contained();

    let mut best = f.clone();
    let mut best_cost = cost(&best);
    for _ in 0..8 {
        expand(&mut f, off);
        irredundant(&mut f, on);
        let c = cost(&f);
        if c < best_cost {
            best = f.clone();
            best_cost = c;
        } else {
            break;
        }
        reduce(&mut f, on);
    }
    canonical_order(&mut best);
    best
}

/// Sorts cubes so that terms constraining earlier variables come first —
/// `a + c` rather than `c + a` — making reports deterministic. Compares the
/// packed block words directly ([`Cube::cmp_canonical`]), so determinism
/// costs O(n log n) comparisons rather than O(n log n) string allocations.
pub fn canonical_order(f: &mut Cover) {
    let mut cubes: Vec<Cube> = f.cubes().to_vec();
    cubes.sort_by(Cube::cmp_canonical);
    *f = cubes.into_iter().collect();
}

/// Cover cost: cube count first, then literal count (the paper reports
/// literal counts; fewer cubes almost always means fewer literals too).
fn cost(f: &Cover) -> (usize, usize) {
    (f.len(), f.literal_count())
}

/// EXPAND: raise literals of every cube as long as the cube stays disjoint
/// from the off-set, then drop cubes contained in the expanded one.
///
/// Instead of re-testing the whole off-set per raised literal (allocating an
/// intersection per probe), this precomputes a *blocking structure*: for
/// every off-cube, the bitset of variables on which it conflicts with the
/// cube, plus the conflict count. A literal not involved in any conflict is
/// raised immediately (the raise-all phase); each remaining literal can be
/// raised exactly when no off-cube relies on it as its *only* conflict, and
/// raising it just clears one bit per blocked off-cube (the retract phase).
/// The raise decisions are identical to the probe-per-(cube, variable,
/// off-cube) formulation.
///
/// A cube already inside an expanded prime is skipped before paying the
/// off-set scan (the classic Espresso move): on minterm-level covers — the
/// SG baseline's input — the first few primes absorb almost everything, so
/// this turns the quadratic cover × off-set sweep into one sweep per
/// *surviving* cube.
pub fn expand(f: &mut Cover, off: &Cover) {
    let width = f.width();
    let mut cubes: Vec<Cube> = f.cubes().to_vec();
    // Expand big cubes first so they absorb the small ones.
    cubes.sort_by_key(|c| c.literal_count());
    let blocks = cubes.first().map(Cube::block_count).unwrap_or(0);
    // Scratch reused across cubes: `conflicts` holds `off.len()` rows of
    // `blocks` words each; `counts[o]` is the popcount of row `o`.
    let mut conflicts: Vec<u64> = Vec::new();
    let mut counts: Vec<u32> = Vec::new();
    let mut union: Vec<u64> = Vec::new();
    let mut result: Vec<Cube> = Vec::with_capacity(cubes.len());
    for mut cube in cubes {
        if result.iter().any(|r| r.contains(&cube)) {
            continue; // already covered: expanding it cannot help
        }
        conflicts.clear();
        conflicts.resize(off.len() * blocks, 0);
        counts.clear();
        counts.resize(off.len(), 0);
        union.clear();
        union.resize(blocks, 0);
        let mut blocked = false; // some off-cube already intersects `cube`
        for (oi, o) in off.cubes().iter().enumerate() {
            let mut count = 0u32;
            for b in 0..blocks {
                let c = cube.mask_block(b) & o.mask_block(b) & (cube.val_block(b) ^ o.val_block(b));
                conflicts[oi * blocks + b] = c;
                union[b] |= c;
                count += c.count_ones();
            }
            counts[oi] = count;
            blocked |= count == 0;
        }
        if !blocked {
            // Raise-all phase: a literal no off-cube conflicts on can never
            // separate the cube from the off-set — free them all at once.
            for (b, u) in union.iter().enumerate() {
                let raise = cube.mask_block(b) & !u;
                cube.raise_block(b, raise);
            }
            // Retract phase: try the conflicting literals in variable order.
            for v in 0..width {
                let (b, m) = (v / 64, 1u64 << (v % 64));
                if cube.mask_block(b) & m == 0 || union[b] & m == 0 {
                    continue;
                }
                let legal =
                    (0..off.len()).all(|oi| conflicts[oi * blocks + b] & m == 0 || counts[oi] > 1);
                if legal {
                    cube.raise_block(b, m);
                    for oi in 0..off.len() {
                        if conflicts[oi * blocks + b] & m != 0 {
                            conflicts[oi * blocks + b] &= !m;
                            counts[oi] -= 1;
                        }
                    }
                }
            }
        }
        if !result.iter().any(|r| r.contains(&cube)) {
            result.retain(|r| !cube.contains(r));
            result.push(cube);
        }
    }
    *f = result.into_iter().collect();
}

/// IRREDUNDANT: greedily remove cubes whose points are already covered by
/// the rest of the cover (validated against the original on-set).
///
/// The containment question "do the remaining cubes still cover `o`?" goes
/// straight through the unate-recursive cofactor/tautology machinery
/// ([`cofactor_covers`]) on a filtered view of the cover — no candidate
/// cover is materialised per removal attempt.
pub fn irredundant(f: &mut Cover, on: &Cover) {
    // Try to remove large-literal cubes first (they are the most specific).
    let mut order: Vec<usize> = (0..f.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(f.cubes()[i].literal_count()));
    let mut removed = vec![false; f.len()];
    for &i in &order {
        removed[i] = true;
        let target = &f.cubes()[i];
        let still_covered = on.cubes().iter().filter(|o| o.intersects(target)).all(|o| {
            cofactor_covers(
                f.cubes()
                    .iter()
                    .zip(&removed)
                    .filter(|(_, r)| !**r)
                    .map(|(c, _)| c),
                o,
                f.width(),
            )
        });
        if !still_covered {
            removed[i] = false;
        }
    }
    *f = f
        .cubes()
        .iter()
        .enumerate()
        .filter(|(j, _)| !removed[*j])
        .map(|(_, c)| c.clone())
        .collect();
}

/// REDUCE: shrink each cube as far as the on-set coverage allows, so the
/// next EXPAND can move it in a better direction.
///
/// The historical formulation probed every (variable, polarity) pair with a
/// full cover-containment check. This one computes, once per cube, the
/// *residue* `U` — the points of the obligated on-cubes (those intersecting
/// the cube at entry) left uncovered by the rest of the cover — and uses the
/// identity that the greedy var-by-var shrink lands exactly on
/// `entry ∩ supercube(U)`:
///
/// * constraining `v` to a literal is valid iff `U` lies entirely on that
///   side, i.e. iff `supercube(U)` constrains `v` to the same literal;
/// * if `supercube(U)` pokes outside the cube, no constraint is ever valid
///   and the cube stays put;
/// * if `U` is empty, every probe succeeds and the greedy (which tries `1`
///   before `0`) pins every free variable to `1`.
///
/// The decisions — and therefore the result — are identical, but the cover
/// subtraction is paid once per cube instead of a tautology per probe.
pub fn reduce(f: &mut Cover, on: &Cover) {
    let width = f.width();
    let mut cubes: Vec<Cube> = f.cubes().to_vec();
    for i in 0..cubes.len() {
        // The cube as it stood when this iteration started: the on-cubes it
        // intersects are the ones whose coverage the shrink must preserve.
        let entry = cubes[i].clone();
        let mut residue: Option<Cube> = None;
        for o in on.cubes().iter().filter(|o| o.intersects(&entry)) {
            if let Some(s) = residue_supercube(o, &cubes, i, width) {
                let r = match residue {
                    None => s,
                    Some(r) => r.supercube(&s),
                };
                // Once the residue pokes outside the cube no shrink can be
                // valid, so the remaining obligations don't matter.
                let sticks_out = !entry.contains(&r);
                residue = Some(r);
                if sticks_out {
                    break;
                }
            }
        }
        cubes[i] = match residue {
            // No residue: the rest already covers every obligation, and the
            // greedy pins each free variable to 1.
            None => {
                let mut c = entry;
                for v in 0..width {
                    if c.get(v) == Literal::DontCare {
                        c.set(v, Literal::One);
                    }
                }
                c
            }
            // The residue fits inside the cube: shrink down onto it.
            Some(s) if entry.contains(&s) => s,
            // The residue sticks out: no shrink is valid.
            Some(_) => entry,
        };
    }
    *f = cubes.into_iter().collect();
}

/// Piece cap for the sharp-based residue computation; past this the
/// per-variable probe fallback (bounded, but slower) takes over.
const RESIDUE_PIECE_CAP: usize = 2_048;

/// The supercube of `o # (cubes \ {skip})` — the smallest cube containing
/// the points of `o` not covered by the other cubes — or `None` when that
/// difference is empty.
fn residue_supercube(o: &Cube, cubes: &[Cube], skip: usize, width: usize) -> Option<Cube> {
    if width <= 64 {
        return residue_supercube1(o, cubes, skip, width);
    }
    // Wide-cube generic path: incremental sharp with heap cubes.
    let mut pieces: Vec<Cube> = vec![o.clone()];
    let mut scratch: Vec<Cube> = Vec::new();
    for (j, g) in cubes.iter().enumerate() {
        if j == skip || g.disjoint(o) {
            continue;
        }
        scratch.clear();
        for p in &pieces {
            scratch.extend(p.sharp(g));
        }
        std::mem::swap(&mut pieces, &mut scratch);
        if pieces.is_empty() {
            return None;
        }
        if pieces.len() > RESIDUE_PIECE_CAP {
            return residue_supercube_by_probe(o, cubes, skip, width);
        }
    }
    let mut sup: Option<Cube> = None;
    for p in &pieces {
        sup = Some(match sup {
            None => p.clone(),
            Some(s) => s.supercube(p),
        });
    }
    sup
}

/// Single-block residue supercube: incremental sharp over packed
/// `(mask, val)` rows. The pieces start as `{o}` and stay pairwise disjoint
/// throughout (the sharp of disjoint cubes is disjoint), so no containment
/// pruning is needed — each subtraction step is a flat map over 16-byte
/// rows, and cubes disjoint from `o` are skipped outright. If the piece
/// count blows past [`RESIDUE_PIECE_CAP`], the bounded per-variable probe
/// fallback takes over.
fn residue_supercube1(o: &Cube, cubes: &[Cube], skip: usize, width: usize) -> Option<Cube> {
    let (om, ov) = (o.mask_block(0), o.val_block(0));
    let mut pieces: Vec<(u64, u64)> = vec![(om, ov)];
    let mut scratch: Vec<(u64, u64)> = Vec::new();
    for (j, g) in cubes.iter().enumerate() {
        if j == skip {
            continue;
        }
        let (gm, gv) = (g.mask_block(0), g.val_block(0));
        if (ov ^ gv) & om & gm != 0 {
            continue; // g disjoint from o: no piece can touch it
        }
        scratch.clear();
        for &(pm, pv) in &pieces {
            if (pv ^ gv) & pm & gm != 0 {
                scratch.push((pm, pv)); // disjoint piece survives whole
                continue;
            }
            // Sharp: for each variable g constrains and the piece leaves
            // free, emit the piece with that literal flipped, fixing the
            // previous ones to g's values so the pieces stay disjoint.
            let mut prefix_m = pm;
            let mut prefix_v = pv;
            let mut free = gm & !pm;
            while free != 0 {
                let m = free & free.wrapping_neg();
                free &= free - 1;
                scratch.push((prefix_m | m, prefix_v | (!gv & m)));
                prefix_m |= m;
                prefix_v |= gv & m;
            }
            // gm ⊆ pm: the piece lies inside g and vanishes.
        }
        std::mem::swap(&mut pieces, &mut scratch);
        if pieces.is_empty() {
            return None;
        }
        if pieces.len() > RESIDUE_PIECE_CAP {
            return residue_supercube_by_probe(o, cubes, skip, width);
        }
    }
    let (mut sm, mut sv) = pieces[0];
    for &(pm, pv) in &pieces[1..] {
        let agree = sm & pm & !(sv ^ pv);
        sm = agree;
        sv &= agree;
    }
    Some(Cube::from_block1(width, sm, sv))
}

/// Fallback residue supercube: decides each variable's literal from whether
/// `o`'s two half-spaces on that variable are fully covered by the rest.
fn residue_supercube_by_probe(o: &Cube, cubes: &[Cube], skip: usize, width: usize) -> Option<Cube> {
    let rest = || {
        cubes
            .iter()
            .enumerate()
            .filter(move |(j, _)| *j != skip)
            .map(|(_, c)| c)
    };
    if width <= 64 {
        // Cofactor the rest of the cover by `o` once; every half-space
        // question below is then a flat filter plus tautology over rows.
        let Some(rows) = cofactor_rows1(rest(), o) else {
            return None; // some cube swallows o whole
        };
        if !rows.is_empty() && tautology1(&rows) {
            return None; // residue empty
        }
        let (om, ov) = (o.mask_block(0), o.val_block(0));
        let mut sup = Cube::full(width);
        for v in 0..width {
            let m = 1u64 << v;
            if om & m != 0 {
                // o constrains v: the whole residue lies on o's side.
                sup.set(
                    v,
                    if ov & m != 0 {
                        Literal::One
                    } else {
                        Literal::Zero
                    },
                );
                continue;
            }
            let side_uncovered = |value: u64| match cofactor_rows_by_var(&rows, m, value) {
                None => false, // a full cube covers this side
                Some(cof) => cof.is_empty() || !tautology1(&cof),
            };
            let zero = side_uncovered(0);
            let one = side_uncovered(m);
            match (zero, one) {
                (true, true) => {}
                (true, false) => sup.set(v, Literal::Zero),
                (false, true) => sup.set(v, Literal::One),
                // Unreachable: the residue is nonempty, so some side has
                // points.
                (false, false) => {}
            }
        }
        return Some(sup);
    }
    let covered = |target: &Cube| cofactor_covers(rest(), target, width);
    if covered(o) {
        return None; // residue empty
    }
    let mut sup = Cube::full(width);
    for v in 0..width {
        // Does the residue have points with v = 0 / v = 1?
        let side_uncovered = |lit: Literal| {
            if o.get(v) != Literal::DontCare {
                return o.get(v) == lit; // the residue is nonempty, on o's side
            }
            let mut half = o.clone();
            half.set(v, lit);
            !covered(&half)
        };
        let zero = side_uncovered(Literal::Zero);
        let one = side_uncovered(Literal::One);
        match (zero, one) {
            (true, true) => {}
            (true, false) => sup.set(v, Literal::Zero),
            (false, true) => sup.set(v, Literal::One),
            // Unreachable: the residue is nonempty, so some side has points.
            (false, false) => {}
        }
    }
    Some(sup)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(cubes: &[&str]) -> Cover {
        cubes.iter().map(|s| Cube::from_str_cube(s)).collect()
    }

    /// Checks the minimisation contract: covers all of `on`, none of `off`.
    fn check_contract(on: &Cover, off: &Cover) -> Cover {
        let min = minimize(on, off);
        assert!(min.covers_cover(on), "on-set lost: {min} vs {on}");
        assert!(!min.intersects(off), "off-set hit: {min} vs {off}");
        assert!(cost(&min) <= cost(on), "cost increased");
        min
    }

    #[test]
    fn merges_adjacent_minterms() {
        let on = cover(&["110", "100"]);
        let off = cover(&["0--", "1-1"]);
        let min = check_contract(&on, &off);
        assert_eq!(min.len(), 1);
        assert_eq!(min.cubes()[0].to_string(), "1-0");
    }

    #[test]
    fn exploits_dont_cares() {
        // on = {11}, off = {00}; 01 and 10 are DC → single-literal answer.
        let on = cover(&["11"]);
        let off = cover(&["00"]);
        let min = check_contract(&on, &off);
        assert_eq!(min.len(), 1);
        assert_eq!(min.literal_count(), 1);
    }

    #[test]
    fn paper_fig1_on_set_minimises_to_a_plus_c() {
        // On(b) = {100,101,110,111,001,011}, Off(b) = {010,000}; the paper's
        // result is a + c.
        let on = cover(&["100", "101", "110", "111", "001", "011"]);
        let off = cover(&["010", "000"]);
        let min = check_contract(&on, &off);
        assert_eq!(min.len(), 2);
        assert_eq!(min.literal_count(), 2);
        let names = ["a", "b", "c"];
        let expr = min.to_expression_string(&names);
        assert!(expr == "a + c" || expr == "c + a", "got {expr}");
    }

    #[test]
    fn already_minimal_is_stable() {
        let on = cover(&["1--"]);
        let off = cover(&["0--"]);
        let min = check_contract(&on, &off);
        assert_eq!(min.len(), 1);
        assert_eq!(min.cubes()[0].to_string(), "1--");
    }

    #[test]
    fn empty_on_set() {
        let on = Cover::empty(3);
        let off = cover(&["---"]);
        assert!(minimize(&on, &off).is_empty());
    }

    #[test]
    fn redundant_cube_removed() {
        // Third cube is inside the union of the first two.
        let on = cover(&["1-", "-1", "11"]);
        let off = cover(&["00"]);
        let min = check_contract(&on, &off);
        assert_eq!(min.len(), 2);
    }

    #[test]
    fn xor_cannot_be_reduced_below_two_cubes() {
        let on = cover(&["10", "01"]);
        let off = cover(&["11", "00"]);
        let min = check_contract(&on, &off);
        assert_eq!(min.len(), 2);
        assert_eq!(min.literal_count(), 4);
    }

    #[test]
    fn five_variable_random_shape() {
        // A structured function: majority-ish over 5 vars with DC holes.
        let on = cover(&["11---", "1-1--", "-11--"]);
        let off = cover(&["00-0-", "0-00-"]);
        check_contract(&on, &off);
    }

    #[test]
    fn exhaustive_semantics_after_minimise() {
        // Brute-force check on 4 variables: minimised cover equals the
        // original on every completely specified point that is not DC.
        let on = cover(&["1100", "1101", "111-", "0011"]);
        let off = cover(&["0000", "01--", "1000", "1001"]);
        let min = minimize(&on, &off);
        for x in 0..16u8 {
            let bits = [(x & 8) != 0, (x & 4) != 0, (x & 2) != 0, (x & 1) != 0];
            if on.covers_bits(&bits) {
                assert!(min.covers_bits(&bits), "lost on-point {bits:?}");
            }
            if off.covers_bits(&bits) {
                assert!(!min.covers_bits(&bits), "gained off-point {bits:?}");
            }
        }
    }
}
