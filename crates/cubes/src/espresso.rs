//! A self-contained Espresso-style two-level minimiser.
//!
//! The paper runs Espresso over the covers derived from the unfolding
//! segment, using the DC-set for optimisation. This module implements the
//! classic EXPAND → IRREDUNDANT → REDUCE iteration driven by an explicit
//! on-set cover and an explicit off-set cover; everything not covered by
//! either is don't-care and may be absorbed freely.
//!
//! Exact minimality is not claimed (neither does Espresso claim it); the
//! result is a *prime and irredundant* cover whose cost (cube count, then
//! literal count) does not exceed the input's.

use crate::cover::Cover;
use crate::cube::{Cube, Literal};

/// Minimises `on` against `off`: returns a cover that covers every point of
/// `on`, covers no point of `off`, and is locally minimal under the
/// expand/irredundant/reduce moves.
///
/// Points covered by neither input are treated as don't-cares.
///
/// # Panics
///
/// Panics (in debug builds) if `on` and `off` intersect — the caller must
/// provide a consistent partition, which is exactly the paper's cover
/// correctness condition.
///
/// # Examples
///
/// ```
/// use si_cubes::{minimize, Cover, Cube};
///
/// // on = {11-, 10-} (= a), off = {0--}
/// let on: Cover = [Cube::from_str_cube("11-"), Cube::from_str_cube("10-")]
///     .into_iter()
///     .collect();
/// let off: Cover = [Cube::from_str_cube("0--")].into_iter().collect();
/// let min = minimize(&on, &off);
/// assert_eq!(min.len(), 1);
/// assert_eq!(min.cubes()[0].to_string(), "1--");
/// ```
pub fn minimize(on: &Cover, off: &Cover) -> Cover {
    debug_assert!(
        !on.intersects(off),
        "on-set and off-set covers must be disjoint"
    );
    if on.is_empty() {
        return on.clone();
    }
    let mut f = on.clone();
    f.remove_contained();

    let mut best = f.clone();
    let mut best_cost = cost(&best);
    for _ in 0..8 {
        expand(&mut f, off);
        irredundant(&mut f, on);
        let c = cost(&f);
        if c < best_cost {
            best = f.clone();
            best_cost = c;
        } else {
            break;
        }
        reduce(&mut f, on);
    }
    canonical_order(&mut best);
    best
}

/// Sorts cubes so that terms constraining earlier variables come first —
/// `a + c` rather than `c + a` — making reports deterministic.
fn canonical_order(f: &mut Cover) {
    let mut cubes: Vec<Cube> = f.cubes().to_vec();
    cubes.sort_by_key(|c| {
        c.to_string()
            .chars()
            .map(|ch| if ch == '-' { '~' } else { ch })
            .collect::<String>()
    });
    *f = cubes.into_iter().collect();
}

/// Cover cost: cube count first, then literal count (the paper reports
/// literal counts; fewer cubes almost always means fewer literals too).
fn cost(f: &Cover) -> (usize, usize) {
    (f.len(), f.literal_count())
}

/// EXPAND: raise literals of every cube as long as the cube stays disjoint
/// from the off-set, then drop cubes contained in the expanded one.
fn expand(f: &mut Cover, off: &Cover) {
    let width = f.width();
    let mut cubes: Vec<Cube> = f.cubes().to_vec();
    // Expand big cubes first so they absorb the small ones.
    cubes.sort_by_key(|c| c.literal_count());
    let mut result: Vec<Cube> = Vec::with_capacity(cubes.len());
    for mut cube in cubes {
        for v in 0..width {
            if cube.get(v) == Literal::DontCare {
                continue;
            }
            let saved = cube.get(v);
            cube.set(v, Literal::DontCare);
            if off.cubes().iter().any(|o| o.intersect(&cube).is_some()) {
                cube.set(v, saved);
            }
        }
        if !result.iter().any(|r| r.contains(&cube)) {
            result.retain(|r| !cube.contains(r));
            result.push(cube);
        }
    }
    *f = result.into_iter().collect();
}

/// IRREDUNDANT: greedily remove cubes whose points are already covered by
/// the rest of the cover (validated against the original on-set).
fn irredundant(f: &mut Cover, on: &Cover) {
    // Try to remove large-literal cubes first (they are the most specific).
    let mut order: Vec<usize> = (0..f.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(f.cubes()[i].literal_count()));
    let mut removed = vec![false; f.len()];
    for &i in &order {
        removed[i] = true;
        let candidate: Cover = f
            .cubes()
            .iter()
            .enumerate()
            .filter(|(j, _)| !removed[*j])
            .map(|(_, c)| c.clone())
            .collect();
        let still_covered = on
            .cubes()
            .iter()
            .filter(|o| o.intersect(&f.cubes()[i]).is_some())
            .all(|o| !candidate.is_empty() && candidate.covers_cube(o));
        if !still_covered {
            removed[i] = false;
        }
    }
    *f = f
        .cubes()
        .iter()
        .enumerate()
        .filter(|(j, _)| !removed[*j])
        .map(|(_, c)| c.clone())
        .collect();
}

/// REDUCE: shrink each cube as far as the on-set coverage allows, so the
/// next EXPAND can move it in a better direction.
fn reduce(f: &mut Cover, on: &Cover) {
    let width = f.width();
    for i in 0..f.len() {
        let mut cube = f.cubes()[i].clone();
        for v in 0..width {
            if cube.get(v) != Literal::DontCare {
                continue;
            }
            for lit in [Literal::One, Literal::Zero] {
                let mut candidate_cube = cube.clone();
                candidate_cube.set(v, lit);
                let candidate: Cover = f
                    .cubes()
                    .iter()
                    .enumerate()
                    .map(|(j, c)| {
                        if j == i {
                            candidate_cube.clone()
                        } else {
                            c.clone()
                        }
                    })
                    .collect();
                let ok = on
                    .cubes()
                    .iter()
                    .filter(|o| o.intersect(&f.cubes()[i]).is_some())
                    .all(|o| candidate.covers_cube(o));
                if ok {
                    cube = candidate_cube;
                    break;
                }
            }
        }
        // Rebuild `f` with the reduced cube in place.
        let cubes: Vec<Cube> = f
            .cubes()
            .iter()
            .enumerate()
            .map(|(j, c)| if j == i { cube.clone() } else { c.clone() })
            .collect();
        *f = cubes.into_iter().collect();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cover(cubes: &[&str]) -> Cover {
        cubes.iter().map(|s| Cube::from_str_cube(s)).collect()
    }

    /// Checks the minimisation contract: covers all of `on`, none of `off`.
    fn check_contract(on: &Cover, off: &Cover) -> Cover {
        let min = minimize(on, off);
        assert!(min.covers_cover(on), "on-set lost: {min} vs {on}");
        assert!(!min.intersects(off), "off-set hit: {min} vs {off}");
        assert!(cost(&min) <= cost(on), "cost increased");
        min
    }

    #[test]
    fn merges_adjacent_minterms() {
        let on = cover(&["110", "100"]);
        let off = cover(&["0--", "1-1"]);
        let min = check_contract(&on, &off);
        assert_eq!(min.len(), 1);
        assert_eq!(min.cubes()[0].to_string(), "1-0");
    }

    #[test]
    fn exploits_dont_cares() {
        // on = {11}, off = {00}; 01 and 10 are DC → single-literal answer.
        let on = cover(&["11"]);
        let off = cover(&["00"]);
        let min = check_contract(&on, &off);
        assert_eq!(min.len(), 1);
        assert_eq!(min.literal_count(), 1);
    }

    #[test]
    fn paper_fig1_on_set_minimises_to_a_plus_c() {
        // On(b) = {100,101,110,111,001,011}, Off(b) = {010,000}; the paper's
        // result is a + c.
        let on = cover(&["100", "101", "110", "111", "001", "011"]);
        let off = cover(&["010", "000"]);
        let min = check_contract(&on, &off);
        assert_eq!(min.len(), 2);
        assert_eq!(min.literal_count(), 2);
        let names = ["a", "b", "c"];
        let expr = min.to_expression_string(&names);
        assert!(expr == "a + c" || expr == "c + a", "got {expr}");
    }

    #[test]
    fn already_minimal_is_stable() {
        let on = cover(&["1--"]);
        let off = cover(&["0--"]);
        let min = check_contract(&on, &off);
        assert_eq!(min.len(), 1);
        assert_eq!(min.cubes()[0].to_string(), "1--");
    }

    #[test]
    fn empty_on_set() {
        let on = Cover::empty(3);
        let off = cover(&["---"]);
        assert!(minimize(&on, &off).is_empty());
    }

    #[test]
    fn redundant_cube_removed() {
        // Third cube is inside the union of the first two.
        let on = cover(&["1-", "-1", "11"]);
        let off = cover(&["00"]);
        let min = check_contract(&on, &off);
        assert_eq!(min.len(), 2);
    }

    #[test]
    fn xor_cannot_be_reduced_below_two_cubes() {
        let on = cover(&["10", "01"]);
        let off = cover(&["11", "00"]);
        let min = check_contract(&on, &off);
        assert_eq!(min.len(), 2);
        assert_eq!(min.literal_count(), 4);
    }

    #[test]
    fn five_variable_random_shape() {
        // A structured function: majority-ish over 5 vars with DC holes.
        let on = cover(&["11---", "1-1--", "-11--"]);
        let off = cover(&["00-0-", "0-00-"]);
        check_contract(&on, &off);
    }

    #[test]
    fn exhaustive_semantics_after_minimise() {
        // Brute-force check on 4 variables: minimised cover equals the
        // original on every completely specified point that is not DC.
        let on = cover(&["1100", "1101", "111-", "0011"]);
        let off = cover(&["0000", "01--", "1000", "1001"]);
        let min = minimize(&on, &off);
        for x in 0..16u8 {
            let bits = [(x & 8) != 0, (x & 4) != 0, (x & 2) != 0, (x & 1) != 0];
            if on.covers_bits(&bits) {
                assert!(min.covers_bits(&bits), "lost on-point {bits:?}");
            }
            if off.covers_bits(&bits) {
                assert!(!min.covers_bits(&bits), "gained off-point {bits:?}");
            }
        }
    }
}
