//! Behavioural correctness properties checked on the state graph:
//! semi-modularity (output persistency) and Complete State Coding (CSC).

use std::collections::HashMap;

use si_stg::{SignalTransition, Stg};

use crate::graph::StateGraph;

/// A semi-modularity (output persistency) violation: an excited non-input
/// signal change was disabled by another transition firing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PersistencyViolation {
    /// The state at which the output change was excited.
    pub state: usize,
    /// The output change that was disabled.
    pub disabled: SignalTransition,
    /// The change whose firing disabled it.
    pub by: SignalTransition,
}

/// Checks semi-modularity: for every state `s` and excited non-input change
/// `±a`, firing any *other* change must leave `±a` excited. Violations mean
/// the circuit could produce a hazard, so such STGs are rejected for
/// synthesis.
///
/// # Examples
///
/// ```
/// use si_stg::suite::paper_fig1;
/// use si_stategraph::{check_persistency, StateGraph};
///
/// # fn main() -> Result<(), si_stategraph::SgError> {
/// let stg = paper_fig1();
/// let sg = StateGraph::build(&stg, 10_000)?;
/// assert!(check_persistency(&stg, &sg).is_empty());
/// # Ok(())
/// # }
/// ```
pub fn check_persistency(stg: &Stg, sg: &StateGraph) -> Vec<PersistencyViolation> {
    let mut violations = Vec::new();
    for s in 0..sg.len() {
        let excited_here = sg.excited(stg, s);
        for &(t, s2) in sg.successors(s) {
            let Some(fired) = stg.label(t) else { continue };
            let excited_after = sg.excited(stg, s2);
            for &e in &excited_here {
                if e == fired {
                    continue;
                }
                if !stg.signal_kind(e.signal).is_implementable() {
                    continue;
                }
                if !excited_after.contains(&e) {
                    violations.push(PersistencyViolation {
                        state: s,
                        disabled: e,
                        by: fired,
                    });
                }
            }
        }
    }
    violations
}

/// A Complete State Coding conflict: two states share a binary code but
/// disagree on which non-input signal changes are excited.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CscConflict {
    /// First state of the conflicting pair.
    pub state_a: usize,
    /// Second state of the conflicting pair.
    pub state_b: usize,
    /// The shared binary code (formatted).
    pub code: String,
    /// A non-input signal excited in exactly one of the two states.
    pub signal: String,
}

/// Checks the Complete State Coding condition: any two states with equal
/// binary codes must have the same set of excited non-input signals
/// (Chu 1987). STGs violating CSC are not implementable as speed-independent
/// circuits without specification changes.
pub fn check_csc(stg: &Stg, sg: &StateGraph) -> Vec<CscConflict> {
    let mut by_code: HashMap<String, Vec<usize>> = HashMap::new();
    for s in 0..sg.len() {
        by_code.entry(sg.code(s).to_string()).or_default().push(s);
    }
    let excited_outputs = |s: usize| -> Vec<si_stg::SignalId> {
        let mut v: Vec<_> = sg
            .excited(stg, s)
            .into_iter()
            .filter(|e| stg.signal_kind(e.signal).is_implementable())
            .map(|e| e.signal)
            .collect();
        v.sort();
        v.dedup();
        v
    };
    let mut conflicts = Vec::new();
    for (code, states) in by_code {
        if states.len() < 2 {
            continue;
        }
        let reference = excited_outputs(states[0]);
        for &s in &states[1..] {
            let here = excited_outputs(s);
            if here != reference {
                let Some(diff) = reference
                    .iter()
                    .chain(&here)
                    .find(|&&sig| reference.contains(&sig) != here.contains(&sig))
                    .copied()
                else {
                    // `here != reference` guarantees a differing element.
                    unreachable!("unequal excitation sets with no differing signal");
                };
                conflicts.push(CscConflict {
                    state_a: states[0],
                    state_b: s,
                    code: code.clone(),
                    signal: stg.signal_name(diff).to_owned(),
                });
            }
        }
    }
    conflicts.sort_by_key(|c| (c.state_a, c.state_b));
    conflicts
}

/// Checks Unique State Coding: two distinct markings sharing a binary code.
/// USC is stronger than CSC; its violations are diagnostics, not
/// implementability failures.
pub fn check_usc(sg: &StateGraph) -> Vec<(usize, usize)> {
    let mut by_code: HashMap<String, usize> = HashMap::new();
    let mut clashes = Vec::new();
    for s in 0..sg.len() {
        match by_code.entry(sg.code(s).to_string()) {
            std::collections::hash_map::Entry::Occupied(e) => clashes.push((*e.get(), s)),
            std::collections::hash_map::Entry::Vacant(e) => {
                e.insert(s);
            }
        }
    }
    clashes
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_stg::generators::muller_pipeline;
    use si_stg::suite::{paper_fig1, vme_read_csc, vme_read_no_csc};
    use si_stg::{SignalKind, StgBuilder};

    #[test]
    fn fig1_is_persistent_and_csc_clean() {
        let stg = paper_fig1();
        let sg = StateGraph::build(&stg, 1000).expect("builds");
        assert!(check_persistency(&stg, &sg).is_empty());
        assert!(check_csc(&stg, &sg).is_empty());
    }

    #[test]
    fn muller_pipeline_is_persistent_and_csc_clean() {
        let stg = muller_pipeline(3);
        let sg = StateGraph::build(&stg, 100_000).expect("builds");
        assert!(check_persistency(&stg, &sg).is_empty());
        assert!(check_csc(&stg, &sg).is_empty());
    }

    #[test]
    fn vme_without_csc_signal_has_conflicts() {
        let stg = vme_read_no_csc();
        let sg = StateGraph::build(&stg, 10_000).expect("builds");
        let conflicts = check_csc(&stg, &sg);
        assert!(
            !conflicts.is_empty(),
            "expected the classic VME CSC conflict"
        );
    }

    #[test]
    fn vme_with_csc_signal_is_clean() {
        let stg = vme_read_csc();
        let sg = StateGraph::build(&stg, 10_000).expect("builds");
        let conflicts = check_csc(&stg, &sg);
        assert!(conflicts.is_empty(), "conflicts: {conflicts:?}");
        assert!(check_persistency(&stg, &sg).is_empty());
    }

    #[test]
    fn output_choice_is_non_persistent() {
        // Two output transitions compete for one token: firing one disables
        // the other.
        let mut b = StgBuilder::new();
        let x = b.signal("x", SignalKind::Output);
        let y = b.signal("y", SignalKind::Output);
        let px = b.place("choice");
        let x_p = b.rise(x);
        let y_p = b.rise(y);
        let x_m = b.fall(x);
        let y_m = b.fall(y);
        b.arc_pt(px, x_p);
        b.arc_pt(px, y_p);
        b.arc_tt(x_p, x_m);
        b.arc_tt(y_p, y_m);
        b.arc_tp(x_m, px);
        b.arc_tp(y_m, px);
        b.mark(px);
        b.initial_all_zero();
        let stg = b.build().expect("builds");
        let sg = StateGraph::build(&stg, 100).expect("builds");
        let v = check_persistency(&stg, &sg);
        assert!(!v.is_empty());
        assert_eq!(v[0].state, 0);
    }

    #[test]
    fn input_choice_is_allowed() {
        // The same structure with *input* signals is a legal environment
        // choice.
        let mut b = StgBuilder::new();
        let x = b.input("x");
        let y = b.input("y");
        let px = b.place("choice");
        let x_p = b.rise(x);
        let y_p = b.rise(y);
        let x_m = b.fall(x);
        let y_m = b.fall(y);
        b.arc_pt(px, x_p);
        b.arc_pt(px, y_p);
        b.arc_tt(x_p, x_m);
        b.arc_tt(y_p, y_m);
        b.arc_tp(x_m, px);
        b.arc_tp(y_m, px);
        b.mark(px);
        b.initial_all_zero();
        let stg = b.build().expect("builds");
        let sg = StateGraph::build(&stg, 100).expect("builds");
        assert!(check_persistency(&stg, &sg).is_empty());
    }

    #[test]
    fn usc_flags_shared_codes() {
        let stg = vme_read_no_csc();
        let sg = StateGraph::build(&stg, 10_000).expect("builds");
        assert!(!check_usc(&sg).is_empty());
    }
}
