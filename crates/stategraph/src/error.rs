//! Error types for state-graph construction and SG-based synthesis.

use std::error::Error;
use std::fmt;

use si_petri::NetError;

/// Errors raised while building or analysing a state graph.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SgError {
    /// The underlying net exploration failed (unsafe net or state budget).
    Net(NetError),
    /// No consistent binary state assignment exists.
    Inconsistent {
        /// The signal whose assignment conflicts.
        signal: String,
        /// Human-readable explanation.
        detail: String,
    },
    /// Synthesis was asked for a signal with no transitions (constant
    /// signals need no gate).
    ConstantSignal {
        /// The signal's name.
        signal: String,
    },
    /// The STG violates Complete State Coding for a signal; exact synthesis
    /// is impossible without changing the specification.
    CscViolation {
        /// The signal whose on/off sets share a binary code.
        signal: String,
        /// One offending shared code, for diagnostics.
        code: String,
    },
}

impl fmt::Display for SgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SgError::Net(e) => write!(f, "state graph construction failed: {e}"),
            SgError::Inconsistent { signal, detail } => {
                write!(f, "inconsistent state assignment on `{signal}`: {detail}")
            }
            SgError::ConstantSignal { signal } => {
                write!(f, "signal `{signal}` never changes; no gate is needed")
            }
            SgError::CscViolation { signal, code } => write!(
                f,
                "CSC violation on `{signal}`: code {code} appears in both the on-set and the off-set"
            ),
        }
    }
}

impl Error for SgError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SgError::Net(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NetError> for SgError {
    fn from(e: NetError) -> Self {
        SgError::Net(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SgError::Inconsistent {
            signal: "a".into(),
            detail: "boom".into(),
        };
        assert!(e.to_string().contains("`a`"));
        let e = SgError::CscViolation {
            signal: "b".into(),
            code: "101".into(),
        };
        assert!(e.to_string().contains("101"));
        assert!(SgError::ConstantSignal { signal: "x".into() }
            .to_string()
            .contains("no gate"));
    }
}
