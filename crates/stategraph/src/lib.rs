//! # si-stategraph — explicit state graphs and the SG-based baseline
//!
//! The substrate every SG-based synthesis tool (SIS, Petrify, …) rests on:
//! the explicit [`StateGraph`] with consistent binary codes, the behavioural
//! correctness checks (consistency, semi-modularity / output persistency,
//! Complete State Coding), and the exact on/off-set synthesis flow
//! ([`synthesize_from_sg`]) used as the comparison baseline in the paper's
//! Table 1 and Figure 6.
//!
//! The explicit path deliberately suffers from state explosion — building
//! it is what makes the unfolding-based method (crate `si-synthesis`)
//! worthwhile. The [`SgEngine::Symbolic`] engine ([`SymbolicSg`]) instead
//! computes the reachable state set as a BDD fixpoint and derives the same
//! gate equations without enumerating a single state, pushing the SG
//! baseline far past the explicit state budget.
//!
//! ## Example
//!
//! ```
//! use si_stg::suite::paper_fig1;
//! use si_stategraph::{synthesize_from_sg, SgSynthesisOptions};
//!
//! # fn main() -> Result<(), si_stategraph::SgError> {
//! let stg = paper_fig1();
//! let netlist = synthesize_from_sg(&stg, &SgSynthesisOptions::default())?;
//! assert_eq!(netlist.gates[0].equation(&stg), "b = a + c");
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod error;
mod graph;
mod props;
mod symbolic;
mod synth;

pub use error::SgError;
pub use graph::StateGraph;
pub use props::{check_csc, check_persistency, check_usc, CscConflict, PersistencyViolation};
pub use si_bdd::ReorderPolicy;
pub use symbolic::{CoverExtraction, OrderSeed, SymbolicSg, SymbolicTuning};
pub use synth::{
    check_implementable, on_off_sets, on_off_sets_implicit, synthesize_from_built_sg,
    synthesize_from_on_off_sets, synthesize_from_sg, synthesize_from_symbolic_sg,
    GateImplementation, ImplicitOnOffSets, OnOffSets, SgClassification, SgEngine, SgSynthesis,
    SgSynthesisOptions,
};
