//! The State Graph (State Transition Diagram): the reachability graph of an
//! STG with a consistent binary code assigned to every state.

use si_petri::{ReachabilityGraph, TransitionId};
use si_stg::{BinaryCode, SignalTransition, Stg};

use crate::error::SgError;

/// The explicit state graph of an STG.
///
/// Construction explores all reachable markings (state explosion included —
/// that is the point of the paper's unfolding-based alternative), assigns a
/// binary code to every state and checks the *consistent state assignment*
/// criterion: along every edge labelled `a+` the code bit of `a` goes 0→1,
/// along `a-` it goes 1→0.
///
/// If the STG does not declare an initial code, one is inferred from the
/// propagation constraints (bits of signals that never fire default to 0).
///
/// # Examples
///
/// ```
/// use si_stg::suite::paper_fig1;
/// use si_stategraph::StateGraph;
///
/// # fn main() -> Result<(), si_stategraph::SgError> {
/// let stg = paper_fig1();
/// let sg = StateGraph::build(&stg, 10_000)?;
/// assert_eq!(sg.len(), 8);
/// assert_eq!(sg.code(0).to_string(), "000");
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct StateGraph {
    graph: ReachabilityGraph,
    codes: Vec<BinaryCode>,
    initial_code: BinaryCode,
}

impl StateGraph {
    /// Explores the STG's reachability graph (bounded by `budget` states)
    /// and assigns consistent binary codes.
    ///
    /// # Errors
    ///
    /// * [`SgError::Net`] if the net is unsafe or exceeds the budget;
    /// * [`SgError::Inconsistent`] if no consistent assignment exists.
    pub fn build(stg: &Stg, budget: usize) -> Result<Self, SgError> {
        let graph = ReachabilityGraph::explore(stg.net(), budget).map_err(SgError::Net)?;
        let n = stg.signal_count();

        // Phase 1: parity of each signal along any path (delta), BFS.
        let mut delta: Vec<Option<BinaryCode>> = vec![None; graph.len()];
        delta[0] = Some(BinaryCode::zeros(n));
        let mut queue = std::collections::VecDeque::from([0usize]);
        // v0 constraints harvested from edges: v0[a] = delta(s)[a] ⊕ source.
        let mut v0_known: Vec<Option<bool>> = vec![None; n];
        while let Some(s) = queue.pop_front() {
            let Some(d) = delta[s].clone() else {
                // Every state is assigned its delta before being enqueued.
                unreachable!("state {s} queued before its delta was set");
            };
            for &(t, s2) in graph.successors(s) {
                let mut d2 = d.clone();
                if let Some(SignalTransition { signal, polarity }) = stg.label(t) {
                    d2.toggle(signal);
                    // v0[signal] ⊕ delta[signal] = value before the change
                    let constraint = d.get(signal) ^ polarity.source_value();
                    match v0_known[signal.index()] {
                        None => v0_known[signal.index()] = Some(constraint),
                        Some(prev) if prev != constraint => {
                            return Err(SgError::Inconsistent {
                                signal: stg.signal_name(signal).to_owned(),
                                detail: format!(
                                    "conflicting initial-value constraints for `{}` \
                                     (transition {})",
                                    stg.signal_name(signal),
                                    stg.transition_label_string(t)
                                ),
                            });
                        }
                        Some(_) => {}
                    }
                }
                match &delta[s2] {
                    None => {
                        delta[s2] = Some(d2);
                        queue.push_back(s2);
                    }
                    Some(existing) => {
                        if *existing != d2 {
                            let sig = stg
                                .label(t)
                                .map(|l| stg.signal_name(l.signal).to_owned())
                                .unwrap_or_else(|| "<dummy>".to_owned());
                            return Err(SgError::Inconsistent {
                                signal: sig,
                                detail: "signal-change parity differs between two paths \
                                         to the same marking"
                                    .to_owned(),
                            });
                        }
                    }
                }
            }
        }

        // Phase 2: settle v0. Prefer the declared code; check it against the
        // harvested constraints.
        let initial_code = match stg.initial_code() {
            Some(code) => {
                for (i, known) in v0_known.iter().enumerate() {
                    if let Some(v) = known {
                        let sig = si_stg::SignalId(i as u32);
                        if code.get(sig) != *v {
                            return Err(SgError::Inconsistent {
                                signal: stg.signal_name(sig).to_owned(),
                                detail: format!(
                                    "declared initial value {} contradicts the STG \
                                     (must be {})",
                                    u8::from(code.get(sig)),
                                    u8::from(*v)
                                ),
                            });
                        }
                    }
                }
                code.clone()
            }
            None => {
                let mut code = BinaryCode::zeros(n);
                for (i, known) in v0_known.iter().enumerate() {
                    if let Some(true) = known {
                        code.set(si_stg::SignalId(i as u32), true);
                    }
                }
                code
            }
        };

        // Phase 3: codes = v0 ⊕ delta.
        let codes: Vec<BinaryCode> = delta
            .into_iter()
            .map(|d| {
                let Some(d) = d else {
                    // The reachability graph only stores states its own BFS
                    // reached, so the parity BFS above visits all of them.
                    unreachable!("reachable state missed by the parity BFS");
                };
                let mut c = initial_code.clone();
                for (sig, bit) in d.iter() {
                    if bit {
                        c.toggle(sig);
                    }
                }
                c
            })
            .collect();

        Ok(StateGraph {
            graph,
            codes,
            initial_code,
        })
    }

    /// Number of states.
    pub fn len(&self) -> usize {
        self.graph.len()
    }

    /// Returns `true` if the graph has no states (never after `build`).
    pub fn is_empty(&self) -> bool {
        self.graph.is_empty()
    }

    /// The underlying reachability graph.
    pub fn reachability(&self) -> &ReachabilityGraph {
        &self.graph
    }

    /// The binary code of state `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    pub fn code(&self, s: usize) -> &BinaryCode {
        &self.codes[s]
    }

    /// The initial binary code `v₀` (declared or inferred).
    pub fn initial_code(&self) -> &BinaryCode {
        &self.initial_code
    }

    /// Outgoing `(transition, successor)` edges of state `s`.
    pub fn successors(&self, s: usize) -> &[(TransitionId, usize)] {
        self.graph.successors(s)
    }

    /// The signal changes excited (enabled) at state `s`.
    pub fn excited(&self, stg: &Stg, s: usize) -> Vec<SignalTransition> {
        self.graph
            .successors(s)
            .iter()
            .filter_map(|&(t, _)| stg.label(t))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_petri::NetError;
    use si_stg::generators::{muller_pipeline, sequencer};
    use si_stg::suite::paper_fig1;
    use si_stg::{Polarity, StgBuilder};

    #[test]
    fn fig1_codes_match_paper() {
        let stg = paper_fig1();
        let sg = StateGraph::build(&stg, 1000).expect("builds");
        // The paper's SG (Fig 1c) assigns these code/marking pairs.
        let mut found: Vec<String> = (0..sg.len()).map(|s| sg.code(s).to_string()).collect();
        found.sort();
        let mut expected = vec!["000", "100", "001", "110", "101", "111", "011", "010"];
        expected.sort();
        assert_eq!(found, expected);
    }

    #[test]
    fn inference_matches_declared_code() {
        let stg = paper_fig1();
        let mut undeclared = stg.clone();
        // Erase the declared code by rebuilding without it: simplest is to
        // check inference agrees with declaration on the original.
        let sg = StateGraph::build(&stg, 1000).expect("builds");
        assert_eq!(sg.initial_code().to_string(), "000");
        let _ = &mut undeclared;
    }

    #[test]
    fn inconsistent_stg_rejected() {
        // a+ fires twice in a row: no consistent assignment.
        let mut b = StgBuilder::new();
        let a = b.input("a");
        let t1 = b.transition(a, Polarity::Rise);
        let t2 = b.transition(a, Polarity::Rise);
        b.arc_tt(t1, t2);
        let back = b.arc_tt(t2, t1);
        b.mark(back);
        let stg = b.build().expect("structurally fine");
        assert!(matches!(
            StateGraph::build(&stg, 100),
            Err(SgError::Inconsistent { .. })
        ));
    }

    #[test]
    fn declared_code_contradiction_detected() {
        let mut b = StgBuilder::new();
        let a = b.input("a");
        let t1 = b.rise(a);
        let t2 = b.fall(a);
        b.arc_tt(t1, t2);
        let back = b.arc_tt(t2, t1);
        b.mark(back);
        // a must start at 0 (a+ fires first) but we declare 1.
        b.initial_value(a, true);
        let stg = b.build().expect("builds");
        assert!(matches!(
            StateGraph::build(&stg, 100),
            Err(SgError::Inconsistent { .. })
        ));
    }

    #[test]
    fn sequencer_codes_walk_through_all_phases() {
        let stg = sequencer(3);
        let sg = StateGraph::build(&stg, 100).expect("builds");
        assert_eq!(sg.len(), 6);
        // Codes form the cyclic sequence 000,100,110,111,011,001.
        let codes: std::collections::HashSet<String> =
            (0..sg.len()).map(|s| sg.code(s).to_string()).collect();
        for c in ["000", "100", "110", "111", "011", "001"] {
            assert!(codes.contains(c), "missing {c}");
        }
    }

    #[test]
    fn excited_signals_at_initial_state() {
        let stg = muller_pipeline(2);
        let sg = StateGraph::build(&stg, 10_000).expect("builds");
        let ex = sg.excited(&stg, 0);
        // Only r+ is excited in the empty pipeline.
        assert_eq!(ex.len(), 1);
        assert_eq!(ex[0].polarity, Polarity::Rise);
        assert_eq!(stg.signal_name(ex[0].signal), "r");
    }

    #[test]
    fn budget_propagates() {
        let stg = muller_pipeline(6);
        assert!(matches!(
            StateGraph::build(&stg, 3),
            Err(SgError::Net(NetError::StateBudgetExceeded { .. }))
        ));
    }
}
