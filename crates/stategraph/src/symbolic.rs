//! The symbolic SG engine: everything SG-based synthesis needs, derived
//! from a BDD fixpoint instead of an explicit [`StateGraph`].
//!
//! [`SymbolicSg::build`] encodes the STG's net with one BDD variable per
//! place plus one auxiliary variable per signal (the binary code bit), runs
//! [`si_petri::SymbolicReach`] over per-transition partitioned relations,
//! checks the consistent-state-assignment criterion symbolically, and
//! projects the reachable `(marking, code)` relation into each signal's
//! on/off code sets. The sets come back as
//! [`ImplicitOnOffSets`] — the exact representation the implicit-cover
//! minimiser already consumes — so gate equations are **byte-identical** to
//! the explicit engine's (pinned by the equivalence suites) while the cost
//! tracks diagram sizes instead of the state count.
//!
//! The variable order is seeded from structure
//! ([`si_bdd::order_from_adjacency`]), selected by [`OrderSeed`]: either
//! STG signal adjacency (signals that talk to each other sit at
//! neighbouring levels, with each signal's surrounding places interleaved
//! right below its code bit), or P-invariant clusters (places of one
//! token-conservation invariant chained together — the certificate the
//! structural pass computes anyway). On pipeline-style specifications both
//! keep the reachable set near-linear where the state count is
//! exponential, and gate equations are identical under either seed (pinned
//! by the equivalence suites).
//!
//! When the structural pass certifies 1-safety (every place covered by a
//! unary P-invariant holding at most one initial token), the fixpoint
//! skips its per-iteration symbolic safety check entirely — the
//! certificate *is* the proof.
//!
//! [`StateGraph`]: crate::StateGraph

use si_bdd::{order_from_adjacency, Bdd, ConvertError, ReorderPolicy, TranslationCache};
use si_cubes::implicit::{ImplicitCover, ImplicitPool};
use si_petri::structural::{certify_one_safe, SafetyCertificate};
use si_petri::{AuxAction, SymbolicOptions, SymbolicReach};
use si_stg::{BinaryCode, Polarity, SignalId, SignalTransition, Stg};

use crate::error::SgError;
use crate::synth::ImplicitOnOffSets;

/// Pool-management knobs of the symbolic engine: the node budget plus the
/// garbage-collection and dynamic-reordering policies passed through to
/// [`si_petri::SymbolicReach`]. The choices affect memory and speed only —
/// every combination produces identical gate equations (pinned by the
/// equivalence suites).
#[derive(Debug, Clone)]
pub struct SymbolicTuning {
    /// Upper bound on *live* BDD nodes (checked after collection and any
    /// last-resort reorder).
    pub node_budget: usize,
    /// Dynamic variable reordering policy; `Auto` keeps specifications
    /// alive whose statically seeded order is bad (wide arbitration,
    /// many-way choice).
    pub reorder: ReorderPolicy,
    /// Pool size above which garbage is collected between fixpoint
    /// iterations (`0` collects every iteration).
    pub gc_threshold: usize,
    /// Initial live-node trigger of the `Auto` reordering policy.
    pub reorder_threshold: usize,
    /// Which structural heuristic seeds the static variable order. Gate
    /// equations are identical under every seed (pinned by the
    /// equivalence suites); only diagram sizes differ.
    pub order_seed: OrderSeed,
    /// Let a structural 1-safety certificate (unary P-invariant cover,
    /// [`si_petri::structural::certify_one_safe`]) replace the
    /// per-iteration symbolic safety check. Sound — the certificate is a
    /// proof — and pinned byte-identical by the equivalence suites;
    /// `false` keeps the dynamic check for cross-checks and ablations.
    pub safety_certificates: bool,
    /// Worker threads for the BDD kernels (`None` = serial). Purely a
    /// wall-clock knob: equations, witnesses and operation counts are
    /// identical at any thread count.
    pub bdd_threads: Option<usize>,
    /// Minimum pool size before kernel calls dispatch to the parallel
    /// frontier decomposition (`None` = the manager default). Below the
    /// floor even multi-threaded managers run serially — forking work for
    /// tiny diagrams costs more than it saves. Tests set `Some(0)` so small
    /// specifications still exercise the parallel path.
    pub bdd_parallel_floor: Option<usize>,
}

/// The structural heuristic that seeds the static BDD variable order
/// (before any dynamic reordering).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum OrderSeed {
    /// Signal adjacency: signals connected through a place sit at
    /// neighbouring levels, each followed by the places around its
    /// transitions.
    #[default]
    SignalAdjacency,
    /// P-invariant clusters: the places of each unary P-invariant (the
    /// token-conservation certificates of the structural pass) are chained
    /// together, with each signal pulled next to the places its
    /// transitions touch. Falls back to signal adjacency when the
    /// structural pass finds no invariant cover.
    PlaceInvariants,
}

/// The front end deriving each signal's implicit on/off code sets from the
/// reachable BDD. Both front ends hand the minimiser the same canonical
/// point sets, so gate equations are **byte-identical** either way (pinned
/// by the equivalence suites); only the extraction cost differs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoverExtraction {
    /// Minato–Morreale ISOP recursion natively on the code BDDs
    /// ([`si_bdd::BddManager::isop_implicit`]): one memoised three-way
    /// cofactor walk per set, no disjoint-cube enumeration. The default.
    #[default]
    Isop,
    /// The historical translation path
    /// ([`si_bdd::BddManager::to_implicit`]): rebuild each code BDD's
    /// point set node by node through the implicit pool's set algebra.
    /// Kept as the cross-check ablation.
    Translate,
}

impl CoverExtraction {
    /// Parses a CLI name: `isop` or `translate`.
    pub fn parse(name: &str) -> Option<Self> {
        match name {
            "isop" => Some(CoverExtraction::Isop),
            "translate" => Some(CoverExtraction::Translate),
            _ => None,
        }
    }
}

impl Default for SymbolicTuning {
    fn default() -> Self {
        let base = SymbolicOptions::default();
        SymbolicTuning {
            node_budget: base.node_budget,
            reorder: base.reorder,
            gc_threshold: base.gc_threshold,
            reorder_threshold: base.reorder_threshold,
            order_seed: OrderSeed::SignalAdjacency,
            safety_certificates: true,
            bdd_threads: None,
            bdd_parallel_floor: None,
        }
    }
}

impl SymbolicTuning {
    /// Default tuning with the given node budget.
    pub fn with_budget(node_budget: usize) -> Self {
        SymbolicTuning {
            node_budget,
            ..SymbolicTuning::default()
        }
    }

    /// The [`SymbolicOptions`] these knobs select, with every non-tuning
    /// field at its default — the single place the two structs are kept in
    /// sync, so both reachability passes (the main fixpoint and the
    /// initial-code inference) always run under identical tuning.
    fn to_options(&self) -> SymbolicOptions {
        SymbolicOptions {
            node_budget: self.node_budget,
            reorder: self.reorder,
            gc_threshold: self.gc_threshold,
            reorder_threshold: self.reorder_threshold,
            bdd_threads: self.bdd_threads,
            bdd_parallel_floor: self.bdd_parallel_floor,
            ..SymbolicOptions::default()
        }
    }
}

/// The symbolically represented state graph of an STG: the reachable
/// `(marking, code)` relation plus the per-signal on/off code sets, ready
/// for CSC checking and two-level minimisation.
pub struct SymbolicSg {
    reach: SymbolicReach,
    width: usize,
    initial_code: BinaryCode,
    /// Per signal: the reachable codes whose implied signal value is 1 / 0,
    /// projected onto the code variables.
    on_codes: Vec<Bdd>,
    off_codes: Vec<Bdd>,
    /// Manager variable → implicit variable (code bits only).
    code_map: Vec<Option<usize>>,
}

impl SymbolicSg {
    /// Builds the symbolic state graph of `stg` under the given pool
    /// tuning (node budget, garbage collection, dynamic reordering).
    ///
    /// # Errors
    ///
    /// * [`SgError::Net`] if the net is unsafe or the *live* diagram still
    ///   outgrows the node budget after collection (and, when the tuning
    ///   allows, reordering);
    /// * [`SgError::Inconsistent`] if no consistent binary state assignment
    ///   exists (same criterion as [`StateGraph::build`], checked
    ///   symbolically).
    ///
    /// [`StateGraph::build`]: crate::StateGraph::build
    pub fn build(stg: &Stg, tuning: &SymbolicTuning) -> Result<Self, SgError> {
        let net = stg.net();
        let width = stg.signal_count();
        let place_count = net.place_count();

        // One structural pass feeds both integrations: a full certificate
        // lets every fixpoint below skip its symbolic 1-safety check, and
        // its invariants seed the `PlaceInvariants` variable order.
        let certificate = certify_one_safe(net);
        let assume_one_safe = tuning.safety_certificates && certificate.certified;
        let order = variable_order(stg, tuning.order_seed, &certificate);

        let initial_code = match stg.initial_code() {
            Some(code) => code.clone(),
            None => infer_initial_code(stg, tuning, &order, assume_one_safe)?,
        };

        let aux_actions: Vec<Vec<AuxAction>> = net
            .transitions()
            .map(|t| match stg.label(t) {
                Some(SignalTransition { signal, polarity }) => vec![AuxAction {
                    var: signal.index(),
                    from: polarity.source_value(),
                    to: polarity.target_value(),
                }],
                None => Vec::new(),
            })
            .collect();

        let options = SymbolicOptions {
            aux_vars: width,
            aux_initial: (0..width)
                .map(|i| initial_code.get(SignalId(i as u32)))
                .collect(),
            aux_actions,
            order: Some(order),
            assume_one_safe,
            ..tuning.to_options()
        };
        let mut reach = SymbolicReach::explore(net, &options).map_err(SgError::Net)?;

        // Consistency, part 1: wherever a labelled transition is
        // marking-enabled, the signal's code bit must sit at the polarity's
        // source value — the symbolic form of "along every a+ edge the bit
        // goes 0 → 1".
        for t in net.transitions() {
            if let Some(SignalTransition { signal, polarity }) = stg.label(t) {
                let enabled = reach.enabling(t);
                let var = reach.aux_var(signal.index());
                let mgr = reach.manager_mut();
                let wrong = if polarity.source_value() {
                    mgr.nvar(var)
                } else {
                    mgr.var(var)
                };
                if !mgr.and(enabled, wrong).is_false() {
                    return Err(SgError::Inconsistent {
                        signal: stg.signal_name(signal).to_owned(),
                        detail: format!(
                            "transition {} is reachable with `{}` already at {}",
                            stg.transition_label_string(t),
                            stg.signal_name(signal),
                            u8::from(polarity.target_value())
                        ),
                    });
                }
            }
        }

        // Consistency, part 2: the code must be a *function* of the marking
        // — no marking may be reachable under two different codes (the
        // symbolic form of "signal-change parity agrees on every path").
        let code_vars: Vec<usize> = (0..width).map(|k| reach.aux_var(k)).collect();
        {
            let reached = reach.reachable();
            let mgr = reach.manager_mut();
            let all_codes = mgr.cube_vars(&code_vars);
            for (k, &var) in code_vars.iter().enumerate() {
                let v = mgr.var(var);
                let nv = mgr.nvar(var);
                let markings_at_1 = mgr.and_exists(reached, v, all_codes);
                let markings_at_0 = mgr.and_exists(reached, nv, all_codes);
                if !mgr.and(markings_at_1, markings_at_0).is_false() {
                    return Err(SgError::Inconsistent {
                        signal: stg.signal_name(SignalId(k as u32)).to_owned(),
                        detail: "signal-change parity differs between two paths to the \
                                 same marking"
                            .to_owned(),
                    });
                }
            }
        }

        // Per-signal implied-value partition, projected onto the code bits:
        // a state sits in On(a) iff a rise of `a` is excited there, or no
        // fall is excited and the stable bit is 1 — exactly the explicit
        // classification sweep, evaluated on sets.
        let mut rise_excited = vec![reach.manager().zero(); width];
        let mut fall_excited = vec![reach.manager().zero(); width];
        for t in net.transitions() {
            if let Some(SignalTransition { signal, polarity }) = stg.label(t) {
                let enabled = reach.enabling(t);
                let slot = signal.index();
                let mgr = reach.manager_mut();
                match polarity {
                    Polarity::Rise => rise_excited[slot] = mgr.or(rise_excited[slot], enabled),
                    Polarity::Fall => fall_excited[slot] = mgr.or(fall_excited[slot], enabled),
                }
            }
        }
        let place_vars: Vec<usize> = (0..place_count).collect();
        let reached = reach.reachable();
        let mut on_codes = Vec::with_capacity(width);
        let mut off_codes = Vec::with_capacity(width);
        {
            let mgr = reach.manager_mut();
            let places_cube = mgr.cube_vars(&place_vars);
            for k in 0..width {
                let bit = mgr.var(code_vars[k]);
                let not_falling = mgr.diff(reached, fall_excited[k]);
                let stable_on = mgr.and(not_falling, bit);
                let on_states = mgr.or(rise_excited[k], stable_on);
                let off_states = mgr.diff(reached, on_states);
                on_codes.push(mgr.exists(on_states, places_cube));
                off_codes.push(mgr.exists(off_states, places_cube));
            }
        }

        let mut code_map = vec![None; place_count + width];
        for (k, &var) in code_vars.iter().enumerate() {
            code_map[var] = Some(k);
        }

        // The projected code sets are handed out for the lifetime of the
        // struct: pin them against caller-driven collection.
        {
            let mgr = reach.manager_mut();
            for &b in on_codes.iter().chain(&off_codes) {
                mgr.protect(b);
            }
        }

        Ok(SymbolicSg {
            reach,
            width,
            initial_code,
            on_codes,
            off_codes,
            code_map,
        })
    }

    /// Number of reachable states, saturating at `u128::MAX`. Codes are a
    /// function of markings (checked during [`build`](Self::build)), so
    /// this equals the explicit state-graph size.
    pub fn state_count(&self) -> u128 {
        self.reach.state_count()
    }

    /// The initial binary code `v₀` (declared or inferred).
    pub fn initial_code(&self) -> &BinaryCode {
        &self.initial_code
    }

    /// The underlying symbolic reachability result.
    pub fn reach(&self) -> &SymbolicReach {
        &self.reach
    }

    /// The exact on/off code sets of `signal` as implicit covers — the same
    /// point sets the explicit classification sweep produces (pinned by the
    /// equivalence tests), converted out of the reachable BDD.
    ///
    /// # Panics
    ///
    /// Panics if the signal id is out of range.
    pub fn on_off_sets(&self, signal: SignalId) -> ImplicitOnOffSets {
        let mut pool = ImplicitPool::new(self.width);
        let mgr = self.reach.manager();
        let on = expect_code_set(mgr.to_implicit(
            self.on_codes[signal.index()],
            &mut pool,
            &self.code_map,
        ));
        let off = expect_code_set(mgr.to_implicit(
            self.off_codes[signal.index()],
            &mut pool,
            &self.code_map,
        ));
        ImplicitOnOffSets::from_parts(signal, pool, on, off)
    }

    /// The on/off code sets of every signal in `signals`, extracted with
    /// the selected front end into **one** shared pool (shared code
    /// subgraphs convert once across the whole batch, not once per
    /// signal) and then carved into per-signal pools ready for parallel
    /// minimisation. Both front ends produce the same point sets, so
    /// everything downstream is byte-identical (pinned by the
    /// equivalence suites).
    ///
    /// Takes `&mut self` because ISOP extraction writes the BDD
    /// manager's memo tables; the reachable relation itself is not
    /// touched.
    ///
    /// # Panics
    ///
    /// Panics if a signal id is out of range.
    pub fn extract_on_off_sets(
        &mut self,
        signals: &[SignalId],
        extraction: CoverExtraction,
    ) -> Vec<ImplicitOnOffSets> {
        let mut shared = ImplicitPool::new(self.width);
        let mut cache = TranslationCache::default();
        let mut sets = Vec::with_capacity(signals.len());
        for &signal in signals {
            let on_bdd = self.on_codes[signal.index()];
            let off_bdd = self.off_codes[signal.index()];
            let (on, off) = match extraction {
                CoverExtraction::Isop => {
                    let mgr = self.reach.manager_mut();
                    (
                        expect_code_set(mgr.isop_implicit(on_bdd, &mut shared, &self.code_map)),
                        expect_code_set(mgr.isop_implicit(off_bdd, &mut shared, &self.code_map)),
                    )
                }
                CoverExtraction::Translate => {
                    let mgr = self.reach.manager();
                    (
                        expect_code_set(mgr.to_implicit_cached(
                            on_bdd,
                            &mut shared,
                            &self.code_map,
                            &mut cache,
                        )),
                        expect_code_set(mgr.to_implicit_cached(
                            off_bdd,
                            &mut shared,
                            &self.code_map,
                            &mut cache,
                        )),
                    )
                }
            };
            // Carve the pair out of the shared pool: minimisation
            // mutates its pool, and the per-signal workers run in
            // parallel, so each signal gets a minimal pool of its own.
            let mut pool = ImplicitPool::new(self.width);
            let on = pool.copy_set_from(&shared, on);
            let off = pool.copy_set_from(&shared, off);
            sets.push(ImplicitOnOffSets::from_parts(signal, pool, on, off));
        }
        sets
    }
}

/// Unwraps a code-set conversion: the on/off code BDDs are projections
/// onto the code variables (everything else is quantified out during
/// [`SymbolicSg::build`]), so their support is mapped by construction.
fn expect_code_set(set: Result<ImplicitCover, ConvertError>) -> ImplicitCover {
    match set {
        Ok(set) => set,
        Err(e) => unreachable!("code sets live on mapped code variables: {e}"),
    }
}

/// The places-only projection of [`variable_order`], for marking-only
/// passes (`aux_vars == 0`): same relative place layout, so the
/// initial-code inference fixpoints stay as cheap as the main traversal.
fn place_order(full_order: &[usize], place_count: usize) -> Vec<usize> {
    full_order
        .iter()
        .copied()
        .filter(|&v| v < place_count)
        .collect()
}

/// Lays the state variables out for locality under the selected seed.
fn variable_order(stg: &Stg, seed: OrderSeed, certificate: &SafetyCertificate) -> Vec<usize> {
    match seed {
        OrderSeed::SignalAdjacency => adjacency_order(stg),
        OrderSeed::PlaceInvariants if certificate.invariants.is_empty() => adjacency_order(stg),
        OrderSeed::PlaceInvariants => invariant_order(stg, certificate),
    }
}

/// Signal-adjacency seed: signals ordered by the adjacency heuristic, each
/// immediately followed by the not-yet-placed places around its
/// transitions, leftovers at the end.
fn adjacency_order(stg: &Stg) -> Vec<usize> {
    let net = stg.net();
    let width = stg.signal_count();
    let place_count = net.place_count();

    // Signal adjacency: two signals are adjacent when a place connects
    // transitions labelled with them.
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for p in net.places() {
        for &tin in net.place_preset(p) {
            for &tout in net.place_postset(p) {
                if let (Some(a), Some(b)) = (stg.label(tin), stg.label(tout)) {
                    if a.signal != b.signal {
                        edges.push((a.signal.index(), b.signal.index()));
                    }
                }
            }
        }
    }
    let signal_order = order_from_adjacency(width, &edges);

    let mut order = Vec::with_capacity(place_count + width);
    let mut place_done = vec![false; place_count];
    for &s in &signal_order {
        order.push(place_count + s);
        for t in stg.transitions_of(SignalId(s as u32)) {
            for &p in net.preset(t).iter().chain(net.postset(t)) {
                if !place_done[p.index()] {
                    place_done[p.index()] = true;
                    order.push(p.index());
                }
            }
        }
    }
    for (p, &done) in place_done.iter().enumerate() {
        if !done {
            order.push(p);
        }
    }
    order
}

/// P-invariant seed: the bandwidth heuristic runs over *all* state
/// variables at once, with the places of each unary invariant chained into
/// a path (token conservation makes them one correlated group) and every
/// signal's code bit tied to the places its transitions touch. The
/// resulting order interleaves invariant clusters with their signals.
fn invariant_order(stg: &Stg, certificate: &SafetyCertificate) -> Vec<usize> {
    let net = stg.net();
    let place_count = net.place_count();
    let mut edges: Vec<(usize, usize)> = Vec::new();
    for invariant in &certificate.invariants {
        for pair in invariant.windows(2) {
            edges.push((pair[0].index(), pair[1].index()));
        }
    }
    for t in net.transitions() {
        if let Some(label) = stg.label(t) {
            let code_var = place_count + label.signal.index();
            for &p in net.preset(t).iter().chain(net.postset(t)) {
                edges.push((p.index(), code_var));
            }
        } else {
            // Dummies carry no code bit; tie their surrounding places
            // directly so the cluster stays contiguous.
            for &p in net.preset(t) {
                for &q in net.postset(t) {
                    edges.push((p.index(), q.index()));
                }
            }
        }
    }
    order_from_adjacency(place_count + stg.signal_count(), &edges)
}

/// Infers the initial code the way the explicit builder does, but without
/// enumerating states: `v₀[a]` is the source value of whichever polarity of
/// `a` can fire first — read off the enabling sets of a reachability pass
/// with `a`'s transitions frozen. Signals that never fire default to 0.
fn infer_initial_code(
    stg: &Stg,
    tuning: &SymbolicTuning,
    full_order: &[usize],
    assume_one_safe: bool,
) -> Result<BinaryCode, SgError> {
    let net = stg.net();
    let order = place_order(full_order, net.place_count());
    let mut code = BinaryCode::zeros(stg.signal_count());
    for signal in stg.signals() {
        let transitions = stg.transitions_of(signal);
        if transitions.is_empty() {
            continue;
        }
        let options = SymbolicOptions {
            frozen: transitions.clone(),
            order: Some(order.clone()),
            assume_one_safe,
            ..tuning.to_options()
        };
        let reach = SymbolicReach::explore(net, &options).map_err(SgError::Net)?;
        let mut can_rise = false;
        let mut can_fall = false;
        for t in transitions {
            if !reach.enabling(t).is_false() {
                match stg.label(t).map(|l| l.polarity) {
                    Some(Polarity::Rise) => can_rise = true,
                    Some(Polarity::Fall) => can_fall = true,
                    None => unreachable!("transitions_of yields labelled transitions"),
                }
            }
        }
        match (can_rise, can_fall) {
            (true, true) => {
                return Err(SgError::Inconsistent {
                    signal: stg.signal_name(signal).to_owned(),
                    detail: format!(
                        "conflicting initial-value constraints for `{}` (both polarities \
                         can fire first)",
                        stg.signal_name(signal)
                    ),
                });
            }
            (false, true) => code.set(signal, true),
            // Rise first, or the signal never fires: starts at 0.
            (true, false) | (false, false) => {}
        }
    }
    Ok(code)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::StateGraph;
    use crate::synth::on_off_sets_implicit;
    use si_stg::generators::{muller_pipeline, parallelizer, sequencer};
    use si_stg::suite::{paper_fig1, synthesisable, vme_read_csc};
    use si_stg::StgBuilder;

    const BUDGET: usize = 4_000_000;

    fn sym_build(stg: &si_stg::Stg, budget: usize) -> Result<SymbolicSg, SgError> {
        SymbolicSg::build(stg, &SymbolicTuning::with_budget(budget))
    }

    #[test]
    fn state_count_matches_explicit() {
        for stg in [
            paper_fig1(),
            vme_read_csc(),
            muller_pipeline(5),
            sequencer(7),
            parallelizer(3),
        ] {
            let sg = StateGraph::build(&stg, 1_000_000).expect("explicit builds");
            let sym = sym_build(&stg, BUDGET).expect("symbolic builds");
            assert_eq!(
                sym.state_count(),
                sg.len() as u128,
                "{} state counts differ",
                stg.name()
            );
        }
    }

    #[test]
    fn on_off_sets_match_explicit_point_sets() {
        for stg in [paper_fig1(), vme_read_csc(), muller_pipeline(4)] {
            let sg = StateGraph::build(&stg, 1_000_000).expect("explicit builds");
            let sym = sym_build(&stg, BUDGET).expect("symbolic builds");
            for signal in stg.implementable_signals() {
                let explicit = on_off_sets_implicit(&stg, &sg, signal).to_on_off_sets();
                let symbolic = sym.on_off_sets(signal).to_on_off_sets();
                assert_eq!(
                    explicit.on.cubes(),
                    symbolic.on.cubes(),
                    "{}: on-sets differ for {}",
                    stg.name(),
                    stg.signal_name(signal)
                );
                assert_eq!(
                    explicit.off.cubes(),
                    symbolic.off.cubes(),
                    "{}: off-sets differ for {}",
                    stg.name(),
                    stg.signal_name(signal)
                );
            }
        }
    }

    #[test]
    fn whole_suite_state_counts_match() {
        for stg in synthesisable() {
            let sg = StateGraph::build(&stg, 5_000_000).expect("explicit builds");
            let sym = sym_build(&stg, BUDGET).expect("symbolic builds");
            assert_eq!(
                sym.state_count(),
                sg.len() as u128,
                "{} state counts differ",
                stg.name()
            );
        }
    }

    #[test]
    fn initial_code_is_inferred_when_undeclared() {
        // A two-signal handshake built without declared initial values:
        // the explicit builder infers v0; the symbolic engine must agree.
        let mut b = StgBuilder::new();
        let req = b.input("req");
        let ack = b.output("ack");
        let req_p = b.rise(req);
        let ack_p = b.rise(ack);
        let req_m = b.fall(req);
        let ack_m = b.fall(ack);
        b.arc_tt(req_p, ack_p);
        b.arc_tt(ack_p, req_m);
        b.arc_tt(req_m, ack_m);
        let back = b.arc_tt(ack_m, req_p);
        b.mark(back);
        let stg = b.build().expect("valid");
        assert!(stg.initial_code().is_none());
        let sg = StateGraph::build(&stg, 1_000).expect("explicit builds");
        let sym = sym_build(&stg, BUDGET).expect("symbolic builds");
        assert_eq!(sym.initial_code(), sg.initial_code());
        assert_eq!(sym.state_count(), sg.len() as u128);
    }

    #[test]
    fn inferred_code_with_initially_high_signal() {
        // A signal whose first transition is a fall must be inferred high.
        let mut b = StgBuilder::new();
        let a = b.input("a");
        let a_m = b.fall(a);
        let a_p = b.rise(a);
        b.arc_tt(a_m, a_p);
        let back = b.arc_tt(a_p, a_m);
        b.mark(back);
        let stg = b.build().expect("valid");
        let sym = sym_build(&stg, BUDGET).expect("symbolic builds");
        assert_eq!(sym.initial_code().to_string(), "1");
        let sg = StateGraph::build(&stg, 100).expect("explicit builds");
        assert_eq!(sym.initial_code(), sg.initial_code());
    }

    #[test]
    fn inconsistent_stg_rejected() {
        // a+ fires twice in a row: no consistent assignment.
        let mut b = StgBuilder::new();
        let a = b.input("a");
        let t1 = b.rise(a);
        let t2 = b.rise(a);
        b.arc_tt(t1, t2);
        let back = b.arc_tt(t2, t1);
        b.mark(back);
        let stg = b.build().expect("structurally fine");
        assert!(matches!(
            sym_build(&stg, BUDGET),
            Err(SgError::Inconsistent { .. })
        ));
    }

    #[test]
    fn declared_code_contradiction_detected() {
        let mut b = StgBuilder::new();
        let a = b.input("a");
        let t1 = b.rise(a);
        let t2 = b.fall(a);
        b.arc_tt(t1, t2);
        let back = b.arc_tt(t2, t1);
        b.mark(back);
        b.initial_value(a, true); // contradicts a+ firing first
        let stg = b.build().expect("builds");
        assert!(matches!(
            sym_build(&stg, BUDGET),
            Err(SgError::Inconsistent { .. })
        ));
    }

    #[test]
    fn node_budget_propagates() {
        let stg = muller_pipeline(8);
        assert!(matches!(
            sym_build(&stg, 10),
            Err(SgError::Net(si_petri::NetError::NodeBudgetExceeded {
                budget: 10
            }))
        ));
    }

    #[test]
    fn invariant_seed_and_certificate_skip_preserve_state_counts() {
        for stg in [paper_fig1(), vme_read_csc(), muller_pipeline(5)] {
            let sg = StateGraph::build(&stg, 1_000_000).expect("explicit builds");
            for (order_seed, safety_certificates) in [
                (OrderSeed::PlaceInvariants, true),
                (OrderSeed::PlaceInvariants, false),
                (OrderSeed::SignalAdjacency, false),
            ] {
                let tuning = SymbolicTuning {
                    order_seed,
                    safety_certificates,
                    ..SymbolicTuning::with_budget(BUDGET)
                };
                let sym = SymbolicSg::build(&stg, &tuning).expect("symbolic builds");
                assert_eq!(
                    sym.state_count(),
                    sg.len() as u128,
                    "{} under {:?}/certificates={}",
                    stg.name(),
                    order_seed,
                    safety_certificates
                );
                assert_eq!(sym.initial_code(), sg.initial_code(), "{}", stg.name());
            }
        }
    }

    #[test]
    fn unsafe_net_still_rejected_without_certificate() {
        // Two tokens on one cycle: not 1-safe, so no certificate exists and
        // the dynamic check must still fire regardless of the tuning flag.
        let mut b = StgBuilder::new();
        let a = b.input("a");
        let ap = b.rise(a);
        let am = b.fall(a);
        let p = b.arc_tt(ap, am);
        let q = b.arc_tt(am, ap);
        b.mark(p);
        b.mark(q);
        // Declare v0 so the build reaches the traversal (the inference pass
        // would reject this spec as inconsistent before exploring).
        b.initial_all_zero();
        let stg = b.build().expect("structurally fine");
        assert!(matches!(
            sym_build(&stg, BUDGET),
            Err(SgError::Net(si_petri::NetError::Unsafe { .. }))
        ));
    }

    #[test]
    fn pipelines_beyond_the_explicit_budget_build() {
        // 18 stages ≈ 1 M explicit states: a 100 k explicit budget fails
        // where the symbolic engine sails through.
        let stg = muller_pipeline(18);
        assert!(StateGraph::build(&stg, 100_000).is_err());
        let sym = sym_build(&stg, BUDGET).expect("symbolic builds");
        assert_eq!(sym.state_count(), 1_048_576); // 2^20
    }
}
