//! SG-based exact synthesis — the baseline flow shared by SIS and Petrify
//! that the paper compares against.
//!
//! For every implementable signal the on-set and off-set of reachable states
//! are enumerated explicitly, turned into minterm covers, and minimised with
//! the Espresso-style optimiser. Everything here is exponential in the
//! number of concurrent signals, which is precisely the behaviour Figure 6
//! demonstrates.

use si_cubes::par::par_map;
use si_cubes::{minimize, minimize_exact, Cover, Cube, QmBudget};
use si_stg::{Polarity, SignalId, Stg};

use crate::error::SgError;
use crate::graph::StateGraph;

/// The exact on-set/off-set partition of the reachable states for one
/// signal, as minterm covers over the signal vector.
#[derive(Debug, Clone)]
pub struct OnOffSets {
    /// The signal being implemented.
    pub signal: SignalId,
    /// Cover of the codes whose implied (next) value of the signal is 1.
    pub on: Cover,
    /// Cover of the codes whose implied value is 0.
    pub off: Cover,
}

/// Computes the exact on/off-sets for `signal`.
///
/// A state belongs to the on-set when the *implied value* of the signal is 1:
/// either `+a` is excited there, or the signal is stable at 1. Symmetrically
/// for the off-set. Duplicate codes are deduplicated, and both covers come
/// back in canonical cube order — hash-iteration order must not leak into
/// the minimiser, or synthesis output would vary from run to run.
///
/// # Examples
///
/// ```
/// use si_stg::suite::paper_fig1;
/// use si_stategraph::{on_off_sets, StateGraph};
///
/// # fn main() -> Result<(), si_stategraph::SgError> {
/// let stg = paper_fig1();
/// let sg = StateGraph::build(&stg, 10_000)?;
/// let b = stg.signal_by_name("b").expect("signal b");
/// let sets = on_off_sets(&stg, &sg, b);
/// assert_eq!(sets.on.len(), 6);  // the paper's On(b): 6 distinct codes
/// assert_eq!(sets.off.len(), 2); // Off(b) = {010, 000}
/// # Ok(())
/// # }
/// ```
pub fn on_off_sets(stg: &Stg, sg: &StateGraph, signal: SignalId) -> OnOffSets {
    let mut on_codes = std::collections::HashSet::new();
    let mut off_codes = std::collections::HashSet::new();
    for s in 0..sg.len() {
        let code = sg.code(s);
        let excited = sg.excited(stg, s);
        let rising = excited
            .iter()
            .any(|e| e.signal == signal && e.polarity == Polarity::Rise);
        let falling = excited
            .iter()
            .any(|e| e.signal == signal && e.polarity == Polarity::Fall);
        let implied = if rising {
            true
        } else if falling {
            false
        } else {
            code.get(signal)
        };
        let minterm = Cube::minterm(code.iter().map(|(_, v)| v));
        if implied {
            on_codes.insert(minterm);
        } else {
            off_codes.insert(minterm);
        }
    }
    let sorted = |codes: std::collections::HashSet<Cube>| -> Cover {
        let mut cubes: Vec<Cube> = codes.into_iter().collect();
        cubes.sort_by(Cube::cmp_canonical);
        cubes.into_iter().collect()
    };
    OnOffSets {
        signal,
        on: sorted(on_codes),
        off: sorted(off_codes),
    }
}

/// The synthesised gate for one signal in the atomic-complex-gate-per-signal
/// architecture.
#[derive(Debug, Clone)]
pub struct GateImplementation {
    /// The implemented signal.
    pub signal: SignalId,
    /// Minimised cover of the on-set (the gate's SOP function).
    pub cover: Cover,
    /// `true` if the off-set was implemented instead (inverted gate) because
    /// it was simpler.
    pub inverted: bool,
}

impl GateImplementation {
    /// Total literal count of the gate (the paper's quality metric).
    pub fn literal_count(&self) -> usize {
        self.cover.literal_count()
    }

    /// Renders the gate equation, e.g. `b = a + c`.
    pub fn equation(&self, stg: &Stg) -> String {
        let names: Vec<&str> = stg.signals().map(|s| stg.signal_name(s)).collect();
        format!(
            "{}{} = {}",
            stg.signal_name(self.signal),
            if self.inverted { "'" } else { "" },
            self.cover.to_expression_string(&names)
        )
    }
}

/// Options for SG-based synthesis.
#[derive(Debug, Clone)]
pub struct SgSynthesisOptions {
    /// State budget for reachability exploration.
    pub state_budget: usize,
    /// Allow implementing the complemented function when the off-set cover
    /// is cheaper (both SIS and Petrify do this); the paper's examples
    /// implement the on-set, so the default is `false`.
    pub allow_inversion: bool,
    /// Use exact (Quine–McCluskey) two-level minimisation instead of the
    /// Espresso-style heuristic — the behaviour the paper blames for the
    /// second exponent of the Figure 6 curves. Falls back to the heuristic
    /// when the exact search exceeds its budget.
    pub exact_minimization: bool,
    /// Worker threads for the per-signal on/off-set derivation and
    /// minimisation; `None` uses one per available CPU. Output is
    /// bit-identical to sequential (`Some(1)`) regardless of the count.
    pub workers: Option<usize>,
}

impl Default for SgSynthesisOptions {
    fn default() -> Self {
        SgSynthesisOptions {
            state_budget: 2_000_000,
            allow_inversion: false,
            exact_minimization: false,
            workers: None,
        }
    }
}

/// The result of synthesising every implementable signal from the SG.
#[derive(Debug, Clone)]
pub struct SgSynthesis {
    /// One gate per implementable signal, in signal order.
    pub gates: Vec<GateImplementation>,
}

impl SgSynthesis {
    /// Total literal count over all gates (Table 1's `LitCnt`).
    pub fn literal_count(&self) -> usize {
        self.gates
            .iter()
            .map(GateImplementation::literal_count)
            .sum()
    }
}

/// Synthesises all implementable signals of `stg` from an explicitly built
/// state graph (the SIS/Petrify-style baseline).
///
/// # Errors
///
/// * [`SgError::Net`] / [`SgError::Inconsistent`] from SG construction;
/// * [`SgError::CscViolation`] if some signal's on- and off-sets share a
///   code (exact covers intersect);
/// * [`SgError::ConstantSignal`] if an implementable signal never changes.
///
/// # Examples
///
/// ```
/// use si_stg::suite::paper_fig1;
/// use si_stategraph::{synthesize_from_sg, SgSynthesisOptions};
///
/// # fn main() -> Result<(), si_stategraph::SgError> {
/// let stg = paper_fig1();
/// let result = synthesize_from_sg(&stg, &SgSynthesisOptions::default())?;
/// assert_eq!(result.gates.len(), 1); // only `b` is an output
/// assert_eq!(result.gates[0].equation(&stg), "b = a + c");
/// # Ok(())
/// # }
/// ```
pub fn synthesize_from_sg(stg: &Stg, options: &SgSynthesisOptions) -> Result<SgSynthesis, SgError> {
    let sg = StateGraph::build(stg, options.state_budget)?;
    synthesize_from_built_sg(stg, &sg, options)
}

/// Like [`synthesize_from_sg`] but reuses an already built state graph
/// (exposing the intermediate result per C-INTERMEDIATE).
pub fn synthesize_from_built_sg(
    stg: &Stg,
    sg: &StateGraph,
    options: &SgSynthesisOptions,
) -> Result<SgSynthesis, SgError> {
    let signals = stg.implementable_signals();
    for &signal in &signals {
        if stg.transitions_of(signal).is_empty() {
            return Err(SgError::ConstantSignal {
                signal: stg.signal_name(signal).to_owned(),
            });
        }
    }
    // One worker task per signal: derive the exact on/off-sets, check the
    // partition (the release-build guard against minimising overlapping
    // covers), minimise. Results come back in signal order, so both the
    // gate list and the first-error semantics match the sequential loop.
    let results = par_map(&signals, options.workers, |_, &signal| {
        let sets = on_off_sets(stg, sg, signal);
        if sets.on.intersects(&sets.off) {
            let witness = sets
                .on
                .intersect(&sets.off)
                .cubes()
                .first()
                .map(ToString::to_string)
                .unwrap_or_default();
            return Err(SgError::CscViolation {
                signal: stg.signal_name(signal).to_owned(),
                code: witness,
            });
        }
        let run_minimize = |on: &Cover, off: &Cover| {
            if options.exact_minimization {
                minimize_exact(on, off, &QmBudget::default()).unwrap_or_else(|| minimize(on, off))
            } else {
                minimize(on, off)
            }
        };
        let on_impl = run_minimize(&sets.on, &sets.off);
        let (cover, inverted) = if options.allow_inversion {
            let off_impl = run_minimize(&sets.off, &sets.on);
            if off_impl.literal_count() < on_impl.literal_count() {
                (off_impl, true)
            } else {
                (on_impl, false)
            }
        } else {
            (on_impl, false)
        };
        Ok(GateImplementation {
            signal,
            cover,
            inverted,
        })
    });
    let gates = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(SgSynthesis { gates })
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_stg::generators::{muller_pipeline, sequencer};
    use si_stg::suite::{paper_fig1, vme_read_csc, vme_read_no_csc};

    #[test]
    fn fig1_baseline_matches_paper() {
        let stg = paper_fig1();
        let result = synthesize_from_sg(&stg, &SgSynthesisOptions::default()).expect("ok");
        assert_eq!(result.gates.len(), 1);
        assert_eq!(result.gates[0].equation(&stg), "b = a + c");
        assert_eq!(result.literal_count(), 2);
    }

    #[test]
    fn fig1_off_set_matches_paper() {
        let stg = paper_fig1();
        let sg = StateGraph::build(&stg, 1000).expect("builds");
        let b = stg.signal_by_name("b").expect("b");
        let sets = on_off_sets(&stg, &sg, b);
        let off = minimize(&sets.off, &sets.on);
        let names: Vec<&str> = stg.signals().map(|s| stg.signal_name(s)).collect();
        // The paper: C_Off = a̅c̅.
        assert_eq!(off.to_expression_string(&names), "a' c'");
    }

    #[test]
    fn vme_csc_violation_detected() {
        let stg = vme_read_no_csc();
        let err = synthesize_from_sg(&stg, &SgSynthesisOptions::default()).unwrap_err();
        assert!(matches!(err, SgError::CscViolation { .. }));
    }

    #[test]
    fn vme_with_csc_synthesises() {
        let stg = vme_read_csc();
        let result = synthesize_from_sg(&stg, &SgSynthesisOptions::default()).expect("ok");
        // lds, d, dtack, csc0 are implementable.
        assert_eq!(result.gates.len(), 4);
        assert!(result.literal_count() > 0);
        // Every gate's cover must separate on from off on reachable states.
        let sg = StateGraph::build(&stg, 10_000).expect("builds");
        for gate in &result.gates {
            let sets = on_off_sets(&stg, &sg, gate.signal);
            assert!(gate.cover.covers_cover(&sets.on));
            assert!(!gate.cover.intersects(&sets.off));
        }
    }

    #[test]
    fn muller_pipeline_c_element_equations() {
        let stg = muller_pipeline(2);
        let result = synthesize_from_sg(&stg, &SgSynthesisOptions::default()).expect("ok");
        assert_eq!(result.gates.len(), 2);
        // Each stage is a C-element: next(ci) = majority-ish function of
        // neighbours and itself; at minimum 3 literals under SOP.
        for gate in &result.gates {
            assert!(gate.literal_count() >= 3, "{}", gate.equation(&stg));
        }
    }

    #[test]
    fn inversion_option_never_worse() {
        let stg = sequencer(4);
        let plain = synthesize_from_sg(&stg, &SgSynthesisOptions::default()).expect("ok");
        let inverted = synthesize_from_sg(
            &stg,
            &SgSynthesisOptions {
                allow_inversion: true,
                ..Default::default()
            },
        )
        .expect("ok");
        assert!(inverted.literal_count() <= plain.literal_count());
    }
}
