//! SG-based exact synthesis — the baseline flow shared by SIS and Petrify
//! that the paper compares against.
//!
//! For every implementable signal the on-set and off-set of reachable states
//! are derived from the explicit state graph and minimised with the
//! Espresso-style optimiser. The state graph itself is still explicit (that
//! is the point of the paper's unfolding-based alternative), but the on/off
//! sets default to the *implicit* cover representation
//! ([`ImplicitOnOffSets`]): states are accumulated into canonical
//! disjoint-cube sets during one classification sweep, states identical on
//! a signal's support collapse into shared diagram structure, and the
//! minimiser phases run against the implicit sets — with gate equations
//! byte-identical to the historical explicit-minterm path
//! ([`SgSynthesisOptions::implicit_covers`] = `false`).

use si_cubes::implicit::{ImplicitCover, ImplicitPool, MintermList};
use si_cubes::par::par_map;
use si_cubes::{
    minimize, minimize_exact, minimize_exact_implicit, minimize_implicit, Cover, Cube, QmBudget,
};
use si_stg::{Polarity, SignalId, SignalTransition, Stg};

use si_bdd::ReorderPolicy;

use crate::error::SgError;
use crate::graph::StateGraph;
use crate::symbolic::{CoverExtraction, OrderSeed, SymbolicSg, SymbolicTuning};

/// The exact on-set/off-set partition of the reachable states for one
/// signal, as minterm covers over the signal vector.
#[derive(Debug, Clone)]
pub struct OnOffSets {
    /// The signal being implemented.
    pub signal: SignalId,
    /// Cover of the codes whose implied (next) value of the signal is 1.
    pub on: Cover,
    /// Cover of the codes whose implied value is 0.
    pub off: Cover,
}

/// Computes the exact on/off-sets for `signal`.
///
/// A state belongs to the on-set when the *implied value* of the signal is 1:
/// either `+a` is excited there, or the signal is stable at 1. Symmetrically
/// for the off-set. Duplicate codes are deduplicated, and both covers come
/// back in canonical cube order — hash-iteration order must not leak into
/// the minimiser, or synthesis output would vary from run to run.
///
/// # Examples
///
/// ```
/// use si_stg::suite::paper_fig1;
/// use si_stategraph::{on_off_sets, StateGraph};
///
/// # fn main() -> Result<(), si_stategraph::SgError> {
/// let stg = paper_fig1();
/// let sg = StateGraph::build(&stg, 10_000)?;
/// let b = stg.signal_by_name("b").expect("signal b");
/// let sets = on_off_sets(&stg, &sg, b);
/// assert_eq!(sets.on.len(), 6);  // the paper's On(b): 6 distinct codes
/// assert_eq!(sets.off.len(), 2); // Off(b) = {010, 000}
/// # Ok(())
/// # }
/// ```
pub fn on_off_sets(stg: &Stg, sg: &StateGraph, signal: SignalId) -> OnOffSets {
    let mut on_codes = std::collections::HashSet::new();
    let mut off_codes = std::collections::HashSet::new();
    for s in 0..sg.len() {
        let code = sg.code(s);
        let excited = sg.excited(stg, s);
        let rising = excited
            .iter()
            .any(|e| e.signal == signal && e.polarity == Polarity::Rise);
        let falling = excited
            .iter()
            .any(|e| e.signal == signal && e.polarity == Polarity::Fall);
        let implied = if rising {
            true
        } else if falling {
            false
        } else {
            code.get(signal)
        };
        let minterm = Cube::minterm(code.iter().map(|(_, v)| v));
        if implied {
            on_codes.insert(minterm);
        } else {
            off_codes.insert(minterm);
        }
    }
    let sorted = |codes: std::collections::HashSet<Cube>| -> Cover {
        let mut cubes: Vec<Cube> = codes.into_iter().collect();
        cubes.sort_by(Cube::cmp_canonical);
        cubes.into_iter().collect()
    };
    OnOffSets {
        signal,
        on: sorted(on_codes),
        off: sorted(off_codes),
    }
}

/// The exact on/off-set partition of the reachable states for one signal,
/// held as *implicit* covers: canonical disjoint-cube sets in a hash-consed
/// pool instead of one materialised minterm per state. States that agree on
/// the signal's support share diagram structure, so the representation (and
/// everything downstream of it) no longer pays the full state count.
#[derive(Debug, Clone)]
pub struct ImplicitOnOffSets {
    /// The signal being implemented.
    pub signal: SignalId,
    pool: ImplicitPool,
    on: ImplicitCover,
    off: ImplicitCover,
}

impl ImplicitOnOffSets {
    /// Assembles a set pair computed elsewhere (the symbolic engine derives
    /// the same point sets from the reachable BDD).
    pub(crate) fn from_parts(
        signal: SignalId,
        pool: ImplicitPool,
        on: ImplicitCover,
        off: ImplicitCover,
    ) -> Self {
        ImplicitOnOffSets {
            signal,
            pool,
            on,
            off,
        }
    }

    /// The pool owning both sets.
    pub fn pool(&self) -> &ImplicitPool {
        &self.pool
    }

    /// Mutable access to the pool (set operations require it).
    pub fn pool_mut(&mut self) -> &mut ImplicitPool {
        &mut self.pool
    }

    /// The implicit on-set.
    pub fn on(&self) -> ImplicitCover {
        self.on
    }

    /// The implicit off-set.
    pub fn off(&self) -> ImplicitCover {
        self.off
    }

    /// Materialises both sets as explicit minterm covers in canonical
    /// order — byte-identical to what [`on_off_sets`] returns. Costs one
    /// cube per state; intended for tests and small inspection, not for the
    /// synthesis hot path.
    pub fn to_on_off_sets(&self) -> OnOffSets {
        OnOffSets {
            signal: self.signal,
            on: self.pool.minterms_cover(self.on),
            off: self.pool.minterms_cover(self.off),
        }
    }
}

/// Per-state classification data shared by every signal's implicit on/off
/// derivation: packed binary codes plus the excited rise/fall signal masks,
/// computed in one sweep over the SG instead of once per signal.
///
/// Build it once with [`SgClassification::new`] when deriving sets for
/// several signals of the same SG (one `O(states × signals)` sweep total);
/// [`on_off_sets_implicit`] is the one-signal convenience wrapper.
pub struct SgClassification {
    width: usize,
    blocks: usize,
    states: usize,
    /// Per state: the packed binary code.
    codes: Vec<u64>,
    /// Per state: signals with an excited rising change.
    rise: Vec<u64>,
    /// Per state: signals with an excited falling change.
    fall: Vec<u64>,
}

impl SgClassification {
    /// Sweeps the SG once, recording every state's packed code and excited
    /// rise/fall signal masks.
    pub fn new(stg: &Stg, sg: &StateGraph) -> Self {
        Self::build(stg, sg)
    }

    /// The implicit on/off sets of `signal`, derived from the shared sweep.
    pub fn on_off_sets(&self, signal: SignalId) -> ImplicitOnOffSets {
        let (pool, on, off) = self.sets_for(signal);
        ImplicitOnOffSets {
            signal,
            pool,
            on,
            off,
        }
    }

    /// Builds `signal`'s implicit on/off sets into a caller-held pool —
    /// the batch form of [`on_off_sets`](Self::on_off_sets): states
    /// shared between signals collapse into diagram structure **once**
    /// across the whole batch instead of being rebuilt per signal.
    pub fn sets_into(
        &self,
        pool: &mut ImplicitPool,
        signal: SignalId,
    ) -> (ImplicitCover, ImplicitCover) {
        let (b, m) = (signal.index() / 64, 1u64 << (signal.index() % 64));
        let mut on_list = MintermList::new(self.width);
        let mut off_list = MintermList::new(self.width);
        for s in 0..self.states {
            let base = s * self.blocks;
            let row = &self.codes[base..base + self.blocks];
            let implied = if self.rise[base + b] & m != 0 {
                true
            } else if self.fall[base + b] & m != 0 {
                false
            } else {
                row[b] & m != 0
            };
            if implied {
                on_list.push_blocks(row);
            } else {
                off_list.push_blocks(row);
            }
        }
        let on = pool.from_minterms(&mut on_list);
        let off = pool.from_minterms(&mut off_list);
        (on, off)
    }

    fn build(stg: &Stg, sg: &StateGraph) -> Self {
        let width = stg.signal_count();
        let blocks = width.div_ceil(64).max(1);
        let states = sg.len();
        let mut codes = vec![0u64; states * blocks];
        let mut rise = vec![0u64; states * blocks];
        let mut fall = vec![0u64; states * blocks];
        for s in 0..states {
            let base = s * blocks;
            for (sig, v) in sg.code(s).iter() {
                if v {
                    codes[base + sig.index() / 64] |= 1u64 << (sig.index() % 64);
                }
            }
            for &(t, _) in sg.successors(s) {
                if let Some(SignalTransition { signal, polarity }) = stg.label(t) {
                    let (b, m) = (signal.index() / 64, 1u64 << (signal.index() % 64));
                    match polarity {
                        Polarity::Rise => rise[base + b] |= m,
                        Polarity::Fall => fall[base + b] |= m,
                    }
                }
            }
        }
        SgClassification {
            width,
            blocks,
            states,
            codes,
            rise,
            fall,
        }
    }

    /// Builds the implicit on/off sets of one signal: every state's code
    /// goes to the side its *implied* signal value selects (excited rise →
    /// on, excited fall → off, otherwise the stable code bit), merged into
    /// the diagram as a bulk batch.
    fn sets_for(&self, signal: SignalId) -> (ImplicitPool, ImplicitCover, ImplicitCover) {
        let mut pool = ImplicitPool::new(self.width);
        let (on, off) = self.sets_into(&mut pool, signal);
        (pool, on, off)
    }
}

/// Computes the exact on/off-sets for `signal` as implicit covers — the
/// scalable counterpart of [`on_off_sets`]. The point sets are identical
/// (pinned by the equivalence tests); only the representation differs.
///
/// When deriving sets for many signals of the same SG, prefer
/// [`synthesize_from_built_sg`], which shares the per-state classification
/// sweep across signals.
///
/// # Examples
///
/// ```
/// use si_stg::suite::paper_fig1;
/// use si_stategraph::{on_off_sets_implicit, StateGraph};
///
/// # fn main() -> Result<(), si_stategraph::SgError> {
/// let stg = paper_fig1();
/// let sg = StateGraph::build(&stg, 10_000)?;
/// let b = stg.signal_by_name("b").expect("signal b");
/// let sets = on_off_sets_implicit(&stg, &sg, b);
/// assert_eq!(sets.pool().count(sets.on()), 6); // On(b): 6 codes
/// assert_eq!(sets.pool().count(sets.off()), 2); // Off(b) = {010, 000}
/// # Ok(())
/// # }
/// ```
pub fn on_off_sets_implicit(stg: &Stg, sg: &StateGraph, signal: SignalId) -> ImplicitOnOffSets {
    SgClassification::new(stg, sg).on_off_sets(signal)
}

/// The synthesised gate for one signal in the atomic-complex-gate-per-signal
/// architecture.
#[derive(Debug, Clone)]
pub struct GateImplementation {
    /// The implemented signal.
    pub signal: SignalId,
    /// Minimised cover of the on-set (the gate's SOP function).
    pub cover: Cover,
    /// `true` if the off-set was implemented instead (inverted gate) because
    /// it was simpler.
    pub inverted: bool,
}

impl GateImplementation {
    /// Total literal count of the gate (the paper's quality metric).
    pub fn literal_count(&self) -> usize {
        self.cover.literal_count()
    }

    /// Renders the gate equation, e.g. `b = a + c`.
    pub fn equation(&self, stg: &Stg) -> String {
        let names: Vec<&str> = stg.signals().map(|s| stg.signal_name(s)).collect();
        format!(
            "{}{} = {}",
            stg.signal_name(self.signal),
            if self.inverted { "'" } else { "" },
            self.cover.to_expression_string(&names)
        )
    }
}

/// The state-traversal engine behind SG-based synthesis.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SgEngine {
    /// Explicit enumeration: build the full [`StateGraph`] one marking at a
    /// time (bounded by [`SgSynthesisOptions::state_budget`]). The
    /// historical baseline; cost is linear in the state count.
    #[default]
    Explicit,
    /// Symbolic traversal: compute the reachable set as a BDD fixpoint
    /// ([`crate::SymbolicSg`], bounded by
    /// [`SgSynthesisOptions::symbolic_node_budget`]) and derive each
    /// signal's on/off sets from the reachable BDD, bypassing
    /// [`StateGraph`] construction entirely. Gate equations are
    /// byte-identical to the explicit engine's; the cost tracks diagram
    /// sizes, so pipelines far beyond the explicit state budget synthesise
    /// in seconds.
    Symbolic,
}

/// Options for SG-based synthesis.
#[derive(Debug, Clone)]
pub struct SgSynthesisOptions {
    /// State-traversal engine (explicit enumeration vs symbolic BDD
    /// fixpoint). Both produce identical gate equations.
    pub engine: SgEngine,
    /// State budget for explicit reachability exploration (the maximum
    /// number of states stored; ignored by the symbolic engine).
    pub state_budget: usize,
    /// BDD node budget for the symbolic engine: an upper bound on *live*
    /// nodes, checked between fixpoint iterations after garbage collection
    /// (ignored by the explicit engine).
    pub symbolic_node_budget: usize,
    /// Dynamic variable reordering policy of the symbolic engine: `Off`
    /// keeps the adjacency-seeded static order, `Sift` reorders as a last
    /// resort under budget pressure, `Auto` reorders proactively on pool
    /// growth. Gate equations are identical under every policy (pinned by
    /// the equivalence tests); only memory/speed differ.
    pub symbolic_reorder: ReorderPolicy,
    /// Pool size above which the symbolic engine collects garbage between
    /// fixpoint iterations (`0` collects every iteration; the stress
    /// suites use this to force collection on every step).
    pub symbolic_gc_threshold: usize,
    /// Allow implementing the complemented function when the off-set cover
    /// is cheaper (both SIS and Petrify do this); the paper's examples
    /// implement the on-set, so the default is `false`.
    pub allow_inversion: bool,
    /// Use exact (Quine–McCluskey) two-level minimisation instead of the
    /// Espresso-style heuristic — the behaviour the paper blames for the
    /// second exponent of the Figure 6 curves. Falls back to the heuristic
    /// when the exact search exceeds its budget.
    pub exact_minimization: bool,
    /// Worker threads for the per-signal on/off-set derivation and
    /// minimisation; `None` uses one per available CPU. Output is
    /// bit-identical to sequential (`Some(1)`) regardless of the count.
    pub workers: Option<usize>,
    /// Represent each signal's on/off-sets implicitly (canonical
    /// disjoint-cube sets) instead of one materialised minterm per state,
    /// and run the minimiser phases against the implicit sets. Gate
    /// equations are byte-identical either way (pinned by the equivalence
    /// tests); the implicit path just stops paying the full state count per
    /// signal. `false` keeps the historical explicit-minterm path for
    /// cross-checks and ablations.
    pub implicit_covers: bool,
    /// Structural heuristic seeding the symbolic engine's static variable
    /// order (ignored by the explicit engine). Gate equations are
    /// byte-identical under every seed (pinned by the equivalence tests);
    /// only diagram sizes differ.
    pub symbolic_order_seed: OrderSeed,
    /// Front end deriving each signal's on/off sets from the symbolic
    /// engine's reachable BDD (ignored by the explicit engine): native
    /// Minato–Morreale ISOP extraction (the default) or the historical
    /// node-by-node translation, kept as the cross-check ablation. Gate
    /// equations are byte-identical either way (pinned by the
    /// equivalence tests).
    pub extraction: CoverExtraction,
    /// Worker threads inside the symbolic engine's BDD kernels; `None`
    /// inherits [`workers`](Self::workers) (so one `--workers` knob speeds
    /// up both the traversal and the per-signal minimisation). Purely a
    /// wall-clock knob: equations, witnesses and operation counts are
    /// identical at any thread count.
    pub bdd_threads: Option<usize>,
}

impl Default for SgSynthesisOptions {
    fn default() -> Self {
        let tuning = SymbolicTuning::default();
        SgSynthesisOptions {
            engine: SgEngine::Explicit,
            state_budget: 2_000_000,
            symbolic_node_budget: tuning.node_budget,
            symbolic_reorder: tuning.reorder,
            symbolic_gc_threshold: tuning.gc_threshold,
            allow_inversion: false,
            exact_minimization: false,
            workers: None,
            implicit_covers: true,
            symbolic_order_seed: tuning.order_seed,
            extraction: CoverExtraction::default(),
            bdd_threads: None,
        }
    }
}

impl SgSynthesisOptions {
    /// The [`SymbolicTuning`] these options select for the symbolic engine.
    pub fn symbolic_tuning(&self) -> SymbolicTuning {
        SymbolicTuning {
            node_budget: self.symbolic_node_budget,
            reorder: self.symbolic_reorder,
            gc_threshold: self.symbolic_gc_threshold,
            order_seed: self.symbolic_order_seed,
            bdd_threads: self
                .bdd_threads
                .or(self.workers)
                .or_else(|| std::thread::available_parallelism().map(|p| p.get()).ok()),
            ..SymbolicTuning::default()
        }
    }
}

/// The result of synthesising every implementable signal from the SG.
#[derive(Debug, Clone)]
pub struct SgSynthesis {
    /// One gate per implementable signal, in signal order.
    pub gates: Vec<GateImplementation>,
}

impl SgSynthesis {
    /// Total literal count over all gates (Table 1's `LitCnt`).
    pub fn literal_count(&self) -> usize {
        self.gates
            .iter()
            .map(GateImplementation::literal_count)
            .sum()
    }
}

/// Synthesises all implementable signals of `stg` from an explicitly built
/// state graph (the SIS/Petrify-style baseline).
///
/// # Errors
///
/// * [`SgError::Net`] / [`SgError::Inconsistent`] from SG construction;
/// * [`SgError::CscViolation`] if some signal's on- and off-sets share a
///   code (exact covers intersect);
/// * [`SgError::ConstantSignal`] if an implementable signal never changes.
///
/// # Examples
///
/// ```
/// use si_stg::suite::paper_fig1;
/// use si_stategraph::{synthesize_from_sg, SgSynthesisOptions};
///
/// # fn main() -> Result<(), si_stategraph::SgError> {
/// let stg = paper_fig1();
/// let result = synthesize_from_sg(&stg, &SgSynthesisOptions::default())?;
/// assert_eq!(result.gates.len(), 1); // only `b` is an output
/// assert_eq!(result.gates[0].equation(&stg), "b = a + c");
/// # Ok(())
/// # }
/// ```
pub fn synthesize_from_sg(stg: &Stg, options: &SgSynthesisOptions) -> Result<SgSynthesis, SgError> {
    match options.engine {
        SgEngine::Explicit => {
            let sg = StateGraph::build(stg, options.state_budget)?;
            synthesize_from_built_sg(stg, &sg, options)
        }
        SgEngine::Symbolic => {
            // No pre-check here: `synthesize_from_symbolic_sg` validates
            // after the traversal, mirroring the explicit arm's error
            // precedence (net/traversal errors before `ConstantSignal`).
            let mut sym = SymbolicSg::build(stg, &options.symbolic_tuning())?;
            synthesize_from_symbolic_sg(stg, &mut sym, options)
        }
    }
}

/// Validates that every implementable signal actually changes somewhere,
/// returning the signal list synthesis will implement (in signal order).
/// Public so callers that split the flow into phases (extraction vs
/// minimisation, e.g. for timing) run the same pre-check synthesis does.
///
/// # Errors
///
/// [`SgError::ConstantSignal`] if an implementable signal never changes.
pub fn check_implementable(stg: &Stg) -> Result<Vec<SignalId>, SgError> {
    let signals = stg.implementable_signals();
    for &signal in &signals {
        if stg.transitions_of(signal).is_empty() {
            return Err(SgError::ConstantSignal {
                signal: stg.signal_name(signal).to_owned(),
            });
        }
    }
    Ok(signals)
}

/// Like [`synthesize_from_sg`] but reuses an already built state graph
/// (exposing the intermediate result per C-INTERMEDIATE).
pub fn synthesize_from_built_sg(
    stg: &Stg,
    sg: &StateGraph,
    options: &SgSynthesisOptions,
) -> Result<SgSynthesis, SgError> {
    let signals = check_implementable(stg)?;
    if options.implicit_covers {
        return synthesize_implicit(stg, sg, &signals, options);
    }
    // One worker task per signal: derive the exact on/off-sets, check the
    // partition (the release-build guard against minimising overlapping
    // covers), minimise. Results come back in signal order, so both the
    // gate list and the first-error semantics match the sequential loop.
    let results = par_map(&signals, options.workers, |_, &signal| {
        let sets = on_off_sets(stg, sg, signal);
        if sets.on.intersects(&sets.off) {
            let witness = sets
                .on
                .intersect(&sets.off)
                .cubes()
                .first()
                .map(ToString::to_string)
                .unwrap_or_default();
            return Err(SgError::CscViolation {
                signal: stg.signal_name(signal).to_owned(),
                code: witness,
            });
        }
        let run_minimize = |on: &Cover, off: &Cover| {
            if options.exact_minimization {
                minimize_exact(on, off, &QmBudget::default()).unwrap_or_else(|| minimize(on, off))
            } else {
                minimize(on, off)
            }
        };
        let on_impl = run_minimize(&sets.on, &sets.off);
        let (cover, inverted) = if options.allow_inversion {
            let off_impl = run_minimize(&sets.off, &sets.on);
            if off_impl.literal_count() < on_impl.literal_count() {
                (off_impl, true)
            } else {
                (on_impl, false)
            }
        } else {
            (on_impl, false)
        };
        Ok(GateImplementation {
            signal,
            cover,
            inverted,
        })
    });
    let gates = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(SgSynthesis { gates })
}

/// The implicit-cover synthesis path: one shared classification sweep over
/// the SG, then per-signal implicit set construction, CSC check, and
/// minimisation — gate-equation-identical to the explicit path, but the
/// per-signal cost tracks the implicit representation size instead of the
/// state count.
fn synthesize_implicit(
    stg: &Stg,
    sg: &StateGraph,
    signals: &[SignalId],
    options: &SgSynthesisOptions,
) -> Result<SgSynthesis, SgError> {
    let class = SgClassification::build(stg, sg);
    // One shared pool for every signal's set construction: states shared
    // between signals collapse into diagram structure once instead of
    // being rebuilt from scratch per signal. The build is sequential
    // (deterministic pool), the minimisation parallel over per-signal
    // carve-outs.
    let mut shared = ImplicitPool::new(class.width);
    let handles: Vec<(SignalId, ImplicitCover, ImplicitCover)> = signals
        .iter()
        .map(|&signal| {
            let (on, off) = class.sets_into(&mut shared, signal);
            (signal, on, off)
        })
        .collect();
    let results = par_map(&handles, options.workers, |_, &(signal, on, off)| {
        let mut pool = ImplicitPool::new(class.width);
        let on = pool.copy_set_from(&shared, on);
        let off = pool.copy_set_from(&shared, off);
        implement_implicit(
            stg,
            ImplicitOnOffSets::from_parts(signal, pool, on, off),
            options,
        )
    });
    let gates = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(SgSynthesis { gates })
}

/// Synthesises all implementable signals from an already built
/// [`SymbolicSg`] — the engine-split counterpart of
/// [`synthesize_from_built_sg`], exposing the intermediate reachability
/// result so callers (the `synth` CLI, the benches) can time the phases
/// separately. Gate equations are byte-identical to the explicit engine's
/// under either [`CoverExtraction`] front end.
///
/// Takes `&mut SymbolicSg` because ISOP extraction writes the BDD
/// manager's memo tables; the reachable relation itself is not touched.
///
/// # Errors
///
/// * [`SgError::CscViolation`] if some signal's on- and off-sets share a
///   code;
/// * [`SgError::ConstantSignal`] if an implementable signal never changes.
pub fn synthesize_from_symbolic_sg(
    stg: &Stg,
    sym: &mut SymbolicSg,
    options: &SgSynthesisOptions,
) -> Result<SgSynthesis, SgError> {
    let signals = check_implementable(stg)?;
    let sets = sym.extract_on_off_sets(&signals, options.extraction);
    synthesize_from_on_off_sets(stg, sets, options)
}

/// Minimises already extracted per-signal implicit sets into gates — the
/// back half of the symbolic flow, split out so callers can time
/// extraction and minimisation separately (the `synth` CLI's `ExtTim`
/// row). Gates come back in the order of `sets`.
///
/// # Errors
///
/// [`SgError::CscViolation`] if some signal's on- and off-sets share a
/// code.
pub fn synthesize_from_on_off_sets(
    stg: &Stg,
    sets: Vec<ImplicitOnOffSets>,
    options: &SgSynthesisOptions,
) -> Result<SgSynthesis, SgError> {
    let results = par_map(&sets, options.workers, |_, sets| {
        implement_implicit(stg, sets.clone(), options)
    });
    let gates = results.into_iter().collect::<Result<Vec<_>, _>>()?;
    Ok(SgSynthesis { gates })
}

/// The shared per-signal tail of both implicit-set engines: CSC check on
/// the implicit sets (canonically smallest shared code as the witness),
/// then minimisation, optionally of the complemented function.
fn implement_implicit(
    stg: &Stg,
    sets: ImplicitOnOffSets,
    options: &SgSynthesisOptions,
) -> Result<GateImplementation, SgError> {
    let signal = sets.signal;
    let (on, off) = (sets.on, sets.off);
    let mut pool = sets.pool;
    let shared = pool.intersect(on, off);
    if let Some(bits) = pool.first_minterm(shared) {
        return Err(SgError::CscViolation {
            signal: stg.signal_name(signal).to_owned(),
            code: Cube::minterm(bits).to_string(),
        });
    }
    let run_minimize = |pool: &mut ImplicitPool, on, off| {
        if options.exact_minimization {
            minimize_exact_implicit(pool, on, off, &QmBudget::default())
                .unwrap_or_else(|| minimize_implicit(pool, on, off))
        } else {
            minimize_implicit(pool, on, off)
        }
    };
    let on_impl = run_minimize(&mut pool, on, off);
    let (cover, inverted) = if options.allow_inversion {
        let off_impl = run_minimize(&mut pool, off, on);
        if off_impl.literal_count() < on_impl.literal_count() {
            (off_impl, true)
        } else {
            (on_impl, false)
        }
    } else {
        (on_impl, false)
    };
    Ok(GateImplementation {
        signal,
        cover,
        inverted,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_stg::generators::{muller_pipeline, sequencer};
    use si_stg::suite::{paper_fig1, vme_read_csc, vme_read_no_csc};

    #[test]
    fn engine_default_is_explicit() {
        assert_eq!(SgSynthesisOptions::default().engine, SgEngine::Explicit);
    }

    #[test]
    fn fig1_baseline_matches_paper() {
        let stg = paper_fig1();
        let result = synthesize_from_sg(&stg, &SgSynthesisOptions::default()).expect("ok");
        assert_eq!(result.gates.len(), 1);
        assert_eq!(result.gates[0].equation(&stg), "b = a + c");
        assert_eq!(result.literal_count(), 2);
    }

    #[test]
    fn fig1_off_set_matches_paper() {
        let stg = paper_fig1();
        let sg = StateGraph::build(&stg, 1000).expect("builds");
        let b = stg.signal_by_name("b").expect("b");
        let sets = on_off_sets(&stg, &sg, b);
        let off = minimize(&sets.off, &sets.on);
        let names: Vec<&str> = stg.signals().map(|s| stg.signal_name(s)).collect();
        // The paper: C_Off = a̅c̅.
        assert_eq!(off.to_expression_string(&names), "a' c'");
    }

    #[test]
    fn vme_csc_violation_detected() {
        let stg = vme_read_no_csc();
        let err = synthesize_from_sg(&stg, &SgSynthesisOptions::default()).unwrap_err();
        assert!(matches!(err, SgError::CscViolation { .. }));
    }

    #[test]
    fn vme_with_csc_synthesises() {
        let stg = vme_read_csc();
        let result = synthesize_from_sg(&stg, &SgSynthesisOptions::default()).expect("ok");
        // lds, d, dtack, csc0 are implementable.
        assert_eq!(result.gates.len(), 4);
        assert!(result.literal_count() > 0);
        // Every gate's cover must separate on from off on reachable states.
        let sg = StateGraph::build(&stg, 10_000).expect("builds");
        for gate in &result.gates {
            let sets = on_off_sets(&stg, &sg, gate.signal);
            assert!(gate.cover.covers_cover(&sets.on));
            assert!(!gate.cover.intersects(&sets.off));
        }
    }

    #[test]
    fn muller_pipeline_c_element_equations() {
        let stg = muller_pipeline(2);
        let result = synthesize_from_sg(&stg, &SgSynthesisOptions::default()).expect("ok");
        assert_eq!(result.gates.len(), 2);
        // Each stage is a C-element: next(ci) = majority-ish function of
        // neighbours and itself; at minimum 3 literals under SOP.
        for gate in &result.gates {
            assert!(gate.literal_count() >= 3, "{}", gate.equation(&stg));
        }
    }

    #[test]
    fn implicit_sets_match_explicit_point_sets() {
        for stg in [
            paper_fig1(),
            vme_read_csc(),
            muller_pipeline(4),
            sequencer(5),
        ] {
            let sg = StateGraph::build(&stg, 100_000).expect("builds");
            for signal in stg.implementable_signals() {
                let explicit = on_off_sets(&stg, &sg, signal);
                let implicit = on_off_sets_implicit(&stg, &sg, signal).to_on_off_sets();
                assert_eq!(
                    explicit.on.cubes(),
                    implicit.on.cubes(),
                    "{}: on-sets differ for {}",
                    stg.name(),
                    stg.signal_name(signal)
                );
                assert_eq!(
                    explicit.off.cubes(),
                    implicit.off.cubes(),
                    "{}: off-sets differ for {}",
                    stg.name(),
                    stg.signal_name(signal)
                );
            }
        }
    }

    #[test]
    fn implicit_and_explicit_paths_agree_byte_for_byte() {
        for stg in [
            paper_fig1(),
            vme_read_csc(),
            muller_pipeline(5),
            sequencer(6),
        ] {
            for exact_minimization in [false, true] {
                for allow_inversion in [false, true] {
                    let implicit = synthesize_from_sg(
                        &stg,
                        &SgSynthesisOptions {
                            exact_minimization,
                            allow_inversion,
                            ..Default::default()
                        },
                    )
                    .expect("implicit ok");
                    let explicit = synthesize_from_sg(
                        &stg,
                        &SgSynthesisOptions {
                            exact_minimization,
                            allow_inversion,
                            implicit_covers: false,
                            ..Default::default()
                        },
                    )
                    .expect("explicit ok");
                    for (a, b) in implicit.gates.iter().zip(&explicit.gates) {
                        assert_eq!(
                            a.equation(&stg),
                            b.equation(&stg),
                            "{} (exact={exact_minimization}, invert={allow_inversion})",
                            stg.name()
                        );
                        assert_eq!(a.inverted, b.inverted);
                    }
                }
            }
        }
    }

    #[test]
    fn csc_violation_witness_identical_across_paths() {
        let stg = vme_read_no_csc();
        let implicit = synthesize_from_sg(&stg, &SgSynthesisOptions::default()).unwrap_err();
        let explicit = synthesize_from_sg(
            &stg,
            &SgSynthesisOptions {
                implicit_covers: false,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(implicit, explicit, "witness code or signal differs");
    }

    #[test]
    fn budget_exhaustion_is_an_error_in_both_paths() {
        // Exceeding the state budget mid-traversal must surface as an
        // `SgError`, never a partial state graph silently synthesised into
        // a wrong gate.
        let stg = muller_pipeline(8);
        for implicit_covers in [true, false] {
            let err = synthesize_from_sg(
                &stg,
                &SgSynthesisOptions {
                    state_budget: 100,
                    implicit_covers,
                    ..Default::default()
                },
            )
            .unwrap_err();
            assert!(
                matches!(
                    err,
                    SgError::Net(si_petri::NetError::StateBudgetExceeded { budget: 100 })
                ),
                "got {err}"
            );
        }
    }

    #[test]
    fn symbolic_engine_agrees_byte_for_byte() {
        for stg in [
            paper_fig1(),
            vme_read_csc(),
            muller_pipeline(5),
            sequencer(6),
        ] {
            for exact_minimization in [false, true] {
                for allow_inversion in [false, true] {
                    let explicit = synthesize_from_sg(
                        &stg,
                        &SgSynthesisOptions {
                            exact_minimization,
                            allow_inversion,
                            ..Default::default()
                        },
                    )
                    .expect("explicit ok");
                    let symbolic = synthesize_from_sg(
                        &stg,
                        &SgSynthesisOptions {
                            engine: SgEngine::Symbolic,
                            exact_minimization,
                            allow_inversion,
                            ..Default::default()
                        },
                    )
                    .expect("symbolic ok");
                    assert_eq!(explicit.gates.len(), symbolic.gates.len());
                    for (a, b) in symbolic.gates.iter().zip(&explicit.gates) {
                        assert_eq!(
                            a.equation(&stg),
                            b.equation(&stg),
                            "{} (exact={exact_minimization}, invert={allow_inversion})",
                            stg.name()
                        );
                        assert_eq!(a.inverted, b.inverted);
                    }
                }
            }
        }
    }

    #[test]
    fn symbolic_csc_witness_identical_to_explicit() {
        let stg = vme_read_no_csc();
        let explicit = synthesize_from_sg(&stg, &SgSynthesisOptions::default()).unwrap_err();
        let symbolic = synthesize_from_sg(
            &stg,
            &SgSynthesisOptions {
                engine: SgEngine::Symbolic,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert_eq!(symbolic, explicit, "witness code or signal differs");
    }

    #[test]
    fn symbolic_engine_ignores_the_state_budget() {
        // A state budget far below the state count only binds the explicit
        // engine; the symbolic engine has its own node budget.
        let stg = muller_pipeline(8);
        let options = SgSynthesisOptions {
            engine: SgEngine::Symbolic,
            state_budget: 10,
            ..Default::default()
        };
        let symbolic = synthesize_from_sg(&stg, &options).expect("symbolic ok");
        let explicit = synthesize_from_sg(&stg, &SgSynthesisOptions::default()).expect("ok");
        for (a, b) in symbolic.gates.iter().zip(&explicit.gates) {
            assert_eq!(a.equation(&stg), b.equation(&stg));
        }
    }

    #[test]
    fn symbolic_node_budget_exhaustion_is_an_error() {
        let stg = muller_pipeline(8);
        let err = synthesize_from_sg(
            &stg,
            &SgSynthesisOptions {
                engine: SgEngine::Symbolic,
                symbolic_node_budget: 10,
                ..Default::default()
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            SgError::Net(si_petri::NetError::NodeBudgetExceeded { budget: 10 })
        ));
    }

    #[test]
    fn inversion_option_never_worse() {
        let stg = sequencer(4);
        let plain = synthesize_from_sg(&stg, &SgSynthesisOptions::default()).expect("ok");
        let inverted = synthesize_from_sg(
            &stg,
            &SgSynthesisOptions {
                allow_inversion: true,
                ..Default::default()
            },
        )
        .expect("ok");
        assert!(inverted.literal_count() <= plain.literal_count());
    }
}
