//! Criterion micro-benchmarks: the cube/cover algebra and the
//! Espresso-style minimiser (the paper's `EspTim` inner loop).

use criterion::{criterion_group, criterion_main, Criterion};
use si_cubes::{minimize, Cover, Cube};

/// A pseudo-random but deterministic on/off partition over `width`
/// variables (xorshift; no external RNG needed at bench time).
fn partition(width: usize, minterms: usize, seed: u64) -> (Cover, Cover) {
    let mut state = seed | 1;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let mut on = Cover::empty(width);
    let mut off = Cover::empty(width);
    let mut used = std::collections::HashSet::new();
    while used.len() < minterms {
        let bits: Vec<bool> = (0..width).map(|_| next() & 1 == 1).collect();
        let key: String = bits.iter().map(|&b| if b { '1' } else { '0' }).collect();
        if used.insert(key) {
            let cube = Cube::minterm(bits);
            if used.len() % 2 == 0 {
                on.push(cube);
            } else {
                off.push(cube);
            }
        }
    }
    (on, off)
}

fn bench_cubes(c: &mut Criterion) {
    let mut group = c.benchmark_group("cubes");
    let (on, off) = partition(12, 160, 0x5137);
    group.bench_function("minimize-12var-160pt", |b| {
        b.iter(|| minimize(&on, &off));
    });
    group.bench_function("intersects-12var", |b| {
        b.iter(|| on.intersects(&off));
    });
    group.bench_function("covers_cover-12var", |b| {
        let min = minimize(&on, &off);
        b.iter(|| min.covers_cover(&on));
    });
    let wide = Cube::from_str_cube(&"1-".repeat(32));
    let wide2 = Cube::from_str_cube(&"-1".repeat(32));
    group.bench_function("cube-intersect-64var", |b| {
        b.iter(|| wide.intersect(&wide2));
    });
    group.finish();
}

criterion_group!(benches, bench_cubes);
criterion_main!(benches);
