//! Criterion micro-benchmarks: STG-unfolding segment construction under the
//! two adequate orders (Ablation A's inner loop).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use si_stg::generators::{counterflow_pipeline, muller_pipeline};
use si_unfolding::{AdequateOrder, StgUnfolding, UnfoldingOptions};

fn bench_unfolding(c: &mut Criterion) {
    let mut group = c.benchmark_group("unfolding");
    for stages in [4usize, 8, 12] {
        let stg = muller_pipeline(stages);
        for (name, order) in [
            ("mcmillan", AdequateOrder::McMillan),
            ("erv", AdequateOrder::ErvLex),
        ] {
            group.bench_with_input(BenchmarkId::new(name, stages), &stg, |b, stg| {
                let options = UnfoldingOptions {
                    order,
                    ..UnfoldingOptions::default()
                };
                b.iter(|| StgUnfolding::build(stg, &options).expect("builds"));
            });
        }
    }
    let cf = counterflow_pipeline(6);
    group.bench_function("counterflow-6", |b| {
        b.iter(|| StgUnfolding::build(&cf, &UnfoldingOptions::default()).expect("builds"));
    });
    group.finish();
}

criterion_group!(benches, bench_unfolding);
criterion_main!(benches);
