//! Criterion micro-benchmarks: the full synthesis flows (unfolding
//! approximate / unfolding exact / SG baseline) on representative inputs.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use si_stategraph::{synthesize_from_sg, SgSynthesisOptions};
use si_stg::generators::muller_pipeline;
use si_stg::suite::{paper_fig1, vme_read_csc};
use si_synthesis::{synthesize_from_unfolding, CoverMode, SynthesisOptions};

fn bench_flows(c: &mut Criterion) {
    let mut group = c.benchmark_group("synthesis");
    let inputs = [paper_fig1(), vme_read_csc(), muller_pipeline(4)];
    for stg in &inputs {
        group.bench_with_input(
            BenchmarkId::new("unfolding-approx", stg.name()),
            stg,
            |b, stg| {
                let options = SynthesisOptions::default();
                b.iter(|| synthesize_from_unfolding(stg, &options).expect("ok"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("unfolding-exact", stg.name()),
            stg,
            |b, stg| {
                let options = SynthesisOptions {
                    mode: CoverMode::Exact,
                    ..SynthesisOptions::default()
                };
                b.iter(|| synthesize_from_unfolding(stg, &options).expect("ok"));
            },
        );
        group.bench_with_input(
            BenchmarkId::new("sg-baseline", stg.name()),
            stg,
            |b, stg| {
                let options = SgSynthesisOptions::default();
                b.iter(|| synthesize_from_sg(stg, &options).expect("ok"));
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_flows);
criterion_main!(benches);
