//! # si-bench — benchmark harness for the reproduced experiments
//!
//! Shared measurement helpers for the binaries that regenerate the paper's
//! evaluation:
//!
//! * `table1` — per-benchmark breakdown (signals, UnfTim, SynTim, EspTim,
//!   TotTim, LitCnt) for the unfolding flow vs the SG-based baseline;
//! * `fig6` — synthesis time vs signal count on Muller pipelines plus the
//!   counterflow-pipeline data point;
//! * `ablation_exact_vs_approx` — exact cut enumeration vs the approximate
//!   + refinement flow (design-choice ablation);
//! * `ablation_orders` — McMillan vs ERV cutoff orders (segment sizes).
//!
//! Criterion micro-benchmarks live under `benches/`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

use si_stategraph::{synthesize_from_sg, SgEngine, SgSynthesisOptions};
use si_stg::Stg;
use si_synthesis::{synthesize_from_unfolding, CoverMode, SynthesisOptions};

/// One measured row of Table 1.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Benchmark name.
    pub name: String,
    /// Number of signals.
    pub signals: usize,
    /// Unfolding construction time.
    pub unf_time: Duration,
    /// Cover derivation time.
    pub syn_time: Duration,
    /// Minimisation time.
    pub esp_time: Duration,
    /// Literal count of the unfolding-based implementation.
    pub literals: usize,
    /// Segment size (events).
    pub events: usize,
    /// SG-baseline total time (`None` when the baseline blew its budget).
    pub baseline_time: Option<Duration>,
    /// SG-baseline literal count.
    pub baseline_literals: Option<usize>,
    /// Reachable state count of the SG baseline.
    pub states: Option<usize>,
    /// Symbolic-engine SG total time (`None` when the node budget blew).
    /// Gate equations are byte-identical to the explicit baseline's, so no
    /// separate literal column is needed.
    pub symbolic_time: Option<Duration>,
}

impl TableRow {
    /// Total unfolding-flow time (the paper's `TotTim`).
    pub fn total_time(&self) -> Duration {
        self.unf_time + self.syn_time + self.esp_time
    }
}

/// Measures one benchmark with the unfolding flow (given `mode`) and the
/// SG-based baseline.
///
/// # Panics
///
/// Panics if the unfolding flow fails — every suite entry is expected to be
/// synthesisable.
pub fn measure(stg: &Stg, mode: CoverMode, state_budget: usize) -> TableRow {
    let options = SynthesisOptions {
        mode,
        ..SynthesisOptions::default()
    };
    let result = synthesize_from_unfolding(stg, &options)
        .unwrap_or_else(|e| panic!("{} failed to synthesise: {e}", stg.name()));

    let start = Instant::now();
    let baseline = synthesize_from_sg(
        stg,
        &SgSynthesisOptions {
            state_budget,
            ..SgSynthesisOptions::default()
        },
    );
    let baseline_time = start.elapsed();
    let states = si_stategraph::StateGraph::build(stg, state_budget)
        .ok()
        .map(|sg| sg.len());

    let start = Instant::now();
    let symbolic = synthesize_from_sg(
        stg,
        &SgSynthesisOptions {
            engine: SgEngine::Symbolic,
            ..SgSynthesisOptions::default()
        },
    );
    let symbolic_time = symbolic.is_ok().then(|| start.elapsed());
    if let (Ok(a), Ok(b)) = (&baseline, &symbolic) {
        assert_eq!(
            a.literal_count(),
            b.literal_count(),
            "{}: engines disagree on literal count",
            stg.name()
        );
    }

    TableRow {
        name: stg.name().to_owned(),
        signals: stg.signal_count(),
        unf_time: result.timing.unfold,
        syn_time: result.timing.derive,
        esp_time: result.timing.minimize,
        literals: result.literal_count(),
        events: result.events,
        baseline_time: baseline.as_ref().ok().map(|_| baseline_time),
        baseline_literals: baseline.ok().map(|b| b.literal_count()),
        states,
        symbolic_time,
    }
}

/// Formats a duration in seconds with three decimals, like the paper's
/// tables.
pub fn secs(d: Duration) -> String {
    format!("{:.3}", d.as_secs_f64())
}

/// Formats an optional duration, printing `-` for absent values.
pub fn secs_opt(d: Option<Duration>) -> String {
    d.map(secs).unwrap_or_else(|| "-".to_owned())
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_stg::suite::paper_fig1;

    #[test]
    fn measure_produces_consistent_row() {
        let stg = paper_fig1();
        let row = measure(&stg, CoverMode::Approximate, 100_000);
        assert_eq!(row.signals, 3);
        assert_eq!(row.literals, 2);
        assert_eq!(row.baseline_literals, Some(2));
        assert_eq!(row.states, Some(8));
        assert!(row.symbolic_time.is_some());
        assert!(row.total_time() >= row.unf_time);
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(secs(Duration::from_millis(1500)), "1.500");
        assert_eq!(secs_opt(None), "-");
    }
}
