//! Ablation B (see `DESIGN.md`): the paper's central design choice —
//! approximate covers refined on demand versus exact cut enumeration inside
//! every slice. Reports time and literal count for both modes over the
//! suite and over workloads with growing concurrency, where exact
//! enumeration blows up.
//!
//! Run with: `cargo run -p si-bench --release --bin ablation_exact_vs_approx`

use std::time::Instant;

use si_bench::secs;
use si_stg::generators::independent_cycles;
use si_stg::suite::synthesisable;
use si_stg::Stg;
use si_synthesis::{synthesize_from_unfolding, CoverMode, SynthesisOptions};

fn main() {
    println!(
        "{:<24} {:>5} | {:>10} {:>8} | {:>10} {:>8}",
        "Benchmark", "Sigs", "ApproxTim", "ApxLit", "ExactTim", "ExLit"
    );
    println!("{}", "-".repeat(78));
    for stg in synthesisable() {
        row(&stg, 2_000_000);
    }
    println!("{}", "-".repeat(78));
    println!("Concurrency stress (k independent loops; exact explodes as 2^k,");
    println!("blowing the 5000-cut slice budget by k = 14):");
    for k in [8, 10, 12, 14] {
        row(&independent_cycles(k), 5_000);
    }
}

fn row(stg: &Stg, slice_budget: usize) {
    let approx = run(stg, CoverMode::Approximate, slice_budget);
    let exact = run(stg, CoverMode::Exact, slice_budget);
    let fmt = |r: &Option<(f64, usize)>, what: fn(&(f64, usize)) -> String| {
        r.as_ref().map(what).unwrap_or_else(|| "blow-up".into())
    };
    println!(
        "{:<24} {:>5} | {:>10} {:>8} | {:>10} {:>8}",
        stg.name(),
        stg.signal_count(),
        fmt(&approx, |r| secs(std::time::Duration::from_secs_f64(r.0))),
        fmt(&approx, |r| r.1.to_string()),
        fmt(&exact, |r| secs(std::time::Duration::from_secs_f64(r.0))),
        fmt(&exact, |r| r.1.to_string()),
    );
}

fn run(stg: &Stg, mode: CoverMode, slice_budget: usize) -> Option<(f64, usize)> {
    let options = SynthesisOptions {
        mode,
        slice_budget,
        ..SynthesisOptions::default()
    };
    let start = Instant::now();
    synthesize_from_unfolding(stg, &options)
        .ok()
        .map(|r| (start.elapsed().as_secs_f64(), r.literal_count()))
}
