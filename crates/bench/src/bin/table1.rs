//! Regenerates the paper's **Table 1**: per-benchmark synthesis breakdown
//! for the unfolding-based flow ("PUNT ACG") against the SG-based baseline
//! standing in for Petrify/SIS.
//!
//! Run with: `cargo run -p si-bench --release --bin table1`

use std::time::Duration;

use si_bench::{measure, secs, secs_opt};
use si_stg::suite::synthesisable;
use si_synthesis::CoverMode;

fn main() {
    println!(
        "{:<24} {:>5} | {:>8} {:>8} {:>8} {:>8} {:>7} | {:>9} {:>7} {:>8} {:>8}",
        "Benchmark",
        "Sigs",
        "UnfTim",
        "SynTim",
        "EspTim",
        "TotTim",
        "LitCnt",
        "SG-Tim",
        "SG-Lit",
        "States",
        "SymTim"
    );
    println!("{}", "-".repeat(121));

    let mut totals = Totals::default();
    for stg in synthesisable() {
        let row = measure(&stg, CoverMode::Approximate, 2_000_000);
        println!(
            "{:<24} {:>5} | {:>8} {:>8} {:>8} {:>8} {:>7} | {:>9} {:>7} {:>8} {:>8}",
            row.name,
            row.signals,
            secs(row.unf_time),
            secs(row.syn_time),
            secs(row.esp_time),
            secs(row.total_time()),
            row.literals,
            secs_opt(row.baseline_time),
            row.baseline_literals
                .map(|l| l.to_string())
                .unwrap_or_else(|| "-".into()),
            row.states
                .map(|s| s.to_string())
                .unwrap_or_else(|| "-".into()),
            secs_opt(row.symbolic_time),
        );
        totals.add(&row);
    }

    println!("{}", "-".repeat(121));
    println!(
        "{:<24} {:>5} | {:>8} {:>8} {:>8} {:>8} {:>7} | {:>9} {:>7}",
        "Total",
        totals.signals,
        secs(totals.unf),
        secs(totals.syn),
        secs(totals.esp),
        secs(totals.unf + totals.syn + totals.esp),
        totals.literals,
        secs(totals.baseline),
        totals.baseline_literals,
    );
    println!(
        "\nShape check vs the paper: literal counts match the SG-exact baseline \
         on {}/{} benchmarks; see EXPERIMENTS.md.",
        totals.matching, totals.rows
    );
}

#[derive(Default)]
struct Totals {
    signals: usize,
    unf: Duration,
    syn: Duration,
    esp: Duration,
    literals: usize,
    baseline: Duration,
    baseline_literals: usize,
    matching: usize,
    rows: usize,
}

impl Totals {
    fn add(&mut self, row: &si_bench::TableRow) {
        self.signals += row.signals;
        self.unf += row.unf_time;
        self.syn += row.syn_time;
        self.esp += row.esp_time;
        self.literals += row.literals;
        self.baseline += row.baseline_time.unwrap_or_default();
        self.baseline_literals += row.baseline_literals.unwrap_or_default();
        self.rows += 1;
        if row.baseline_literals == Some(row.literals) {
            self.matching += 1;
        }
    }
}
