//! Ablation D: the two-level minimiser behind `EspTim` — the Espresso-style
//! heuristic on explicit minterm covers, the same heuristic driven by the
//! *implicit* cover representation (the SG baseline's default since the
//! implicit-cover rework; byte-identical covers, so only the time column
//! moves), and exact Quine–McCluskey minimisation (the component the paper
//! holds responsible for the second exponent of SG-based tools). Reports
//! literal counts and time for all three on every suite benchmark's exact
//! on/off-sets.
//!
//! The cover-extraction front end (BDD-native ISOP vs disjoint-cube
//! translation, `--extract` on `synth`) is out of scope here and changes
//! nothing below: both front ends collapse to the same canonical point
//! sets before any minimiser runs, so the literal columns — and in
//! particular the `>budget` verdicts in the QM column, which are charged
//! against those point sets — are identical under either.
//!
//! Run with: `cargo run -p si-bench --release --bin ablation_minimizers`

use std::time::Instant;

use si_bench::secs;
use si_cubes::{minimize, minimize_exact, minimize_implicit, QmBudget};
use si_stategraph::{on_off_sets, on_off_sets_implicit, StateGraph};
use si_stg::suite::synthesisable;

fn main() {
    println!(
        "{:<24} {:>5} | {:>9} {:>7} | {:>9} {:>7} | {:>9} {:>7}",
        "Benchmark", "Sigs", "EsprTim", "EsprLit", "ImplTim", "ImplLit", "QmTim", "QmLit"
    );
    println!("{}", "-".repeat(96));
    for stg in synthesisable() {
        let sg = match StateGraph::build(&stg, 500_000) {
            Ok(sg) => sg,
            Err(_) => continue,
        };
        let mut espresso_lits = 0usize;
        let mut implicit_lits = 0usize;
        let mut qm_lits = 0usize;
        let mut espresso_time = 0.0f64;
        let mut implicit_time = 0.0f64;
        let mut qm_time = 0.0f64;
        let mut qm_gave_up = false;
        for signal in stg.implementable_signals() {
            let sets = on_off_sets(&stg, &sg, signal);
            let start = Instant::now();
            let h = minimize(&sets.on, &sets.off);
            espresso_time += start.elapsed().as_secs_f64();
            espresso_lits += h.literal_count();

            // The implicit path re-derives the sets too: its win is never
            // materialising one cube per state in the first place.
            let start = Instant::now();
            let mut implicit = on_off_sets_implicit(&stg, &sg, signal);
            let (on, off) = (implicit.on(), implicit.off());
            let i = minimize_implicit(implicit.pool_mut(), on, off);
            implicit_time += start.elapsed().as_secs_f64();
            implicit_lits += i.literal_count();
            assert_eq!(
                h.cubes(),
                i.cubes(),
                "implicit and explicit minimisation diverged on {}",
                stg.name()
            );

            let start = Instant::now();
            match minimize_exact(&sets.on, &sets.off, &QmBudget::default()) {
                Some(e) => qm_lits += e.literal_count(),
                None => qm_gave_up = true,
            }
            qm_time += start.elapsed().as_secs_f64();
        }
        println!(
            "{:<24} {:>5} | {:>9} {:>7} | {:>9} {:>7} | {:>9} {:>7}",
            stg.name(),
            stg.signal_count(),
            secs(std::time::Duration::from_secs_f64(espresso_time)),
            espresso_lits,
            secs(std::time::Duration::from_secs_f64(implicit_time)),
            implicit_lits,
            secs(std::time::Duration::from_secs_f64(qm_time)),
            if qm_gave_up {
                ">budget".to_owned()
            } else {
                qm_lits.to_string()
            },
        );
    }
    println!("\n(Espresso-style and implicit-cover results are byte-identical covers — the");
    println!(" implicit column includes re-deriving the sets and shows what the SG baseline");
    println!(" actually pays now; QM is exact, and its time ratio shows why SG tools that");
    println!(" insist on exact minimisation pay the paper's second exponent.)");
}
