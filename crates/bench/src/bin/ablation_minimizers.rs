//! Ablation D: the two-level minimiser behind `EspTim` — the Espresso-style
//! heuristic used by the unfolding flow versus exact Quine–McCluskey
//! minimisation (the component the paper holds responsible for the second
//! exponent of SG-based tools). Reports literal counts and time for both on
//! every suite benchmark's exact on/off-sets.
//!
//! Run with: `cargo run -p si-bench --release --bin ablation_minimizers`

use std::time::Instant;

use si_bench::secs;
use si_cubes::{minimize, minimize_exact, QmBudget};
use si_stategraph::{on_off_sets, StateGraph};
use si_stg::suite::synthesisable;

fn main() {
    println!(
        "{:<24} {:>5} | {:>10} {:>7} | {:>10} {:>7}",
        "Benchmark", "Sigs", "EsprTim", "EsprLit", "QmTim", "QmLit"
    );
    println!("{}", "-".repeat(76));
    for stg in synthesisable() {
        let sg = match StateGraph::build(&stg, 500_000) {
            Ok(sg) => sg,
            Err(_) => continue,
        };
        let mut espresso_lits = 0usize;
        let mut qm_lits = 0usize;
        let mut espresso_time = 0.0f64;
        let mut qm_time = 0.0f64;
        let mut qm_gave_up = false;
        for signal in stg.implementable_signals() {
            let sets = on_off_sets(&stg, &sg, signal);
            let start = Instant::now();
            let h = minimize(&sets.on, &sets.off);
            espresso_time += start.elapsed().as_secs_f64();
            espresso_lits += h.literal_count();
            let start = Instant::now();
            match minimize_exact(&sets.on, &sets.off, &QmBudget::default()) {
                Some(e) => qm_lits += e.literal_count(),
                None => qm_gave_up = true,
            }
            qm_time += start.elapsed().as_secs_f64();
        }
        println!(
            "{:<24} {:>5} | {:>10} {:>7} | {:>10} {:>7}",
            stg.name(),
            stg.signal_count(),
            secs(std::time::Duration::from_secs_f64(espresso_time)),
            espresso_lits,
            secs(std::time::Duration::from_secs_f64(qm_time)),
            if qm_gave_up {
                ">budget".to_owned()
            } else {
                qm_lits.to_string()
            },
        );
    }
    println!("\n(Espresso-style result is heuristic-minimal; QM is exact — equal literal");
    println!(" counts validate the heuristic, and the time ratio shows why SG tools that");
    println!(" insist on exact minimisation pay the paper's second exponent.)");
}
