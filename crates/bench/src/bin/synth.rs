//! `synth` — the CLI front door: synthesise a user-supplied `.g` file with
//! either flow and print the gate equations plus a Table-1-style timing
//! breakdown, or statically lint the specification without synthesising.
//!
//! ```text
//! Usage: synth <spec.g> [options]
//!
//!   --flow sg|unfolding|auto
//!                          synthesis flow (default: unfolding); `auto`
//!                          picks from structure alone — explicit SG when
//!                          the 1-safety certificate bounds the state
//!                          count within budget, unfolding for choice-free
//!                          nets beyond it, symbolic SG otherwise — and
//!                          reports the choice in the timing breakdown
//!   --engine explicit|symbolic|auto
//!                          (sg flow) state-traversal engine: explicit
//!                          enumeration, the BDD-based symbolic engine, or
//!                          `auto` (explicit when the structural state
//!                          bound fits the budget, symbolic otherwise)
//!                          (default: explicit; symbolic/auto rejected
//!                          with --flow unfolding, which has no state
//!                          graph)
//!   --cover exact|approx   cover derivation / minimisation mode
//!                          (default: approx; for --flow sg, `exact`
//!                          selects exact Quine–McCluskey minimisation)
//!   --covers implicit|explicit
//!                          point-set representation inside the flows:
//!                          implicit shared-subgraph diagrams (default) or
//!                          the historical explicit cube lists — gate
//!                          equations are byte-identical either way
//!   --extract isop|translate
//!                          (symbolic engine) front end deriving each
//!                          signal's on/off sets from the reachable BDD:
//!                          native Minato–Morreale ISOP extraction
//!                          (default) or the historical node-by-node
//!                          translation — gate equations are
//!                          byte-identical either way; the split is
//!                          reported as the ExtTim timing row
//!   --workers N            worker threads (default: one per CPU)
//!   --bdd-threads N        (symbolic engine) worker threads inside the
//!                          BDD kernels themselves (default: --workers).
//!                          Purely a wall-clock knob: equations, witnesses
//!                          and operation counts are identical at any
//!                          thread count
//!   --budget N             traversal budget: max states (explicit sg),
//!                          max live BDD nodes (symbolic sg) or slice
//!                          budget (unfolding); defaults: 2000000 states /
//!                          16000000 nodes / 2000000 slices
//!   --reorder off|sift|auto
//!                          (symbolic engine) dynamic variable reordering:
//!                          off keeps the statically seeded order, sift
//!                          reorders as a last resort under budget
//!                          pressure, auto reorders on pool growth
//!                          (default: auto — the front door should survive
//!                          specifications with no good static order)
//!   --order-seed adjacency|invariants
//!                          (symbolic engine) structural heuristic seeding
//!                          the static variable order: signal adjacency or
//!                          P-invariant place clusters (default:
//!                          adjacency; gate equations are identical under
//!                          either seed)
//!   --invert               (sg flow) allow implementing the complemented
//!                          function when it is cheaper
//!   --lint                 run the structural static analysis only and
//!                          print severity-ranked diagnostics (SI-E…/W…/I…)
//!                          with .g line numbers; no synthesis
//!   --lint-json            like --lint, but emit one JSON report object
//! ```
//!
//! Run with: `cargo run -p si-bench --release --bin synth -- spec.g --flow sg`
//!
//! Exit codes: 0 success, 1 usage or I/O error, 2 parse or synthesis error
//! (a malformed `.g` file is reported as a structured parse error, never a
//! panic). In lint mode: 0 when the spec is clean or carries only
//! warnings/infos, 2 when any error-severity diagnostic fires.

use std::process::ExitCode;
use std::time::Instant;

use si_bench::secs;
use si_stategraph::{
    check_implementable, synthesize_from_built_sg, synthesize_from_on_off_sets, CoverExtraction,
    OrderSeed, ReorderPolicy, SgEngine, SgSynthesis, SgSynthesisOptions, StateGraph, SymbolicSg,
};
use si_stg::analysis::lint_text;
use si_stg::{parse_g, Stg};
use si_synthesis::{
    choose_flow, synthesize_from_unfolding, CoverMode, FlowChoice, SynthesisOptions,
};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flow {
    Sg,
    Unfolding,
    Auto,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum EngineArg {
    Explicit,
    Symbolic,
    Auto,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LintMode {
    Off,
    Text,
    Json,
}

struct Args {
    path: String,
    flow: Flow,
    engine: EngineArg,
    exact: bool,
    implicit_covers: bool,
    extract: CoverExtraction,
    workers: Option<usize>,
    bdd_threads: Option<usize>,
    budget: Option<usize>,
    reorder: ReorderPolicy,
    order_seed: OrderSeed,
    invert: bool,
    lint: LintMode,
}

fn usage() -> &'static str {
    "Usage: synth <spec.g> [--flow sg|unfolding|auto] [--engine explicit|symbolic|auto] \
     [--cover exact|approx] [--covers implicit|explicit] [--extract isop|translate] \
     [--workers N] [--bdd-threads N] [--budget N] [--reorder off|sift|auto] \
     [--order-seed adjacency|invariants] [--invert] [--lint | --lint-json]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let mut path = None;
    let mut flow = Flow::Unfolding;
    let mut engine = None;
    let mut exact = false;
    let mut implicit_covers = true;
    let mut extract = CoverExtraction::default();
    let mut workers = None;
    let mut bdd_threads = None;
    let mut budget = None;
    let mut reorder = ReorderPolicy::Auto;
    let mut order_seed = OrderSeed::SignalAdjacency;
    let mut invert = false;
    let mut lint = LintMode::Off;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--flow" => {
                flow = match args.next().as_deref() {
                    Some("sg") => Flow::Sg,
                    Some("unfolding") => Flow::Unfolding,
                    Some("auto") => Flow::Auto,
                    other => return Err(format!("--flow needs sg|unfolding|auto, got {other:?}")),
                }
            }
            "--engine" => {
                engine = match args.next().as_deref() {
                    Some("explicit") => Some(EngineArg::Explicit),
                    Some("symbolic") => Some(EngineArg::Symbolic),
                    Some("auto") => Some(EngineArg::Auto),
                    other => {
                        return Err(format!(
                            "--engine needs explicit|symbolic|auto, got {other:?}"
                        ))
                    }
                }
            }
            "--cover" => {
                exact = match args.next().as_deref() {
                    Some("exact") => true,
                    Some("approx") => false,
                    other => return Err(format!("--cover needs exact|approx, got {other:?}")),
                }
            }
            "--covers" => {
                implicit_covers = match args.next().as_deref() {
                    Some("implicit") => true,
                    Some("explicit") => false,
                    other => {
                        return Err(format!("--covers needs implicit|explicit, got {other:?}"))
                    }
                }
            }
            "--extract" => {
                extract = args
                    .next()
                    .as_deref()
                    .and_then(CoverExtraction::parse)
                    .ok_or("--extract needs isop|translate")?;
            }
            "--workers" => {
                let n = args
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--workers needs a positive integer")?;
                workers = Some(n);
            }
            "--bdd-threads" => {
                let n = args
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--bdd-threads needs a positive integer")?;
                bdd_threads = Some(n);
            }
            "--budget" => {
                let n = args
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--budget needs a positive integer")?;
                budget = Some(n);
            }
            "--reorder" => {
                reorder = args
                    .next()
                    .as_deref()
                    .and_then(ReorderPolicy::parse)
                    .ok_or("--reorder needs off|sift|auto")?;
            }
            "--order-seed" => {
                order_seed = match args.next().as_deref() {
                    Some("adjacency") => OrderSeed::SignalAdjacency,
                    Some("invariants") => OrderSeed::PlaceInvariants,
                    other => {
                        return Err(format!(
                            "--order-seed needs adjacency|invariants, got {other:?}"
                        ))
                    }
                }
            }
            "--invert" => invert = true,
            "--lint" => lint = LintMode::Text,
            "--lint-json" => lint = LintMode::Json,
            "--help" | "-h" => return Err(usage().to_owned()),
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_owned()),
            other => return Err(format!("unexpected argument `{other}`\n{}", usage())),
        }
    }
    let path = path.ok_or_else(|| usage().to_owned())?;
    if flow == Flow::Unfolding && matches!(engine, Some(EngineArg::Symbolic | EngineArg::Auto)) {
        return Err(format!(
            "--engine symbolic|auto requires --flow sg: the unfolding flow never builds a \
             state graph, so there is no state-traversal engine to choose\n{}",
            usage()
        ));
    }
    Ok(Args {
        path,
        flow,
        engine: engine.unwrap_or(EngineArg::Explicit),
        exact,
        implicit_covers,
        extract,
        workers,
        bdd_threads,
        budget,
        reorder,
        order_seed,
        invert,
        lint,
    })
}

fn main() -> ExitCode {
    let wall_start = Instant::now();
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(1);
        }
    };
    let text = match std::fs::read_to_string(&args.path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read `{}`: {e}", args.path);
            return ExitCode::from(1);
        }
    };
    if args.lint != LintMode::Off {
        return run_lint(&text, &args);
    }
    let stg = match parse_g(&text) {
        Ok(stg) => stg,
        Err(e) => {
            eprintln!("`{}`: {e}", args.path);
            return ExitCode::from(2);
        }
    };
    println!("{stg}");
    let state_budget = args
        .budget
        .unwrap_or(SgSynthesisOptions::default().state_budget);
    match args.flow {
        Flow::Sg => {
            let (engine, note) = match args.engine {
                EngineArg::Explicit => (SgEngine::Explicit, None),
                EngineArg::Symbolic => (SgEngine::Symbolic, None),
                EngineArg::Auto => {
                    // The flow is pinned to sg, so the structural policy
                    // only decides the traversal engine: explicit when the
                    // certificate bounds the state count within budget.
                    let decision = match choose_flow(&stg, state_budget) {
                        Ok(d) => d,
                        Err(refusal) => {
                            eprintln!("{refusal}");
                            return ExitCode::from(2);
                        }
                    };
                    let engine = match decision.choice {
                        FlowChoice::SgExplicit => SgEngine::Explicit,
                        FlowChoice::Unfolding | FlowChoice::SgSymbolic => SgEngine::Symbolic,
                    };
                    let name = match engine {
                        SgEngine::Explicit => "explicit engine",
                        SgEngine::Symbolic => "symbolic engine",
                    };
                    (engine, Some(format!("{name} ({})", decision.reason)))
                }
            };
            run_sg(&stg, &args, engine, note, wall_start)
        }
        Flow::Unfolding => run_unfolding(&stg, &args, None, wall_start),
        Flow::Auto => {
            let decision = match choose_flow(&stg, state_budget) {
                Ok(d) => d,
                Err(refusal) => {
                    eprintln!("{refusal}");
                    return ExitCode::from(2);
                }
            };
            match decision.choice {
                FlowChoice::SgExplicit => run_sg(
                    &stg,
                    &args,
                    SgEngine::Explicit,
                    Some(format!("sg flow, explicit engine ({})", decision.reason)),
                    wall_start,
                ),
                FlowChoice::SgSymbolic => run_sg(
                    &stg,
                    &args,
                    SgEngine::Symbolic,
                    Some(format!("sg flow, symbolic engine ({})", decision.reason)),
                    wall_start,
                ),
                FlowChoice::Unfolding => run_unfolding(
                    &stg,
                    &args,
                    Some(format!("unfolding flow ({})", decision.reason)),
                    wall_start,
                ),
            }
        }
    }
}

/// Lint mode: structural static analysis only, no synthesis. Warnings and
/// infos leave the exit code at 0 so CI can gate on errors alone; any
/// error-severity diagnostic (or a syntactically broken file) exits 2.
fn run_lint(text: &str, args: &Args) -> ExitCode {
    let lint_start = Instant::now();
    let report = match lint_text(text) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("`{}`: {e}", args.path);
            return ExitCode::from(2);
        }
    };
    let lint_time = lint_start.elapsed();
    match args.lint {
        LintMode::Json => println!("{}", report.to_json()),
        _ => print!("{}", report.render()),
    }
    // The analysis-pass timing goes to stderr so stdout stays exactly the
    // report (greppable text or one JSON object).
    eprintln!("{:>10} {:>10}", "analysis", secs(lint_time));
    if report.has_errors() {
        ExitCode::from(2)
    } else {
        ExitCode::SUCCESS
    }
}

fn run_sg(
    stg: &Stg,
    args: &Args,
    engine: SgEngine,
    auto_note: Option<String>,
    wall_start: Instant,
) -> ExitCode {
    let defaults = SgSynthesisOptions::default();
    let options = SgSynthesisOptions {
        engine,
        state_budget: args.budget.unwrap_or(defaults.state_budget),
        symbolic_node_budget: args.budget.unwrap_or(defaults.symbolic_node_budget),
        symbolic_reorder: args.reorder,
        symbolic_order_seed: args.order_seed,
        exact_minimization: args.exact,
        allow_inversion: args.invert,
        workers: args.workers,
        bdd_threads: args.bdd_threads,
        implicit_covers: args.implicit_covers,
        extraction: args.extract,
        ..defaults
    };
    // Phase 1 ("reach"): state-space traversal — explicit enumeration or
    // the symbolic BDD fixpoint. Phase 2 ("synth"): per-signal on/off set
    // derivation, CSC check and minimisation.
    let mut symbolic_stats = None;
    let mut extraction_time = None;
    let reach_start = Instant::now();
    let (states, reach_time, result): (String, _, Result<SgSynthesis, _>) = match engine {
        SgEngine::Explicit => {
            let sg = match StateGraph::build(stg, options.state_budget) {
                Ok(sg) => sg,
                Err(e) => {
                    // `SgError::Net` already carries the construction
                    // context in its message.
                    eprintln!("{e}");
                    return ExitCode::from(2);
                }
            };
            let reach_time = reach_start.elapsed();
            (
                sg.len().to_string(),
                reach_time,
                synthesize_from_built_sg(stg, &sg, &options),
            )
        }
        SgEngine::Symbolic => {
            let mut sym = match SymbolicSg::build(stg, &options.symbolic_tuning()) {
                Ok(sym) => sym,
                Err(e) => {
                    eprintln!("symbolic reachability failed: {e}");
                    return ExitCode::from(2);
                }
            };
            let reach_time = reach_start.elapsed();
            symbolic_stats = Some(sym.reach().stats().clone());
            // The synth phase, split so extraction (reachable BDD →
            // per-signal implicit sets) is timed apart from the
            // minimiser — the ExtTim row below.
            let result = check_implementable(stg).and_then(|signals| {
                let ext_start = Instant::now();
                let sets = sym.extract_on_off_sets(&signals, options.extraction);
                extraction_time = Some(ext_start.elapsed());
                synthesize_from_on_off_sets(stg, sets, &options)
            });
            (sym.state_count().to_string(), reach_time, result)
        }
    };
    let syn_time = reach_start.elapsed() - reach_time;
    let result = match result {
        Ok(r) => r,
        Err(e) => {
            eprintln!("synthesis failed: {e}");
            return ExitCode::from(2);
        }
    };
    let engine_name = match engine {
        SgEngine::Explicit => "explicit engine",
        SgEngine::Symbolic => "symbolic engine",
    };
    println!("\nGate equations (SG baseline, {engine_name}):");
    for gate in &result.gates {
        println!("  {}", gate.equation(stg));
    }
    println!("\nTiming breakdown (seconds):");
    if let Some(note) = &auto_note {
        println!("  auto choice: {note}");
    }
    println!("{:>10} {:>10}", "Phase", "Time");
    println!(
        "{:>10} {:>10}   ({states} states)",
        "reach",
        secs(reach_time)
    );
    if let Some(stats) = &symbolic_stats {
        // Pool-maintenance slices of the reach phase (already included in
        // the reach row): how much of it went to keeping the pool small.
        println!(
            "{:>10} {:>10}   ({} runs, {} nodes freed)",
            "gc",
            secs(stats.gc_time),
            stats.gc_runs,
            stats.gc_collected
        );
        println!(
            "{:>10} {:>10}   ({} runs, peak {} live nodes)",
            "reorder",
            secs(stats.reorder_time),
            stats.reorder_runs,
            stats.peak_live_nodes
        );
        // Deterministic kernel-call counters (identical at any thread
        // count — the cross-machine perf proxy) plus the schedule-dependent
        // mid-operation figures.
        println!(
            "  symbolic ops: ite {} / exists {} / and-exists {} \
             (reentrant maintenance {}, peak pool {})",
            stats.ops.ite,
            stats.ops.exists,
            stats.ops.and_exists,
            stats.reentrant_maintenance,
            stats.peak_pool
        );
    }
    if let Some(ext) = extraction_time {
        // Slice of the synth row (already included there): the cover
        // extraction front end's share of the non-reach time.
        let front = match options.extraction {
            CoverExtraction::Isop => "isop",
            CoverExtraction::Translate => "translate",
        };
        println!("{:>10} {:>10}   ({front} front end)", "ExtTim", secs(ext));
    }
    println!("{:>10} {:>10}", "synth", secs(syn_time));
    println!(
        "{:>10} {:>10}   ({} literals)",
        "total",
        secs(reach_time + syn_time),
        result.literal_count()
    );
    println!(
        "{:>10} {:>10}   (end-to-end wall clock)",
        "Wall",
        secs(wall_start.elapsed())
    );
    ExitCode::SUCCESS
}

fn run_unfolding(
    stg: &Stg,
    args: &Args,
    auto_note: Option<String>,
    wall_start: Instant,
) -> ExitCode {
    let options = SynthesisOptions {
        mode: if args.exact {
            CoverMode::Exact
        } else {
            CoverMode::Approximate
        },
        slice_budget: args
            .budget
            .unwrap_or(SynthesisOptions::default().slice_budget),
        workers: args.workers,
        implicit_covers: args.implicit_covers,
        ..SynthesisOptions::default()
    };
    let result = match synthesize_from_unfolding(stg, &options) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("synthesis failed: {e}");
            return ExitCode::from(2);
        }
    };
    println!("\nGate equations (unfolding flow):");
    for gate in &result.gates {
        println!("  {}", gate.equation(stg));
    }
    // SlcTim/RefTim split SynTim into its slice-construction and
    // refinement portions; both are CPU time summed over worker tasks, so
    // with --workers > 1 they can exceed the wall-clock SynTim.
    println!("\nTiming breakdown (seconds, the paper's Table 1 columns):");
    if let Some(note) = &auto_note {
        println!("  auto choice: {note}");
    }
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "Events", "UnfTim", "SynTim", "SlcTim", "RefTim", "EspTim", "TotTim", "LitCnt"
    );
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>8}",
        result.events,
        secs(result.timing.unfold),
        secs(result.timing.derive),
        secs(result.timing.slices),
        secs(result.timing.refine),
        secs(result.timing.minimize),
        secs(result.timing.total()),
        result.literal_count()
    );
    println!(
        "{:>10} {:>10}   (end-to-end wall clock)",
        "Wall",
        secs(wall_start.elapsed())
    );
    ExitCode::SUCCESS
}
