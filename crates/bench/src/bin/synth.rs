//! `synth` — the CLI front door: synthesise a user-supplied `.g` file with
//! either flow and print the gate equations plus a Table-1-style timing
//! breakdown.
//!
//! ```text
//! Usage: synth <spec.g> [options]
//!
//!   --flow sg|unfolding    synthesis flow (default: unfolding)
//!   --cover exact|approx   cover derivation / minimisation mode
//!                          (default: approx; for --flow sg, `exact`
//!                          selects exact Quine–McCluskey minimisation)
//!   --workers N            worker threads (default: one per CPU)
//!   --budget N             state/slice budget (default: 2000000)
//!   --invert               (sg flow) allow implementing the complemented
//!                          function when it is cheaper
//! ```
//!
//! Run with: `cargo run -p si-bench --release --bin synth -- spec.g --flow sg`
//!
//! Exit codes: 0 success, 1 usage or I/O error, 2 parse or synthesis error
//! (a malformed `.g` file is reported as a structured parse error, never a
//! panic).

use std::process::ExitCode;
use std::time::Instant;

use si_bench::secs;
use si_stategraph::{synthesize_from_built_sg, SgSynthesisOptions, StateGraph};
use si_stg::{parse_g, Stg};
use si_synthesis::{synthesize_from_unfolding, CoverMode, SynthesisOptions};

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Flow {
    Sg,
    Unfolding,
}

struct Args {
    path: String,
    flow: Flow,
    exact: bool,
    workers: Option<usize>,
    budget: usize,
    invert: bool,
}

fn usage() -> &'static str {
    "Usage: synth <spec.g> [--flow sg|unfolding] [--cover exact|approx] \
     [--workers N] [--budget N] [--invert]"
}

fn parse_args() -> Result<Args, String> {
    let mut args = std::env::args().skip(1);
    let mut path = None;
    let mut flow = Flow::Unfolding;
    let mut exact = false;
    let mut workers = None;
    let mut budget = 2_000_000usize;
    let mut invert = false;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--flow" => {
                flow = match args.next().as_deref() {
                    Some("sg") => Flow::Sg,
                    Some("unfolding") => Flow::Unfolding,
                    other => return Err(format!("--flow needs sg|unfolding, got {other:?}")),
                }
            }
            "--cover" => {
                exact = match args.next().as_deref() {
                    Some("exact") => true,
                    Some("approx") => false,
                    other => return Err(format!("--cover needs exact|approx, got {other:?}")),
                }
            }
            "--workers" => {
                let n = args
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--workers needs a positive integer")?;
                workers = Some(n);
            }
            "--budget" => {
                budget = args
                    .next()
                    .and_then(|s| s.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--budget needs a positive integer")?;
            }
            "--invert" => invert = true,
            "--help" | "-h" => return Err(usage().to_owned()),
            other if path.is_none() && !other.starts_with('-') => path = Some(other.to_owned()),
            other => return Err(format!("unexpected argument `{other}`\n{}", usage())),
        }
    }
    let path = path.ok_or_else(|| usage().to_owned())?;
    Ok(Args {
        path,
        flow,
        exact,
        workers,
        budget,
        invert,
    })
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            return ExitCode::from(1);
        }
    };
    let text = match std::fs::read_to_string(&args.path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("cannot read `{}`: {e}", args.path);
            return ExitCode::from(1);
        }
    };
    let stg = match parse_g(&text) {
        Ok(stg) => stg,
        Err(e) => {
            eprintln!("`{}`: {e}", args.path);
            return ExitCode::from(2);
        }
    };
    println!("{stg}");
    match args.flow {
        Flow::Sg => run_sg(&stg, &args),
        Flow::Unfolding => run_unfolding(&stg, &args),
    }
}

fn run_sg(stg: &Stg, args: &Args) -> ExitCode {
    let start = Instant::now();
    let sg = match StateGraph::build(stg, args.budget) {
        Ok(sg) => sg,
        Err(e) => {
            eprintln!("state graph construction failed: {e}");
            return ExitCode::from(2);
        }
    };
    let sg_time = start.elapsed();
    let options = SgSynthesisOptions {
        state_budget: args.budget,
        exact_minimization: args.exact,
        allow_inversion: args.invert,
        workers: args.workers,
        ..SgSynthesisOptions::default()
    };
    let syn_start = Instant::now();
    let result = match synthesize_from_built_sg(stg, &sg, &options) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("synthesis failed: {e}");
            return ExitCode::from(2);
        }
    };
    let syn_time = syn_start.elapsed();
    println!("\nGate equations (SG baseline, implicit covers):");
    for gate in &result.gates {
        println!("  {}", gate.equation(stg));
    }
    println!("\nTiming breakdown (seconds):");
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>8}",
        "States", "SgTim", "SynTim", "TotTim", "LitCnt"
    );
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>8}",
        sg.len(),
        secs(sg_time),
        secs(syn_time),
        secs(sg_time + syn_time),
        result.literal_count()
    );
    ExitCode::SUCCESS
}

fn run_unfolding(stg: &Stg, args: &Args) -> ExitCode {
    let options = SynthesisOptions {
        mode: if args.exact {
            CoverMode::Exact
        } else {
            CoverMode::Approximate
        },
        slice_budget: args.budget,
        workers: args.workers,
        ..SynthesisOptions::default()
    };
    let result = match synthesize_from_unfolding(stg, &options) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("synthesis failed: {e}");
            return ExitCode::from(2);
        }
    };
    println!("\nGate equations (unfolding flow):");
    for gate in &result.gates {
        println!("  {}", gate.equation(stg));
    }
    println!("\nTiming breakdown (seconds, the paper's Table 1 columns):");
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10} {:>8}",
        "Events", "UnfTim", "SynTim", "EspTim", "TotTim", "LitCnt"
    );
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10} {:>8}",
        result.events,
        secs(result.timing.unfold),
        secs(result.timing.derive),
        secs(result.timing.minimize),
        secs(result.timing.total()),
        result.literal_count()
    );
    ExitCode::SUCCESS
}
