//! Ablation A (see `DESIGN.md`): segment size and construction time under
//! McMillan's original cutoff order versus the finer ERV-style
//! size-lexicographic order.
//!
//! Run with: `cargo run -p si-bench --release --bin ablation_orders`

use std::time::Instant;

use si_bench::secs;
use si_stg::generators::{counterflow_pipeline, muller_pipeline};
use si_stg::suite::synthesisable;
use si_stg::Stg;
use si_unfolding::{AdequateOrder, StgUnfolding, UnfoldingOptions};

fn main() {
    println!(
        "{:<24} {:>5} | {:>8} {:>8} {:>9} | {:>8} {:>8} {:>9}",
        "Benchmark", "Sigs", "McM-ev", "McM-cond", "McM-tim", "ERV-ev", "ERV-cond", "ERV-tim"
    );
    println!("{}", "-".repeat(95));
    let mut workloads: Vec<Stg> = synthesisable();
    workloads.push(muller_pipeline(10));
    workloads.push(muller_pipeline(20));
    workloads.push(counterflow_pipeline(10));
    for stg in workloads {
        let mc = build(&stg, AdequateOrder::McMillan);
        let erv = build(&stg, AdequateOrder::ErvLex);
        println!(
            "{:<24} {:>5} | {:>8} {:>8} {:>9} | {:>8} {:>8} {:>9}",
            stg.name(),
            stg.signal_count(),
            mc.0,
            mc.1,
            secs(std::time::Duration::from_secs_f64(mc.2)),
            erv.0,
            erv.1,
            secs(std::time::Duration::from_secs_f64(erv.2)),
        );
    }
}

fn build(stg: &Stg, order: AdequateOrder) -> (usize, usize, f64) {
    let start = Instant::now();
    let unf = StgUnfolding::build(
        stg,
        &UnfoldingOptions {
            order,
            ..UnfoldingOptions::default()
        },
    )
    .unwrap_or_else(|e| panic!("{} failed to unfold: {e}", stg.name()));
    (
        unf.event_count(),
        unf.condition_count(),
        start.elapsed().as_secs_f64(),
    )
}
