//! Regenerates the paper's **Figure 6**: synthesis time against signal
//! count on scalable Muller pipelines, where SG-based tools grow
//! (doubly-)exponentially and the unfolding-based flow stays polynomial,
//! plus the counterflow-pipeline data point (34 signals; the circled dot in
//! the paper's plot).
//!
//! Since the symbolic engine landed the SG series carries **two** baseline
//! columns: explicit enumeration (which dies at its state budget, as the
//! paper reports for SIS) and the BDD-based symbolic engine, which carries
//! the same byte-identical synthesis through every listed point — the
//! interesting comparison is now unfolding vs symbolic, both of which
//! sidestep state enumeration.
//!
//! Run with: `cargo run -p si-bench --release --bin fig6 [max_stages]`

use std::time::{Duration, Instant};

use si_bench::{secs, secs_opt};
use si_stategraph::{
    synthesize_from_sg, synthesize_from_symbolic_sg, SgEngine, SgSynthesisOptions, SymbolicSg,
};
use si_stg::generators::{counterflow_pipeline, muller_pipeline};
use si_synthesis::{synthesize_from_unfolding, SynthesisOptions};

/// Explicit SG baselines give up beyond this many explicit states, standing
/// in for "ran out of memory" in the paper.
const SG_BUDGET: usize = 2_000_000;
/// BDD node budget for the symbolic engine (it never comes close on this
/// workload: the reachable set of a Muller pipeline is near-linear in the
/// stage count under the adjacency-seeded variable order).
const SYM_BUDGET: usize = 16_000_000;
/// A baseline stops once the *predicted* time of the next instance exceeds
/// this, standing in for "taking prohibitively long" in the paper.
/// Prediction instead of run-one-over-the-limit matters because the growth
/// per series point is exponential for the explicit engine — a first run
/// past the threshold would dwarf the series.
const SG_GIVE_UP: Duration = Duration::from_secs(60);
/// Observed per-point growth factor of the explicit SG baseline on Muller
/// pipelines with implicit on/off covers (~0.2 s at 14 stages, ~1.1 s at
/// 16, ~6 s at 18). In practice the [`SG_BUDGET`] state cap stops the
/// series (20 stages ≈ 4.2 M states) before the time cutoff does — the
/// wall the symbolic engine exists to break.
const SG_GROWTH_PER_POINT: u32 = 6;
/// Observed per-point growth of the symbolic engine on the same series
/// (~2–3× per +2 stages: the diagram grows polynomially, the state count
/// 4×). With the 60 s give-up every point through 24+ stages completes.
const SYM_GROWTH_PER_POINT: u32 = 3;

fn main() {
    let max_stages: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(24);

    println!("Muller pipeline series (time in seconds):");
    println!(
        "{:>7} {:>8} {:>10} {:>12} {:>12} {:>10} {:>12} {:>12}",
        "stages",
        "signals",
        "PUNT-unf",
        "PUNT-total",
        "SG-explicit",
        "SG-states",
        "SG-symbolic",
        "Sym-states"
    );
    let mut explicit_alive = true;
    let mut symbolic_alive = true;
    let mut stages = 2;
    while stages <= max_stages {
        let spec = muller_pipeline(stages);

        let result = synthesize_from_unfolding(&spec, &SynthesisOptions::default())
            .unwrap_or_else(|e| panic!("pipeline {stages} failed: {e}"));

        let (sg_time, sg_states) = if explicit_alive {
            let r = run_explicit_baseline(&spec);
            // Stop when the *next* instance is predicted to blow the
            // give-up budget (or when this one already failed outright).
            if r.0
                .map(|t| t * SG_GROWTH_PER_POINT > SG_GIVE_UP)
                .unwrap_or(true)
            {
                explicit_alive = false;
            }
            r
        } else {
            (None, None)
        };
        let (sym_time, sym_states) = if symbolic_alive {
            let r = run_symbolic_baseline(&spec);
            if r.0
                .map(|t| t * SYM_GROWTH_PER_POINT > SG_GIVE_UP)
                .unwrap_or(true)
            {
                symbolic_alive = false;
            }
            r
        } else {
            (None, None)
        };
        println!(
            "{:>7} {:>8} {:>10} {:>12} {:>12} {:>10} {:>12} {:>12}",
            stages,
            spec.signal_count(),
            secs(result.timing.unfold),
            secs(result.timing.total()),
            secs_opt(sg_time),
            sg_states
                .map(|s| s.to_string())
                .unwrap_or_else(|| "gave-up".into()),
            secs_opt(sym_time),
            sym_states
                .map(|s| s.to_string())
                .unwrap_or_else(|| "gave-up".into()),
        );
        stages += 2;
    }

    // The counterflow pipeline: the paper's 34-signal circled dot.
    println!("\nCounterflow pipeline (34 signals):");
    let spec = counterflow_pipeline(15);
    assert_eq!(spec.signal_count(), 34);
    let start = Instant::now();
    let result = synthesize_from_unfolding(&spec, &SynthesisOptions::default());
    let unf_total = start.elapsed();
    match result {
        Ok(r) => println!(
            "  PUNT-style: {} s total ({} events, {} literals)",
            secs(unf_total),
            r.events,
            r.literal_count()
        ),
        Err(e) => println!("  PUNT-style failed: {e}"),
    }
    if explicit_alive {
        let (sg_time, sg_states) = run_explicit_baseline(&spec);
        match sg_time {
            Some(t) => println!(
                "  SG explicit: {} s ({} states)",
                secs(t),
                sg_states.unwrap_or(0)
            ),
            None => println!(
                "  SG explicit: exceeded {SG_BUDGET} states (as the paper reports for SIS)"
            ),
        }
    } else {
        println!("  SG explicit: skipped (already past the {SG_GIVE_UP:?} give-up point)");
    }
    let (sym_time, sym_states) = run_symbolic_baseline(&spec);
    match sym_time {
        Some(t) => println!(
            "  SG symbolic: {} s ({} states)",
            secs(t),
            sym_states.unwrap_or(0)
        ),
        None => println!("  SG symbolic: exceeded {SYM_BUDGET} diagram nodes"),
    }
}

fn run_explicit_baseline(spec: &si_stg::Stg) -> (Option<Duration>, Option<usize>) {
    let start = Instant::now();
    let outcome = synthesize_from_sg(
        spec,
        &SgSynthesisOptions {
            state_budget: SG_BUDGET,
            ..SgSynthesisOptions::default()
        },
    );
    let elapsed = start.elapsed();
    match outcome {
        Ok(_) => {
            let states = si_stategraph::StateGraph::build(spec, SG_BUDGET)
                .map(|sg| sg.len())
                .ok();
            (Some(elapsed), states)
        }
        Err(_) => (None, None),
    }
}

fn run_symbolic_baseline(spec: &si_stg::Stg) -> (Option<Duration>, Option<u128>) {
    // One reachability fixpoint, reused for both the synthesis and the
    // state-count column — the reach phase dominates at large stage
    // counts, so rebuilding it just to count states would double the
    // column's wall-clock.
    let options = SgSynthesisOptions {
        engine: SgEngine::Symbolic,
        symbolic_node_budget: SYM_BUDGET,
        ..SgSynthesisOptions::default()
    };
    let start = Instant::now();
    let Ok(mut sym) = SymbolicSg::build(spec, &options.symbolic_tuning()) else {
        return (None, None);
    };
    let outcome = synthesize_from_symbolic_sg(spec, &mut sym, &options);
    let elapsed = start.elapsed();
    match outcome {
        Ok(_) => (Some(elapsed), Some(sym.state_count())),
        Err(_) => (None, None),
    }
}
