//! Regenerates the paper's **Figure 6**: synthesis time against signal
//! count on scalable Muller pipelines, where SG-based tools grow
//! (doubly-)exponentially and the unfolding-based flow stays polynomial,
//! plus the counterflow-pipeline data point (34 signals; the circled dot in
//! the paper's plot).
//!
//! Run with: `cargo run -p si-bench --release --bin fig6 [max_stages]`

use std::time::{Duration, Instant};

use si_bench::{secs, secs_opt};
use si_stategraph::{synthesize_from_sg, SgSynthesisOptions};
use si_stg::generators::{counterflow_pipeline, muller_pipeline};
use si_synthesis::{synthesize_from_unfolding, SynthesisOptions};

/// SG baselines give up beyond this many explicit states, standing in for
/// "ran out of memory" in the paper.
const SG_BUDGET: usize = 2_000_000;
/// The baseline stops once the *predicted* time of the next instance
/// exceeds this, standing in for "taking prohibitively long" in the paper.
/// Prediction instead of run-one-over-the-limit matters because the growth
/// per series point is still exponential: the state count quadruples per
/// +2 pipeline stages, and since the implicit-cover rework the synthesis
/// time tracks the state count (~4–6× per point) instead of its square —
/// but a first run past the threshold would still dwarf the series.
const SG_GIVE_UP: Duration = Duration::from_secs(60);
/// Observed per-point growth factor of the SG baseline on Muller pipelines
/// with implicit on/off covers (~0.2 s at 14 stages, ~1.1 s at 16, ~6 s at
/// 18; the explicit-minterm path took ~137 s at 14), used to predict
/// whether the next instance fits under [`SG_GIVE_UP`]. In practice the
/// [`SG_BUDGET`] state cap now stops the series (20 stages ≈ 4.2 M states)
/// before the time cutoff does — the wall moved from minimisation time to
/// explicit state enumeration itself, which is the paper's point.
const SG_GROWTH_PER_POINT: u32 = 6;

fn main() {
    let max_stages: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(24);

    println!("Muller pipeline series (time in seconds):");
    println!(
        "{:>7} {:>8} {:>10} {:>12} {:>12} {:>10}",
        "stages", "signals", "PUNT-unf", "PUNT-total", "SG-baseline", "SG-states"
    );
    let mut baseline_alive = true;
    let mut stages = 2;
    while stages <= max_stages {
        let spec = muller_pipeline(stages);

        let result = synthesize_from_unfolding(&spec, &SynthesisOptions::default())
            .unwrap_or_else(|e| panic!("pipeline {stages} failed: {e}"));

        let (sg_time, sg_states) = if baseline_alive {
            let r = run_baseline(&spec);
            // Stop when the *next* instance is predicted to blow the
            // give-up budget (or when this one already failed outright).
            if r.0
                .map(|t| t * SG_GROWTH_PER_POINT > SG_GIVE_UP)
                .unwrap_or(true)
            {
                baseline_alive = false;
            }
            r
        } else {
            (None, None)
        };
        println!(
            "{:>7} {:>8} {:>10} {:>12} {:>12} {:>10}",
            stages,
            spec.signal_count(),
            secs(result.timing.unfold),
            secs(result.timing.total()),
            secs_opt(sg_time),
            sg_states
                .map(|s| s.to_string())
                .unwrap_or_else(|| "gave-up".into()),
        );
        stages += 2;
    }

    // The counterflow pipeline: the paper's 34-signal circled dot.
    println!("\nCounterflow pipeline (34 signals):");
    let spec = counterflow_pipeline(15);
    assert_eq!(spec.signal_count(), 34);
    let start = Instant::now();
    let result = synthesize_from_unfolding(&spec, &SynthesisOptions::default());
    let unf_total = start.elapsed();
    match result {
        Ok(r) => println!(
            "  PUNT-style: {} s total ({} events, {} literals)",
            secs(unf_total),
            r.events,
            r.literal_count()
        ),
        Err(e) => println!("  PUNT-style failed: {e}"),
    }
    if baseline_alive {
        let (sg_time, sg_states) = run_baseline(&spec);
        match sg_time {
            Some(t) => println!(
                "  SG baseline: {} s ({} states)",
                secs(t),
                sg_states.unwrap_or(0)
            ),
            None => println!(
                "  SG baseline: exceeded {SG_BUDGET} states (as the paper reports for SIS)"
            ),
        }
    } else {
        println!("  SG baseline: skipped (already past the {SG_GIVE_UP:?} give-up point)");
    }
}

fn run_baseline(spec: &si_stg::Stg) -> (Option<Duration>, Option<usize>) {
    let start = Instant::now();
    let outcome = synthesize_from_sg(
        spec,
        &SgSynthesisOptions {
            state_budget: SG_BUDGET,
            ..SgSynthesisOptions::default()
        },
    );
    let elapsed = start.elapsed();
    match outcome {
        Ok(_) => {
            let states = si_stategraph::StateGraph::build(spec, SG_BUDGET)
                .map(|sg| sg.len())
                .ok();
            (Some(elapsed), states)
        }
        Err(_) => (None, None),
    }
}
