//! Top-level synthesis from the STG-unfolding segment: the flow of the
//! paper's Figure 5, producing an atomic-complex-gate-per-signal
//! implementation with the timing breakdown reported in Table 1.

use std::sync::Mutex;
use std::time::{Duration, Instant};

use si_cubes::implicit::{ImplicitCover, ImplicitPool};
use si_cubes::par::par_map;
use si_cubes::{minimize, minimize_implicit, Cover, Cube};
use si_stg::{SignalId, Stg};
use si_unfolding::{check_segment_persistency, StgUnfolding, UnfoldingOptions};

use crate::approx::{approximate_side, side_cover};
use crate::error::SynthesisError;
use crate::exact::{cover_true_within_slices, exact_side_cover, exact_side_set};
use crate::refine::{refine_until_disjoint, RefinementReport};
use crate::slice::side_slices;

/// How the on-/off-set covers are derived from the segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CoverMode {
    /// Enumerate all cuts inside each slice (the paper's exact approach —
    /// may explode under concurrency).
    Exact,
    /// Concurrency-relation approximation with iterative refinement (the
    /// paper's main contribution).
    #[default]
    Approximate,
}

/// Which cover-correctness condition gates the refinement loop.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CorrectnessCondition {
    /// The paper's main condition: the on- and off-set cover approximations
    /// must not intersect at all (simple, but partitions the DC-set and may
    /// cost literals — the paper's §5 remark).
    #[default]
    Strong,
    /// The paper's §6 enhancement: an intersection is tolerated as long as
    /// neither cover becomes TRUE within the slices of the opposite cover —
    /// then the intersection provably lies in the DC-set and the minimiser
    /// keeps the full optimisation freedom.
    Weak,
}

/// Options for unfolding-based synthesis.
#[derive(Debug, Clone)]
pub struct SynthesisOptions {
    /// Options for segment construction.
    pub unfolding: UnfoldingOptions,
    /// Cover derivation mode.
    pub mode: CoverMode,
    /// Maximum cube-level refinement steps per signal before escalating.
    pub max_refinement_steps: usize,
    /// Budget (in cuts) for exact slice enumeration.
    pub slice_budget: usize,
    /// Check semi-modularity on the segment before synthesising.
    pub check_persistency: bool,
    /// Cover-correctness condition (strong intersection-freedom by default).
    pub correctness: CorrectnessCondition,
    /// Worker threads for the per-signal derive/minimise stages; `None`
    /// uses one per available CPU. Output is bit-identical to sequential
    /// (`Some(1)`) regardless of the worker count.
    pub workers: Option<usize>,
    /// Represent point sets implicitly (canonical shared-subgraph diagrams)
    /// wherever the derivation touches them: exact slice enumerations stream
    /// into the diagram instead of materialising one minterm cube per state,
    /// the refinement sweep and the final consistency guard run as cached
    /// diagram intersections, and exact mode minimises implicitly. Gate
    /// equations are byte-identical with either setting (pinned by tests);
    /// `false` keeps the original explicit cube lists end to end.
    pub implicit_covers: bool,
}

impl Default for SynthesisOptions {
    fn default() -> Self {
        SynthesisOptions {
            unfolding: UnfoldingOptions::default(),
            mode: CoverMode::Approximate,
            max_refinement_steps: 200,
            slice_budget: 2_000_000,
            check_persistency: true,
            correctness: CorrectnessCondition::Strong,
            workers: None,
            implicit_covers: true,
        }
    }
}

/// The synthesised gate for one signal, with its pre-minimisation covers.
#[derive(Debug, Clone)]
pub struct SignalGate {
    /// The implemented signal.
    pub signal: SignalId,
    /// Final (refined or exact) on-set cover.
    pub on_cover: Cover,
    /// Final (refined or exact) off-set cover.
    pub off_cover: Cover,
    /// The minimised SOP implementing the gate (covers the on-set, disjoint
    /// from the off-set).
    pub gate: Cover,
    /// Refinement statistics (`None` in exact mode).
    pub refinement: Option<RefinementReport>,
}

impl SignalGate {
    /// Literal count of the gate — the paper's quality metric.
    pub fn literal_count(&self) -> usize {
        self.gate.literal_count()
    }

    /// Renders the gate equation, e.g. `b = a + c`.
    pub fn equation(&self, stg: &Stg) -> String {
        let names: Vec<&str> = stg.signals().map(|s| stg.signal_name(s)).collect();
        format!(
            "{} = {}",
            stg.signal_name(self.signal),
            self.gate.to_expression_string(&names)
        )
    }
}

/// Wall-clock breakdown matching Table 1's columns, with the derivation
/// phase further split into its slice and refinement portions.
#[derive(Debug, Clone, Copy, Default)]
pub struct TimingBreakdown {
    /// `UnfTim`: constructing the STG-unfolding segment.
    pub unfold: Duration,
    /// `SynTim`: deriving the on-/off-set covers (wall clock).
    pub derive: Duration,
    /// Portion of the derivation spent building slices and their initial
    /// covers (ER/MR approximation or exact enumeration), summed over the
    /// per-signal worker tasks — CPU time, so it can exceed the wall-clock
    /// `derive` when workers run in parallel.
    pub slices: Duration,
    /// Portion of the derivation spent making the covers disjoint (the
    /// refinement loop, exact escalations and §6 weak-condition probes),
    /// summed over the per-signal worker tasks like [`slices`](Self::slices).
    pub refine: Duration,
    /// `EspTim`: two-level minimisation.
    pub minimize: Duration,
}

impl TimingBreakdown {
    /// `TotTim`: the sum of all phases ([`slices`](Self::slices) and
    /// [`refine`](Self::refine) are parts of `derive`, not extra phases).
    pub fn total(&self) -> Duration {
        self.unfold + self.derive + self.minimize
    }
}

/// The result of unfolding-based synthesis.
#[derive(Debug, Clone)]
pub struct UnfoldingSynthesis {
    /// One gate per implementable signal, in signal order.
    pub gates: Vec<SignalGate>,
    /// Timing breakdown (UnfTim / SynTim / EspTim).
    pub timing: TimingBreakdown,
    /// Number of events in the segment (including `⊥`).
    pub events: usize,
    /// Number of conditions in the segment.
    pub conditions: usize,
}

impl UnfoldingSynthesis {
    /// Total literal count over all gates (Table 1's `LitCnt`).
    pub fn literal_count(&self) -> usize {
        self.gates.iter().map(SignalGate::literal_count).sum()
    }
}

/// Synthesises every implementable signal of `stg` from its unfolding
/// segment (the paper's "PUNT ACG" flow).
///
/// # Errors
///
/// * [`SynthesisError::Unfold`] if the segment cannot be built;
/// * [`SynthesisError::NotPersistent`] if semi-modularity fails;
/// * [`SynthesisError::CscViolation`] if some signal's covers intersect
///   even after exact derivation;
/// * [`SynthesisError::ConstantSignal`] for implementable signals without
///   transitions;
/// * [`SynthesisError::SliceBudgetExceeded`] if exact enumeration blows the
///   slice budget.
///
/// # Examples
///
/// ```
/// use si_stg::suite::paper_fig1;
/// use si_synthesis::{synthesize_from_unfolding, SynthesisOptions};
///
/// # fn main() -> Result<(), si_synthesis::SynthesisError> {
/// let stg = paper_fig1();
/// let result = synthesize_from_unfolding(&stg, &SynthesisOptions::default())?;
/// assert_eq!(result.gates[0].equation(&stg), "b = a + c");
/// # Ok(())
/// # }
/// ```
pub fn synthesize_from_unfolding(
    stg: &Stg,
    options: &SynthesisOptions,
) -> Result<UnfoldingSynthesis, SynthesisError> {
    let start = Instant::now();
    let unf = StgUnfolding::build(stg, &options.unfolding)?;
    let unfold = start.elapsed();

    if options.check_persistency {
        let violations = check_segment_persistency(stg, &unf);
        if let Some(v) = violations.first() {
            return Err(SynthesisError::NotPersistent {
                signal: stg.signal_name(v.disabled_label.signal).to_owned(),
            });
        }
    }

    let derive_start = Instant::now();
    let signals = stg.implementable_signals();
    for &signal in &signals {
        if stg.transitions_of(signal).is_empty() {
            return Err(SynthesisError::ConstantSignal {
                signal: stg.signal_name(signal).to_owned(),
            });
        }
    }
    // Derive every signal's covers on the worker pool. Results come back in
    // signal order, so on failure the reported error is the same one the
    // sequential loop would have hit first.
    let mut per_signal = Vec::with_capacity(signals.len());
    for derived in par_map(&signals, options.workers, |_, &signal| {
        derive_covers(stg, &unf, signal, options)
    }) {
        per_signal.push(derived?);
    }
    let derive = derive_start.elapsed();

    let min_start = Instant::now();
    let minimized = par_map(&per_signal, options.workers, |_, entry| {
        // Derivation promised disjoint covers; re-check in release builds
        // too, because minimising an inconsistent partition returns
        // garbage.
        match &entry.plan {
            MinimisePlan::Explicit => {
                // The bounded pairwise cube sweep over the explicit lists.
                if entry.on_cover.intersects(&entry.off_cover) {
                    return Err(inconsistent(stg, entry));
                }
                Ok(minimize(&entry.on_cover, &entry.off_cover))
            }
            MinimisePlan::ImplicitExact(sets) => {
                // A poisoned lock only means another signal's worker
                // panicked; this signal's pool is still internally
                // consistent, so keep going.
                let mut guard = match sets.lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                let (pool, on, off) = &mut *guard;
                let shared = pool.intersect(*on, *off);
                if let Some(bits) = pool.first_minterm(shared) {
                    return Err(SynthesisError::InconsistentCovers {
                        signal: stg.signal_name(entry.signal).to_owned(),
                        witness: Cube::minterm(bits).to_string(),
                    });
                }
                // Exact-mode sets are minterm point sets: minimise them
                // implicitly (byte-identical to the explicit minimiser on
                // the materialised canonical covers).
                Ok(minimize_implicit(pool, *on, *off))
            }
            MinimisePlan::ImplicitGuard(sets) => {
                // Approximate-mode covers are structural cube
                // approximations, not minterm sets: the guard runs as one
                // cached diagram intersection, but the cube-level minimiser
                // must consume the covers directly so the result matches
                // the explicit path byte for byte.
                let mut guard = match sets.lock() {
                    Ok(guard) => guard,
                    Err(poisoned) => poisoned.into_inner(),
                };
                let (pool, on, off) = &mut *guard;
                let shared = pool.intersect(*on, *off);
                if let Some(bits) = pool.first_minterm(shared) {
                    return Err(SynthesisError::InconsistentCovers {
                        signal: stg.signal_name(entry.signal).to_owned(),
                        witness: Cube::minterm(bits).to_string(),
                    });
                }
                Ok(minimize(&entry.on_cover, &entry.off_cover))
            }
        }
    });
    let mut gates = Vec::with_capacity(per_signal.len());
    let (mut slices_time, mut refine_time) = (Duration::ZERO, Duration::ZERO);
    for (entry, gate) in per_signal.into_iter().zip(minimized) {
        slices_time += entry.slices;
        refine_time += entry.refine;
        gates.push(SignalGate {
            signal: entry.signal,
            on_cover: entry.on_cover,
            off_cover: entry.off_cover,
            gate: gate?,
            refinement: entry.refinement,
        });
    }
    let minimize_time = min_start.elapsed();

    Ok(UnfoldingSynthesis {
        gates,
        timing: TimingBreakdown {
            unfold,
            derive,
            slices: slices_time,
            refine: refine_time,
            minimize: minimize_time,
        },
        events: unf.event_count(),
        conditions: unf.condition_count(),
    })
}

fn inconsistent(stg: &Stg, entry: &DerivedCovers) -> SynthesisError {
    let witness = entry
        .on_cover
        .intersect(&entry.off_cover)
        .cubes()
        .first()
        .map(ToString::to_string)
        .unwrap_or_default();
    SynthesisError::InconsistentCovers {
        signal: stg.signal_name(entry.signal).to_owned(),
        witness,
    }
}

/// How the minimisation stage consumes one signal's derived covers. The
/// implicit variants carry the signal's pool and on/off sets behind a
/// [`Mutex`] because the minimisation stage runs on shared-reference worker
/// tasks (each signal's pool is only ever locked by its own task).
enum MinimisePlan {
    /// Pairwise cube guard, cube-level minimiser (`implicit_covers: false`).
    Explicit,
    /// Pooled guard and implicit minimisation — exact mode, where the sets
    /// are minterm point sets and the implicit minimiser's byte-identity
    /// guarantee applies.
    ImplicitExact(Mutex<(ImplicitPool, ImplicitCover, ImplicitCover)>),
    /// Pooled guard only; the cube-level minimiser still consumes the
    /// explicit covers — approximate mode, whose covers are structural cube
    /// approximations rather than minterm sets.
    ImplicitGuard(Mutex<(ImplicitPool, ImplicitCover, ImplicitCover)>),
}

/// The per-signal output of the derivation stage, with the CPU time spent
/// in its slice-building and refinement portions.
struct DerivedCovers {
    signal: SignalId,
    on_cover: Cover,
    off_cover: Cover,
    refinement: Option<RefinementReport>,
    plan: MinimisePlan,
    slices: Duration,
    refine: Duration,
}

/// Derives the final, checked on-/off-set covers for one signal.
fn derive_covers(
    stg: &Stg,
    unf: &StgUnfolding,
    signal: SignalId,
    options: &SynthesisOptions,
) -> Result<DerivedCovers, SynthesisError> {
    let slices_start = Instant::now();
    let on_slices = side_slices(unf, signal, true);
    let off_slices = side_slices(unf, signal, false);
    match options.mode {
        CoverMode::Exact if options.implicit_covers => {
            let mut pool = ImplicitPool::new(unf.signal_count());
            let on = exact_side_set(stg, unf, &on_slices, options.slice_budget, &mut pool)?;
            let off = exact_side_set(stg, unf, &off_slices, options.slice_budget, &mut pool)?;
            let slices = slices_start.elapsed();
            let shared = pool.intersect(on, off);
            if let Some(bits) = pool.first_minterm(shared) {
                return Err(SynthesisError::CscViolation {
                    signal: stg.signal_name(signal).to_owned(),
                    witness: Cube::minterm(bits).to_string(),
                });
            }
            // The public covers materialise as the diagram's canonical
            // disjoint-cube form — same point sets as the explicit path's
            // minterm lists, but sized by the implicit representation
            // rather than the state count.
            let on_cover = pool.to_cover(on);
            let off_cover = pool.to_cover(off);
            Ok(DerivedCovers {
                signal,
                on_cover,
                off_cover,
                refinement: None,
                plan: MinimisePlan::ImplicitExact(Mutex::new((pool, on, off))),
                slices,
                refine: Duration::ZERO,
            })
        }
        CoverMode::Exact => {
            // Explicit representation end to end: one canonical minterm
            // cube per slice state, the paper's original exact derivation.
            let on_cover = exact_side_cover(stg, unf, &on_slices, options.slice_budget)?;
            let off_cover = exact_side_cover(stg, unf, &off_slices, options.slice_budget)?;
            let slices = slices_start.elapsed();
            if on_cover.intersects(&off_cover) {
                return Err(csc_error(stg, signal, &on_cover, &off_cover));
            }
            Ok(DerivedCovers {
                signal,
                on_cover,
                off_cover,
                refinement: None,
                plan: MinimisePlan::Explicit,
                slices,
                refine: Duration::ZERO,
            })
        }
        CoverMode::Approximate => {
            let mut on_atoms = approximate_side(stg, unf, &on_slices);
            let mut off_atoms = approximate_side(stg, unf, &off_slices);
            let slices = slices_start.elapsed();
            let refine_start = Instant::now();
            let mut pool = options
                .implicit_covers
                .then(|| ImplicitPool::new(unf.signal_count()));
            // §6 weak condition, first chance: if the raw approximations
            // intersect only inside the DC-set, skip refinement entirely
            // and keep the DC freedom for the minimiser.
            if options.correctness == CorrectnessCondition::Weak {
                let on = side_cover(&on_atoms, unf.signal_count());
                let off = side_cover(&off_atoms, unf.signal_count());
                if let Some(covers) = accept_weak(
                    stg,
                    unf,
                    signal,
                    &on_slices,
                    &off_slices,
                    on,
                    off,
                    options,
                    pool,
                )? {
                    return Ok(DerivedCovers {
                        slices,
                        refine: refine_start.elapsed(),
                        ..covers
                    });
                }
                pool = options
                    .implicit_covers
                    .then(|| ImplicitPool::new(unf.signal_count()));
            }
            let report = refine_until_disjoint(
                stg,
                unf,
                &on_slices,
                &off_slices,
                &mut on_atoms,
                &mut off_atoms,
                options.max_refinement_steps,
                options.slice_budget,
                pool.as_mut(),
            )?;
            let on = side_cover(&on_atoms, unf.signal_count());
            let off = side_cover(&off_atoms, unf.signal_count());
            if !report.disjoint {
                return Err(csc_error(stg, signal, &on, &off));
            }
            let plan = approx_plan(pool, &on, &off);
            Ok(DerivedCovers {
                signal,
                on_cover: on,
                off_cover: off,
                refinement: Some(report),
                plan,
                slices,
                refine: refine_start.elapsed(),
            })
        }
    }
}

/// Builds the minimisation plan for a pair of approximate-mode covers:
/// pools their point sets for the final guard when a pool is in play.
fn approx_plan(pool: Option<ImplicitPool>, on: &Cover, off: &Cover) -> MinimisePlan {
    match pool {
        Some(mut pool) => {
            let on_set = pool.cover_set(on);
            let off_set = pool.cover_set(off);
            MinimisePlan::ImplicitGuard(Mutex::new((pool, on_set, off_set)))
        }
        None => MinimisePlan::Explicit,
    }
}

/// Tries to accept intersecting covers under the weak correctness
/// condition: succeeds when the intersection is provably unreachable in
/// both sides' slices (so it lies in the DC-set); the intersection is then
/// carved out of the on-side so the minimiser sees a consistent partition.
/// The returned entry's timing fields are zero — the caller stamps them.
#[allow(clippy::too_many_arguments)]
fn accept_weak(
    stg: &Stg,
    unf: &StgUnfolding,
    signal: SignalId,
    on_slices: &[crate::slice::Slice],
    off_slices: &[crate::slice::Slice],
    on: Cover,
    off: Cover,
    options: &SynthesisOptions,
    pool: Option<ImplicitPool>,
) -> Result<Option<DerivedCovers>, SynthesisError> {
    let x = on.intersect(&off);
    if x.is_empty() {
        let plan = approx_plan(pool, &on, &off);
        return Ok(Some(DerivedCovers {
            signal,
            on_cover: on,
            off_cover: off,
            refinement: None,
            plan,
            slices: Duration::ZERO,
            refine: Duration::ZERO,
        }));
    }
    let within_off = cover_true_within_slices(stg, unf, off_slices, &on, options.slice_budget);
    let within_on = cover_true_within_slices(stg, unf, on_slices, &off, options.slice_budget);
    match (within_off, within_on) {
        (Ok(false), Ok(false)) => {
            // Intersection ⊆ DC-set: Definition 2.1 holds after carving it
            // out of one side.
            let on = on.subtract(&x);
            let plan = approx_plan(pool, &on, &off);
            Ok(Some(DerivedCovers {
                signal,
                on_cover: on,
                off_cover: off,
                refinement: None,
                plan,
                slices: Duration::ZERO,
                refine: Duration::ZERO,
            }))
        }
        // Reachable conflict or budget exhaustion: fall back to the strong
        // path (refinement).
        _ => Ok(None),
    }
}

fn csc_error(stg: &Stg, signal: SignalId, on: &Cover, off: &Cover) -> SynthesisError {
    let witness = on
        .intersect(off)
        .cubes()
        .first()
        .map(ToString::to_string)
        .unwrap_or_default();
    SynthesisError::CscViolation {
        signal: stg.signal_name(signal).to_owned(),
        witness,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_stg::generators::{muller_pipeline, sequencer};
    use si_stg::suite::{
        concurrent_fork_join, paper_fig1, paper_fig4ab, request_mux, toggle, vme_read_csc,
        vme_read_no_csc,
    };

    fn exact_options() -> SynthesisOptions {
        SynthesisOptions {
            mode: CoverMode::Exact,
            ..SynthesisOptions::default()
        }
    }

    #[test]
    fn fig1_exact_matches_paper() {
        let stg = paper_fig1();
        let result = synthesize_from_unfolding(&stg, &exact_options()).expect("ok");
        assert_eq!(result.gates.len(), 1);
        assert_eq!(result.gates[0].equation(&stg), "b = a + c");
        assert_eq!(result.literal_count(), 2);
    }

    #[test]
    fn fig1_approximate_matches_exact() {
        let stg = paper_fig1();
        let exact = synthesize_from_unfolding(&stg, &exact_options()).expect("ok");
        let approx = synthesize_from_unfolding(&stg, &SynthesisOptions::default()).expect("ok");
        assert_eq!(
            approx.gates[0].equation(&stg),
            exact.gates[0].equation(&stg)
        );
    }

    #[test]
    fn vme_csc_violation_detected_in_both_modes() {
        let stg = vme_read_no_csc();
        for options in [exact_options(), SynthesisOptions::default()] {
            let err = synthesize_from_unfolding(&stg, &options).unwrap_err();
            assert!(
                matches!(err, SynthesisError::CscViolation { .. }),
                "got {err}"
            );
        }
    }

    #[test]
    fn suite_entries_synthesise_in_both_modes() {
        for stg in [
            paper_fig1(),
            paper_fig4ab(),
            vme_read_csc(),
            request_mux(),
            concurrent_fork_join(),
            toggle(),
            muller_pipeline(3),
            sequencer(6),
        ] {
            for options in [exact_options(), SynthesisOptions::default()] {
                let result = synthesize_from_unfolding(&stg, &options)
                    .unwrap_or_else(|e| panic!("{} failed: {e}", stg.name()));
                assert!(!result.gates.is_empty(), "{}", stg.name());
                for gate in &result.gates {
                    // The defining correctness property of Definition 2.1.
                    assert!(
                        gate.gate.covers_cover(&gate.on_cover),
                        "{}: gate does not cover the on-set",
                        stg.name()
                    );
                    assert!(
                        !gate.gate.intersects(&gate.off_cover),
                        "{}: gate intersects the off-set",
                        stg.name()
                    );
                }
            }
        }
    }

    #[test]
    fn approximate_never_beats_exact_on_coverage_but_matches_function() {
        // On a CSC-clean STG both modes must implement the same function on
        // reachable codes (checked indirectly: both covers contain the exact
        // on-set and avoid the exact off-set).
        let stg = muller_pipeline(2);
        let exact = synthesize_from_unfolding(&stg, &exact_options()).expect("ok");
        let approx = synthesize_from_unfolding(&stg, &SynthesisOptions::default()).expect("ok");
        for (e, a) in exact.gates.iter().zip(&approx.gates) {
            assert_eq!(e.signal, a.signal);
            assert!(a.gate.covers_cover(&e.on_cover));
            assert!(!a.gate.intersects(&e.off_cover));
        }
    }

    #[test]
    fn timing_breakdown_is_populated() {
        let stg = muller_pipeline(3);
        let result = synthesize_from_unfolding(&stg, &SynthesisOptions::default()).expect("ok");
        assert!(result.timing.total() >= result.timing.unfold);
        // slices/refine are parts of derive, not extra phases.
        assert_eq!(
            result.timing.total(),
            result.timing.unfold + result.timing.derive + result.timing.minimize
        );
        assert!(result.events > 0);
        assert!(result.conditions > 0);
    }

    #[test]
    fn implicit_and_explicit_representations_agree_on_suite() {
        // The defining guarantee of `implicit_covers`: flipping the
        // representation never changes a single byte of any gate equation,
        // in either cover mode, on every synthesisable suite entry. In
        // approximate mode even the pre-minimisation covers must match
        // (identical refinement trajectory); in exact mode the covers are
        // the same point sets in different clothes (disjoint-cube diagram
        // paths vs minterm lists).
        use si_stg::suite::synthesisable;
        for stg in synthesisable() {
            for mode in [CoverMode::Exact, CoverMode::Approximate] {
                let implicit = synthesize_from_unfolding(
                    &stg,
                    &SynthesisOptions {
                        mode,
                        ..SynthesisOptions::default()
                    },
                );
                let explicit = synthesize_from_unfolding(
                    &stg,
                    &SynthesisOptions {
                        mode,
                        implicit_covers: false,
                        ..SynthesisOptions::default()
                    },
                );
                match (implicit, explicit) {
                    (Ok(i), Ok(e)) => {
                        assert_eq!(i.gates.len(), e.gates.len(), "{}", stg.name());
                        for (gi, ge) in i.gates.iter().zip(&e.gates) {
                            assert_eq!(
                                gi.equation(&stg),
                                ge.equation(&stg),
                                "{} ({mode:?}): representations disagree",
                                stg.name()
                            );
                            match mode {
                                CoverMode::Approximate => {
                                    assert_eq!(
                                        gi.on_cover.cubes(),
                                        ge.on_cover.cubes(),
                                        "{}: approx trajectory diverged",
                                        stg.name()
                                    );
                                    assert_eq!(gi.off_cover.cubes(), ge.off_cover.cubes());
                                }
                                CoverMode::Exact => {
                                    assert!(gi.on_cover.covers_cover(&ge.on_cover));
                                    assert!(ge.on_cover.covers_cover(&gi.on_cover));
                                    assert!(gi.off_cover.covers_cover(&ge.off_cover));
                                    assert!(ge.off_cover.covers_cover(&gi.off_cover));
                                }
                            }
                        }
                    }
                    (Err(ei), Err(ee)) => {
                        assert_eq!(
                            std::mem::discriminant(&ei),
                            std::mem::discriminant(&ee),
                            "{}: {ei} vs {ee}",
                            stg.name()
                        );
                    }
                    (i, e) => panic!(
                        "{} ({mode:?}): one representation failed: {:?} vs {:?}",
                        stg.name(),
                        i.err().map(|e| e.to_string()),
                        e.err().map(|e| e.to_string())
                    ),
                }
            }
        }
    }

    #[test]
    fn weak_correctness_condition_is_sound_and_never_worse() {
        use si_stg::suite::synthesisable;
        for stg in synthesisable() {
            let strong =
                synthesize_from_unfolding(&stg, &SynthesisOptions::default()).expect("strong ok");
            let weak = synthesize_from_unfolding(
                &stg,
                &SynthesisOptions {
                    correctness: CorrectnessCondition::Weak,
                    ..SynthesisOptions::default()
                },
            )
            .unwrap_or_else(|e| panic!("{}: weak failed: {e}", stg.name()));
            assert!(
                weak.literal_count() <= strong.literal_count(),
                "{}: weak condition made things worse ({} vs {})",
                stg.name(),
                weak.literal_count(),
                strong.literal_count()
            );
            crate::verify::verify_against_sg(&stg, &weak, 5_000_000)
                .unwrap_or_else(|e| panic!("{}: weak-mode netlist wrong: {e}", stg.name()));
        }
    }

    #[test]
    fn weak_condition_still_detects_genuine_csc_conflicts() {
        let stg = vme_read_no_csc();
        let err = synthesize_from_unfolding(
            &stg,
            &SynthesisOptions {
                correctness: CorrectnessCondition::Weak,
                ..SynthesisOptions::default()
            },
        )
        .unwrap_err();
        assert!(matches!(err, SynthesisError::CscViolation { .. }));
    }

    #[test]
    fn persistency_violation_reported() {
        use si_stg::{SignalKind, StgBuilder};
        let mut b = StgBuilder::new();
        let x = b.signal("x", SignalKind::Output);
        let y = b.signal("y", SignalKind::Output);
        let px = b.place("choice");
        let x_p = b.rise(x);
        let y_p = b.rise(y);
        let x_m = b.fall(x);
        let y_m = b.fall(y);
        b.arc_pt(px, x_p);
        b.arc_pt(px, y_p);
        b.arc_tt(x_p, x_m);
        b.arc_tt(y_p, y_m);
        b.arc_tp(x_m, px);
        b.arc_tp(y_m, px);
        b.mark(px);
        b.initial_all_zero();
        let stg = b.build().expect("builds");
        let err = synthesize_from_unfolding(&stg, &SynthesisOptions::default()).unwrap_err();
        assert!(matches!(err, SynthesisError::NotPersistent { .. }));
    }
}
