//! Independent verification of a synthesised implementation against the
//! explicit state graph: the gate function of every signal must equal the
//! signal's implied (next-state) value in every reachable state.
//!
//! This is the oracle the integration tests and the benchmark harness use
//! to confirm that the unfolding-based flow produces the same Boolean
//! behaviour as SG-based synthesis without ever building the SG itself.

use std::error::Error;
use std::fmt;

use si_stategraph::{SgError, StateGraph};
use si_stg::Stg;

use crate::synth::UnfoldingSynthesis;

/// A verification failure: a reachable state where a gate's output differs
/// from the specified implied value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The state graph could not be built (unsafe, inconsistent, budget).
    StateGraph(SgError),
    /// A gate disagrees with the specification.
    Mismatch {
        /// The signal whose gate misbehaves.
        signal: String,
        /// The binary code of the offending state.
        code: String,
        /// The specified implied value.
        expected: bool,
        /// The gate's output.
        got: bool,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::StateGraph(e) => write!(f, "verification oracle failed: {e}"),
            VerifyError::Mismatch {
                signal,
                code,
                expected,
                got,
            } => write!(
                f,
                "gate for `{signal}` outputs {} at reachable code {code}, specification \
                 implies {}",
                u8::from(*got),
                u8::from(*expected)
            ),
        }
    }
}

impl Error for VerifyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VerifyError::StateGraph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SgError> for VerifyError {
    fn from(e: SgError) -> Self {
        VerifyError::StateGraph(e)
    }
}

/// Verifies `synthesis` against the explicit state graph of `stg` (built
/// with at most `state_budget` states).
///
/// # Errors
///
/// Returns the first [`VerifyError::Mismatch`] found, or
/// [`VerifyError::StateGraph`] if the oracle cannot be built.
///
/// # Examples
///
/// ```
/// use si_stg::suite::paper_fig1;
/// use si_synthesis::{synthesize_from_unfolding, verify_against_sg, SynthesisOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let stg = paper_fig1();
/// let result = synthesize_from_unfolding(&stg, &SynthesisOptions::default())?;
/// verify_against_sg(&stg, &result, 10_000)?;
/// # Ok(())
/// # }
/// ```
pub fn verify_against_sg(
    stg: &Stg,
    synthesis: &UnfoldingSynthesis,
    state_budget: usize,
) -> Result<(), VerifyError> {
    let sg = StateGraph::build(stg, state_budget)?;
    // The oracle compares point sets, not states: the gate cover must
    // contain the signal's implicit on-set and miss its implicit off-set.
    // Checking through the implicit representation makes the oracle's cost
    // track the diagram size instead of states × gates × cubes; a reported
    // mismatch is the canonically smallest offending code (the explicit
    // sweep reported the first in BFS order instead). The per-state
    // classification sweep is shared across all gates.
    let class = si_stategraph::SgClassification::new(stg, &sg);
    for gate in &synthesis.gates {
        let mut sets = class.on_off_sets(gate.signal);
        let (on, off) = (sets.on(), sets.off());
        let pool = sets.pool_mut();
        let gate_set = pool.cover_set(&gate.gate);
        let missed = pool.diff(on, gate_set);
        if let Some(bits) = pool.first_minterm(missed) {
            return Err(VerifyError::Mismatch {
                signal: stg.signal_name(gate.signal).to_owned(),
                code: bits_to_code_string(&bits),
                expected: true,
                got: false,
            });
        }
        let wrong = pool.intersect(gate_set, off);
        if let Some(bits) = pool.first_minterm(wrong) {
            return Err(VerifyError::Mismatch {
                signal: stg.signal_name(gate.signal).to_owned(),
                code: bits_to_code_string(&bits),
                expected: false,
                got: true,
            });
        }
    }
    Ok(())
}

/// Renders a code the way [`si_stg::BinaryCode`] does (`101…`).
fn bits_to_code_string(bits: &[bool]) -> String {
    bits.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{synthesize_from_unfolding, CoverMode, SynthesisOptions};
    use si_stg::generators::{counterflow_pipeline, muller_pipeline, sequencer};
    use si_stg::suite::synthesisable;

    #[test]
    fn whole_suite_verifies_in_approximate_mode() {
        for stg in synthesisable() {
            let result = synthesize_from_unfolding(&stg, &SynthesisOptions::default())
                .unwrap_or_else(|e| panic!("{} failed to synthesise: {e}", stg.name()));
            verify_against_sg(&stg, &result, 5_000_000)
                .unwrap_or_else(|e| panic!("{} failed verification: {e}", stg.name()));
        }
    }

    #[test]
    fn whole_suite_verifies_in_exact_mode() {
        let options = SynthesisOptions {
            mode: CoverMode::Exact,
            ..SynthesisOptions::default()
        };
        for stg in synthesisable() {
            let result = synthesize_from_unfolding(&stg, &options)
                .unwrap_or_else(|e| panic!("{} failed to synthesise: {e}", stg.name()));
            verify_against_sg(&stg, &result, 5_000_000)
                .unwrap_or_else(|e| panic!("{} failed verification: {e}", stg.name()));
        }
    }

    #[test]
    fn pipelines_verify() {
        for stg in [muller_pipeline(4), counterflow_pipeline(3), sequencer(8)] {
            let result = synthesize_from_unfolding(&stg, &SynthesisOptions::default())
                .unwrap_or_else(|e| panic!("{} failed: {e}", stg.name()));
            verify_against_sg(&stg, &result, 5_000_000)
                .unwrap_or_else(|e| panic!("{} failed verification: {e}", stg.name()));
        }
    }

    #[test]
    fn tampered_gate_is_caught() {
        use si_cubes::{Cover, Cube};
        let stg = si_stg::suite::paper_fig1();
        let mut result = synthesize_from_unfolding(&stg, &SynthesisOptions::default()).expect("ok");
        // Replace the gate for b with constant 1.
        result.gates[0].gate = [Cube::full(3)].into_iter().collect::<Cover>();
        let err = verify_against_sg(&stg, &result, 10_000).unwrap_err();
        assert!(matches!(err, VerifyError::Mismatch { .. }));
    }
}
