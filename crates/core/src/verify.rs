//! Independent verification of a synthesised implementation against the
//! explicit state graph: the gate function of every signal must equal the
//! signal's implied (next-state) value in every reachable state.
//!
//! This is the oracle the integration tests and the benchmark harness use
//! to confirm that the unfolding-based flow produces the same Boolean
//! behaviour as SG-based synthesis without ever building the SG itself.

use std::error::Error;
use std::fmt;

use si_stategraph::{SgEngine, SgError, StateGraph};
use si_stg::Stg;

use crate::synth::UnfoldingSynthesis;

/// A verification failure: a reachable state where a gate's output differs
/// from the specified implied value.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VerifyError {
    /// The state graph could not be built (unsafe, inconsistent, budget).
    StateGraph(SgError),
    /// A gate disagrees with the specification.
    Mismatch {
        /// The signal whose gate misbehaves.
        signal: String,
        /// The binary code of the offending state.
        code: String,
        /// The specified implied value.
        expected: bool,
        /// The gate's output.
        got: bool,
    },
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VerifyError::StateGraph(e) => write!(f, "verification oracle failed: {e}"),
            VerifyError::Mismatch {
                signal,
                code,
                expected,
                got,
            } => write!(
                f,
                "gate for `{signal}` outputs {} at reachable code {code}, specification \
                 implies {}",
                u8::from(*got),
                u8::from(*expected)
            ),
        }
    }
}

impl Error for VerifyError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            VerifyError::StateGraph(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SgError> for VerifyError {
    fn from(e: SgError) -> Self {
        VerifyError::StateGraph(e)
    }
}

/// Verifies `synthesis` against the explicit state graph of `stg` (built
/// with at most `state_budget` states).
///
/// # Errors
///
/// Returns the first [`VerifyError::Mismatch`] found, or
/// [`VerifyError::StateGraph`] if the oracle cannot be built.
///
/// # Examples
///
/// ```
/// use si_stg::suite::paper_fig1;
/// use si_synthesis::{synthesize_from_unfolding, verify_against_sg, SynthesisOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let stg = paper_fig1();
/// let result = synthesize_from_unfolding(&stg, &SynthesisOptions::default())?;
/// verify_against_sg(&stg, &result, 10_000)?;
/// # Ok(())
/// # }
/// ```
pub fn verify_against_sg(
    stg: &Stg,
    synthesis: &UnfoldingSynthesis,
    state_budget: usize,
) -> Result<(), VerifyError> {
    verify_against_sg_with(stg, synthesis, state_budget, SgEngine::Explicit)
}

/// Like [`verify_against_sg`], but with an explicit choice of
/// state-traversal engine for the oracle. `budget` is the engine's own
/// budget: a maximum state count for [`SgEngine::Explicit`], a maximum BDD
/// node count for [`SgEngine::Symbolic`] — the symbolic oracle verifies
/// specifications whose state count is far beyond anything enumerable.
///
/// # Errors
///
/// Returns the first [`VerifyError::Mismatch`] found, or
/// [`VerifyError::StateGraph`] if the oracle cannot be built.
///
/// # Examples
///
/// ```
/// use si_stategraph::SgEngine;
/// use si_stg::generators::muller_pipeline;
/// use si_synthesis::{synthesize_from_unfolding, verify_against_sg_with, SynthesisOptions};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let stg = muller_pipeline(4);
/// let result = synthesize_from_unfolding(&stg, &SynthesisOptions::default())?;
/// verify_against_sg_with(&stg, &result, 1_000_000, SgEngine::Symbolic)?;
/// # Ok(())
/// # }
/// ```
pub fn verify_against_sg_with(
    stg: &Stg,
    synthesis: &UnfoldingSynthesis,
    budget: usize,
    engine: SgEngine,
) -> Result<(), VerifyError> {
    let gates: Vec<GateFunction<'_>> = synthesis
        .gates
        .iter()
        .map(|g| GateFunction {
            signal: g.signal,
            cover: &g.gate,
            inverted: false,
        })
        .collect();
    verify_gate_functions(stg, &gates, budget, engine)
}

/// One gate function to check against the oracle: the implemented signal,
/// its SOP cover, and whether the cover implements the *complemented*
/// function (the SG flow's `--invert` gates).
pub(crate) struct GateFunction<'a> {
    pub signal: si_stg::SignalId,
    pub cover: &'a si_cubes::Cover,
    pub inverted: bool,
}

/// The shared oracle behind [`verify_against_sg_with`] and the unified
/// flow surface: every gate function must equal its signal's implied
/// (next-state) value in every reachable state.
///
/// The oracle compares point sets, not states: the gate cover must contain
/// the signal's implicit on-set and miss its implicit off-set (roles
/// swapped for inverted gates). Checking through the implicit
/// representation makes the oracle's cost track the diagram size instead
/// of states × gates × cubes; a reported mismatch is the canonically
/// smallest offending code (the explicit sweep reported the first in BFS
/// order instead). Both engines produce the same implicit point sets, so
/// the verdict — and the witness — is engine-independent.
pub(crate) fn verify_gate_functions(
    stg: &Stg,
    gates: &[GateFunction<'_>],
    budget: usize,
    engine: SgEngine,
) -> Result<(), VerifyError> {
    match engine {
        SgEngine::Explicit => {
            let sg = StateGraph::build(stg, budget)?;
            let class = si_stategraph::SgClassification::new(stg, &sg);
            for gate in gates {
                check_gate(stg, gate, class.on_off_sets(gate.signal))?;
            }
        }
        SgEngine::Symbolic => {
            // The oracle reorders automatically: sifting never changes the
            // verdict (the point sets are order-independent), and a
            // specification that only fits the budget under a good dynamic
            // order must still be verifiable under the same budget.
            let tuning = si_stategraph::SymbolicTuning {
                reorder: si_stategraph::ReorderPolicy::Auto,
                ..si_stategraph::SymbolicTuning::with_budget(budget)
            };
            let sym = si_stategraph::SymbolicSg::build(stg, &tuning)?;
            for gate in gates {
                check_gate(stg, gate, sym.on_off_sets(gate.signal))?;
            }
        }
    }
    Ok(())
}

/// Checks one gate function against its signal's implicit on/off sets. An
/// inverted gate's cover implements the complement, so it must cover the
/// off-set and miss the on-set; the reported expected/got values are the
/// gate *outputs*, inversion included.
fn check_gate(
    stg: &Stg,
    gate: &GateFunction<'_>,
    mut sets: si_stategraph::ImplicitOnOffSets,
) -> Result<(), VerifyError> {
    let (on, off) = (sets.on(), sets.off());
    let pool = sets.pool_mut();
    let gate_set = pool.cover_set(gate.cover);
    let (must_cover, must_miss) = if gate.inverted { (off, on) } else { (on, off) };
    let missed = pool.diff(must_cover, gate_set);
    if let Some(bits) = pool.first_minterm(missed) {
        return Err(VerifyError::Mismatch {
            signal: stg.signal_name(gate.signal).to_owned(),
            code: bits_to_code_string(&bits),
            expected: !gate.inverted,
            got: gate.inverted,
        });
    }
    let wrong = pool.intersect(gate_set, must_miss);
    if let Some(bits) = pool.first_minterm(wrong) {
        return Err(VerifyError::Mismatch {
            signal: stg.signal_name(gate.signal).to_owned(),
            code: bits_to_code_string(&bits),
            expected: gate.inverted,
            got: !gate.inverted,
        });
    }
    Ok(())
}

/// Renders a code the way [`si_stg::BinaryCode`] does (`101…`).
fn bits_to_code_string(bits: &[bool]) -> String {
    bits.iter().map(|&b| if b { '1' } else { '0' }).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::{synthesize_from_unfolding, CoverMode, SynthesisOptions};
    use si_stg::generators::{counterflow_pipeline, muller_pipeline, sequencer};
    use si_stg::suite::synthesisable;

    #[test]
    fn whole_suite_verifies_in_approximate_mode() {
        for stg in synthesisable() {
            let result = synthesize_from_unfolding(&stg, &SynthesisOptions::default())
                .unwrap_or_else(|e| panic!("{} failed to synthesise: {e}", stg.name()));
            verify_against_sg(&stg, &result, 5_000_000)
                .unwrap_or_else(|e| panic!("{} failed verification: {e}", stg.name()));
        }
    }

    #[test]
    fn whole_suite_verifies_in_exact_mode() {
        let options = SynthesisOptions {
            mode: CoverMode::Exact,
            ..SynthesisOptions::default()
        };
        for stg in synthesisable() {
            let result = synthesize_from_unfolding(&stg, &options)
                .unwrap_or_else(|e| panic!("{} failed to synthesise: {e}", stg.name()));
            verify_against_sg(&stg, &result, 5_000_000)
                .unwrap_or_else(|e| panic!("{} failed verification: {e}", stg.name()));
        }
    }

    #[test]
    fn pipelines_verify() {
        for stg in [muller_pipeline(4), counterflow_pipeline(3), sequencer(8)] {
            let result = synthesize_from_unfolding(&stg, &SynthesisOptions::default())
                .unwrap_or_else(|e| panic!("{} failed: {e}", stg.name()));
            verify_against_sg(&stg, &result, 5_000_000)
                .unwrap_or_else(|e| panic!("{} failed verification: {e}", stg.name()));
        }
    }

    #[test]
    fn tampered_gate_is_caught() {
        use si_cubes::{Cover, Cube};
        let stg = si_stg::suite::paper_fig1();
        let mut result = synthesize_from_unfolding(&stg, &SynthesisOptions::default()).expect("ok");
        // Replace the gate for b with constant 1.
        result.gates[0].gate = [Cube::full(3)].into_iter().collect::<Cover>();
        let err = verify_against_sg(&stg, &result, 10_000).unwrap_err();
        assert!(matches!(err, VerifyError::Mismatch { .. }));
    }

    #[test]
    fn symbolic_oracle_agrees_with_explicit() {
        for stg in synthesisable() {
            let result = synthesize_from_unfolding(&stg, &SynthesisOptions::default())
                .unwrap_or_else(|e| panic!("{} failed to synthesise: {e}", stg.name()));
            verify_against_sg_with(&stg, &result, 8_000_000, SgEngine::Symbolic)
                .unwrap_or_else(|e| panic!("{} failed symbolic verification: {e}", stg.name()));
        }
    }

    #[test]
    fn symbolic_oracle_catches_tampering_with_the_same_witness() {
        use si_cubes::{Cover, Cube};
        let stg = si_stg::suite::paper_fig1();
        let mut result = synthesize_from_unfolding(&stg, &SynthesisOptions::default()).expect("ok");
        result.gates[0].gate = [Cube::full(3)].into_iter().collect::<Cover>();
        let explicit = verify_against_sg(&stg, &result, 10_000).unwrap_err();
        let symbolic =
            verify_against_sg_with(&stg, &result, 1_000_000, SgEngine::Symbolic).unwrap_err();
        assert_eq!(symbolic, explicit, "witness differs between oracles");
    }
}
