//! Cube-building helpers shared by the approximate and refinement stages:
//! turning codes of local configurations into cubes with don't-cares for
//! concurrent instances (the paper, §4.2).

use si_cubes::{Cube, Literal};
use si_petri::BitSet;
use si_stg::{BinaryCode, Stg};
use si_unfolding::{ConditionId, EventId, StgUnfolding};

use crate::slice::Slice;

/// Converts a binary code into its minterm cube.
pub fn code_to_cube(code: &BinaryCode) -> Cube {
    Cube::minterm(code.iter().map(|(_, v)| v))
}

/// The binary code reached by firing exactly the events in `config`
/// (a conflict-free set of event indices) from the initial code.
pub fn config_code(unf: &StgUnfolding, config: &BitSet) -> BinaryCode {
    let mut code = unf.initial_code().clone();
    for e in config.iter() {
        if let Some(label) = unf.label(EventId(e as u32)) {
            code.toggle(label.signal);
        }
    }
    code
}

/// The excitation-region cover approximation `C*_e(entry)` (the paper,
/// §4.2): the code of the minimal excitation cut with don't-cares for every
/// signal that has a slice member concurrent to the entry.
///
/// Returns `None` for a `⊥` entry (the paper: "`C*_e` may be empty if the
/// entry transition of the slice is the initial transition").
pub fn er_cube(unf: &StgUnfolding, slice: &Slice) -> Option<Cube> {
    if slice.entry.is_root() {
        return None;
    }
    // Code at c_min_e(entry): the entry's code with its own signal put back
    // to the source value.
    let mut base = unf.code(slice.entry).clone();
    base.set(slice.signal, !slice.value);
    let mut cube = code_to_cube(&base);
    for f in slice.members.iter() {
        let f = EventId(f as u32);
        if unf.events_co(slice.entry, f) {
            if let Some(label) = unf.label(f) {
                cube.set(label.signal.index(), Literal::DontCare);
            }
        }
    }
    Some(cube)
}

/// The full marked-region cover approximation `C*_mr(p)`: the code of the
/// producer's local configuration with don't-cares for every slice member
/// that can fire while `p` is marked.
pub fn mr_cube(unf: &StgUnfolding, slice: &Slice, p: ConditionId) -> Cube {
    let producer = unf.producer(p);
    let base = unf.code(producer).clone();
    let mut cube = code_to_cube(&base);
    for f in slice.members.iter() {
        let f = EventId(f as u32);
        if unf.event_co_condition(f, p) {
            if let Some(label) = unf.label(f) {
                cube.set(label.signal.index(), Literal::DontCare);
            }
        }
    }
    cube
}

/// The restricted MR cover for a place `p` that is an input of an exit
/// instance (the paper's `C(p) = Σ C*_{t_k}(p)`): one cube per *other*
/// immediate predecessor `t_k` of the exit, keeping `t_k`'s signal at its
/// pre-firing value so that markings enabling the exit are not covered.
///
/// Returns `None` when the structural conditions for soundness do not hold
/// (the caller then falls back to the full MR cube and lets the
/// intersection check / refinement deal with the over-coverage):
///
/// * every other preset condition's producer must be a slice member
///   concurrent with `p`;
/// * `t_k` must be the only member instance of its signal concurrent with
///   `p` (otherwise the signal may change without `t_k` firing);
/// * the other preset conditions must not be consumable by side members.
pub fn restricted_exit_cubes(
    unf: &StgUnfolding,
    slice: &Slice,
    p: ConditionId,
    exit: EventId,
) -> Option<Vec<Cube>> {
    let others: Vec<ConditionId> = unf
        .preset(exit)
        .iter()
        .copied()
        .filter(|&b| b != p)
        .collect();
    if others.is_empty() {
        // The exit is enabled whenever `p` is marked: no quiescent states.
        return Some(Vec::new());
    }
    let mut cubes = Vec::new();
    for &b in &others {
        let t_k = unf.producer(b);
        if t_k.is_root() || !slice.is_member(t_k) {
            return None;
        }
        if !unf.event_co_condition(t_k, p) {
            return None;
        }
        let t_k_signal = match unf.label(t_k) {
            Some(label) => label.signal,
            // Dummies are rejected before unfolding begins, so every
            // non-root event of the prefix carries a label.
            None => unreachable!("unlabelled event in a dummy-free unfolding"),
        };
        // t_k must be the unique concurrent instance of its signal.
        let unique = slice.members.iter().all(|g| {
            let g = EventId(g as u32);
            g == t_k
                || unf.label(g).map(|l| l.signal) != Some(t_k_signal)
                || !unf.event_co_condition(g, p)
        });
        if !unique {
            return None;
        }
        // b must not be stolen by a side member (otherwise the exit can stay
        // disabled with all predecessors fired and the Σ would under-cover).
        let safe = unf
            .consumers(b)
            .iter()
            .all(|&c| c == exit || !slice.is_member(c));
        if !safe {
            return None;
        }
        let mut cube = mr_cube(unf, slice, p);
        // Pin t_k's signal back to its pre-firing value.
        let base = unf.code(unf.producer(p));
        cube.set(
            t_k_signal.index(),
            if base.get(t_k_signal) {
                Literal::One
            } else {
                Literal::Zero
            },
        );
        cubes.push(cube);
    }
    Some(cubes)
}

/// An *under-approximation* of the states where `exit` is enabled while `p`
/// is marked, as a single cube. Subtracting it from an MR/ER approximation
/// is always sound (only certainly-out-of-set states are removed) and
/// removes the bulk of the over-coverage that the intersection check would
/// otherwise push into the refinement loop.
///
/// The cube is built from the joint configuration
/// `J = ⌈prod(p)⌉ ∪ ⋃_{b ∈ •exit} ⌈prod(b)⌉`, with don't-cares only for
/// events outside `J` that can fire while `p` *and the whole exit preset*
/// stay marked (such firings preserve exit-enabledness, so every covered
/// state is genuinely excluded). Returns `None` when `p` cannot coexist
/// with the exit preset or the joint configuration would consume `p`.
pub fn exit_enabled_under_cube(unf: &StgUnfolding, p: ConditionId, exit: EventId) -> Option<Cube> {
    let preset = unf.preset(exit);
    // `p` must be able to coexist with every exit-preset condition.
    for &b in preset {
        if b != p && !unf.conditions_co(p, b) {
            return None;
        }
    }
    let mut joint = BitSet::new();
    let prod_p = unf.producer(p);
    if !prod_p.is_root() {
        joint.union_with(unf.causes(prod_p));
    }
    for &b in preset {
        let prod = unf.producer(b);
        if !prod.is_root() {
            joint.union_with(unf.causes(prod));
        }
    }
    // The joint configuration must not consume `p` or any preset condition.
    for f in joint.iter() {
        let f = EventId(f as u32);
        if unf.preset(f).contains(&p) || unf.preset(f).iter().any(|b| preset.contains(b)) {
            return None;
        }
    }
    let base = config_code(unf, &joint);
    let mut cube = code_to_cube(&base);
    for f in unf.events().skip(1) {
        if joint.contains(f.index()) {
            continue;
        }
        let preserves =
            unf.event_co_condition(f, p) && preset.iter().all(|&b| unf.event_co_condition(f, b));
        if preserves {
            if let Some(label) = unf.label(f) {
                cube.set(label.signal.index(), Literal::DontCare);
            }
        }
    }
    Some(cube)
}

/// Under-approximation cubes of the states where *any* opposite change of
/// the slice signal is enabled while `p` is marked — the STG-level
/// generalisation of [`exit_enabled_under_cube`] that also works for
/// slices truncated at cutoffs, where the opposite instance itself is not
/// represented in the segment but its preset places are.
///
/// For every opposite STG transition, every co-set of segment conditions
/// instantiating its preset places (each coexistent with `p`) yields one
/// cube. Subtracting these cubes from an MR approximation is sound under
/// CSC (they cover only states whose implied value belongs to the other
/// side).
pub fn opposite_enabled_under_cubes(
    stg: &Stg,
    unf: &StgUnfolding,
    slice: &Slice,
    p: ConditionId,
) -> Vec<Cube> {
    let mut cubes = Vec::new();
    for t in stg.transitions_of(slice.signal) {
        let Some(label) = stg.label(t) else { continue };
        if label.polarity.target_value() == slice.value {
            continue;
        }
        let places = stg.net().preset(t);
        // Candidate condition instances per preset place, each co-markable
        // with `p`.
        let candidates: Vec<Vec<ConditionId>> = places
            .iter()
            .map(|&q| {
                unf.conditions()
                    .filter(|&b| unf.place(b) == q && (b == p || unf.conditions_co(p, b)))
                    .collect::<Vec<_>>()
            })
            .collect();
        if candidates.iter().any(Vec::is_empty) {
            continue;
        }
        // Bounded search over pairwise-concurrent combinations.
        let mut combo: Vec<ConditionId> = Vec::with_capacity(places.len());
        let mut budget = 64usize;
        assemble_cosets(unf, &candidates, 0, &mut combo, &mut budget, &mut |coset| {
            if let Some(cube) = under_cube_for_coset(unf, p, coset) {
                cubes.push(cube);
            }
        });
    }
    cubes
}

/// Enumerates pairwise-concurrent selections (one condition per candidate
/// list), invoking `sink` on each, stopping after `budget` selections.
fn assemble_cosets(
    unf: &StgUnfolding,
    candidates: &[Vec<ConditionId>],
    idx: usize,
    combo: &mut Vec<ConditionId>,
    budget: &mut usize,
    sink: &mut impl FnMut(&[ConditionId]),
) {
    if *budget == 0 {
        return;
    }
    if idx == candidates.len() {
        *budget -= 1;
        sink(combo);
        return;
    }
    for &b in &candidates[idx] {
        let compatible = combo.iter().all(|&c| c == b || unf.conditions_co(c, b));
        if compatible {
            combo.push(b);
            assemble_cosets(unf, candidates, idx + 1, combo, budget, sink);
            combo.pop();
        }
    }
}

/// The under-cube for one co-set (see [`opposite_enabled_under_cubes`]).
fn under_cube_for_coset(unf: &StgUnfolding, p: ConditionId, coset: &[ConditionId]) -> Option<Cube> {
    let mut joint = BitSet::new();
    let prod_p = unf.producer(p);
    if !prod_p.is_root() {
        joint.union_with(unf.causes(prod_p));
    }
    for &b in coset {
        let prod = unf.producer(b);
        if !prod.is_root() {
            joint.union_with(unf.causes(prod));
        }
    }
    // Conflict-free by pairwise concurrency of producers' postsets; still
    // reject joints that consume `p` or a co-set member.
    for f in joint.iter() {
        let f = EventId(f as u32);
        if unf.preset(f).contains(&p) || unf.preset(f).iter().any(|b| coset.contains(b)) {
            return None;
        }
    }
    let base = config_code(unf, &joint);
    let mut cube = code_to_cube(&base);
    for f in unf.events().skip(1) {
        if joint.contains(f.index()) {
            continue;
        }
        let preserves =
            unf.event_co_condition(f, p) && coset.iter().all(|&b| unf.event_co_condition(f, b));
        if preserves {
            if let Some(label) = unf.label(f) {
                cube.set(label.signal.index(), Literal::DontCare);
            }
        }
    }
    Some(cube)
}

/// The joint cube used by refinement: the code of
/// `⌈prod(p)⌉ ∪ ⌈prod(p_k)⌉` with don't-cares for every event outside the
/// joint configuration that can fire while *both* conditions are marked.
/// Covers every state where `p` and `p_k` are simultaneously marked.
///
/// Unlike the ER/MR approximation cubes, the dashes here must range over
/// *all* events of the segment — not just slice members — because the joint
/// base configuration may predate the slice's min-cut, in which case events
/// of the entry's own history region are still pending and can fire while
/// both conditions stay marked.
pub fn joint_cube(unf: &StgUnfolding, p: ConditionId, p_k: ConditionId) -> Cube {
    let mut joint = BitSet::new();
    let prod_p = unf.producer(p);
    let prod_k = unf.producer(p_k);
    if !prod_p.is_root() {
        joint.union_with(unf.causes(prod_p));
    }
    if !prod_k.is_root() {
        joint.union_with(unf.causes(prod_k));
    }
    let base = config_code(unf, &joint);
    let mut cube = code_to_cube(&base);
    for f in unf.events().skip(1) {
        if joint.contains(f.index()) {
            continue;
        }
        if unf.event_co_condition(f, p) && unf.event_co_condition(f, p_k) {
            if let Some(label) = unf.label(f) {
                cube.set(label.signal.index(), Literal::DontCare);
            }
        }
    }
    cube
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::side_slices;
    use si_stg::suite::{paper_fig1, paper_fig4ab, paper_fig4c};
    use si_stg::Stg;
    use si_unfolding::UnfoldingOptions;

    fn build(stg: &Stg) -> StgUnfolding {
        StgUnfolding::build(stg, &UnfoldingOptions::default()).expect("builds")
    }

    fn names(stg: &Stg) -> Vec<String> {
        stg.signals()
            .map(|s| stg.signal_name(s).to_owned())
            .collect()
    }

    #[test]
    fn fig4_er_cube_of_d_matches_paper() {
        // The paper: C*(+d') = a d̄ ḡ (1--0--0 over abcdefg).
        let stg = paper_fig4ab();
        let unf = build(&stg);
        let sd = stg.signal_by_name("d").expect("d");
        let slices = side_slices(&unf, sd, true);
        assert_eq!(slices.len(), 1);
        let cube = er_cube(&unf, &slices[0]).expect("real entry");
        assert_eq!(cube.to_string(), "1--0--0");
        assert_eq!(cube.to_product_string(&names(&stg)), "a d' g'");
    }

    #[test]
    fn fig4_mr_cubes_match_paper() {
        // The paper: C*_mr(p4) = a d̄ ḡ; C*_mr(p7) = a d ḡ.
        let stg = paper_fig4ab();
        let unf = build(&stg);
        let sa = stg.signal_by_name("a").expect("a");
        let slices = side_slices(&unf, sa, true);
        let slice = &slices[0];
        let by_place = |name: &str| {
            unf.conditions()
                .find(|&b| stg.net().place_name(unf.place(b)) == name)
                .expect("place instance")
        };
        assert_eq!(mr_cube(&unf, slice, by_place("p4")).to_string(), "1--0--0");
        assert_eq!(mr_cube(&unf, slice, by_place("p7")).to_string(), "1--1--0");
    }

    #[test]
    fn fig4_restricted_cubes_for_p10_match_paper() {
        // The paper: C(p10) = a d f̄ g + a d ē g.
        let stg = paper_fig4ab();
        let unf = build(&stg);
        let sa = stg.signal_by_name("a").expect("a");
        let slices = side_slices(&unf, sa, true);
        let slice = &slices[0];
        let p10 = unf
            .conditions()
            .find(|&b| stg.net().place_name(unf.place(b)) == "p10")
            .expect("p10");
        let exit = slice.exits[0];
        let cubes = restricted_exit_cubes(&unf, slice, p10, exit).expect("valid restriction");
        let mut strs: Vec<String> = cubes.iter().map(ToString::to_string).collect();
        strs.sort();
        // Over abcdefg: a d ē g = 1--10-1; a d f̄ g = 1--1-01.
        assert_eq!(strs, vec!["1--1-01", "1--10-1"]);
    }

    #[test]
    fn fig1_er_cube_of_first_b_instance() {
        let stg = paper_fig1();
        let unf = build(&stg);
        let sb = stg.signal_by_name("b").expect("b");
        let slices = side_slices(&unf, sb, true);
        // The +b' instance entered at {p4}: nothing concurrent → exact
        // minterm 001. The +b'' instance at {p2,p3}: +c'' concurrent → 10-.
        let mut cubes: Vec<String> = slices
            .iter()
            .map(|s| er_cube(&unf, s).expect("real entries").to_string())
            .collect();
        cubes.sort();
        assert_eq!(cubes, vec!["001", "10-"]);
    }

    #[test]
    fn exit_under_cube_for_muller_stage() {
        // For muller_pipeline(2), the on-slice of c1 entered at the first
        // c1+ has exit c1-; the MR cube of ⟨c2+,a+⟩ over-covers the states
        // where c1- is already enabled (0110/0111 over r,c1,c2,a); the
        // under-cube must carve exactly those out.
        use si_stg::generators::muller_pipeline;
        let stg = muller_pipeline(2);
        let unf = build(&stg);
        let c1 = stg.signal_by_name("c1").expect("c1");
        let slices = side_slices(&unf, c1, true);
        let slice = slices
            .iter()
            .find(|s| !s.entry.is_root() && !unf.is_cutoff(s.entry))
            .expect("first c1+ slice");
        let exit = slice.exits[0];
        // p = the condition ⟨c2+,a+⟩ (place of pair (c2,a), produced by c2+).
        let p = unf
            .conditions()
            .find(|&b| {
                let prod = unf.producer(b);
                unf.label(prod)
                    .map(|l| stg.signal_name(l.signal).to_owned())
                    == Some("c2".to_owned())
                    && unf.consumers(b).iter().any(|&c| {
                        unf.label(c)
                            .map(|l| stg.signal_name(l.signal) == "a")
                            .unwrap_or(false)
                    })
            })
            .expect("condition ⟨c2+,a+⟩");
        let under = exit_enabled_under_cube(&unf, p, exit).expect("applicable");
        // Over (r, c1, c2, a): the exit-enabled region with p marked is
        // exactly 0110 (a+ would consume p, so a stays 0 while p is marked).
        assert_eq!(under.to_string(), "0110");
        let mr = mr_cube(&unf, slice, p);
        let cover: si_cubes::Cover = [mr].into_iter().collect();
        let carved = cover.subtract_cube(&under);
        assert!(!carved.covers_bits(&[false, true, true, false]));
        assert!(carved.covers_bits(&[true, true, true, false]));
    }

    #[test]
    fn exit_under_cube_none_when_not_coexistent() {
        // In fig1, p4 (input of +b') is in conflict with the +b''-branch:
        // the under-cube for the off-⊥ slice's exit +b' w.r.t. p3 must be
        // rejected (p3 and p4 cannot coexist).
        let stg = paper_fig1();
        let unf = build(&stg);
        let p3 = unf
            .conditions()
            .find(|&b| stg.net().place_name(unf.place(b)) == "p3")
            .expect("p3");
        let b_plus_via_p4 = unf
            .events()
            .find(|&e| {
                unf.preset(e)
                    .iter()
                    .any(|&b| stg.net().place_name(unf.place(b)) == "p4")
            })
            .expect("+b' consuming p4");
        assert!(exit_enabled_under_cube(&unf, p3, b_plus_via_p4).is_none());
    }

    #[test]
    fn exit_under_cube_empties_fig1_off_p3() {
        // The off-⊥-slice MR cube of p3 is {100}; the +b'' exit's
        // under-cube removes it entirely (every p3-marked state enables
        // +b'').
        let stg = paper_fig1();
        let unf = build(&stg);
        let p3 = unf
            .conditions()
            .find(|&b| stg.net().place_name(unf.place(b)) == "p3")
            .expect("p3");
        let b_plus2 = unf
            .events()
            .find(|&e| {
                unf.preset(e)
                    .iter()
                    .any(|&b| stg.net().place_name(unf.place(b)) == "p2")
            })
            .expect("+b'' consuming p2");
        let under = exit_enabled_under_cube(&unf, p3, b_plus2).expect("applicable");
        // +c'' consumes p3, so c stays 0 while p3 is marked: exactly {100}.
        assert_eq!(under.to_string(), "100");
    }

    #[test]
    fn fig4c_joint_cubes_reproduce_refinement_example() {
        // The paper refines MR(p5) = d ē with the restricted covers of the
        // chain p2, p4, p7, p9; our joint cubes reproduce them (with `e`
        // pinned to 0 rather than dashed — strictly finer, same result
        // after the intersection).
        let stg = paper_fig4c();
        let unf = build(&stg);
        let sa = stg.signal_by_name("a").expect("a");
        // The on-slice of `a` contains both branches.
        let slices = side_slices(&unf, sa, true);
        let _slice = &slices[0];
        let by_place = |name: &str| {
            unf.conditions()
                .find(|&b| stg.net().place_name(unf.place(b)) == name)
                .expect("place instance")
        };
        let p5 = by_place("p5");
        // Joint cubes over abcde.
        assert_eq!(joint_cube(&unf, p5, by_place("p2")).to_string(), "10010");
        assert_eq!(joint_cube(&unf, p5, by_place("p4")).to_string(), "11010");
        assert_eq!(joint_cube(&unf, p5, by_place("p7")).to_string(), "11110");
    }
}
