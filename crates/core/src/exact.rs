//! Exact cover derivation (the paper, §4.1): enumerate the cuts
//! encapsulated in a slice and recover their binary codes.
//!
//! This is the mode that "benefits from the unfolding methodology which
//! restricts the set of states needed to examine for each signal" but "may
//! suffer from exponential explosion of states" — which is why the
//! approximate mode (module [`crate::approx`]) exists. It is also the sound
//! fallback the refinement loop escalates to.

use std::collections::HashSet;
use std::ops::ControlFlow;

use si_cubes::implicit::{ImplicitCover, ImplicitPool, MintermList};
use si_cubes::{Cover, Cube};
use si_petri::{BitSet, Marking};
use si_stg::{BinaryCode, Stg};
use si_unfolding::{ConditionId, EventId, StgUnfolding};

use crate::covers::code_to_cube;
use crate::error::SynthesisError;
use crate::slice::Slice;

/// Enumerates the binary codes of every state represented by the slice —
/// the cuts reachable from the min-cut without firing an exit, excluding
/// cuts at which an opposite change of the slice signal is enabled (those
/// belong to the opposite set: the excited change flips the implied value).
///
/// The opposite-change check is done against the *original STG* rather than
/// the segment's exit events: a slice truncated at a cutoff reaches a
/// marking whose successor instances are not represented in the segment,
/// yet the opposite change may well be enabled there (e.g. the final cut of
/// a cutoff that closes the cycle re-enables the signal's first change).
///
/// `budget` bounds the number of cuts visited.
///
/// # Errors
///
/// Returns [`SynthesisError::SliceBudgetExceeded`] when the slice holds more
/// than `budget` cuts.
pub fn slice_codes(
    stg: &Stg,
    unf: &StgUnfolding,
    slice: &Slice,
    budget: usize,
) -> Result<Vec<BinaryCode>, SynthesisError> {
    let mut codes = Vec::new();
    for_each_slice_code(stg, unf, slice, budget, |code| {
        codes.push(code.clone());
        ControlFlow::Continue(())
    })?;
    Ok(codes)
}

/// Streaming form of [`slice_codes`]: invokes `sink` once per deduplicated
/// in-slice code, without materialising the code list. The sink can stop
/// the traversal early by returning [`ControlFlow::Break`] — the implicit
/// accumulation and the §6 membership probes are built on this, so the
/// explicit `Vec<BinaryCode>` intermediate only exists where a caller
/// genuinely needs the list.
///
/// # Errors
///
/// Returns [`SynthesisError::SliceBudgetExceeded`] when the slice holds
/// more than `budget` cuts.
pub fn for_each_slice_code(
    stg: &Stg,
    unf: &StgUnfolding,
    slice: &Slice,
    budget: usize,
    mut sink: impl FnMut(&BinaryCode) -> ControlFlow<()>,
) -> Result<(), SynthesisError> {
    // STG transitions whose firing would leave the slice's stable value:
    // the opposite changes of the slice signal.
    let opposite: Vec<si_petri::TransitionId> = stg
        .transitions_of(slice.signal)
        .into_iter()
        .filter(|&t| {
            stg.label(t)
                .map(|l| l.polarity.target_value() != slice.value)
                .unwrap_or(false)
        })
        .collect();
    // Starting state: min-cut with the slice signal still at its pre-entry
    // value (for a real entry) or the initial code (for ⊥).
    let start_cut: BitSet = slice.min_cut(unf).iter().map(|b| b.index()).collect();
    let start_code = if slice.entry.is_root() {
        unf.initial_code().clone()
    } else {
        let mut code = unf.code(slice.entry).clone();
        code.set(slice.signal, !slice.value);
        code
    };

    let entry_preset: Vec<ConditionId> = if slice.entry.is_root() {
        Vec::new()
    } else {
        unf.preset(slice.entry).to_vec()
    };

    // States are deduplicated by *marking*, not by condition set: a cut
    // containing frozen (post-cutoff) condition instances represents the
    // same STG state as the marking-equal cut built from the original
    // instances, and distinguishing them multiplies the search space.
    // Cut exploration defers cutoff firings until all cutoff-free cuts are
    // processed, so the richer (extendable) representative of each marking
    // is explored first.
    let start_marking: Marking = start_cut
        .iter()
        .map(|b| unf.place(ConditionId(b as u32)))
        .collect();
    let mut seen: HashSet<Marking> = HashSet::new();
    seen.insert(start_marking.clone());
    let mut queue: Vec<(BitSet, BinaryCode, Marking)> =
        vec![(start_cut, start_code, start_marking)];
    let mut deferred: Vec<(BitSet, BinaryCode, Marking)> = Vec::new();
    let mut code_set: HashSet<String> = HashSet::new();

    while let Some((cut, code, marking)) = queue.pop().or_else(|| deferred.pop()) {
        if seen.len() > budget {
            return Err(SynthesisError::SliceBudgetExceeded { budget });
        }
        // Events enabled at this cut: consumers of cut conditions whose full
        // preset is inside the cut.
        let mut enabled: Vec<EventId> = Vec::new();
        for b in cut.iter() {
            for &e in unf.consumers(ConditionId(b as u32)) {
                if !enabled.contains(&e) && unf.preset(e).iter().all(|c| cut.contains(c.index())) {
                    enabled.push(e);
                }
            }
        }
        // A state belongs to the slice's set only if no opposite change of
        // the signal is enabled in the original STG at this marking.
        let opposite_enabled = opposite.iter().any(|&t| stg.net().is_enabled(t, &marking));
        if !opposite_enabled && code_set.insert(code.to_string()) {
            if let ControlFlow::Break(()) = sink(&code) {
                return Ok(());
            }
        }
        // Whether the entry is still pending (its preset intact).
        let entry_pending =
            !slice.entry.is_root() && entry_preset.iter().all(|b| cut.contains(b.index()));
        for &f in &enabled {
            if slice.is_exit(f) {
                continue;
            }
            // While the entry is pending, refuse events that would disable
            // it (steal a preset condition) — those states leave the slice.
            if entry_pending && f != slice.entry {
                let conflicts = unf.preset(f).iter().any(|b| entry_preset.contains(b));
                if conflicts {
                    continue;
                }
            }
            // Only the entry itself or slice members advance the slice.
            if f != slice.entry && !slice.is_member(f) {
                continue;
            }
            let mut next_cut = cut.clone();
            for &b in unf.preset(f) {
                next_cut.remove(b.index());
            }
            for &b in unf.postset(f) {
                next_cut.insert(b.index());
            }
            let next_marking: Marking = next_cut
                .iter()
                .map(|b| unf.place(ConditionId(b as u32)))
                .collect();
            if seen.insert(next_marking.clone()) {
                let mut next_code = code.clone();
                if let Some(label) = unf.label(f) {
                    next_code.toggle(label.signal);
                }
                if unf.is_cutoff(f) {
                    deferred.push((next_cut, next_code, next_marking));
                } else {
                    queue.push((next_cut, next_code, next_marking));
                }
            }
        }
    }
    Ok(())
}

/// Enumerates only the excitation-region codes of a slice: the cuts at
/// which the entry is enabled but has not fired. Used by the memory-element
/// architectures (set/reset excitation functions).
///
/// Returns an empty list for a `⊥` entry (no excitation — the signal is
/// stable from the start).
///
/// # Errors
///
/// Returns [`SynthesisError::SliceBudgetExceeded`] when the region holds
/// more than `budget` cuts.
pub fn excitation_codes(
    unf: &StgUnfolding,
    slice: &Slice,
    budget: usize,
) -> Result<Vec<BinaryCode>, SynthesisError> {
    if slice.entry.is_root() {
        return Ok(Vec::new());
    }
    let start_cut: BitSet = slice.min_cut(unf).iter().map(|b| b.index()).collect();
    let mut start_code = unf.code(slice.entry).clone();
    start_code.set(slice.signal, !slice.value);
    let entry_preset: Vec<ConditionId> = unf.preset(slice.entry).to_vec();

    let start_marking: Marking = start_cut
        .iter()
        .map(|b| unf.place(ConditionId(b as u32)))
        .collect();
    let mut seen: HashSet<Marking> = HashSet::new();
    seen.insert(start_marking);
    let mut queue: Vec<(BitSet, BinaryCode)> = vec![(start_cut, start_code)];
    let mut codes = Vec::new();
    let mut code_set: HashSet<String> = HashSet::new();

    while let Some((cut, code)) = queue.pop() {
        if seen.len() > budget {
            return Err(SynthesisError::SliceBudgetExceeded { budget });
        }
        if code_set.insert(code.to_string()) {
            codes.push(code.clone());
        }
        // Fire only members concurrent to the entry (keeping it excited).
        for b in cut.iter() {
            for &f in unf.consumers(ConditionId(b as u32)) {
                if f == slice.entry || !slice.is_member(f) {
                    continue;
                }
                if !unf.events_co(slice.entry, f) {
                    continue;
                }
                if !unf.preset(f).iter().all(|c| cut.contains(c.index())) {
                    continue;
                }
                if unf.preset(f).iter().any(|c| entry_preset.contains(c)) {
                    continue;
                }
                let mut next_cut = cut.clone();
                for &c in unf.preset(f) {
                    next_cut.remove(c.index());
                }
                for &c in unf.postset(f) {
                    next_cut.insert(c.index());
                }
                let next_marking: Marking = next_cut
                    .iter()
                    .map(|b| unf.place(ConditionId(b as u32)))
                    .collect();
                if seen.insert(next_marking) {
                    let mut next_code = code.clone();
                    if let Some(label) = unf.label(f) {
                        next_code.toggle(label.signal);
                    }
                    queue.push((next_cut, next_code));
                }
            }
        }
    }
    Ok(codes)
}

/// Checks whether `cover` becomes TRUE anywhere inside the given slices —
/// the paper's §6 "weaker correctness condition": if an approximated on-set
/// cover never becomes TRUE within the slices of the off-set cover (and
/// vice versa), the covers' intersection lies in the DC-set and no further
/// refinement is needed.
///
/// Enumerates slice states (bounded by `budget` per slice) and stops at the
/// first covered state.
///
/// # Errors
///
/// Propagates [`SynthesisError::SliceBudgetExceeded`] — the caller should
/// treat that as "unknown" and fall back to the strong condition.
pub fn cover_true_within_slices(
    stg: &Stg,
    unf: &StgUnfolding,
    slices: &[Slice],
    cover: &Cover,
    budget: usize,
) -> Result<bool, SynthesisError> {
    let mut hit = false;
    for slice in slices {
        for_each_slice_code(stg, unf, slice, budget, |code| {
            let bits: Vec<bool> = code.iter().map(|(_, v)| v).collect();
            if cover.covers_bits(&bits) {
                hit = true;
                return ControlFlow::Break(());
            }
            ControlFlow::Continue(())
        })?;
        if hit {
            return Ok(true);
        }
    }
    Ok(false)
}

/// The exact cover of one side (on- or off-set) of a signal: the union of
/// the minterms of every slice's codes, in canonical cube order (so the
/// minimiser's input — and therefore its output — does not depend on slice
/// traversal order, and matches what materialising [`exact_side_set`]
/// yields).
///
/// # Errors
///
/// Propagates [`SynthesisError::SliceBudgetExceeded`].
pub fn exact_side_cover(
    stg: &Stg,
    unf: &StgUnfolding,
    slices: &[Slice],
    budget: usize,
) -> Result<Cover, SynthesisError> {
    let mut cubes: Vec<Cube> = Vec::new();
    let mut seen: HashSet<String> = HashSet::new();
    for slice in slices {
        for_each_slice_code(stg, unf, slice, budget, |code| {
            if seen.insert(code.to_string()) {
                cubes.push(code_to_cube(code));
            }
            ControlFlow::Continue(())
        })?;
    }
    cubes.sort_by(Cube::cmp_canonical);
    Ok(cubes.into_iter().collect())
}

/// The exact side cover as an *implicit* set in `pool`: every slice code is
/// accumulated into the canonical disjoint-cube diagram instead of one
/// materialised minterm per state, so downstream intersection checks and
/// minimisation track the implicit size rather than the state count.
///
/// The point set equals [`exact_side_cover`]'s (duplicates collapse in the
/// diagram).
///
/// # Errors
///
/// Propagates [`SynthesisError::SliceBudgetExceeded`].
pub fn exact_side_set(
    stg: &Stg,
    unf: &StgUnfolding,
    slices: &[Slice],
    budget: usize,
    pool: &mut ImplicitPool,
) -> Result<ImplicitCover, SynthesisError> {
    let mut list = MintermList::new(pool.width());
    for slice in slices {
        for_each_slice_code(stg, unf, slice, budget, |code| {
            list.push(code.iter().map(|(_, v)| v));
            ControlFlow::Continue(())
        })?;
    }
    Ok(pool.from_minterms(&mut list))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::side_slices;
    use si_stg::suite::paper_fig1;
    use si_stg::Stg;
    use si_unfolding::UnfoldingOptions;

    fn build(stg: &Stg) -> StgUnfolding {
        StgUnfolding::build(stg, &UnfoldingOptions::default()).expect("builds")
    }

    #[test]
    fn fig1_on_codes_match_paper() {
        // The paper: On₁(b) = {100,101,110,111}, On₂(b) = {001,011}.
        let stg = paper_fig1();
        let unf = build(&stg);
        let sb = stg.signal_by_name("b").expect("b");
        let slices = side_slices(&unf, sb, true);
        let mut all: Vec<String> = Vec::new();
        for s in &slices {
            all.extend(
                slice_codes(&stg, &unf, s, 10_000)
                    .expect("small slice")
                    .iter()
                    .map(ToString::to_string),
            );
        }
        all.sort();
        all.dedup();
        assert_eq!(all, vec!["001", "011", "100", "101", "110", "111"]);
    }

    #[test]
    fn fig1_off_codes_match_paper() {
        // The paper: C_Off = {010, 000}.
        let stg = paper_fig1();
        let unf = build(&stg);
        let sb = stg.signal_by_name("b").expect("b");
        let slices = side_slices(&unf, sb, false);
        let cover = exact_side_cover(&stg, &unf, &slices, 10_000).expect("small");
        let mut codes: Vec<String> = cover.cubes().iter().map(ToString::to_string).collect();
        codes.sort();
        assert_eq!(codes, vec!["000", "010"]);
    }

    #[test]
    fn fig1_on_off_disjoint() {
        let stg = paper_fig1();
        let unf = build(&stg);
        let sb = stg.signal_by_name("b").expect("b");
        let on = exact_side_cover(&stg, &unf, &side_slices(&unf, sb, true), 10_000).expect("on");
        let off = exact_side_cover(&stg, &unf, &side_slices(&unf, sb, false), 10_000).expect("off");
        assert!(!on.intersects(&off));
    }

    #[test]
    fn fig1_excitation_codes_of_b() {
        let stg = paper_fig1();
        let unf = build(&stg);
        let sb = stg.signal_by_name("b").expect("b");
        let slices = side_slices(&unf, sb, true);
        let mut er: Vec<String> = Vec::new();
        for s in &slices {
            er.extend(
                excitation_codes(&unf, s, 1000)
                    .expect("small")
                    .iter()
                    .map(ToString::to_string),
            );
        }
        er.sort();
        // +b is excited at 001 (p4), and at 100/101 (p2 marked, +c''
        // optionally fired).
        assert_eq!(er, vec!["001", "100", "101"]);
    }

    #[test]
    fn budget_enforced() {
        let stg = si_stg::generators::independent_cycles(14);
        let unf = build(&stg);
        let s0 = stg.signal_by_name("a0").expect("a0");
        let slices = side_slices(&unf, s0, false);
        // The ⊥ slice spans all 2^13 combinations of the other cycles.
        let err = exact_side_cover(&stg, &unf, &slices, 10).unwrap_err();
        assert!(matches!(err, SynthesisError::SliceBudgetExceeded { .. }));
    }
}
