//! Error types for unfolding-based synthesis.

use std::error::Error;
use std::fmt;

use si_unfolding::UnfoldError;

/// Errors raised by the unfolding-based synthesis flow.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SynthesisError {
    /// Segment construction failed (inconsistency, unsafeness, budget).
    Unfold(UnfoldError),
    /// The STG is not semi-modular: an excited non-input signal can be
    /// disabled, so no hazard-free implementation exists.
    NotPersistent {
        /// The signal that can be disabled.
        signal: String,
    },
    /// Complete State Coding is violated: even the exact on- and off-set
    /// covers of this signal intersect, so the specification must be
    /// changed (e.g. by inserting internal signals).
    CscViolation {
        /// The signal whose covers intersect.
        signal: String,
        /// A witness cube of the intersection.
        witness: String,
    },
    /// An implementable signal never changes; it needs no gate and the
    /// specification is suspicious.
    ConstantSignal {
        /// The signal's name.
        signal: String,
    },
    /// Exact cut enumeration inside one slice exceeded its budget.
    SliceBudgetExceeded {
        /// The configured budget.
        budget: usize,
    },
    /// The derived on- and off-set covers handed to the minimiser overlap
    /// even though derivation reported them disjoint — an internal
    /// consistency failure. Unlike [`SynthesisError::CscViolation`] (a
    /// property of the specification), this indicates a bug in cover
    /// derivation, and it is checked in release builds too: minimising an
    /// inconsistent partition would silently return garbage gates.
    InconsistentCovers {
        /// The affected signal.
        signal: String,
        /// A witness cube of the overlap.
        witness: String,
    },
}

impl fmt::Display for SynthesisError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SynthesisError::Unfold(e) => write!(f, "unfolding failed: {e}"),
            SynthesisError::NotPersistent { signal } => {
                write!(
                    f,
                    "STG is not semi-modular: signal `{signal}` can be disabled"
                )
            }
            SynthesisError::CscViolation { signal, witness } => write!(
                f,
                "CSC violation on `{signal}`: on- and off-set covers share {witness}"
            ),
            SynthesisError::ConstantSignal { signal } => {
                write!(f, "signal `{signal}` never changes; no gate is needed")
            }
            SynthesisError::SliceBudgetExceeded { budget } => {
                write!(f, "slice enumeration exceeded {budget} cuts")
            }
            SynthesisError::InconsistentCovers { signal, witness } => write!(
                f,
                "internal error: derived covers for `{signal}` overlap at {witness} \
                 despite passing the disjointness check"
            ),
        }
    }
}

impl Error for SynthesisError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            SynthesisError::Unfold(e) => Some(e),
            _ => None,
        }
    }
}

impl From<UnfoldError> for SynthesisError {
    fn from(e: UnfoldError) -> Self {
        SynthesisError::Unfold(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = SynthesisError::CscViolation {
            signal: "lds".into(),
            witness: "10100".into(),
        };
        assert!(e.to_string().contains("lds"));
        assert!(e.to_string().contains("10100"));
        assert!(SynthesisError::SliceBudgetExceeded { budget: 9 }
            .to_string()
            .contains('9'));
        let e = SynthesisError::InconsistentCovers {
            signal: "d".into(),
            witness: "1-0".into(),
        };
        assert!(e.to_string().contains("`d`"));
        assert!(e.to_string().contains("1-0"));
        let e = SynthesisError::from(UnfoldError::DummyTransitions);
        assert!(e.source().is_some());
    }
}
