//! Initial cover approximation (the paper, §4.2 and Figure 5, top half):
//! one ER cube per slice entry plus MR covers over the approximation set,
//! kept as individually refinable *atoms*.

use si_cubes::Cover;
use si_petri::Marking;
use si_stg::Stg;
use si_unfolding::{ConditionId, StgUnfolding};

use crate::covers::{er_cube, mr_cube, opposite_enabled_under_cubes, restricted_exit_cubes};
use crate::slice::Slice;

/// What a cover atom approximates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AtomKind {
    /// The excitation region of the slice's entry.
    ExcitationRegion,
    /// The marked region of one approximation-set condition.
    MarkedRegion(ConditionId),
}

/// One refinable piece of a side cover: the ER approximation of a slice
/// entry or the MR approximation of one condition.
#[derive(Debug, Clone)]
pub struct CoverAtom {
    /// Index of the owning slice within the side's slice list.
    pub slice: usize,
    /// What the atom approximates.
    pub kind: AtomKind,
    /// The current (possibly refined) cover.
    pub cover: Cover,
    /// Set when refinement has already been applied without progress — the
    /// escalation signal for the exact fallback.
    pub exhausted: bool,
    /// Set when the atom holds an exact slice enumeration (nothing left to
    /// refine).
    pub exact: bool,
}

/// Builds the initial cover approximation of one side (the union of all its
/// atoms covers the side's states; see `DESIGN.md` for the soundness
/// argument).
pub fn approximate_side(stg: &Stg, unf: &StgUnfolding, slices: &[Slice]) -> Vec<CoverAtom> {
    let width = unf.signal_count();
    let mut atoms = Vec::new();
    for (idx, slice) in slices.iter().enumerate() {
        if let Some(cube) = er_cube(unf, slice) {
            atoms.push(CoverAtom {
                slice: idx,
                kind: AtomKind::ExcitationRegion,
                cover: [cube].into_iter().collect(),
                exhausted: false,
                exact: false,
            });
        }
        for p in slice.approximation_set(unf) {
            // If an opposite change of the slice signal is enabled in every
            // state where `p` is marked (it is enabled at the producer's cut
            // and no member can steal its preset), the marked region holds
            // no states of this side at all — common for conditions behind
            // a cutoff that re-enables the signal's first change.
            if opposite_always_enabled(stg, unf, slice, p) {
                atoms.push(CoverAtom {
                    slice: idx,
                    kind: AtomKind::MarkedRegion(p),
                    cover: Cover::empty(width),
                    exhausted: true,
                    exact: false,
                });
                continue;
            }
            let exits_with_p: Vec<_> = slice
                .exits
                .iter()
                .copied()
                .filter(|&x| unf.preset(x).contains(&p))
                .collect();
            let mut cover: Cover = if exits_with_p.is_empty() {
                [mr_cube(unf, slice, p)].into_iter().collect()
            } else {
                // Intersect the restricted covers over every exit `p` feeds;
                // any invalid restriction falls back to the full MR cube
                // (over-covering, caught by the intersection check).
                let mut acc: Option<Cover> = None;
                let mut fallback = false;
                for &x in &exits_with_p {
                    match restricted_exit_cubes(unf, slice, p, x) {
                        Some(cubes) => {
                            let c: Cover = cubes.into_iter().collect();
                            acc = Some(match acc {
                                None => c,
                                Some(prev) => prev.intersect(&c),
                            });
                        }
                        None => {
                            fallback = true;
                            break;
                        }
                    }
                }
                if fallback {
                    [mr_cube(unf, slice, p)].into_iter().collect()
                } else {
                    acc.unwrap_or_else(|| Cover::empty(width))
                }
            };
            // Sharp-subtract the certainly-opposite-enabled state cubes:
            // those states belong to the opposite side by definition (the
            // excited opposite change flips the implied value), so removing
            // them is sound whenever CSC holds — exactly the assumption
            // under which the paper's restricted covers are precise (§4.2).
            // The STG-level formulation also covers slices truncated at
            // cutoffs, whose bounding instances are not in the segment.
            for under in opposite_enabled_under_cubes(stg, unf, slice, p) {
                cover = cover.subtract_cube(&under);
            }
            atoms.push(CoverAtom {
                slice: idx,
                kind: AtomKind::MarkedRegion(p),
                cover,
                exhausted: false,
                exact: false,
            });
        }
    }
    atoms
}

/// Returns `true` when some opposite-polarity change of the slice signal is
/// provably enabled in *every* slice state where `p` is marked: it is
/// enabled at `Cut(⌈prod(p)⌉)` through conditions no slice member can
/// consume, so no later in-slice firing can disable it.
fn opposite_always_enabled(stg: &Stg, unf: &StgUnfolding, slice: &Slice, p: ConditionId) -> bool {
    let producer = unf.producer(p);
    let base_cut = unf.min_stable_cut(producer);
    let marking: Marking = base_cut.iter().map(|&b| unf.place(b)).collect();
    'transitions: for t in stg.transitions_of(slice.signal) {
        let Some(label) = stg.label(t) else { continue };
        if label.polarity.target_value() == slice.value {
            continue;
        }
        if !stg.net().is_enabled(t, &marking) {
            continue;
        }
        // Every preset condition of `t` in the base cut must be immune to
        // member consumption (its consumers are no slice members).
        for &place in stg.net().preset(t) {
            let Some(&cond) = base_cut.iter().find(|&&b| unf.place(b) == place) else {
                continue 'transitions;
            };
            let stealable = unf
                .consumers(cond)
                .iter()
                .any(|&c| slice.is_member(c) || c == slice.entry);
            if stealable {
                continue 'transitions;
            }
        }
        return true;
    }
    false
}

/// Collapses a side's atoms into a single cover.
pub fn side_cover(atoms: &[CoverAtom], width: usize) -> Cover {
    let mut cover = Cover::empty(width);
    for atom in atoms {
        cover = cover.union(&atom.cover);
    }
    cover
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::slice::side_slices;
    use si_stg::suite::{paper_fig1, paper_fig4ab};
    use si_stg::Stg;
    use si_unfolding::{StgUnfolding, UnfoldingOptions};

    fn build(stg: &Stg) -> StgUnfolding {
        StgUnfolding::build(stg, &UnfoldingOptions::default()).expect("builds")
    }

    #[test]
    fn fig4_on_approximation_of_a_covers_paper_cubes() {
        let stg = paper_fig4ab();
        let unf = build(&stg);
        let sa = stg.signal_by_name("a").expect("a");
        let slices = side_slices(&unf, sa, true);
        let atoms = approximate_side(&stg, &unf, &slices);
        let cover = side_cover(&atoms, unf.signal_count());
        // The paper's approximation (§4.2): a̅b̅c̅d̅e̅f̅g̅ + a d̅ g̅ + a d g̅ +
        // a d f̅ g + a d ē g. Our cover must cover all of those states.
        for s in [
            "0000000", // initial: +a excited
            "1000000", // after +a
            "1101000", // b, c up
            "1001001", // d, g up
            "1111110", // everything but g
        ] {
            let bits: Vec<bool> = s.chars().map(|c| c == '1').collect();
            assert!(cover.covers_bits(&bits), "missing {s}");
        }
        // And must not cover states where -a is already enabled with all
        // predecessors fired (e and f and g up ⇒ p8,p9,p10 marked).
        let bits: Vec<bool> = "1111111".chars().map(|c| c == '1').collect();
        assert!(!cover.covers_bits(&bits), "covers an off state");
    }

    #[test]
    fn fig1_approximation_intersects_and_needs_refinement() {
        // As analysed in DESIGN.md: the off-⊥-slice MR cube of p3 is {100},
        // which is an on-state, so the raw approximations of `b` intersect —
        // exactly the situation the refinement loop exists for.
        let stg = paper_fig1();
        let unf = build(&stg);
        let sb = stg.signal_by_name("b").expect("b");
        let on = side_cover(
            &approximate_side(&stg, &unf, &side_slices(&unf, sb, true)),
            unf.signal_count(),
        );
        let off = side_cover(
            &approximate_side(&stg, &unf, &side_slices(&unf, sb, false)),
            unf.signal_count(),
        );
        // Both sides must cover their exact sets.
        for s in ["100", "101", "110", "111", "001", "011"] {
            let bits: Vec<bool> = s.chars().map(|c| c == '1').collect();
            assert!(on.covers_bits(&bits), "on-set missing {s}");
        }
        for s in ["000", "010"] {
            let bits: Vec<bool> = s.chars().map(|c| c == '1').collect();
            assert!(off.covers_bits(&bits), "off-set missing {s}");
        }
    }

    #[test]
    fn atoms_track_their_slices() {
        let stg = paper_fig4ab();
        let unf = build(&stg);
        let sa = stg.signal_by_name("a").expect("a");
        let slices = side_slices(&unf, sa, true);
        let atoms = approximate_side(&stg, &unf, &slices);
        assert!(atoms.iter().any(|a| a.kind == AtomKind::ExcitationRegion));
        assert!(atoms.iter().all(|a| a.slice < slices.len()));
        assert!(atoms.iter().all(|a| !a.exhausted));
    }
}
