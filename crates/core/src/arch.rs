//! The memory-element architectures the paper mentions as straightforward
//! adaptations (§2.1, §6): *standard C-element* and *RS-latch*
//! implementations, where the complex gate computes Set/Reset excitation
//! functions instead of the full next-state function.

use si_cubes::{minimize, Cover};
use si_stg::{SignalId, Stg};
use si_unfolding::{StgUnfolding, UnfoldingOptions};

use crate::covers::code_to_cube;
use crate::error::SynthesisError;
use crate::exact::{exact_side_cover, excitation_codes};
use crate::slice::side_slices;

/// The memory element guarding an excitation-function implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MemoryElement {
    /// Muller C-element: output rises when Set=1, falls when Reset=1, holds
    /// otherwise; Set and Reset may both be 0 (hold) but never both 1.
    MullerC,
    /// RS latch: same protocol with a set/reset dominant latch; Set and
    /// Reset must be mutually exclusive on all reachable states.
    RsLatch,
}

/// A Set/Reset implementation of one signal.
#[derive(Debug, Clone)]
pub struct ExcitationImplementation {
    /// The implemented signal.
    pub signal: SignalId,
    /// The memory element type.
    pub element: MemoryElement,
    /// The Set excitation function: covers `ER(+a)`, disjoint from the
    /// off-set.
    pub set: Cover,
    /// The Reset excitation function: covers `ER(-a)`, disjoint from the
    /// on-set and from `set`.
    pub reset: Cover,
}

impl ExcitationImplementation {
    /// Combined literal count of both excitation functions.
    pub fn literal_count(&self) -> usize {
        self.set.literal_count() + self.reset.literal_count()
    }

    /// Renders both equations, e.g. `set(b) = …` / `reset(b) = …`.
    pub fn equations(&self, stg: &Stg) -> (String, String) {
        let names: Vec<&str> = stg.signals().map(|s| stg.signal_name(s)).collect();
        (
            format!(
                "set({}) = {}",
                stg.signal_name(self.signal),
                self.set.to_expression_string(&names)
            ),
            format!(
                "reset({}) = {}",
                stg.signal_name(self.signal),
                self.reset.to_expression_string(&names)
            ),
        )
    }
}

/// Synthesises Set/Reset excitation functions for every implementable
/// signal, using exact excitation-region enumeration on the segment (ERs
/// are small even when quiescent regions explode).
///
/// # Errors
///
/// Propagates unfolding and enumeration errors; reports
/// [`SynthesisError::CscViolation`] when an excitation region overlaps the
/// opposite side's states in code space.
pub fn synthesize_excitation_functions(
    stg: &Stg,
    element: MemoryElement,
    unfolding: &UnfoldingOptions,
    slice_budget: usize,
) -> Result<Vec<ExcitationImplementation>, SynthesisError> {
    let unf = StgUnfolding::build(stg, unfolding)?;
    let mut out = Vec::new();
    for signal in stg.implementable_signals() {
        if stg.transitions_of(signal).is_empty() {
            return Err(SynthesisError::ConstantSignal {
                signal: stg.signal_name(signal).to_owned(),
            });
        }
        let on_slices = side_slices(&unf, signal, true);
        let off_slices = side_slices(&unf, signal, false);

        // ER(+a) = excitation parts of the on-slices (where +a is pending);
        // ER(-a) symmetric.
        let mut er_on = Cover::empty(unf.signal_count());
        for s in &on_slices {
            for code in excitation_codes(&unf, s, slice_budget)? {
                er_on = er_on.union(&[code_to_cube(&code)].into_iter().collect());
            }
        }
        let mut er_off = Cover::empty(unf.signal_count());
        for s in &off_slices {
            for code in excitation_codes(&unf, s, slice_budget)? {
                er_off = er_off.union(&[code_to_cube(&code)].into_iter().collect());
            }
        }
        let on = exact_side_cover(stg, &unf, &on_slices, slice_budget)?;
        let off = exact_side_cover(stg, &unf, &off_slices, slice_budget)?;
        if on.intersects(&off) {
            let witness = on
                .intersect(&off)
                .cubes()
                .first()
                .map(ToString::to_string)
                .unwrap_or_default();
            return Err(SynthesisError::CscViolation {
                signal: stg.signal_name(signal).to_owned(),
                witness,
            });
        }

        // Set must hit every ER(+a) state and no off-set state; it may
        // stretch over the rest of the on-set (where the latch holds 1
        // anyway) and unreachable codes.
        let set = minimize(&er_on, &off);
        // Reset symmetric; for an RS latch additionally keep Reset clear of
        // the (possibly expanded) Set function so both are never 1.
        let reset = match element {
            MemoryElement::MullerC => minimize(&er_off, &on),
            MemoryElement::RsLatch => minimize(&er_off, &on.union(&set)),
        };
        out.push(ExcitationImplementation {
            signal,
            element,
            set,
            reset,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use si_stategraph::StateGraph;
    use si_stg::generators::muller_pipeline;
    use si_stg::suite::{paper_fig1, vme_read_csc};
    use si_stg::Polarity;

    fn check_excitation_contract(stg: &Stg, impls: &[ExcitationImplementation]) {
        // Oracle: on every reachable state, Set=1 iff the gate must drive
        // the output up … at least on ER states; Set=0 on all off states.
        let sg = StateGraph::build(stg, 1_000_000).expect("oracle builds");
        for imp in impls {
            for s in 0..sg.len() {
                let code = sg.code(s);
                let bits: Vec<bool> = code.iter().map(|(_, v)| v).collect();
                let excited = sg.excited(stg, s);
                let rising = excited
                    .iter()
                    .any(|e| e.signal == imp.signal && e.polarity == Polarity::Rise);
                let falling = excited
                    .iter()
                    .any(|e| e.signal == imp.signal && e.polarity == Polarity::Fall);
                let implied = if rising {
                    true
                } else if falling {
                    false
                } else {
                    code.get(imp.signal)
                };
                if rising {
                    assert!(imp.set.covers_bits(&bits), "set misses an ER(+) state");
                }
                if falling {
                    assert!(imp.reset.covers_bits(&bits), "reset misses an ER(-) state");
                }
                if !implied {
                    assert!(!imp.set.covers_bits(&bits), "set fires in the off-set");
                }
                if implied {
                    assert!(!imp.reset.covers_bits(&bits), "reset fires in the on-set");
                }
                if imp.element == MemoryElement::RsLatch {
                    assert!(
                        !(imp.set.covers_bits(&bits) && imp.reset.covers_bits(&bits)),
                        "set and reset both active"
                    );
                }
            }
        }
    }

    #[test]
    fn fig1_c_element_implementation() {
        let stg = paper_fig1();
        let impls = synthesize_excitation_functions(
            &stg,
            MemoryElement::MullerC,
            &UnfoldingOptions::default(),
            100_000,
        )
        .expect("ok");
        assert_eq!(impls.len(), 1);
        check_excitation_contract(&stg, &impls);
    }

    #[test]
    fn fig1_rs_latch_implementation() {
        let stg = paper_fig1();
        let impls = synthesize_excitation_functions(
            &stg,
            MemoryElement::RsLatch,
            &UnfoldingOptions::default(),
            100_000,
        )
        .expect("ok");
        check_excitation_contract(&stg, &impls);
    }

    #[test]
    fn vme_and_pipeline_excitation_functions() {
        for stg in [vme_read_csc(), muller_pipeline(3)] {
            for element in [MemoryElement::MullerC, MemoryElement::RsLatch] {
                let impls = synthesize_excitation_functions(
                    &stg,
                    element,
                    &UnfoldingOptions::default(),
                    1_000_000,
                )
                .unwrap_or_else(|e| panic!("{} failed: {e}", stg.name()));
                check_excitation_contract(&stg, &impls);
            }
        }
    }

    #[test]
    fn set_reset_usually_cheaper_than_complex_gate() {
        // The point of the architecture: per-function gates are smaller.
        let stg = muller_pipeline(3);
        let impls = synthesize_excitation_functions(
            &stg,
            MemoryElement::MullerC,
            &UnfoldingOptions::default(),
            1_000_000,
        )
        .expect("ok");
        for imp in &impls {
            assert!(imp.set.literal_count() <= 4, "set too big");
            assert!(imp.reset.literal_count() <= 4, "reset too big");
        }
    }
}
