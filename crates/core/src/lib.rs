//! # si-synthesis — speed-independent circuit synthesis from STG-unfolding
//! segments
//!
//! The primary contribution of the reproduced paper (Semenov, Yakovlev,
//! Pastor, Peña, Cortadella, DAC 1997): derive the per-signal logic of a
//! speed-independent circuit directly from the finite STG-unfolding segment,
//! avoiding the construction of the exponentially larger state graph.
//!
//! Two modes are provided, as in the paper:
//!
//! * **exact** ([`CoverMode::Exact`]) — enumerate the cuts encapsulated in
//!   the on-/off-set [slices](slice::Slice) of the segment and recover their
//!   binary codes (§4.1);
//! * **approximate** ([`CoverMode::Approximate`], the default) — build cheap
//!   ER/MR cover approximations from the concurrency relation (§4.2) and
//!   refine them until the on- and off-set covers stop intersecting (§4.3),
//!   escalating to per-slice exact enumeration when cube-level refinement
//!   stalls.
//!
//! The flagship architecture is the atomic complex gate per signal
//! ([`synthesize_from_unfolding`]); the Set/Reset excitation-function
//! architectures with a Muller C-element or RS latch are provided in
//! [`arch`]. Implementations can be independently checked against the
//! explicit state-graph oracle with [`verify_against_sg`].
//!
//! ## Example
//!
//! ```
//! use si_stg::suite::paper_fig1;
//! use si_synthesis::{synthesize_from_unfolding, verify_against_sg, SynthesisOptions};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let stg = paper_fig1();
//! let netlist = synthesize_from_unfolding(&stg, &SynthesisOptions::default())?;
//! assert_eq!(netlist.gates[0].equation(&stg), "b = a + c");
//! verify_against_sg(&stg, &netlist, 10_000)?;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approx;
pub mod arch;
pub mod covers;
mod error;
pub mod exact;
mod flow;
mod netlist;
pub mod refine;
pub mod slice;
mod synth;
mod verify;

pub use arch::{synthesize_excitation_functions, ExcitationImplementation, MemoryElement};
pub use error::SynthesisError;
pub use flow::{
    choose_flow, engine_for, FlowChoice, FlowDecision, FlowEngine, FlowError, FlowRefusal,
    FlowSynthesis, SgFlow, UnfoldingFlow,
};
pub use netlist::{excitation_to_verilog, to_eqn, to_verilog};
pub use synth::{
    synthesize_from_unfolding, CorrectnessCondition, CoverMode, SignalGate, SynthesisOptions,
    TimingBreakdown, UnfoldingSynthesis,
};
pub use verify::{verify_against_sg, verify_against_sg_with, VerifyError};
