//! Cover refinement (the paper, §4.3 and Figure 5, bottom half): while the
//! on- and off-set cover approximations intersect, restore marking
//! information by intersecting offending atoms with restricted MR covers of
//! a refining set, escalating to exact per-slice enumeration when the
//! cube-level refinement stops making progress.

use si_cubes::implicit::{ImplicitCover, ImplicitPool};
use si_cubes::Cover;
use si_stg::Stg;
use si_unfolding::{ConditionId, StgUnfolding};

use crate::approx::{AtomKind, CoverAtom};
use crate::covers::{code_to_cube, joint_cube};
use crate::error::SynthesisError;
use crate::exact::slice_codes;
use crate::slice::Slice;

/// Outcome of the refinement loop.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RefinementReport {
    /// Number of cube-level refinement steps applied.
    pub steps: usize,
    /// Number of slices that had to be re-enumerated exactly.
    pub exact_fallbacks: usize,
    /// `true` if the final covers are disjoint (otherwise the STG has a CSC
    /// conflict).
    pub disjoint: bool,
}

/// Runs the refinement loop over the two sides until their covers are
/// disjoint, refinement stalls into exact fallback, or `max_steps` is
/// reached. Atom covers are modified in place.
///
/// When `pool` is provided, the offending-pair sweep runs against cached
/// implicit atom sets (one pooled diagram per atom version, intersection
/// emptiness in O(shared structure)) instead of the explicit quadratic cube
/// sweep. Intersection *emptiness* is a property of the point sets, not of
/// the cube lists, so the refinement trajectory — and therefore every cover
/// this function produces — is identical with and without a pool.
///
/// # Errors
///
/// Propagates [`SynthesisError::SliceBudgetExceeded`] from exact fallbacks.
#[allow(clippy::too_many_arguments)]
pub fn refine_until_disjoint(
    stg: &Stg,
    unf: &StgUnfolding,
    on_slices: &[Slice],
    off_slices: &[Slice],
    on_atoms: &mut Vec<CoverAtom>,
    off_atoms: &mut Vec<CoverAtom>,
    max_steps: usize,
    slice_budget: usize,
    mut pool: Option<&mut ImplicitPool>,
) -> Result<RefinementReport, SynthesisError> {
    let mut report = RefinementReport {
        steps: 0,
        exact_fallbacks: 0,
        disjoint: false,
    };
    // Cached implicit set per atom, invalidated when the atom's cover
    // changes (refinement) or the atom list is rebuilt (escalation).
    let mut on_sets: Vec<Option<ImplicitCover>> = vec![None; on_atoms.len()];
    let mut off_sets: Vec<Option<ImplicitCover>> = vec![None; off_atoms.len()];
    loop {
        let pair = match pool.as_deref_mut() {
            Some(p) => offending_pair_pooled(p, on_atoms, off_atoms, &mut on_sets, &mut off_sets),
            None => offending_pair(on_atoms, off_atoms),
        };
        let Some((on_idx, off_idx)) = pair else {
            report.disjoint = true;
            return Ok(report);
        };
        if report.steps >= max_steps {
            // Escalate everything that still conflicts.
            let progressed = escalate(
                stg,
                unf,
                on_slices,
                on_atoms,
                on_idx,
                slice_budget,
                &mut report,
            )? | escalate(
                stg,
                unf,
                off_slices,
                off_atoms,
                off_idx,
                slice_budget,
                &mut report,
            )?;
            if !progressed {
                return Ok(report);
            }
            reset_caches(&mut on_sets, on_atoms.len());
            reset_caches(&mut off_sets, off_atoms.len());
            continue;
        }
        report.steps += 1;
        let mut progressed = false;
        if refine_atom(unf, on_slices, &mut on_atoms[on_idx]) {
            progressed = true;
            on_sets[on_idx] = None;
        }
        if refine_atom(unf, off_slices, &mut off_atoms[off_idx]) {
            progressed = true;
            off_sets[off_idx] = None;
        }
        if !progressed {
            let escalated = escalate(
                stg,
                unf,
                on_slices,
                on_atoms,
                on_idx,
                slice_budget,
                &mut report,
            )? | escalate(
                stg,
                unf,
                off_slices,
                off_atoms,
                off_idx,
                slice_budget,
                &mut report,
            )?;
            if !escalated {
                // Both offending atoms are already exact: genuine CSC
                // conflict.
                return Ok(report);
            }
            reset_caches(&mut on_sets, on_atoms.len());
            reset_caches(&mut off_sets, off_atoms.len());
        }
    }
}

fn reset_caches(sets: &mut Vec<Option<ImplicitCover>>, len: usize) {
    sets.clear();
    sets.resize(len, None);
}

/// Finds the first pair of atoms whose covers intersect.
fn offending_pair(on: &[CoverAtom], off: &[CoverAtom]) -> Option<(usize, usize)> {
    for (i, a) in on.iter().enumerate() {
        for (j, b) in off.iter().enumerate() {
            if a.cover.intersects(&b.cover) {
                return Some((i, j));
            }
        }
    }
    None
}

/// The pooled twin of [`offending_pair`]: identical iteration order and
/// identical result (emptiness of an intersection does not depend on the
/// representation), with each atom's point set pooled once per version and
/// pairwise emptiness answered from the diagram's operation cache.
fn offending_pair_pooled(
    pool: &mut ImplicitPool,
    on: &[CoverAtom],
    off: &[CoverAtom],
    on_sets: &mut [Option<ImplicitCover>],
    off_sets: &mut [Option<ImplicitCover>],
) -> Option<(usize, usize)> {
    for (i, a) in on.iter().enumerate() {
        let sa = *on_sets[i].get_or_insert_with(|| pool.cover_set(&a.cover));
        if sa.is_empty() {
            continue;
        }
        for (j, b) in off.iter().enumerate() {
            let sb = *off_sets[j].get_or_insert_with(|| pool.cover_set(&b.cover));
            if sb.is_empty() {
                continue;
            }
            if pool.intersects(sa, sb) {
                return Some((i, j));
            }
        }
    }
    None
}

/// Checks whether every reachable cut has the same size (the net is
/// token-preserving): if so, returns that size. Cube-level refinement is
/// only sound when the refining set is guaranteed to intersect every cut
/// marking the anchors — which holds when cuts always carry more tokens
/// than the anchor set.
fn cut_size_invariant(unf: &StgUnfolding) -> Option<usize> {
    let tokens = unf.postset(si_unfolding::EventId::ROOT).len();
    for e in unf.events().skip(1) {
        if unf.preset(e).len() != unf.postset(e).len() {
            return None;
        }
    }
    Some(tokens)
}

/// One cube-level refinement step on `atom`: intersect its cover with the
/// union of joint cubes over the refining set (all slice conditions
/// concurrent with the atom's anchor). Returns `true` if the cover shrank.
fn refine_atom(unf: &StgUnfolding, slices: &[Slice], atom: &mut CoverAtom) -> bool {
    if atom.exhausted {
        return false;
    }
    let slice = &slices[atom.slice];
    let anchors: Vec<ConditionId> = match atom.kind {
        AtomKind::MarkedRegion(p) => vec![p],
        // The ER anchor is the entry's preset: states in the ER mark all of
        // it, so refine with conditions concurrent to every preset member.
        AtomKind::ExcitationRegion => {
            if slice.entry.is_root() {
                atom.exhausted = true;
                return false;
            }
            unf.preset(slice.entry).to_vec()
        }
    };
    // Soundness guard (see DESIGN.md): the refining set must be guaranteed
    // to intersect every cut marking the anchors, which we can only prove
    // when the net is token-preserving with more tokens than anchors.
    // Otherwise skip straight to the exact fallback.
    match cut_size_invariant(unf) {
        Some(tokens) if tokens > anchors.len() => {}
        _ => {
            atom.exhausted = true;
            return false;
        }
    }
    // Refining set: slice conditions concurrent with every anchor.
    let refining: Vec<ConditionId> = slice
        .conditions
        .iter()
        .map(|i| ConditionId(i as u32))
        .filter(|&p_k| {
            !anchors.contains(&p_k) && anchors.iter().all(|&a| unf.conditions_co(a, p_k))
        })
        .collect();
    if refining.is_empty() {
        atom.exhausted = true;
        return false;
    }
    let mut restriction = Cover::empty(unf.signal_count());
    for &p_k in &refining {
        let cube = joint_cube(unf, anchors[0], p_k);
        restriction = restriction.union(&[cube].into_iter().collect());
    }
    let refined = atom.cover.intersect(&restriction);
    if refined == atom.cover {
        atom.exhausted = true;
        false
    } else {
        atom.cover = refined;
        true
    }
}

/// Exact fallback: replace every atom of the offending atom's slice with the
/// slice's exact code enumeration. Returns `true` if anything changed.
#[allow(clippy::too_many_arguments)]
fn escalate(
    stg: &Stg,
    unf: &StgUnfolding,
    slices: &[Slice],
    atoms: &mut Vec<CoverAtom>,
    offending: usize,
    slice_budget: usize,
    report: &mut RefinementReport,
) -> Result<bool, SynthesisError> {
    let slice_idx = atoms[offending].slice;
    if atoms.iter().any(|a| a.slice == slice_idx && a.exact) {
        return Ok(false);
    }
    let codes = slice_codes(stg, unf, &slices[slice_idx], slice_budget)?;
    let exact: Cover = codes.iter().map(code_to_cube).collect();
    atoms.retain(|a| a.slice != slice_idx);
    atoms.push(CoverAtom {
        slice: slice_idx,
        kind: AtomKind::ExcitationRegion,
        cover: exact,
        exhausted: true,
        exact: true,
    });
    report.exact_fallbacks += 1;
    Ok(true)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::approx::{approximate_side, side_cover};
    use crate::slice::side_slices;
    use si_stg::suite::{paper_fig1, paper_fig4ab, vme_read_no_csc};
    use si_stg::Stg;
    use si_unfolding::{StgUnfolding, UnfoldingOptions};

    fn build(stg: &Stg) -> StgUnfolding {
        StgUnfolding::build(stg, &UnfoldingOptions::default()).expect("builds")
    }

    fn refined_sides(stg: &Stg, name: &str) -> (StgUnfolding, Cover, Cover, RefinementReport) {
        let unf = build(stg);
        let sig = stg.signal_by_name(name).expect("signal");
        let on_slices = side_slices(&unf, sig, true);
        let off_slices = side_slices(&unf, sig, false);
        let mut on = approximate_side(stg, &unf, &on_slices);
        let mut off = approximate_side(stg, &unf, &off_slices);
        let report = refine_until_disjoint(
            stg,
            &unf,
            &on_slices,
            &off_slices,
            &mut on,
            &mut off,
            100,
            100_000,
            None,
        )
        .expect("no budget issue");
        let w = unf.signal_count();
        let on_cover = side_cover(&on, w);
        let off_cover = side_cover(&off, w);
        (unf, on_cover, off_cover, report)
    }

    #[test]
    fn fig1_b_refines_to_disjoint_covers() {
        let stg = paper_fig1();
        let (_, on, off, report) = refined_sides(&stg, "b");
        assert!(report.disjoint, "report: {report:?}");
        assert!(!on.intersects(&off));
        // The exact sets stay covered.
        for s in ["100", "101", "110", "111", "001", "011"] {
            let bits: Vec<bool> = s.chars().map(|c| c == '1').collect();
            assert!(on.covers_bits(&bits), "on-set lost {s}");
        }
        for s in ["000", "010"] {
            let bits: Vec<bool> = s.chars().map(|c| c == '1').collect();
            assert!(off.covers_bits(&bits), "off-set lost {s}");
        }
    }

    #[test]
    fn fig4_a_covers_disjoint() {
        let stg = paper_fig4ab();
        let (_, on, off, report) = refined_sides(&stg, "a");
        assert!(report.disjoint);
        assert!(!on.intersects(&off));
    }

    #[test]
    fn vme_csc_conflict_survives_refinement() {
        // The classic VME controller has a genuine CSC conflict: refinement
        // must terminate with intersecting covers, not loop forever.
        let stg = vme_read_no_csc();
        let unf = build(&stg);
        let lds = stg.signal_by_name("lds").expect("lds");
        let on_slices = side_slices(&unf, lds, true);
        let off_slices = side_slices(&unf, lds, false);
        let mut on = approximate_side(&stg, &unf, &on_slices);
        let mut off = approximate_side(&stg, &unf, &off_slices);
        let report = refine_until_disjoint(
            &stg,
            &unf,
            &on_slices,
            &off_slices,
            &mut on,
            &mut off,
            100,
            100_000,
            None,
        )
        .expect("no budget issue");
        assert!(!report.disjoint);
    }

    #[test]
    fn pooled_sweep_reproduces_explicit_trajectory() {
        // The pooled offending-pair sweep must leave the atoms (and the
        // report) exactly where the explicit sweep leaves them, on every
        // suite entry that exercises refinement.
        use si_stg::generators::muller_pipeline;
        for stg in [paper_fig1(), paper_fig4ab(), muller_pipeline(3)] {
            let unf = build(&stg);
            for sig in stg.implementable_signals() {
                let on_slices = side_slices(&unf, sig, true);
                let off_slices = side_slices(&unf, sig, false);
                let mut on_a = approximate_side(&stg, &unf, &on_slices);
                let mut off_a = approximate_side(&stg, &unf, &off_slices);
                let mut on_b = on_a.clone();
                let mut off_b = off_a.clone();
                let explicit = refine_until_disjoint(
                    &stg,
                    &unf,
                    &on_slices,
                    &off_slices,
                    &mut on_a,
                    &mut off_a,
                    100,
                    100_000,
                    None,
                )
                .expect("explicit ok");
                let mut pool = ImplicitPool::new(unf.signal_count());
                let pooled = refine_until_disjoint(
                    &stg,
                    &unf,
                    &on_slices,
                    &off_slices,
                    &mut on_b,
                    &mut off_b,
                    100,
                    100_000,
                    Some(&mut pool),
                )
                .expect("pooled ok");
                assert_eq!(explicit, pooled, "{} report diverged", stg.name());
                let w = unf.signal_count();
                assert_eq!(
                    side_cover(&on_a, w).cubes(),
                    side_cover(&on_b, w).cubes(),
                    "{} on-covers diverged",
                    stg.name()
                );
                assert_eq!(
                    side_cover(&off_a, w).cubes(),
                    side_cover(&off_b, w).cubes(),
                    "{} off-covers diverged",
                    stg.name()
                );
            }
        }
    }
}
