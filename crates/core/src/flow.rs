//! The unified flow surface: one synthesize/verify interface over the
//! SG-based baseline and the unfolding-based flow, plus the structural
//! policy behind `--flow auto`.
//!
//! Both flows end in the same place — one SOP gate per implementable
//! signal — but their intermediate artefacts (state graphs vs unfolding
//! segments), options, and error types differ. [`FlowEngine`] erases
//! those differences so harnesses, tests, and the CLI can run either flow
//! through a single surface and verify the result against the same
//! oracle. [`choose_flow`] picks a flow from *structure alone* (the
//! 1-safety certificate's state bound and the net class), so the decision
//! costs polynomial time and can be reported before any engine runs.

use std::error::Error;
use std::fmt;

use si_petri::structural::{
    certified_deadlock_witness, certify_one_safe, classify, structural_state_bound,
};
use si_stategraph::{synthesize_from_sg, SgEngine, SgError, SgSynthesis, SgSynthesisOptions};
use si_stg::Stg;

use crate::error::SynthesisError;
use crate::synth::{synthesize_from_unfolding, SynthesisOptions, UnfoldingSynthesis};
use crate::verify::{verify_gate_functions, GateFunction, VerifyError};

/// A synthesis result from either flow.
#[derive(Debug, Clone)]
pub enum FlowSynthesis {
    /// Result of the SG-based baseline (explicit or symbolic engine).
    Sg(SgSynthesis),
    /// Result of the unfolding-based flow.
    Unfolding(UnfoldingSynthesis),
}

impl FlowSynthesis {
    /// Total literal count over all gates (Table 1's `LitCnt`).
    pub fn literal_count(&self) -> usize {
        match self {
            FlowSynthesis::Sg(s) => s.literal_count(),
            FlowSynthesis::Unfolding(s) => s.literal_count(),
        }
    }

    /// Number of synthesised gates.
    pub fn gate_count(&self) -> usize {
        match self {
            FlowSynthesis::Sg(s) => s.gates.len(),
            FlowSynthesis::Unfolding(s) => s.gates.len(),
        }
    }

    /// Renders the gate equations, one per line, in signal order.
    pub fn equations(&self, stg: &Stg) -> Vec<String> {
        match self {
            FlowSynthesis::Sg(s) => s.gates.iter().map(|g| g.equation(stg)).collect(),
            FlowSynthesis::Unfolding(s) => s.gates.iter().map(|g| g.equation(stg)).collect(),
        }
    }
}

/// A failure from either flow, preserving the flow-specific error.
#[derive(Debug)]
pub enum FlowError {
    /// The SG-based flow failed.
    Sg(SgError),
    /// The unfolding-based flow failed.
    Unfolding(SynthesisError),
}

impl fmt::Display for FlowError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FlowError::Sg(e) => write!(f, "{e}"),
            FlowError::Unfolding(e) => write!(f, "{e}"),
        }
    }
}

impl Error for FlowError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            FlowError::Sg(e) => Some(e),
            FlowError::Unfolding(e) => Some(e),
        }
    }
}

impl From<SgError> for FlowError {
    fn from(e: SgError) -> Self {
        FlowError::Sg(e)
    }
}

impl From<SynthesisError> for FlowError {
    fn from(e: SynthesisError) -> Self {
        FlowError::Unfolding(e)
    }
}

/// A synthesis flow: one engine-agnostic synthesize/verify surface.
///
/// `verify` is a provided method: correctness is defined by the oracle
/// ([`verify_gate_functions`] — every gate output equals the implied
/// value in every reachable state), not by the flow that produced the
/// gates, so both flows share the implementation.
pub trait FlowEngine {
    /// Short flow name for reports (`"sg"` / `"unfolding"`).
    fn name(&self) -> &'static str;

    /// Runs the flow on `stg`.
    ///
    /// # Errors
    ///
    /// Returns the flow's own failure wrapped in [`FlowError`].
    fn synthesize(&self, stg: &Stg) -> Result<FlowSynthesis, FlowError>;

    /// Verifies a synthesis result against the state-graph oracle.
    /// `budget` is the oracle engine's own budget (states for
    /// [`SgEngine::Explicit`], BDD nodes for [`SgEngine::Symbolic`]).
    ///
    /// # Errors
    ///
    /// Returns the first [`VerifyError::Mismatch`] found, or
    /// [`VerifyError::StateGraph`] if the oracle cannot be built.
    fn verify(
        &self,
        stg: &Stg,
        synthesis: &FlowSynthesis,
        budget: usize,
        oracle: SgEngine,
    ) -> Result<(), VerifyError> {
        let gates: Vec<GateFunction<'_>> = match synthesis {
            FlowSynthesis::Sg(s) => s
                .gates
                .iter()
                .map(|g| GateFunction {
                    signal: g.signal,
                    cover: &g.cover,
                    inverted: g.inverted,
                })
                .collect(),
            FlowSynthesis::Unfolding(s) => s
                .gates
                .iter()
                .map(|g| GateFunction {
                    signal: g.signal,
                    cover: &g.gate,
                    inverted: false,
                })
                .collect(),
        };
        verify_gate_functions(stg, &gates, budget, oracle)
    }
}

/// The SG-based baseline as a [`FlowEngine`].
#[derive(Debug, Clone, Default)]
pub struct SgFlow {
    /// Options forwarded to [`synthesize_from_sg`].
    pub options: SgSynthesisOptions,
}

impl FlowEngine for SgFlow {
    fn name(&self) -> &'static str {
        "sg"
    }

    fn synthesize(&self, stg: &Stg) -> Result<FlowSynthesis, FlowError> {
        Ok(FlowSynthesis::Sg(synthesize_from_sg(stg, &self.options)?))
    }
}

/// The unfolding-based flow as a [`FlowEngine`].
#[derive(Debug, Clone, Default)]
pub struct UnfoldingFlow {
    /// Options forwarded to [`synthesize_from_unfolding`].
    pub options: SynthesisOptions,
}

impl FlowEngine for UnfoldingFlow {
    fn name(&self) -> &'static str {
        "unfolding"
    }

    fn synthesize(&self, stg: &Stg) -> Result<FlowSynthesis, FlowError> {
        Ok(FlowSynthesis::Unfolding(synthesize_from_unfolding(
            stg,
            &self.options,
        )?))
    }
}

/// What [`choose_flow`] picked.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowChoice {
    /// Explicit state-graph flow: the structural bound fits the budget.
    SgExplicit,
    /// Unfolding flow: the state space may be huge, but the net is
    /// choice-free, so the complete prefix stays polynomial.
    Unfolding,
    /// Symbolic state-graph flow: no structural guarantee either way.
    SgSymbolic,
}

/// A flow choice plus the structural evidence it rests on, rendered for
/// the CLI's timing header.
#[derive(Debug, Clone)]
pub struct FlowDecision {
    /// The chosen flow.
    pub choice: FlowChoice,
    /// Human-readable justification, e.g.
    /// `"structural state bound 64 ≤ budget 2000000"`.
    pub reason: String,
}

/// A structured refusal from [`choose_flow`]: the specification carries a
/// **certified reachable deadlock** (a never-marked siphon plus the
/// termination of every surviving transition — see
/// [`certified_deadlock_witness`]), so running any engine would only spend
/// a budget discovering the same dead marking dynamically.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FlowRefusal {
    /// Names of the places of the never-marked siphon witnessing the
    /// deadlock, in id order.
    pub siphon: Vec<String>,
}

impl fmt::Display for FlowRefusal {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "certified reachable deadlock: siphon {{{}}} can never be (re)marked and the \
             surviving transitions terminate; refusing to run a synthesis engine \
             (`--lint` reports this as SI-E004)",
            self.siphon.join(", ")
        )
    }
}

impl Error for FlowRefusal {}

/// Picks a flow for `stg` from structure alone, in polynomial time.
///
/// The policy, in order:
///
/// 0. If the structural pass *certifies a reachable deadlock* (never-marked
///    siphon plus termination of the surviving transitions), refuse with a
///    [`FlowRefusal`] before any engine spends a budget.
/// 1. If the unary-invariant 1-safety certificate yields a structural
///    state bound within `state_budget`, the explicit SG flow is safe and
///    exact — take it.
/// 2. Otherwise, if the net is a marked graph (choice-free), the
///    unfolding segment stays polynomial in the net size even when the
///    state count is exponential — take the unfolding flow.
/// 3. Otherwise fall back to the symbolic SG flow, which handles both
///    large state spaces and arbitration.
///
/// # Errors
///
/// Returns [`FlowRefusal`] only for certified-deadlocking specifications.
pub fn choose_flow(stg: &Stg, state_budget: usize) -> Result<FlowDecision, FlowRefusal> {
    let net = stg.net();
    let cert = certify_one_safe(net);
    if let Some(siphon) = certified_deadlock_witness(net, &cert) {
        return Err(FlowRefusal {
            siphon: siphon
                .iter()
                .map(|&p| net.place_name(p).to_owned())
                .collect(),
        });
    }
    if let Some(bound) = structural_state_bound(net, &cert) {
        if bound <= state_budget as u128 {
            return Ok(FlowDecision {
                choice: FlowChoice::SgExplicit,
                reason: format!("structural state bound {bound} <= budget {state_budget}"),
            });
        }
        if classify(net).marked_graph {
            return Ok(FlowDecision {
                choice: FlowChoice::Unfolding,
                reason: format!(
                    "structural state bound {bound} > budget {state_budget}, \
                     choice-free net keeps the prefix polynomial"
                ),
            });
        }
        return Ok(FlowDecision {
            choice: FlowChoice::SgSymbolic,
            reason: format!(
                "structural state bound {bound} > budget {state_budget}, \
                 net has choice"
            ),
        });
    }
    if classify(net).marked_graph {
        return Ok(FlowDecision {
            choice: FlowChoice::Unfolding,
            reason: "no structural state bound, choice-free net keeps the prefix polynomial"
                .to_owned(),
        });
    }
    Ok(FlowDecision {
        choice: FlowChoice::SgSymbolic,
        reason: "no structural state bound, net has choice".to_owned(),
    })
}

/// Builds the [`FlowEngine`] a [`FlowDecision`] names, from the given
/// option sets. The SG options' engine field is overridden to match the
/// decision; the unfolding options pass through unchanged.
pub fn engine_for(
    choice: FlowChoice,
    sg_options: &SgSynthesisOptions,
    unfolding_options: &SynthesisOptions,
) -> Box<dyn FlowEngine> {
    match choice {
        FlowChoice::SgExplicit => Box::new(SgFlow {
            options: SgSynthesisOptions {
                engine: SgEngine::Explicit,
                ..sg_options.clone()
            },
        }),
        FlowChoice::SgSymbolic => Box::new(SgFlow {
            options: SgSynthesisOptions {
                engine: SgEngine::Symbolic,
                ..sg_options.clone()
            },
        }),
        FlowChoice::Unfolding => Box::new(UnfoldingFlow {
            options: unfolding_options.clone(),
        }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::synth::CoverMode;
    use si_stg::generators::{muller_pipeline, token_ring, wide_arbiter};
    use si_stg::suite::synthesisable;

    #[test]
    fn both_flows_verify_through_the_trait_surface() {
        let flows: Vec<Box<dyn FlowEngine>> = vec![
            Box::new(SgFlow::default()),
            Box::new(UnfoldingFlow::default()),
        ];
        for stg in synthesisable() {
            for flow in &flows {
                let result = flow
                    .synthesize(&stg)
                    .unwrap_or_else(|e| panic!("{} failed on {}: {e}", flow.name(), stg.name()));
                flow.verify(&stg, &result, 5_000_000, SgEngine::Explicit)
                    .unwrap_or_else(|e| {
                        panic!("{} failed verification on {}: {e}", flow.name(), stg.name())
                    });
            }
        }
    }

    #[test]
    fn exact_unfolding_matches_sg_equations_through_the_trait() {
        let sg = SgFlow::default();
        let unf = UnfoldingFlow {
            options: SynthesisOptions {
                mode: CoverMode::Exact,
                ..SynthesisOptions::default()
            },
        };
        for stg in synthesisable() {
            let a = sg.synthesize(&stg).expect("sg flow");
            let b = unf.synthesize(&stg).expect("unfolding flow");
            assert_eq!(
                a.equations(&stg),
                b.equations(&stg),
                "{}: flows disagree",
                stg.name()
            );
            assert_eq!(a.literal_count(), b.literal_count());
            assert_eq!(a.gate_count(), b.gate_count());
        }
    }

    #[test]
    fn inverted_sg_gates_pass_the_shared_oracle() {
        let flow = SgFlow {
            options: SgSynthesisOptions {
                allow_inversion: true,
                ..SgSynthesisOptions::default()
            },
        };
        for stg in synthesisable() {
            let result = flow
                .synthesize(&stg)
                .unwrap_or_else(|e| panic!("sg flow failed on {}: {e}", stg.name()));
            flow.verify(&stg, &result, 5_000_000, SgEngine::Explicit)
                .unwrap_or_else(|e| panic!("{} failed verification: {e}", stg.name()));
        }
    }

    #[test]
    fn tampered_inverted_gate_is_caught() {
        use si_cubes::Cover;
        let stg = si_stg::suite::paper_fig1();
        let flow = SgFlow {
            options: SgSynthesisOptions {
                allow_inversion: true,
                ..SgSynthesisOptions::default()
            },
        };
        let mut result = match flow.synthesize(&stg).expect("ok") {
            FlowSynthesis::Sg(s) => s,
            FlowSynthesis::Unfolding(_) => unreachable!(),
        };
        // Force an inverted constant-0 gate: output stuck at 1.
        result.gates[0].cover = Cover::empty(stg.signal_count());
        result.gates[0].inverted = true;
        let wrapped = FlowSynthesis::Sg(result);
        let err = flow
            .verify(&stg, &wrapped, 10_000, SgEngine::Explicit)
            .unwrap_err();
        assert!(matches!(err, VerifyError::Mismatch { .. }), "{err}");
    }

    #[test]
    fn auto_policy_routes_small_nets_to_explicit_sg() {
        let decision = choose_flow(&si_stg::suite::paper_fig1(), 2_000_000).expect("no refusal");
        assert_eq!(
            decision.choice,
            FlowChoice::SgExplicit,
            "{}",
            decision.reason
        );
        let decision = choose_flow(&muller_pipeline(4), 2_000_000).expect("no refusal");
        assert_eq!(
            decision.choice,
            FlowChoice::SgExplicit,
            "{}",
            decision.reason
        );
    }

    #[test]
    fn auto_policy_routes_large_marked_graphs_to_unfolding() {
        // token_ring(8)'s *reachable* count is tiny, but the structural
        // bound (a product over invariants) is conservative — the policy
        // only sees structure, and unfolding handles the net fine.
        for stg in [token_ring(8), token_ring(12), muller_pipeline(20)] {
            let decision = choose_flow(&stg, 2_000_000).expect("no refusal");
            assert_eq!(
                decision.choice,
                FlowChoice::Unfolding,
                "{}: {}",
                stg.name(),
                decision.reason
            );
        }
    }

    #[test]
    fn auto_policy_routes_large_choice_nets_to_symbolic_sg() {
        let decision = choose_flow(&wide_arbiter(16), 2_000_000).expect("no refusal");
        assert_eq!(
            decision.choice,
            FlowChoice::SgSymbolic,
            "{}",
            decision.reason
        );
    }

    #[test]
    fn certified_deadlocking_spec_is_refused_before_any_engine_runs() {
        // A terminating x+ ; x- chain beside a never-marked y-cycle: the
        // structural pass certifies a reachable dead marking, and the
        // policy must refuse instead of picking a flow.
        let mut b = si_stg::StgBuilder::new();
        let x = b.output("x");
        let y = b.output("y");
        let xp = b.rise(x);
        let xm = b.fall(x);
        let start = b.place("start");
        let done = b.place("done");
        b.arc_pt(start, xp);
        b.arc_tt(xp, xm);
        b.arc_tp(xm, done);
        b.mark(start);
        let yp = b.rise(y);
        let ym = b.fall(y);
        b.arc_tt(yp, ym);
        b.arc_tt(ym, yp);
        b.initial_all_zero();
        let stg = b.must_build();

        let refusal = choose_flow(&stg, 2_000_000).expect_err("must refuse");
        assert!(
            refusal.siphon.iter().any(|p| p.contains("y+")),
            "witness names the never-marked cycle: {refusal:?}"
        );
        assert!(refusal.to_string().contains("SI-E004"));
    }

    #[test]
    fn auto_policy_decisions_synthesise_and_verify() {
        for stg in [
            si_stg::suite::paper_fig1(),
            token_ring(8),
            muller_pipeline(6),
        ] {
            let decision = choose_flow(&stg, 2_000_000).expect("no refusal");
            let engine = engine_for(
                decision.choice,
                &SgSynthesisOptions::default(),
                &SynthesisOptions::default(),
            );
            let result = engine
                .synthesize(&stg)
                .unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
            engine
                .verify(&stg, &result, 5_000_000, SgEngine::Explicit)
                .unwrap_or_else(|e| panic!("{}: {e}", stg.name()));
        }
    }
}
